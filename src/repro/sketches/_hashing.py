"""Seeded 64-bit hashing shared by the sketch implementations.

All sketches need a fast, well-mixed, *deterministic* hash function.
Python's builtin ``hash()`` is randomized per process (PYTHONHASHSEED)
and therefore unsuitable for reproducible experiments, so we use
``hashlib.blake2b`` with an explicit key derived from the seed.
"""

import hashlib
import struct

_MASK64 = (1 << 64) - 1


def hash64(key, seed=0):
    """Return a 64-bit hash of *key* for the given integer *seed*.

    *key* may be ``bytes`` or ``str``; strings are UTF-8 encoded.
    The same (key, seed) pair always produces the same value across
    processes and platforms.
    """
    if isinstance(key, str):
        key = key.encode("utf-8", "surrogateescape")
    digest = hashlib.blake2b(
        key, digest_size=8, key=seed.to_bytes(8, "little")
    ).digest()
    return struct.unpack("<Q", digest)[0]


def hash_pair(key, seed=0):
    """Return two independent 64-bit hashes of *key*.

    Used for double hashing (Kirsch & Mitzenmacher): ``h_i = h1 + i*h2``
    yields *k* near-independent hash functions from two invocations.
    """
    if isinstance(key, str):
        key = key.encode("utf-8", "surrogateescape")
    digest = hashlib.blake2b(
        key, digest_size=16, key=seed.to_bytes(8, "little")
    ).digest()
    h1, h2 = struct.unpack("<QQ", digest)
    # An even h2 could cycle through only a fraction of the buckets.
    return h1, h2 | 1


def mix64(value):
    """Finalizer-style mixer for integer values (splitmix64 finalizer)."""
    value = value & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (value ^ (value >> 31)) & _MASK64


_GOLDEN = 0x9E3779B97F4A7C15


def derive64(base_hash, seed):
    """Derive an independent 64-bit hash from a precomputed one.

    Hot-path optimization: hashing a key once with :func:`hash64` and
    deriving per-sketch variants with this mixer avoids one blake2b
    invocation per sketch (the §2.3 feature set keeps ~8 HyperLogLogs
    per tracked object)."""
    return mix64(base_hash ^ (seed * _GOLDEN & _MASK64))
