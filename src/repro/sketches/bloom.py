"""Bloom filters (Bloom, 1970) for the Space-Saving eviction gate.

Section 2.2: before evicting the least-frequent Space-Saving entry to
make room for a never-seen key, the tracker "optionally consult[s] a
Bloom Filter ... in order to skip incidental observations of rare
keys".  A key must therefore be observed at least twice within the
filter's lifetime before it may displace a tracked object.

Because a plain Bloom filter only fills up over time, the tracker uses
:class:`RotatingBloomFilter`: two alternating filters where the older
one is cleared on rotation, giving the gate a bounded memory horizon.
"""

import math

from repro.sketches._hashing import hash_pair


class BloomFilter:
    """A classic Bloom filter over string/bytes keys.

    Parameters
    ----------
    capacity:
        Number of distinct keys the filter is sized for.
    error_rate:
        Target false-positive probability at *capacity* insertions.
    seed:
        Hash seed; filters with different seeds are independent.
    """

    def __init__(self, capacity=100_000, error_rate=0.01, seed=0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0.0 < error_rate < 1.0:
            raise ValueError("error_rate must be in (0, 1)")
        self.capacity = int(capacity)
        self.error_rate = float(error_rate)
        self.seed = int(seed)
        # Standard sizing: m = -n ln p / (ln 2)^2, k = m/n ln 2.
        bits = int(math.ceil(-capacity * math.log(error_rate) / (math.log(2) ** 2)))
        self.num_bits = max(bits, 64)
        self.num_hashes = max(1, int(round(self.num_bits / capacity * math.log(2))))
        self._bits = bytearray((self.num_bits + 7) // 8)
        self._count = 0
        #: set bits, maintained incrementally so fill_ratio() is O(1)
        #: (telemetry samples it; popcounting ~2 Mbit in Python per
        #: snapshot would dominate the whole flush)
        self._bits_set = 0

    def __len__(self):
        """Number of ``add()`` calls (including duplicates)."""
        return self._count

    def _positions(self, key):
        h1, h2 = hash_pair(key, self.seed)
        m = self.num_bits
        return [(h1 + i * h2) % m for i in range(self.num_hashes)]

    def add(self, key):
        """Insert *key*; returns True if it was (probably) already present."""
        present = True
        for pos in self._positions(key):
            byte, bit = pos >> 3, pos & 7
            if not self._bits[byte] & (1 << bit):
                present = False
                self._bits[byte] |= 1 << bit
                self._bits_set += 1
        self._count += 1
        return present

    def __contains__(self, key):
        return all(self._bits[p >> 3] & (1 << (p & 7)) for p in self._positions(key))

    def clear(self):
        """Remove all keys."""
        self._bits = bytearray(len(self._bits))
        self._count = 0
        self._bits_set = 0

    def merge(self, other):
        """Fold *other* into this filter (bitwise OR of the bit arrays).

        Filters built from split streams OR-merge into exactly the
        filter the union stream would have built -- the property the
        newly-observed-hostname detector's generation merges rely on.
        Only filters with identical sizing and seed are compatible."""
        if not isinstance(other, BloomFilter):
            raise TypeError("can only merge BloomFilter instances")
        if (self.num_bits, self.num_hashes, self.seed) != \
                (other.num_bits, other.num_hashes, other.seed):
            raise ValueError("cannot merge filters with different "
                             "parameters")
        mine, theirs = self._bits, other._bits
        bits_set = 0
        for i in range(len(mine)):
            merged = mine[i] | theirs[i]
            mine[i] = merged
            bits_set += bin(merged).count("1")
        self._bits_set = bits_set
        self._count += other._count
        return self

    def fill_ratio(self):
        """Fraction of bits set -- a saturation indicator."""
        return self._bits_set / self.num_bits

    def approximate_fpr(self):
        """Estimate the current false-positive rate from the fill ratio."""
        return self.fill_ratio() ** self.num_hashes


class RotatingBloomFilter:
    """Two alternating Bloom filters providing a sliding time horizon.

    Keys are added to the *active* filter; membership checks consult
    both the active and the *previous* filter.  Calling
    :meth:`maybe_rotate` (or adding more than ``capacity`` keys)
    swaps them and clears the older one, so any key is remembered for
    at least one and at most two rotation periods.
    """

    def __init__(self, capacity=100_000, error_rate=0.01, seed=0,
                 rotate_interval=600.0):
        self.capacity = int(capacity)
        self.rotate_interval = float(rotate_interval)
        self._active = BloomFilter(capacity, error_rate, seed)
        self._previous = BloomFilter(capacity, error_rate, seed ^ 0x5BF03635)
        self._last_rotation = None
        self.rotations = 0
        #: rotations forced by insert-count overflow rather than time --
        #: nonzero values flag a key surge (PRSD / botnet) faster than
        #: any fill-ratio poll would
        self.overflow_rotations = 0

    def add(self, key, now=None):
        """Insert *key*; returns True if it was already remembered."""
        if now is not None:
            self.maybe_rotate(now)
        seen = key in self._previous
        seen = self._active.add(key) or seen
        if len(self._active) >= self.capacity:
            # Count-based overflow rotation: a key surge within one
            # rotate_interval (PRSD attack, botnet ramp-up) would
            # otherwise drive the fill ratio toward 1.0, at which
            # point every unknown key reads as "seen before" and the
            # gate silently stops gating.
            self._rotate(now)
            self.overflow_rotations += 1
        return seen

    def __contains__(self, key):
        return key in self._active or key in self._previous

    def maybe_rotate(self, now):
        """Rotate the filters if *rotate_interval* elapsed; return True if so."""
        if self._last_rotation is None:
            self._last_rotation = now
            return False
        if now - self._last_rotation < self.rotate_interval:
            return False
        self._rotate(now)
        return True

    def _rotate(self, now):
        self._previous, self._active = self._active, self._previous
        self._active.clear()
        if now is not None:
            self._last_rotation = now
        self.rotations += 1

    def merge(self, other):
        """Fold *other*'s generations into this filter pairwise.

        Active merges with active, previous with previous, so two
        rotating filters that rotated in lockstep (same windows, same
        rotation schedule) combine into the filter a single observer
        of the union stream would hold."""
        if not isinstance(other, RotatingBloomFilter):
            raise TypeError("can only merge RotatingBloomFilter instances")
        if (self.rotations & 1) != (other.rotations & 1):
            # After an odd rotation-count difference the underlying
            # filters (distinct seeds) are swapped relative to ours.
            self._active.merge(other._previous)
            self._previous.merge(other._active)
        else:
            self._active.merge(other._active)
            self._previous.merge(other._previous)
        # self.rotations is untouched: its parity encodes which
        # underlying filter (which seed) is currently active here.
        self.overflow_rotations += other.overflow_rotations
        return self

    def fill_ratio(self):
        """Fraction of bits set in the *active* filter -- the gate's
        primary saturation signal."""
        return self._active.fill_ratio()

    def approximate_fpr(self):
        """Estimated false-positive rate of the membership check.

        A key is "remembered" when either filter reports it, so the
        combined FPR is ``1 - (1-p_active)(1-p_previous)``."""
        fpr_active = self._active.approximate_fpr()
        fpr_previous = self._previous.approximate_fpr()
        return 1.0 - (1.0 - fpr_active) * (1.0 - fpr_previous)
