"""Shared-landmark exponential decay for streaming rate estimates.

Section 2.2 of the paper describes the frequency estimate kept for each
Space-Saving entry as "an exponentially decaying moving average that
tracks the rate of transactions per second for this object".

A naive implementation stores ``(rate, last_update)`` per entry and
decays on access, but then the rates of two entries touched at
different times are not directly comparable -- which breaks the
Space-Saving eviction rule ("evict the least frequent object").

We instead use the *forward decay* construction (Cormode et al., 2009):
an observation at time *t* receives weight ``g(t) = exp((t - L) / tau)``
relative to a fixed landmark *L*.  Accumulated weights of different
entries are then directly comparable at any moment, and the decayed
rate at time *now* is ``weight * exp(-(now - L) / tau) / tau``.

Because ``g(t)`` grows without bound, the accumulator renormalizes:
when the exponent exceeds a threshold, every stored weight is expected
to be rescaled by the owner (see :meth:`ForwardDecay.renormalize`).
"""

import math


class ForwardDecay:
    """Forward-decay weight calculator with periodic renormalization.

    Parameters
    ----------
    tau:
        Decay time constant in seconds.  An observation's influence
        halves every ``tau * ln(2)`` seconds.
    max_exponent:
        When ``(now - landmark) / tau`` exceeds this threshold,
        :meth:`needs_renormalize` returns True and the owner should
        call :meth:`renormalize` and rescale its stored weights by the
        returned factor.  The default keeps ``exp()`` far away from
        overflow (which occurs near exponent 709 for doubles).
    """

    def __init__(self, tau=60.0, max_exponent=200.0):
        if tau <= 0:
            raise ValueError("tau must be positive, got %r" % (tau,))
        self.tau = float(tau)
        self.max_exponent = float(max_exponent)
        self.landmark = 0.0

    def weight(self, now):
        """Return the forward-decay weight ``g(now)`` of one observation."""
        return math.exp((now - self.landmark) / self.tau)

    def rate(self, weight, now):
        """Convert an accumulated *weight* into a rate (events/second)."""
        return weight * math.exp((self.landmark - now) / self.tau) / self.tau

    def needs_renormalize(self, now):
        """True when accumulated exponents are getting dangerously large."""
        return (now - self.landmark) / self.tau > self.max_exponent

    def renormalize(self, now):
        """Move the landmark to *now* and return the weight rescale factor.

        Every weight accumulated under the previous landmark must be
        multiplied by the returned factor to stay consistent.
        """
        return self.rebase(now)

    def rebase(self, landmark):
        """Move the landmark to an arbitrary point and return the
        weight rescale factor.

        Weights accumulated under two different landmarks are not
        directly comparable; rebasing both decays onto the same
        landmark (and rescaling their stored weights by the returned
        factors) makes them so.  This is what allows independently
        built Space-Saving caches to be merged.
        """
        factor = math.exp((self.landmark - landmark) / self.tau)
        self.landmark = float(landmark)
        return factor


class DecayingRate:
    """A standalone exponentially decaying events-per-second estimate.

    Convenience wrapper for callers that track a single rate and do not
    need cross-entry comparability (for that, share one
    :class:`ForwardDecay` instead).  Uses classic backward decay.
    """

    def __init__(self, tau=60.0):
        if tau <= 0:
            raise ValueError("tau must be positive, got %r" % (tau,))
        self.tau = float(tau)
        self._value = 0.0
        self._last = None

    def observe(self, now, count=1.0):
        """Record *count* events at time *now*."""
        if self._last is not None and now > self._last:
            self._value *= math.exp((self._last - now) / self.tau)
        if self._last is None or now > self._last:
            self._last = now
        self._value += count / self.tau

    def rate(self, now):
        """Return the decayed rate (events/second) at time *now*."""
        if self._last is None:
            return 0.0
        if now <= self._last:
            return self._value
        return self._value * math.exp((self._last - now) / self.tau)
