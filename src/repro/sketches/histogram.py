"""Streaming log-bucketed histograms with quantile estimation.

Section 2.3 keeps *quartiles* of server response delays, inferred
network hop counts, and response packet sizes per tracked object.  At
200 k transactions/second storing raw samples is impossible, so the
Observatory uses fixed-memory histograms.

:class:`LogHistogram` uses geometrically spaced bucket boundaries,
giving a constant *relative* quantile error (configurable, default
5 %), which matches how delay data is usually reported (log-scaled
axes in Figure 3).  Buckets are stored sparsely in a dict, so objects
with few observations stay tiny.
"""

import math
import struct
from pickle import PickleBuffer


class LogHistogram:
    """Fixed-relative-error streaming histogram over positive values.

    Values are mapped to geometric buckets ``base**i``; quantiles are
    estimated by interpolating inside the selected bucket.  Values at
    or below ``min_value`` share the underflow bucket 0.

    Parameters
    ----------
    relative_error:
        Half-width of a bucket in relative terms; bucket boundaries
        grow by ``(1+e)/(1-e)`` per bucket.
    min_value:
        Smallest distinguishable value; anything smaller is clamped.
    """

    __slots__ = ("base", "_log_base", "min_value", "_buckets", "count", "_sum",
                 "_min", "_max")

    def __init__(self, relative_error=0.05, min_value=1e-6):
        if not 0.0 < relative_error < 1.0:
            raise ValueError("relative_error must be in (0, 1)")
        self.base = (1.0 + relative_error) / (1.0 - relative_error)
        self._log_base = math.log(self.base)
        self.min_value = float(min_value)
        self._buckets = {}
        self.count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def _index(self, value):
        if value <= self.min_value:
            return 0
        return 1 + int(math.log(value / self.min_value) / self._log_base)

    def _bucket_midpoint(self, index):
        if index == 0:
            return self.min_value
        low = self.min_value * self.base ** (index - 1)
        return low * math.sqrt(self.base)

    def add(self, value, count=1):
        """Record *value* with multiplicity *count*."""
        if value < 0:
            raise ValueError("LogHistogram only accepts non-negative values")
        idx = self._index(value)
        self._buckets[idx] = self._buckets.get(idx, 0) + count
        self.count += count
        self._sum += value * count
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def __len__(self):
        return self.count

    @property
    def mean(self):
        """Exact arithmetic mean of all recorded values."""
        return self._sum / self.count if self.count else 0.0

    @property
    def min(self):
        return self._min if self.count else 0.0

    @property
    def max(self):
        return self._max if self.count else 0.0

    def quantile(self, q):
        """Estimate the *q*-quantile (0 <= q <= 1) of recorded values."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * (self.count - 1)
        seen = 0
        for idx in sorted(self._buckets):
            bucket_count = self._buckets[idx]
            if seen + bucket_count > target:
                value = self._bucket_midpoint(idx)
                return min(max(value, self._min), self._max)
            seen += bucket_count
        return self._max

    def quartiles(self):
        """Return (q25, median, q75) -- the per-feature stats of §2.3."""
        return (self.quantile(0.25), self.quantile(0.5), self.quantile(0.75))

    def merge(self, other):
        """Fold *other* (same parameters) into this histogram."""
        if not isinstance(other, LogHistogram):
            raise TypeError("can only merge LogHistogram instances")
        if abs(other.base - self.base) > 1e-12 or other.min_value != self.min_value:
            raise ValueError("cannot merge histograms with different parameters")
        for idx, cnt in other._buckets.items():
            self._buckets[idx] = self._buckets.get(idx, 0) + cnt
        self.count += other.count
        self._sum += other._sum
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        return self

    def clear(self):
        """Reset to the empty histogram (parameters preserved)."""
        self._buckets.clear()
        self.count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def buckets(self):
        """Return the sparse ``{bucket_index: count}`` map (read-only use)."""
        return dict(self._buckets)

    # -- flat-buffer codec (zero-copy shard transport) -----------------

    _PAIR = struct.Struct("<iq")

    def to_buffers(self):
        """Serialize to ``(meta, buffers)``: scalar state in *meta*,
        the sparse buckets packed as little-endian ``(int32 index,
        int64 count)`` pairs in one contiguous buffer."""
        items = self._buckets.items()
        buf = bytearray(self._PAIR.size * len(items))
        pos = 0
        pack_into = self._PAIR.pack_into
        for idx, count in items:
            pack_into(buf, pos, idx, count)
            pos += self._PAIR.size
        meta = ("loghist", self.base, self.min_value, self.count,
                self._sum, self._min, self._max)
        return meta, [bytes(buf)]

    @classmethod
    def from_buffers(cls, meta, buffers):
        """Rebuild a histogram from :meth:`to_buffers` output.

        Restores ``base`` bit-exactly (bypassing the ``relative_error``
        constructor round-trip) so merged histograms keep identical
        bucket boundaries."""
        tag, base, min_value, count, total, min_, max_ = meta
        if tag != "loghist":
            raise ValueError("unknown LogHistogram buffer tag %r" % (tag,))
        hist = cls.__new__(cls)
        hist.base = base
        hist._log_base = math.log(base)
        hist.min_value = min_value
        hist.count = count
        hist._sum = total
        hist._min = min_
        hist._max = max_
        hist._buckets = {idx: cnt for idx, cnt
                         in cls._PAIR.iter_unpack(buffers[0])}
        return hist

    def __reduce_ex__(self, protocol):
        if protocol >= 5:
            meta, buffers = self.to_buffers()
            return (self.from_buffers,
                    (meta, [PickleBuffer(b) for b in buffers]))
        return super().__reduce_ex__(protocol)


class RunningMean:
    """Tiny streaming mean used for the "average" features (e.g. qdots)."""

    __slots__ = ("count", "_sum")

    def __init__(self):
        self.count = 0
        self._sum = 0.0

    def add(self, value, count=1):
        self.count += count
        self._sum += value * count

    @property
    def mean(self):
        return self._sum / self.count if self.count else 0.0

    def merge(self, other):
        self.count += other.count
        self._sum += other._sum
        return self

    def clear(self):
        self.count = 0
        self._sum = 0.0

    # -- flat-buffer codec: two scalars, no buffers needed -------------

    def to_buffers(self):
        return ("rmean", self.count, self._sum), []

    @classmethod
    def from_buffers(cls, meta, buffers):
        tag, count, total = meta
        if tag != "rmean":
            raise ValueError("unknown RunningMean buffer tag %r" % (tag,))
        mean = cls()
        mean.count = count
        mean._sum = total
        return mean

    def __reduce_ex__(self, protocol):
        if protocol >= 5:
            meta, buffers = self.to_buffers()
            return (self.from_buffers, (meta, buffers))
        return super().__reduce_ex__(protocol)
