"""The Space-Saving top-k algorithm with decaying rate estimates.

This is the "basic tool" of DNS Observatory (Section 2.2): it keeps
track of the most frequently queried DNS objects -- nameserver IPs,
FQDNs, eSLDs, ... -- while keeping memory usage bounded by *k*.

The implementation follows Metwally, Agrawal & El Abbadi (ICDT 2005)
with the paper's adaptation:

* the frequency estimate of each entry is an **exponentially decaying
  moving average** of the transaction rate (events/second), realized
  via forward decay so that the estimates of all entries remain
  directly comparable (see :mod:`repro.sketches.ewma`);
* on a miss with a full cache, the **least-frequent entry is evicted**
  and the new key inherits its (decayed) frequency estimate -- the
  classic Space-Saving overestimate, preserved across the swap exactly
  as Section 2.2 describes ("keeping (and updating) the frequency
  estimate of the evicted entry");
* optionally, a **Bloom-filter gate** is consulted before eviction so
  that a key seen for the very first time cannot displace a tracked
  object -- only on its second observation within the gate's horizon
  may it enter the cache.

Each live entry carries an opaque ``state`` slot where the caller
(:mod:`repro.observatory.tracker`) attaches its per-object traffic
feature accumulator; the slot is reset on insertion, since the
statistics of the evicted object do not describe the new one.

Complexity: O(log k) amortized per observation (lazy min-heap with
periodic compaction), O(k) memory.
"""

import heapq
import math

from repro.sketches.ewma import ForwardDecay


class SpaceSavingEntry:
    """A tracked object inside the Space-Saving cache."""

    __slots__ = ("key", "weight", "error", "inserted_at", "hits", "state",
                 "_version")

    def __init__(self, key, weight, error, inserted_at):
        #: the object's textual key (e.g. a nameserver IP address)
        self.key = key
        #: accumulated forward-decay weight (internal units)
        self.weight = weight
        #: weight inherited from the evicted entry at insertion time;
        #: ``weight - error`` is a lower bound on the object's own weight
        self.error = error
        #: virtual time when this key entered the cache (used by the
        #: window manager to skip recently inserted objects, §2.4)
        self.inserted_at = inserted_at
        #: exact number of observations since this key entered the cache
        self.hits = 0
        #: caller-attached per-object statistics (reset on insertion)
        self.state = None
        self._version = 0


class SpaceSaving:
    """Track the top-*k* keys of a stream with decaying rate estimates.

    Parameters
    ----------
    capacity:
        Maximum number of tracked keys (the *k* in top-k).
    tau:
        Decay time constant (seconds) for the rate estimates.  The
        paper tracks "the rate of transactions per second"; with the
        default of 300 s, an object silent for ~3.5 minutes loses half
        its estimated rate.
    gate:
        Optional eviction gate with an ``add(key, now) -> bool``
        method (e.g. :class:`repro.sketches.bloom.RotatingBloomFilter`).
        When provided, an unknown key is dropped -- not inserted -- the
        first time the gate reports it as unseen.
    """

    def __init__(self, capacity, tau=300.0, gate=None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.decay = ForwardDecay(tau=tau)
        self.gate = gate
        self._entries = {}
        self._heap = []
        # --- stream accounting (used for §3.1 capture ratios) ---
        #: total keys offered
        self.offered = 0
        #: observations that landed on an already-tracked key
        self.tracked_hits = 0
        #: observations dropped by the Bloom gate
        self.gated = 0
        #: evictions performed
        self.evictions = 0

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------

    def offer(self, key, now, count=1):
        """Observe *key* at virtual time *now*.

        Returns the live :class:`SpaceSavingEntry` for *key*, or None
        when the observation was dropped by the Bloom gate.
        """
        self.offered += 1
        if self.decay.needs_renormalize(now):
            self._renormalize(now)
        entries = self._entries
        entry = entries.get(key)
        add_weight = self.decay.weight(now) * count
        if entry is not None:
            self.tracked_hits += 1
            entry.weight += add_weight
            entry.hits += count
            self._push(entry)
            return entry
        if len(entries) >= self.capacity:
            if self.gate is not None and not self.gate.add(key, now):
                self.gated += 1
                return None
            victim = self._pop_min()
            inherited = victim.weight
            del entries[victim.key]
            self.evictions += 1
        else:
            inherited = 0.0
        entry = SpaceSavingEntry(key, inherited + add_weight, inherited, now)
        entry.hits = count
        entries[key] = entry
        self._push(entry)
        return entry

    def get(self, key):
        """Return the live entry for *key*, or None if not tracked."""
        return self._entries.get(key)

    def __contains__(self, key):
        return key in self._entries

    def __len__(self):
        return len(self._entries)

    def __iter__(self):
        """Iterate over live entries (arbitrary order)."""
        return iter(self._entries.values())

    def rate(self, entry_or_key, now):
        """Decayed rate estimate (events/second) of an entry at *now*."""
        entry = entry_or_key
        if not isinstance(entry, SpaceSavingEntry):
            entry = self._entries.get(entry_or_key)
            if entry is None:
                return 0.0
        return self.decay.rate(entry.weight, now)

    def guaranteed_rate(self, entry, now):
        """Lower bound on the entry's own rate (weight minus the
        inherited Space-Saving error)."""
        return self.decay.rate(max(entry.weight - entry.error, 0.0), now)

    def top(self, n=None, now=None):
        """Return entries ranked by estimated frequency, heaviest first.

        *now* is accepted for interface symmetry; since all weights
        share one landmark, decay does not change the ordering.
        """
        ranked = sorted(
            self._entries.values(), key=lambda e: (-e.weight, e.key)
        )
        return ranked if n is None else ranked[:n]

    def merge(self, other):
        """Fold *other* into this cache (mergeable-summaries union).

        Implements the Space-Saving merge of Agarwal et al.,
        *Mergeable Summaries* (PODS 2012), adapted to forward-decay
        weights: both caches are rebased onto a common decay landmark,
        entries present in both are combined entry-wise (weights and
        errors add, exact hit counts add, the earlier ``inserted_at``
        wins), and a key absent from one side is credited that side's
        minimum weight -- the classic overestimate floor -- only when
        that side's cache is full (otherwise an absent key truly has
        zero weight there).  The union is then truncated back to this
        cache's capacity, heaviest first.

        The invariants of a single-pass cache are preserved: every
        merged ``weight`` is an overestimate of the key's true
        combined weight, and ``weight - error`` remains a lower bound.
        The worst-case overestimate is the sum of both inputs' errors,
        so per-shard summaries of a partitioned stream merge into a
        global Top-k whose error bounds add across shards.

        Attached per-entry ``state`` objects are merged via their own
        ``state.merge()`` when both sides carry one, and adopted
        as-is from *other* otherwise -- *other* must be discarded
        after this call (its entries and states are absorbed, not
        copied).

        Both caches must share the same decay time constant *tau*.
        Returns self.
        """
        if not isinstance(other, SpaceSaving):
            raise TypeError("can only merge SpaceSaving instances")
        if self.decay.tau != other.decay.tau:
            raise ValueError("cannot merge caches with different tau")
        # Rebase both weight sets onto the later landmark so the
        # accumulated forward-decay weights are directly comparable
        # (rebasing onto the earlier one could overflow exp()).
        target = max(self.decay.landmark, other.decay.landmark)
        if self.decay.landmark != target:
            factor = self.decay.rebase(target)
            for entry in self._entries.values():
                entry.weight *= factor
                entry.error *= factor
        scale = math.exp((other.decay.landmark - target) / other.decay.tau)

        other_floor = 0.0
        if len(other._entries) >= other.capacity:
            other_floor = scale * min(
                e.weight for e in other._entries.values())
        self_floor = 0.0
        if len(self._entries) >= self.capacity:
            self_floor = min(e.weight for e in self._entries.values())

        entries = self._entries
        for key, oe in other._entries.items():
            ow = oe.weight * scale
            oerr = oe.error * scale
            se = entries.get(key)
            if se is None:
                se = SpaceSavingEntry(
                    key, ow + self_floor, oerr + self_floor, oe.inserted_at)
                se.hits = oe.hits
                se.state = oe.state
                entries[key] = se
            else:
                se.weight += ow
                se.error += oerr
                se.hits += oe.hits
                if oe.inserted_at < se.inserted_at:
                    se.inserted_at = oe.inserted_at
                if se.state is None:
                    se.state = oe.state
                elif oe.state is not None:
                    se.state.merge(oe.state)
        if other_floor:
            other_keys = other._entries
            for key, se in entries.items():
                if key not in other_keys:
                    se.weight += other_floor
                    se.error += other_floor
        if len(entries) > self.capacity:
            ranked = sorted(
                entries.values(), key=lambda e: (-e.weight, e.key))
            self._entries = {e.key: e for e in ranked[:self.capacity]}
        self.offered += other.offered
        self.tracked_hits += other.tracked_hits
        self.gated += other.gated
        self.evictions += other.evictions
        self._rebuild_heap()
        return self

    def min_rate(self, now):
        """Decayed rate estimate (events/second) of the weakest tracked
        entry at *now* -- the eviction threshold a new key must beat.
        A collapsing min-rate on a full cache signals churn; telemetry
        samples it once per window."""
        if not self._entries:
            return 0.0
        return self.decay.rate(
            min(entry.weight for entry in self._entries.values()), now)

    def capture_ratio(self):
        """Fraction of offered observations that landed on a tracked key.

        Section 3.1 reports these per dataset, e.g. 94.9 % for the
        Top-100K nameserver list and 23.2 % for Top-100K FQDNs.
        """
        return self.tracked_hits / self.offered if self.offered else 0.0

    # ------------------------------------------------------------------
    # Heap bookkeeping (lazy deletion + periodic compaction)
    # ------------------------------------------------------------------

    def _push(self, entry):
        entry._version += 1
        heapq.heappush(self._heap, (entry.weight, id(entry), entry._version, entry))
        if len(self._heap) > 8 * self.capacity + 64:
            self._rebuild_heap()

    def _pop_min(self):
        heap = self._heap
        while heap:
            weight, _, version, entry = heapq.heappop(heap)
            if entry._version == version and self._entries.get(entry.key) is entry:
                return entry
        raise RuntimeError("Space-Saving heap exhausted with live entries present")

    def _rebuild_heap(self):
        self._heap = [
            (e.weight, id(e), e._version, e) for e in self._entries.values()
        ]
        heapq.heapify(self._heap)

    def _renormalize(self, now):
        factor = self.decay.renormalize(now)
        for entry in self._entries.values():
            entry.weight *= factor
            entry.error *= factor
        self._rebuild_heap()
