"""Uniform reservoir sampling (Vitter's algorithm R).

Not part of the paper's production pipeline, but used throughout the
reproduction for validation: e.g. comparing LogHistogram quantiles and
HyperLogLog cardinalities against exact values computed on a uniform
sample, and for the representativeness experiments of Section 3.7
(random subsets of vantage points).
"""

import random


class ReservoirSample:
    """Keep a uniform random sample of at most *size* items from a stream."""

    def __init__(self, size, seed=0):
        if size < 1:
            raise ValueError("size must be >= 1")
        self.size = int(size)
        self._rng = random.Random(seed)
        self._items = []
        self.count = 0

    def add(self, item):
        """Offer *item* to the reservoir."""
        self.count += 1
        if len(self._items) < self.size:
            self._items.append(item)
            return
        j = self._rng.randrange(self.count)
        if j < self.size:
            self._items[j] = item

    def merge(self, other):
        """Fold *other* into this reservoir, preserving uniformity.

        Implements the standard distributed-reservoir merge: each
        output slot simulates drawing one element without replacement
        from the concatenated stream -- pick a side with probability
        proportional to its remaining stream mass, pop a uniformly
        random item from that side's reservoir, and deduct exactly one
        element from the chosen side's mass (the popped item stands in
        for one stream element; the items left behind remain a uniform
        sample of that side's remaining elements).  Per-shard
        reservoirs therefore combine into a valid uniform sample of
        the full stream.

        Uses this reservoir's RNG; returns self.
        """
        if not isinstance(other, ReservoirSample):
            raise TypeError("can only merge ReservoirSample instances")
        if other.count == 0:
            return self
        if self.count == 0:
            self._items = list(other._items)
            self.count = other.count
            return self
        mine = list(self._items)
        theirs = list(other._items)
        mass_mine = float(self.count)
        mass_theirs = float(other.count)
        rng = self._rng
        merged = []
        while len(merged) < self.size and (mine or theirs):
            total = mass_mine + mass_theirs
            if mine and (not theirs or rng.random() * total < mass_mine):
                mass_mine -= 1.0
                merged.append(mine.pop(rng.randrange(len(mine))))
            else:
                mass_theirs -= 1.0
                merged.append(theirs.pop(rng.randrange(len(theirs))))
        self._items = merged
        self.count += other.count
        return self

    # -- flat-buffer codec (uniformity with the other sketches) --------

    def to_buffers(self):
        """Serialize to ``(meta, buffers)``.  Items are arbitrary
        objects and the RNG state is a structured tuple, so both ride
        in *meta*; the pair exists so every mergeable sketch speaks
        the same transport interface."""
        meta = ("reservoir", self.size, self.count, tuple(self._items),
                self._rng.getstate())
        return meta, []

    @classmethod
    def from_buffers(cls, meta, buffers):
        tag, size, count, items, rng_state = meta
        if tag != "reservoir":
            raise ValueError("unknown ReservoirSample buffer tag %r" % (tag,))
        sample = cls(size)
        sample.count = count
        sample._items = list(items)
        sample._rng.setstate(rng_state)
        return sample

    def __reduce_ex__(self, protocol):
        if protocol >= 5:
            meta, buffers = self.to_buffers()
            return (self.from_buffers, (meta, buffers))
        return super().__reduce_ex__(protocol)

    def items(self):
        """Return the current sample (list copy, insertion order)."""
        return list(self._items)

    def __len__(self):
        return len(self._items)

    def __iter__(self):
        return iter(self._items)
