"""Uniform reservoir sampling (Vitter's algorithm R).

Not part of the paper's production pipeline, but used throughout the
reproduction for validation: e.g. comparing LogHistogram quantiles and
HyperLogLog cardinalities against exact values computed on a uniform
sample, and for the representativeness experiments of Section 3.7
(random subsets of vantage points).
"""

import random


class ReservoirSample:
    """Keep a uniform random sample of at most *size* items from a stream."""

    def __init__(self, size, seed=0):
        if size < 1:
            raise ValueError("size must be >= 1")
        self.size = int(size)
        self._rng = random.Random(seed)
        self._items = []
        self.count = 0

    def add(self, item):
        """Offer *item* to the reservoir."""
        self.count += 1
        if len(self._items) < self.size:
            self._items.append(item)
            return
        j = self._rng.randrange(self.count)
        if j < self.size:
            self._items[j] = item

    def items(self):
        """Return the current sample (list copy, insertion order)."""
        return list(self._items)

    def __len__(self):
        return len(self._items)

    def __iter__(self):
        return iter(self._items)
