"""Probabilistic data structures used by DNS Observatory.

This subpackage implements the stream-oriented algorithms referenced in
Section 2 of the paper:

* :class:`~repro.sketches.spacesaving.SpaceSaving` -- the Space-Saving
  top-k algorithm (Metwally et al., ICDT 2005) with exponentially
  decaying rate estimates (Section 2.2).
* :class:`~repro.sketches.bloom.BloomFilter` and
  :class:`~repro.sketches.bloom.RotatingBloomFilter` -- the optional
  eviction gate that shields the top-k cache from one-off keys.
* :class:`~repro.sketches.hyperloglog.HyperLogLog` -- cardinality
  estimation for large value sets (Section 2.3), following the
  practical improvements of Heule et al. (EDBT 2013): 64-bit hashing
  and small-range linear counting.
* :class:`~repro.sketches.histogram.LogHistogram` -- streaming
  log-bucketed histograms with quantile estimation, used for response
  delays, hop counts and response sizes.
* :class:`~repro.sketches.topvalues.TopValues` -- bounded discrete
  value counter used for the "top-3 TTL values" feature.
* :class:`~repro.sketches.ewma.ForwardDecay` -- shared-landmark
  exponential decay used by the Space-Saving rate estimates.
* :class:`~repro.sketches.reservoir.ReservoirSample` -- uniform
  reservoir sampling, used for validation experiments.

All structures are deterministic given their seeds, mergeable where the
paper's aggregation pipeline requires it, and implemented in pure
Python with no third-party dependencies.
"""

from repro.sketches.bloom import BloomFilter, RotatingBloomFilter
from repro.sketches.countmin import CmsTopK, CountMinSketch
from repro.sketches.distinct import DistinctSpaceSaving
from repro.sketches.ewma import ForwardDecay
from repro.sketches.histogram import LogHistogram
from repro.sketches.hyperloglog import HyperLogLog
from repro.sketches.reservoir import ReservoirSample
from repro.sketches.spacesaving import SpaceSaving, SpaceSavingEntry
from repro.sketches.topvalues import TopValues

__all__ = [
    "BloomFilter",
    "RotatingBloomFilter",
    "CmsTopK",
    "CountMinSketch",
    "DistinctSpaceSaving",
    "ForwardDecay",
    "LogHistogram",
    "HyperLogLog",
    "ReservoirSample",
    "SpaceSaving",
    "SpaceSavingEntry",
    "TopValues",
]
