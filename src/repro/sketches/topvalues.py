"""Bounded discrete value counter for the "top-3 TTLs" feature.

Section 2.3 tracks, per object, "the top-3 TTL values (and
distributions) for records in ANSWER and nameservers in AUTHORITY".
TTLs in the wild take relatively few distinct values per object (60,
300, 3600, 86400 ...), but a misbehaving server can emit a different
TTL on every response (the "non-conforming" category of Table 4), so
the counter must be bounded.

:class:`TopValues` is a miniature Space-Saving instance over discrete
values: it keeps at most ``max_values`` counters and, when full,
recycles the smallest counter for the incoming value (inheriting its
count, the classic Space-Saving overestimate).  For the skewed value
distributions it is used on, the top few reported values are exact
with high probability.
"""

import struct
from pickle import PickleBuffer

_INT_PAIR = struct.Struct("<qq")
_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


class TopValues:
    """Track the most frequent discrete values of a feature.

    Parameters
    ----------
    max_values:
        Maximum number of distinct values tracked at once.  Should
        comfortably exceed the number of *frequent* values (the paper
        reports 3, we default to tracking 16 to report a top-3 with
        slack).
    """

    __slots__ = ("max_values", "_counts", "total", "replaced")

    def __init__(self, max_values=16):
        if max_values < 1:
            raise ValueError("max_values must be >= 1")
        self.max_values = int(max_values)
        self._counts = {}
        #: total observations, including those absorbed by recycling
        self.total = 0
        #: number of counter recycling events (diagnostic for
        #: non-conforming TTL detection -- high churn means many values)
        self.replaced = 0

    def add(self, value, count=1):
        """Record *count* observations of *value* (any hashable)."""
        self.total += count
        counts = self._counts
        if value in counts:
            counts[value] += count
            return
        if len(counts) < self.max_values:
            counts[value] = count
            return
        # Recycle the minimum counter, Space-Saving style.
        victim = min(counts, key=counts.get)
        inherited = counts.pop(victim)
        counts[value] = inherited + count
        self.replaced += 1

    def top(self, n=3):
        """Return the top-*n* ``(value, estimated_count)`` pairs."""
        ranked = sorted(self._counts.items(), key=lambda kv: (-kv[1], str(kv[0])))
        return ranked[:n]

    def top_value(self):
        """Return the single most frequent value, or None when empty."""
        ranked = self.top(1)
        return ranked[0][0] if ranked else None

    def distribution(self):
        """Return ``{value: share}`` over all observations."""
        if not self.total:
            return {}
        return {v: c / self.total for v, c in self._counts.items()}

    def distinct_pressure(self):
        """Recycling events per observation -- ~0 for well-behaved
        objects, approaches 1 when nearly every observation carries a
        fresh value (the dynamic-TTL signature of Table 4)."""
        return self.replaced / self.total if self.total else 0.0

    def __len__(self):
        return len(self._counts)

    def merge(self, other):
        """Fold *other* into this tracker (approximate, like SS merge)."""
        if not isinstance(other, TopValues):
            raise TypeError("can only merge TopValues instances")
        for value, count in other._counts.items():
            self.add(value, count)
        # self.add() already bumped self.total by other's tracked
        # counts; account for observations other absorbed via recycling.
        tracked = sum(other._counts.values())
        self.total += max(0, other.total - tracked)
        self.replaced += other.replaced
        return self

    def clear(self):
        self._counts.clear()
        self.total = 0
        self.replaced = 0

    # -- flat-buffer codec (zero-copy shard transport) -----------------

    def to_buffers(self):
        """Serialize to ``(meta, buffers)``.  Integer values (the TTL
        use case) pack as ``(int64 value, int64 count)`` pairs in one
        contiguous buffer; other hashables fall back to in-band meta.
        Insertion order is preserved either way -- the recycling
        victim tie-break depends on it."""
        counts = self._counts
        header = (self.max_values, self.total, self.replaced)
        if all(type(value) is int and _INT64_MIN <= value <= _INT64_MAX
               for value in counts):
            buf = bytearray(_INT_PAIR.size * len(counts))
            pos = 0
            for value, count in counts.items():
                _INT_PAIR.pack_into(buf, pos, value, count)
                pos += _INT_PAIR.size
            return ("topv-int",) + header, [bytes(buf)]
        return ("topv-obj",) + header + (tuple(counts.items()),), []

    @classmethod
    def from_buffers(cls, meta, buffers):
        tag, max_values, total, replaced = meta[:4]
        top = cls(max_values)
        top.total = total
        top.replaced = replaced
        if tag == "topv-int":
            top._counts = {value: count for value, count
                           in _INT_PAIR.iter_unpack(buffers[0])}
        elif tag == "topv-obj":
            top._counts = dict(meta[4])
        else:
            raise ValueError("unknown TopValues buffer tag %r" % (tag,))
        return top

    def __reduce_ex__(self, protocol):
        if protocol >= 5:
            meta, buffers = self.to_buffers()
            return (self.from_buffers,
                    (meta, [PickleBuffer(b) for b in buffers]))
        return super().__reduce_ex__(protocol)
