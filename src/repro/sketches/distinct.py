"""Distinct-counting Space-Saving (Afek et al., arXiv:1612.02636).

Random-subdomain ("water torture") DDoS floods an authoritative server
with queries for *distinct* nonexistent subdomains of the victim zone,
so the heavy hitter of interest is not the key with the most queries
but the key with the most **distinct** subordinate values.  Plain
Space-Saving ranks by weight; this variant gives every tracked slot a
small HyperLogLog and ranks by the slot's distinct-value estimate
instead -- the "distinct heavy hitters" construction of Afek,
Bremler-Barr, Feibish and Schiff.

Slots are keyed (eSLD in the detector's use) and each ``offer`` feeds
one 64-bit value hash (the full QNAME hash) into the slot's HLL.  When
the structure is full, the slot with the smallest distinct estimate is
evicted and its estimate is inherited by the newcomer as an error
``base`` -- the classic Space-Saving overestimate bound, carried over
to distinct counts.

Merging follows the mergeable-summaries recipe: HLLs union by register
max, error bases add, and the union is truncated back to capacity by
distinct estimate.  While no eviction has occurred on either side
(``base == 0`` everywhere, capacity not binding) a merge of split
streams is *exactly* the single-stream sketch -- the property the
sharded ingest differential relies on.
"""

import heapq
from pickle import PickleBuffer

from repro.sketches.hyperloglog import HyperLogLog


class DistinctEntry:
    """One tracked key: a per-key HLL plus the inherited error base."""

    __slots__ = ("key", "hll", "base", "_card", "_dirty")

    def __init__(self, key, hll, base=0):
        self.key = key
        self.hll = hll
        self.base = base
        self._card = 0
        self._dirty = True

    def estimate(self):
        """Distinct-count estimate: inherited base + own HLL estimate.

        Quantized to an integer so comparisons (eviction, ranking,
        merge truncation) are stable across platforms and merge
        orders."""
        if self._dirty:
            self._card = int(round(self.hll.cardinality()))
            self._dirty = False
        return self.base + self._card


class DistinctSpaceSaving:
    """Top-k keys by *distinct value count*, in bounded space.

    Parameters
    ----------
    capacity:
        Maximum number of tracked keys.  While the number of live keys
        stays below this, counts are exact HLL estimates (no
        Space-Saving error).
    precision:
        Per-slot HyperLogLog precision (``2**p`` one-byte registers
        per slot; p=11 keeps a 2048-slot sketch around 4 MB).
    seed:
        HLL hash seed; only sketches with equal parameters merge.
    """

    def __init__(self, capacity=2048, precision=11, seed=0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self.precision = int(precision)
        self.seed = int(seed)
        self._entries = {}
        #: lazy min-heap of (estimate_at_push, key); estimates only
        #: grow, so a popped entry whose live estimate moved is pushed
        #: back -- the same trick as SpaceSaving's rate heap
        self._heap = []
        self.evictions = 0

    def __len__(self):
        return len(self._entries)

    def __contains__(self, key):
        return key in self._entries

    def offer(self, key, value_hash):
        """Feed one (key, 64-bit value hash) observation."""
        entry = self._entries.get(key)
        if entry is not None:
            entry.hll.add_hash(value_hash)
            entry._dirty = True
            return entry
        if len(self._entries) >= self.capacity:
            victim = self._pop_min()
            base = victim.estimate()
            del self._entries[victim.key]
            self.evictions += 1
        else:
            base = 0
        entry = DistinctEntry(key, HyperLogLog(self.precision, self.seed),
                              base)
        entry.hll.add_hash(value_hash)
        entry._dirty = True
        self._entries[key] = entry
        # A one-item HLL estimates to exactly 1 (linear counting), so
        # the heap record is base + 1 without touching the registers;
        # the lazy heap tolerates records that lag the live estimate.
        heapq.heappush(self._heap, (base + 1, key))
        return entry

    def _pop_min(self):
        """Pop the entry with the smallest live distinct estimate."""
        while self._heap:
            est, key = heapq.heappop(self._heap)
            entry = self._entries.get(key)
            if entry is None:
                continue
            current = entry.estimate()
            if current > est and self._heap and self._heap[0][0] < current:
                # Stale heap record: the entry grew since it was
                # pushed and something smaller is behind it.
                heapq.heappush(self._heap, (current, key))
                continue
            return entry
        raise RuntimeError("heap empty with entries tracked")

    def estimate(self, key):
        """Distinct estimate for *key* (0 when untracked)."""
        entry = self._entries.get(key)
        return entry.estimate() if entry is not None else 0

    def top(self, n=None):
        """``(key, estimate)`` pairs sorted by (-estimate, key)."""
        ranked = sorted(((e.key, e.estimate())
                         for e in self._entries.values()),
                        key=lambda kv: (-kv[1], kv[0]))
        return ranked if n is None else ranked[:n]

    def clear(self):
        self._entries = {}
        self._heap = []

    # -- merge ----------------------------------------------------------

    def merge(self, other):
        """Fold *other* into this sketch (mergeable-summaries union)."""
        if not isinstance(other, DistinctSpaceSaving):
            raise TypeError("can only merge DistinctSpaceSaving")
        if (self.capacity, self.precision, self.seed) != \
                (other.capacity, other.precision, other.seed):
            raise ValueError("cannot merge sketches with different "
                             "parameters")
        for key, theirs in sorted(other._entries.items()):
            mine = self._entries.get(key)
            if mine is not None:
                mine.hll.merge(theirs.hll)
                mine.base += theirs.base
                mine._dirty = True
            else:
                entry = DistinctEntry(key, theirs.hll.copy(), theirs.base)
                self._entries[key] = entry
        self.evictions += other.evictions
        if len(self._entries) > self.capacity:
            ranked = sorted(self._entries.values(),
                            key=lambda e: (-e.estimate(), e.key))
            for entry in ranked[self.capacity:]:
                del self._entries[entry.key]
                self.evictions += 1
        self._heap = [(e.estimate(), k)
                      for k, e in self._entries.items()]
        heapq.heapify(self._heap)
        return self

    # -- flat-buffer codec (zero-copy shard transport) -----------------

    def to_buffers(self):
        """Serialize to ``(meta, buffers)``; one HLL blob per slot."""
        entry_meta = []
        buffers = []
        for key in sorted(self._entries):
            entry = self._entries[key]
            hmeta, hbufs = entry.hll.to_buffers()
            entry_meta.append((key, entry.base, hmeta, len(hbufs)))
            buffers.extend(hbufs)
        meta = ("dss", self.capacity, self.precision, self.seed,
                self.evictions, tuple(entry_meta))
        return meta, buffers

    @classmethod
    def from_buffers(cls, meta, buffers):
        tag, capacity, precision, seed, evictions, entry_meta = meta
        if tag != "dss":
            raise ValueError("unknown DistinctSpaceSaving mode %r" % (tag,))
        sketch = cls(capacity, precision, seed)
        sketch.evictions = evictions
        pos = 0
        for key, base, hmeta, nbufs in entry_meta:
            hll = HyperLogLog.from_buffers(hmeta, buffers[pos:pos + nbufs])
            pos += nbufs
            sketch._entries[key] = DistinctEntry(key, hll, base)
        sketch._heap = [(e.estimate(), k)
                        for k, e in sketch._entries.items()]
        heapq.heapify(sketch._heap)
        return sketch

    def __reduce_ex__(self, protocol):
        if protocol >= 5:
            meta, buffers = self.to_buffers()
            return (self.from_buffers,
                    (meta, [PickleBuffer(b) for b in buffers]))
        return super().__reduce_ex__(protocol)
