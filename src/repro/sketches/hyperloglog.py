"""HyperLogLog cardinality estimation (Flajolet et al., 2007).

Section 2.3: "For estimating the number of elements in possibly large
sets of values (e.g. qnamesa) we use the HyperLogLog algorithm, as
improved in [30]" -- Heule et al., *HyperLogLog in Practice* (EDBT
2013).  We adopt the two improvements that matter at Observatory
scale:

* a 64-bit hash function, which removes the large-range correction of
  the original algorithm entirely, and
* linear counting for small cardinalities, which eliminates the severe
  small-range bias of the raw estimator.

We do not reproduce Google's empirically fitted bias-correction tables;
for the cardinalities and precisions used here (p = 10..14) the
standard-error envelope of ~1.04/sqrt(m) is sufficient, and the
property-based tests assert that envelope.

Sketches with the same precision and seed are mergeable, which the
time-aggregation pipeline (Section 2.4) relies on when combining
minutely files into coarser granularities.
"""

import math
from pickle import PickleBuffer

from repro.sketches._hashing import hash64

#: 2**-rank for every possible register value; powers of two are exact
#: in binary floating point, so table lookup is bit-identical to
#: computing ``2.0 ** -reg`` inline
_INV_POW2 = tuple(2.0 ** -r for r in range(256))


class HyperLogLog:
    """A mergeable HyperLogLog counter.

    Parameters
    ----------
    precision:
        Number of index bits *p*; the sketch uses ``m = 2**p`` one-byte
        registers.  Standard error is roughly ``1.04 / sqrt(m)``.
    seed:
        Hash seed.  Only sketches with equal (precision, seed) merge.
    """

    __slots__ = ("precision", "seed", "_registers")

    def __init__(self, precision=12, seed=0):
        if not 4 <= precision <= 18:
            raise ValueError("precision must be in [4, 18], got %r" % precision)
        self.precision = int(precision)
        self.seed = int(seed)
        self._registers = bytearray(1 << self.precision)

    @property
    def num_registers(self):
        return 1 << self.precision

    def add(self, key):
        """Add *key* (str or bytes) to the multiset."""
        self.add_hash(hash64(key, self.seed))

    def add_hash(self, h):
        """Add a key by its precomputed 64-bit hash.

        The caller owns hash independence: pass
        :func:`repro.sketches._hashing.derive64` variants when several
        sketches share one base hash (never the same *h* to sketches
        that must stay independent)."""
        idx = h >> (64 - self.precision)
        rest = h << self.precision & ((1 << 64) - 1)
        # Rank: position of the leftmost 1-bit in the remaining bits.
        rank = 64 - self.precision + 1 if rest == 0 else (64 - rest.bit_length() + 1)
        if rank > self._registers[idx]:
            self._registers[idx] = rank

    def _alpha(self):
        m = self.num_registers
        if m == 16:
            return 0.673
        if m == 32:
            return 0.697
        if m == 64:
            return 0.709
        return 0.7213 / (1.0 + 1.079 / m)

    def cardinality(self):
        """Return the estimated number of distinct keys added."""
        m = self.num_registers
        registers = self._registers
        zeros = registers.count(0)
        # Linear-counting short-circuit: each zero register contributes
        # 1.0 to inv_sum, so inv_sum >= zeros and therefore
        # raw <= alpha * m**2 / zeros.  When that bound already sits
        # under the 2.5*m small-range threshold, the raw estimate is
        # guaranteed to be discarded for linear counting -- which needs
        # only the zero count -- and the register scan can be skipped
        # entirely.  Sparse sketches (the per-key HLLs of the distinct
        # heavy-hitter detector) take this path almost always.
        alpha = self._alpha()
        if zeros and alpha * m <= 2.5 * zeros:
            return m * math.log(m / zeros)
        inv_sum = 0.0
        table = _INV_POW2
        for reg in registers:
            inv_sum += table[reg]
        raw = alpha * m * m / inv_sum
        # Small-range correction via linear counting (Heule et al.).
        if raw <= 2.5 * m and zeros:
            return m * math.log(m / zeros)
        return raw

    def __len__(self):
        return int(round(self.cardinality()))

    def merge(self, other):
        """Fold *other* into this sketch (register-wise max)."""
        if not isinstance(other, HyperLogLog):
            raise TypeError("can only merge HyperLogLog instances")
        if (self.precision, self.seed) != (other.precision, other.seed):
            raise ValueError("cannot merge sketches with different parameters")
        mine, theirs = self._registers, other._registers
        for i in range(len(mine)):
            if theirs[i] > mine[i]:
                mine[i] = theirs[i]
        return self

    def copy(self):
        """Return an independent copy of this sketch."""
        clone = HyperLogLog(self.precision, self.seed)
        clone._registers[:] = self._registers
        return clone

    def clear(self):
        """Reset to the empty multiset."""
        # Bulk zero: the window manager clears every feature of every
        # tracked object once a minute, so this is a hot path.
        self._registers[:] = bytes(len(self._registers))

    def standard_error(self):
        """The theoretical relative standard error of this precision."""
        return 1.04 / math.sqrt(self.num_registers)

    def to_bytes(self):
        """Serialize the registers (for the TSV footer / tests)."""
        return bytes(self._registers)

    @classmethod
    def from_bytes(cls, data, precision, seed=0):
        """Rebuild a sketch serialized with :meth:`to_bytes`."""
        sketch = cls(precision, seed)
        if len(data) != sketch.num_registers:
            raise ValueError("register blob has wrong length")
        sketch._registers[:] = data
        return sketch

    # -- flat-buffer codec (zero-copy shard transport) -----------------

    def _index_size(self):
        if self.precision <= 8:
            return 1
        if self.precision <= 16:
            return 2
        return 4

    def to_buffers(self):
        """Serialize to ``(meta, buffers)`` with contiguous payloads.

        The register block is the register-block representation of
        Heule et al. (EDBT 2013): a mostly-empty sketch encodes as
        sparse ``(index, rank)`` pairs, a populated one exposes the
        live register ``bytearray`` itself -- no copy is made, so the
        caller must serialize the buffers before this sketch mutates
        again (the sharded ingest path only ships *detached* state).
        """
        registers = self._registers
        idx_size = self._index_size()
        pair = idx_size + 1
        occupied = self.num_registers - registers.count(0)
        if occupied * pair < len(registers):
            buf = bytearray(occupied * pair)
            pos = 0
            for i, rank in enumerate(registers):
                if rank:
                    buf[pos:pos + idx_size] = i.to_bytes(idx_size, "little")
                    buf[pos + idx_size] = rank
                    pos += pair
            return ("hll-sparse", self.precision, self.seed), [bytes(buf)]
        return ("hll-dense", self.precision, self.seed), [registers]

    @classmethod
    def from_buffers(cls, meta, buffers):
        """Rebuild a sketch from :meth:`to_buffers` output.  Buffers
        may be any bytes-like object (bytes, bytearray, memoryview)."""
        mode, precision, seed = meta
        sketch = cls(precision, seed)
        data = buffers[0]
        if mode == "hll-dense":
            if len(data) != sketch.num_registers:
                raise ValueError("register blob has wrong length")
            sketch._registers[:] = data
        elif mode == "hll-sparse":
            idx_size = sketch._index_size()
            pair = idx_size + 1
            if len(data) % pair:
                raise ValueError("sparse register blob has wrong length")
            registers = sketch._registers
            for pos in range(0, len(data), pair):
                idx = int.from_bytes(data[pos:pos + idx_size], "little")
                registers[idx] = data[pos + idx_size]
        else:
            raise ValueError("unknown HyperLogLog buffer mode %r" % (mode,))
        return sketch

    def __reduce_ex__(self, protocol):
        if protocol >= 5:
            meta, buffers = self.to_buffers()
            return (self.from_buffers,
                    (meta, [PickleBuffer(b) for b in buffers]))
        return super().__reduce_ex__(protocol)
