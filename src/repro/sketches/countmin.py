"""Count-Min Sketch heavy hitters: the alternative to Space-Saving.

The paper builds on Space-Saving, and cites the distinct-heavy-hitter
sketch line of work (Feibish et al. [23]) for related DNS problems.
This module implements the classic alternative design -- a Count-Min
Sketch (Cormode & Muthukrishnan, 2005) paired with a candidate heap --
so the repository can compare the two approaches empirically (see
``benchmarks/bench_ablation_topk_sketch.py``):

* Space-Saving: O(k) memory, deterministic overestimates bounded by
  N/k, entry identity is stable (supports the per-object feature
  state the Observatory needs);
* CMS + heap: memory independent of k (width x depth counters),
  pure frequency estimation with (eps, delta) guarantees, but no
  stable per-key slots -- attaching per-object state requires the
  separate heap anyway.

The comparison motivates the paper's choice: for the Observatory's
workload the SS cache doubles as the state container for the §2.3
feature sets, which a CMS cannot provide by itself.
"""

import heapq

from repro.sketches._hashing import hash_pair


class CountMinSketch:
    """A (width x depth) Count-Min frequency sketch."""

    def __init__(self, width=2048, depth=4, seed=0):
        if width < 1 or depth < 1:
            raise ValueError("width and depth must be >= 1")
        self.width = int(width)
        self.depth = int(depth)
        self.seed = int(seed)
        self._rows = [[0] * self.width for _ in range(self.depth)]
        #: total increments (for the eps*N error bound)
        self.total = 0

    def _positions(self, key):
        h1, h2 = hash_pair(key, self.seed)
        width = self.width
        return [(h1 + i * h2) % width for i in range(self.depth)]

    def add(self, key, count=1):
        """Increment *key* by *count*; returns the new estimate."""
        self.total += count
        estimate = None
        for row, pos in zip(self._rows, self._positions(key)):
            row[pos] += count
            if estimate is None or row[pos] < estimate:
                estimate = row[pos]
        return estimate

    def estimate(self, key):
        """Point estimate of *key*'s count (never underestimates)."""
        return min(row[pos]
                   for row, pos in zip(self._rows, self._positions(key)))

    def error_bound(self):
        """The classic eps*N overestimate bound: e/width * total."""
        return 2.718281828 / self.width * self.total

    def memory_counters(self):
        return self.width * self.depth

    def clear(self):
        for row in self._rows:
            for i in range(len(row)):
                row[i] = 0
        self.total = 0


class CmsTopK:
    """Top-k tracking with a Count-Min Sketch + candidate min-heap.

    The standard construction: estimate each arriving key with the
    CMS; keep the k largest estimates in a heap.  Provides the same
    ``offer``/``top`` surface as the Space-Saving tracker, for the
    ablation benchmark.
    """

    def __init__(self, capacity, width=2048, depth=4, seed=0):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.sketch = CountMinSketch(width, depth, seed)
        self._heap = []      # (estimate, key) -- lazy values
        self._members = {}   # key -> latest estimate
        self.offered = 0

    def offer(self, key, count=1):
        """Observe *key*; maintain the top-k candidate set."""
        self.offered += 1
        estimate = self.sketch.add(key, count)
        if key in self._members:
            self._members[key] = estimate
            return
        if len(self._members) < self.capacity:
            self._members[key] = estimate
            heapq.heappush(self._heap, (estimate, key))
            return
        # Evict the smallest current member if this key beats it.
        while self._heap:
            old_estimate, old_key = self._heap[0]
            current = self._members.get(old_key)
            if current is None or current > old_estimate:
                heapq.heapreplace(
                    self._heap, (current, old_key) if current else
                    (estimate, key))
                if current is None:
                    self._members[key] = estimate
                    return
                continue
            break
        if self._heap and self._heap[0][0] < estimate:
            _, evicted = heapq.heapreplace(self._heap, (estimate, key))
            self._members.pop(evicted, None)
            self._members[key] = estimate

    def top(self, n=None):
        """Keys ranked by estimated count, heaviest first."""
        ranked = sorted(self._members.items(),
                        key=lambda kv: (-kv[1], kv[0]))
        if n is not None:
            ranked = ranked[:n]
        return ranked

    def __len__(self):
        return len(self._members)

    def __contains__(self, key):
        return key in self._members
