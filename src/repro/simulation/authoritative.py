"""Authoritative service: turn zone answers into observed transactions.

Given (resolver, nameserver, zone, question), this module produces the
:class:`~repro.observatory.transaction.Transaction` a passive sensor
above the resolver would record: response delay sampled from the
resolver-nameserver path profile, the on-wire IP TTL implied by the
path's hop count, loss (unanswered queries), and the DNS payload
summary derived from the zone's :class:`~repro.simulation.zones.Answer`.

Two paths exist:

* the **fast path** constructs the Transaction directly (used for the
  bulk of simulated traffic);
* the **wire path** (`wire_check_fraction` > 0, or tests) additionally
  renders the real DNS messages, wraps them in IPv4/UDP packets, and
  runs them through :func:`repro.observatory.preprocess.summarize_transaction`
  -- proving the whole §2.1 parser agrees with the fast path.
"""

from repro.dnswire.constants import QTYPE, RCODE
from repro.dnswire.edns import make_opt
from repro.dnswire.message import Message, ResourceRecord
from repro.dnswire.rdata import AAAA, CNAME, MX, NS, PTR, RRSIG, SOA, TXT, A, Rdata
from repro.netsim.hops import ttl_after_path
from repro.netsim.latency import DelayModel
from repro.observatory.preprocess import summarize_transaction
from repro.observatory.transaction import Transaction


class AuthoritativeService:
    """Samples transactions for queries against the simulated zones."""

    def __init__(self, topology, hub, unanswered_rate=0.02,
                 wire_check_fraction=0.0):
        self.topology = topology
        self._rng = hub.stream("authoritative")
        self.delay_model = DelayModel()
        self.unanswered_rate = float(unanswered_rate)
        self.wire_check_fraction = float(wire_check_fraction)
        #: count of wire-path verifications performed
        self.wire_checks = 0

    def serve(self, resolver, ns, zone, qname, qtype, now):
        """Serve one query; returns ``(transaction, answer_or_None)``.

        *answer* is None when the query went unanswered (timeout).
        """
        rng = self._rng
        # Transport selection: a v6-capable resolver reaches dual-stack
        # nameservers over IPv6 about half the time; the srvip dataset
        # then sees both address families (§3.1).
        use_v6 = (resolver.ipv6_addr is not None and ns.ipv6 is not None
                  and rng.random() < 0.5)
        resolver_ip = resolver.ipv6_addr if use_v6 else resolver.ip
        server_ip = ns.ipv6 if use_v6 else ns.ip
        loss = max(self.unanswered_rate, ns.unanswered_rate)
        if loss and rng.random() < loss:
            txn = Transaction(
                ts=now, resolver_ip=resolver_ip, server_ip=server_ip,
                qname=qname, qtype=qtype, rcode=None, answered=False,
                edns_do=resolver.dnssec_ok, source=resolver.source,
            )
            return txn, None

        answer = zone.answer(qname, qtype)
        profile = self.topology.path_profile(resolver.ip, ns)
        delay_ms = self.delay_model.sample_ms(profile, rng)
        observed_ttl = ttl_after_path(profile.initial_ttl, profile.hops)
        signed = answer.signed and resolver.dnssec_ok

        answer_ttls = tuple(ttl for _, ttl, _ in answer.records)
        answer_ips = answer.answer_ips
        has_data = bool(answer.records)
        ns_count = len(answer.referral_ns)
        ns_ttls = (answer.ns_ttl,) * ns_count
        # Referrals carry glue addresses in ADDITIONAL (roughly one per
        # NS); authoritative data answers usually carry none.
        additional = ns_count if answer.is_referral else 0

        txn = Transaction(
            ts=now,
            resolver_ip=resolver_ip,
            server_ip=server_ip,
            qname=qname,
            qtype=qtype,
            rcode=answer.rcode,
            answered=True,
            aa=answer.aa,
            edns_do=resolver.dnssec_ok,
            has_rrsig=signed and (has_data or ns_count > 0),
            delay_ms=delay_ms,
            observed_ttl=observed_ttl,
            response_size=answer.estimated_size(qname),
            answer_count=len(answer.records),
            authority_ns_count=ns_count,
            additional_count=additional,
            answer_ttls=answer_ttls,
            ns_ttls=ns_ttls,
            answer_ips=answer_ips,
            cname_targets=answer.cname_targets,
            ns_names=answer.referral_ns + tuple(
                value for rec_qtype, _, value in answer.records
                if rec_qtype == QTYPE.NS),
            source=resolver.source,
        )
        if self.wire_check_fraction and rng.random() < self.wire_check_fraction:
            txn = self._wire_roundtrip(txn, resolver, ns, resolver_ip,
                                       server_ip, qname, qtype, answer,
                                       now, delay_ms)
        return txn, answer

    # ------------------------------------------------------------------

    def _wire_roundtrip(self, txn, resolver, ns, resolver_ip, server_ip,
                        qname, qtype, answer, now, delay_ms):
        """Render real packets and re-derive the transaction from them."""
        from repro.netsim.addr import is_ipv6
        from repro.netsim.packet import build_udp_ipv4, build_udp_ipv6

        build = build_udp_ipv6 if is_ipv6(server_ip) else build_udp_ipv4
        msg_id = self._rng.randrange(0x10000)
        query = Message.make_query(qname, qtype, msg_id=msg_id)
        if resolver.dnssec_ok:
            query.additional.append(make_opt(dnssec_ok=True))
        response = _answer_to_message(query, answer, qname, qtype)
        qpkt = build(resolver_ip, server_ip, 30000, 53,
                     query.to_wire(), 64)
        profile = self.topology.path_profile(resolver.ip, ns)
        rpkt = build(
            server_ip, resolver_ip, 53, 30000, response.to_wire(),
            ttl_after_path(profile.initial_ttl, profile.hops),
        )
        wire_txn = summarize_transaction(
            qpkt, rpkt, now, now + delay_ms / 1000.0, source=resolver.source)
        self.wire_checks += 1
        # The wire path must agree with the fast path on the DNS facts.
        assert wire_txn.rcode == txn.rcode
        assert wire_txn.qname == txn.qname
        assert wire_txn.answer_count == txn.answer_count
        assert wire_txn.authority_ns_count == txn.authority_ns_count
        assert wire_txn.answer_ttls == txn.answer_ttls
        return wire_txn


def _rdata_for(qtype, value):
    qtype = int(qtype)
    if qtype == QTYPE.A:
        return A(value)
    if qtype == QTYPE.AAAA:
        return AAAA(value)
    if qtype == QTYPE.CNAME:
        return CNAME(value)
    if qtype == QTYPE.NS:
        return NS(value)
    if qtype == QTYPE.PTR:
        return PTR(value)
    if qtype == QTYPE.MX:
        return MX(10, value)
    if qtype == QTYPE.TXT:
        return TXT(str(value))
    if qtype == QTYPE.SOA:
        return SOA(str(value), "hostmaster.%s" % value)
    if qtype == QTYPE.SRV:
        from repro.dnswire.rdata import SRV

        return SRV(0, 5, 5060, str(value))
    if qtype == QTYPE.DS:
        from repro.dnswire.rdata import DS

        return DS(12345, 8, 2, str(value).encode("utf-8")[:32])
    return Rdata(str(value).encode("utf-8"))


def _answer_to_message(query, answer, qname, qtype):
    """Render a zone :class:`Answer` as a real DNS message."""
    response = Message.make_response(query, rcode=answer.rcode,
                                     authoritative=answer.aa)
    owner = qname
    for rec_qtype, ttl, value in answer.records:
        response.answer.append(
            ResourceRecord(owner, rec_qtype, ttl, _rdata_for(rec_qtype, value)))
        if rec_qtype == QTYPE.CNAME:
            owner = value  # chain continues at the target
    zone_apex = qname.split(".", 1)[-1] if "." in qname else qname
    for hostname in answer.referral_ns:
        response.authority.append(
            ResourceRecord(zone_apex, QTYPE.NS, answer.ns_ttl, NS(hostname)))
    if answer.soa_negttl is not None:
        response.authority.append(ResourceRecord(
            zone_apex, QTYPE.SOA, answer.soa_negttl,
            SOA("ns1.%s" % zone_apex, "hostmaster.%s" % zone_apex,
                minimum=answer.soa_negttl)))
    if answer.signed and answer.records:
        response.answer.append(ResourceRecord(
            qname, QTYPE.RRSIG, answer.records[0][1],
            RRSIG(type_covered=int(qtype), signer=zone_apex)))
    return response
