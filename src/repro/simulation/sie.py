"""The SIE channel: merge all sensors into one time-ordered stream.

This is the simulator's stand-in for Farsight's Security Information
Exchange: hundreds of sensors submit their resolver-to-authoritative
transactions, and the channel delivers one merged, time-ordered stream
-- exactly what DNS Observatory ingests (Section 2.1).

Because a resolution may emit transactions slightly after the client
event that triggered it (network delays accumulate along the referral
chain), the channel reorders with a small watermark buffer before
yielding.
"""

import heapq
import logging

from repro.simulation.authoritative import AuthoritativeService
from repro.simulation.buildout import build_global_dns
from repro.simulation.resolver import RecursiveResolver
from repro.simulation.sensor import Sensor
from repro.simulation.workload import WorkloadMix

#: transactions may trail their client event by at most this long
_WATERMARK_LAG = 8.0

#: share of resolvers that clamp high negative-caching TTLs (the
#: Figure 9 rank-140 observation: "some resolvers not respecting its
#: relatively high negative caching TTL")
_NEGTTL_CLAMP_FRACTION = 0.12
_NEGTTL_CLAMP_SECONDS = 30.0

logger = logging.getLogger(__name__)


class SieChannel:
    """One simulation run: world buildout + workload + sensors."""

    def __init__(self, scenario):
        self.scenario = scenario
        self.dns = build_global_dns(scenario)
        hub = self.dns.hub
        self.service = AuthoritativeService(
            self.dns.topology, hub,
            unanswered_rate=scenario.unanswered_rate,
            wire_check_fraction=scenario.wire_check_fraction,
        )
        self.resolvers = []
        self.sensors = []
        for i in range(scenario.n_resolvers):
            ip = "10.%d.%d.53" % (i // 250, i % 250)
            contributor = "contrib%02d" % (
                i * scenario.n_contributors // scenario.n_resolvers)
            resolver = RecursiveResolver(
                ip, self.dns, self.service, hub, source=contributor,
                qmin=hub.uniform_hash("qmin:" + ip)
                < scenario.qmin_resolver_fraction,
                dnssec_ok=hub.uniform_hash("do:" + ip) < 0.9,
                cache_size=scenario.resolver_cache_size,
                prefetch=hub.uniform_hash("prefetch:" + ip)
                < scenario.prefetch_resolver_fraction,
            )
            if hub.uniform_hash("negclamp:" + ip) < _NEGTTL_CLAMP_FRACTION:
                resolver.neg_ttl_cap = _NEGTTL_CLAMP_SECONDS
            if hub.uniform_hash("v6:" + ip) < scenario.resolver_ipv6_fraction:
                resolver.ipv6_addr = "2620:fe:0:%x::53" % i
            # Encrypted-channel membership is a pure per-IP hash
            # threshold, so the DoH/DoT population *nests* as
            # encrypted_fraction rises: 0 -> today's byte-identical
            # plaintext stream, and every increase only blinds
            # resolvers that were already blinded at higher fractions.
            if hub.uniform_hash("enc:" + ip) < scenario.encrypted_fraction:
                resolver.transport = "doh" \
                    if hub.uniform_hash("doh:" + ip) < scenario.doh_share \
                    else "dot"
            self.resolvers.append(resolver)
            self.sensors.append(Sensor(resolver, self._capture,
                                       padding_block=scenario.padding_block))
        self.workload = WorkloadMix(scenario, self.dns)
        # -- stream state and accounting --
        self._buffer = []
        self._seq = 0
        self.client_queries = 0
        self.transactions = 0
        self.status_counts = {}

    # ------------------------------------------------------------------

    def _capture(self, txn):
        self._seq += 1
        heapq.heappush(self._buffer, (txn.ts, self._seq, txn))
        self.transactions += 1

    def run(self):
        """Yield the merged transaction stream, time-ordered."""
        logger.info(
            "SIE channel starting: %d resolvers, %d nameservers, "
            "%.0f s at %.0f client qps",
            len(self.resolvers), len(self.dns.topology.nameservers_by_ip),
            self.scenario.duration, self.scenario.client_qps)
        buffer = self._buffer
        for event in self.workload.events():
            self.dns.apply_events_until(event.ts)
            resolver = self.resolvers[event.resolver_index]
            sensor = self.sensors[event.resolver_index]
            self.client_queries += 1
            result = resolver.resolve(
                event.qname, event.qtype, event.ts, sensor.emit)
            self.status_counts[result.status] = \
                self.status_counts.get(result.status, 0) + 1
            watermark = event.ts - _WATERMARK_LAG
            while buffer and buffer[0][0] <= watermark:
                yield heapq.heappop(buffer)[2]
        self.dns.apply_events_until(self.scenario.duration)
        while buffer:
            yield heapq.heappop(buffer)[2]
        logger.info(
            "SIE channel finished: %d client queries -> %d transactions "
            "(cache hit ratio %.3f)",
            self.client_queries, self.transactions, self.cache_hit_ratio())

    def cache_hit_ratio(self):
        """Aggregate client-query cache-hit ratio across resolvers."""
        answered = sum(r.cache_answers for r in self.resolvers)
        total = sum(r.client_queries for r in self.resolvers)
        return answered / total if total else 0.0

    def attack_labels(self):
        """Ground truth for scripted attacks (see
        :meth:`WorkloadMix.attack_labels`)."""
        return self.workload.attack_labels()


def simulate_stream(scenario):
    """Convenience: yield the transaction stream for *scenario*.

    The channel object is attached to the generator as ``channel``
    metadata is not available; use :class:`SieChannel` directly when
    accounting is needed.
    """
    channel = SieChannel(scenario)
    return channel.run()


def simulate_transactions(scenario):
    """Run the full scenario and return ``(channel, transactions)``."""
    channel = SieChannel(scenario)
    transactions = list(channel.run())
    return channel, transactions
