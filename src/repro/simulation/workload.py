"""Client query workload generators.

Produces the stream of *client-level* DNS queries that hit the
recursive resolvers; cache misses then become the upstream
transactions the Observatory measures.  The mixture reflects the
paper's Table 2: A queries dominate, dual-stack clients add paired
AAAA lookups (Happy Eyeballs, RFC 8305), PTR traffic comes from server
infrastructure, TXT from anti-virus-style protocols-over-DNS, NS
probes are dominated by PRSD-like junk, plus MX/SRV/CNAME/SOA/DS tail.

Each generator is an independent Poisson process; the merged stream is
time-ordered.  Everything is deterministic given the scenario seed.
"""

import heapq

from repro.dnswire.constants import QTYPE
from repro.simulation.rng import ZipfSampler

#: QTYPE mixture weights at the *client* level (before caching).
#: Botnet and TLD-typo shares are configured separately on Scenario.
DEFAULT_WEIGHTS = {
    "web": 0.520,       # A (+ AAAA for dual-stack clients)
    "ephemeral": 0.070,  # one-off disposable names
    "ptr": 0.065,
    "iot": 0.015,       # devices polling their vendor domain (Fig. 7)
    "polling": 0.030,   # OS services polling NTP/update/ad hosts (Fig. 9)
    "txt": 0.016,
    "mx": 0.014,
    "ns_probe": 0.014,
    "srv": 0.011,
    "cname": 0.010,
    "soa": 0.006,
    "ds": 0.006,
}


class ClientEvent:
    """One client query arriving at a resolver."""

    __slots__ = ("ts", "resolver_index", "qname", "qtype", "tag")

    def __init__(self, ts, resolver_index, qname, qtype, tag):
        self.ts = ts
        self.resolver_index = resolver_index
        self.qname = qname
        self.qtype = qtype
        #: originating generator (diagnostics)
        self.tag = tag

    def __repr__(self):
        return "ClientEvent(%.3f, r%d, %s %s)" % (
            self.ts, self.resolver_index, self.qname,
            QTYPE.name_of(self.qtype))


class WorkloadMix:
    """The merged client workload for one scenario."""

    def __init__(self, scenario, dns):
        self.scenario = scenario
        self.dns = dns
        self.hub = dns.hub
        weights = dict(DEFAULT_WEIGHTS)
        weights.update(scenario.workload_weights)
        total = sum(weights.values())
        base_share = max(
            0.0, 1.0 - scenario.botnet_share - scenario.tld_typo_share)
        self.rates = {
            name: scenario.client_qps * base_share * w / total
            for name, w in weights.items()
        }
        if scenario.botnet_share > 0:
            self.rates["botnet"] = scenario.client_qps * scenario.botnet_share
        if scenario.tld_typo_share > 0:
            self.rates["tld_typo"] = (
                scenario.client_qps * scenario.tld_typo_share)
        self._resolver_sampler = ZipfSampler(scenario.n_resolvers, s=0.5)
        self._catalog_sampler = ZipfSampler(
            max(len(dns.catalog), 1), s=0.95)
        self._sld_sampler = ZipfSampler(max(len(dns.slds), 1), s=0.8)
        from repro.simulation.attacks import resolve_attacks

        #: scripted attacks bound to concrete victim zones (ground truth)
        self.attacks = resolve_attacks(self)

    # ------------------------------------------------------------------

    def events(self):
        """Yield all :class:`ClientEvent` in time order."""
        from repro.simulation.attacks import attack_events
        from repro.simulation.scenario import JunkSurge

        generators = []
        for name, rate in self.rates.items():
            if rate <= 0:
                continue
            make = getattr(self, "_gen_%s" % name)
            generators.append(make(rate))
        for i, event in enumerate(self.scenario.scripted_events):
            if isinstance(event, JunkSurge):
                generators.append(self._gen_junk_surge(event, i))
        for attack in self.attacks:
            generators.append(attack_events(self, attack))
        return heapq.merge(*generators, key=lambda e: e.ts)

    def attack_labels(self):
        """Ground-truth labels for every scripted attack: a list of
        ``{kind, esld, start, end, qps}`` dicts (see
        :mod:`repro.simulation.attacks`)."""
        return [attack.label(self.scenario.duration)
                for attack in self.attacks]

    def _gen_junk_surge(self, surge, index):
        """PRSD-style junk against one SLD, starting mid-run (the
        scripted :class:`~repro.simulation.scenario.JunkSurge`)."""
        rng = self.hub.stream("junk_surge:%d" % index)
        t = surge.at + rng.expovariate(surge.qps)
        counter = 0
        while t < self.scenario.duration:
            counter += 1
            qname = "junk%06d-%04x.%s" % (counter, rng.getrandbits(16),
                                          surge.sld)
            yield ClientEvent(t, self._resolver(rng), qname, QTYPE.A,
                              "junk_surge")
            t += rng.expovariate(surge.qps)

    def _arrivals(self, tag, rate):
        """Poisson arrival times with a per-generator RNG.

        When the scenario configures diurnal modulation, the process is
        inhomogeneous: arrivals at peak rate are thinned to follow
        ``rate * (1 + A*sin(2*pi*t/period))`` (Lewis-Shedler thinning).
        """
        import math as _math

        rng = self.hub.stream("workload:%s" % tag)
        amplitude = self.scenario.diurnal_amplitude
        duration = self.scenario.duration
        if amplitude <= 0.0:
            t = rng.expovariate(rate)
            while t < duration:
                yield t, rng
                t += rng.expovariate(rate)
            return
        period = self.scenario.diurnal_period
        peak = rate * (1.0 + amplitude)
        t = rng.expovariate(peak)
        while t < duration:
            current = rate * (1.0 + amplitude
                              * _math.sin(2.0 * _math.pi * t / period))
            if rng.random() < current / peak:
                yield t, rng
            t += rng.expovariate(peak)

    def _resolver(self, rng):
        return self._resolver_sampler.sample(rng)

    def _random_sld(self, rng):
        return self.dns.slds[self._sld_sampler.sample(rng)]

    # -- generators ------------------------------------------------------

    def _gen_web(self, rate):
        """Web browsing: A lookups of popular FQDNs; dual-stack
        clients pair each with an AAAA (Happy Eyeballs)."""
        catalog = self.dns.catalog
        dual = self.scenario.dualstack_fraction
        for t, rng in self._arrivals("web", rate):
            fqdn, _zone = catalog[self._catalog_sampler.sample(rng)]
            resolver = self._resolver(rng)
            yield ClientEvent(t, resolver, fqdn, QTYPE.A, "web")
            if rng.random() < dual:
                yield ClientEvent(t, resolver, fqdn, QTYPE.AAAA, "web6")

    def _gen_ephemeral(self, rate):
        """Disposable one-off names (Chen et al.): unique subdomains,
        mostly under wildcard-answering zones."""
        wildcards = self.dns.wildcard_slds
        counter = 0
        for t, rng in self._arrivals("ephemeral", rate):
            counter += 1
            if wildcards and rng.random() < 0.6:
                zone = wildcards[rng.randrange(len(wildcards))]
            else:
                zone = self._random_sld(rng)
            qname = "u%06d-%04x.%s" % (counter, rng.randrange(0xFFFF),
                                       zone.name)
            yield ClientEvent(t, self._resolver(rng), qname, QTYPE.A,
                              "ephemeral")

    def _gen_ptr(self, rate):
        """Reverse DNS from server infrastructure (Table 2: PTR 6.4%)."""
        octets = [int(z.name.split(".")[0]) for z in self.dns.reverse_zones] \
            or [198]
        for t, rng in self._arrivals("ptr", rate):
            first = rng.choice(octets)
            # Busy mail servers look up the same client ranges over and
            # over: bias towards a small pool of /24s so caching bites.
            if rng.random() < 0.5:
                b, c = rng.randrange(4), rng.randrange(4)
            else:
                b, c = rng.randrange(256), rng.randrange(256)
            qname = "%d.%d.%d.%d.in-addr.arpa" % (
                rng.randrange(1, 255), c, b, first)
            yield ClientEvent(t, self._resolver(rng), qname, QTYPE.PTR, "ptr")

    def _gen_iot(self, rate):
        """IoT devices constantly polling their vendor web domain --
        the xmsecu.com population behind Figure 7."""
        from repro.simulation.buildout import XMSECU_FQDN

        target = XMSECU_FQDN if self.dns.find_sld_zone(XMSECU_FQDN) else None
        for t, rng in self._arrivals("iot", rate):
            if target is None:
                fqdn, _ = self.dns.catalog[
                    self._catalog_sampler.sample(rng)]
            else:
                fqdn = target
            yield ClientEvent(t, self._resolver(rng), fqdn, QTYPE.A, "iot")

    def _gen_polling(self, rate):
        """Operating-system services constantly polling NTP, update
        and ad-delivery hosts -- the Figure 9 population.  Every
        machine queries these names, so the per-resolver client rate
        is high and A answers are almost always served from cache,
        while short negative-caching TTLs force AAAA queries upstream."""
        from repro.simulation.buildout import SPECIAL_V4ONLY

        targets = [fqdn for fqdn, _, _, _ in SPECIAL_V4ONLY
                   if self.dns.find_sld_zone(fqdn) is not None]
        # NTP hosts are polled hardest (the paper's worst offenders).
        weights = [3.0 if "ntp" in fqdn else 1.0 for fqdn in targets]
        dual = self.scenario.dualstack_fraction
        for t, rng in self._arrivals("polling", rate):
            if not targets:
                return
            fqdn = rng.choices(targets, weights=weights, k=1)[0]
            resolver = self._resolver(rng)
            yield ClientEvent(t, resolver, fqdn, QTYPE.A, "polling")
            if rng.random() < dual:
                yield ClientEvent(t, resolver, fqdn, QTYPE.AAAA,
                                  "polling6")

    def _gen_txt(self, rate):
        """Anti-virus style protocol-over-DNS: unique hash labels,
        TTL-5 wildcard TXT answers (Table 2's TXT row)."""
        avzones = [z for z in self.dns.wildcard_slds
                   if z.wildcard and "TXT" in z.wildcard]
        counter = 0
        for t, rng in self._arrivals("txt", rate):
            counter += 1
            if avzones:
                zone = avzones[counter % len(avzones)]
                qname = "%08x.%04x.sig.%s" % (
                    rng.getrandbits(32), rng.getrandbits(16), zone.name)
            else:
                qname = self._random_sld(rng).name
            yield ClientEvent(t, self._resolver(rng), qname, QTYPE.TXT, "txt")

    def _gen_mx(self, rate):
        for t, rng in self._arrivals("mx", rate):
            zone = self._random_sld(rng)
            # Mostly existing apexes; some junk (Table 2: MX 34% err).
            if rng.random() < 0.85:
                qname = zone.name
            else:
                qname = "mx%04d.%s" % (rng.randrange(10000), zone.name)
            yield ClientEvent(t, self._resolver(rng), qname, QTYPE.MX, "mx")

    def _gen_ns_probe(self, rate):
        """NS scans / PRSD junk: 86 % NXDOMAIN in the paper."""
        for t, rng in self._arrivals("ns_probe", rate):
            if rng.random() < 0.12:
                qname = self._random_sld(rng).name
            else:
                qname = "brand%06d.com" % rng.randrange(1_000_000)
            yield ClientEvent(t, self._resolver(rng), qname, QTYPE.NS,
                              "ns_probe")

    def _gen_srv(self, rate):
        for t, rng in self._arrivals("srv", rate):
            zone = self._random_sld(rng)
            service = "_sip._tcp" if rng.random() < 0.5 else "_xmpp._tcp"
            qname = "%s.%s" % (service, zone.name)
            yield ClientEvent(t, self._resolver(rng), qname, QTYPE.SRV, "srv")

    def _gen_cname(self, rate):
        for t, rng in self._arrivals("cname", rate):
            zone = self._random_sld(rng)
            host = "cdn" if rng.random() < 0.4 else \
                "alias%04d" % rng.randrange(10000)
            qname = "%s.%s" % (host, zone.name)
            yield ClientEvent(t, self._resolver(rng), qname, QTYPE.CNAME,
                              "cname")

    def _gen_soa(self, rate):
        for t, rng in self._arrivals("soa", rate):
            zone = self._random_sld(rng)
            if rng.random() < 0.55:
                qname = zone.name
            else:
                qname = "z%05d.%s" % (rng.randrange(100000), zone.name)
            yield ClientEvent(t, self._resolver(rng), qname, QTYPE.SOA, "soa")

    def _gen_ds(self, rate):
        for t, rng in self._arrivals("ds", rate):
            zone = self._random_sld(rng)
            yield ClientEvent(t, self._resolver(rng), zone.name, QTYPE.DS,
                              "ds")

    def _gen_botnet(self, rate):
        """DGA traffic (see :mod:`repro.simulation.botnet`)."""
        from repro.simulation.botnet import dga_events

        return dga_events(self, rate)

    def _gen_tld_typo(self, rate):
        """Queries under nonexistent TLDs: the root's NXDOMAIN diet
        (Section 3.5: 96.2 % of root responses are NXDOMAIN)."""
        for t, rng in self._arrivals("tld_typo", rate):
            tld = "".join(rng.choice("bcdfghjklmnpqrstvwxz")
                          for _ in range(rng.randint(4, 8)))
            qname = "www.site%04d.%s" % (rng.randrange(10000), tld)
            yield ClientEvent(t, self._resolver(rng), qname, QTYPE.A,
                              "tld_typo")
