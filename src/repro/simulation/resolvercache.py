"""Resolver-side caches: TTL cache and RFC 2308 negative cache.

Caching is what turns client queries into the *cache-miss* stream the
Observatory sees ("we analyze the DNS cache-miss query-response
transactions above DNS resolvers", §2.1), and the interplay between
record TTLs and negative-caching TTLs drives Sections 4 and 5.
"""

from collections import OrderedDict


class TtlCache:
    """A bounded TTL cache with LRU eviction.

    Keys are arbitrary hashables; each entry carries an absolute
    expiry time.  Expired entries are dropped lazily on access.
    """

    def __init__(self, max_entries=100_000):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self._entries = OrderedDict()
        #: lookup accounting
        self.hits = 0
        self.misses = 0
        self.expirations = 0
        self.evictions = 0

    def get(self, key, now):
        """Return the cached payload, or None (miss or expired)."""
        item = self._entries.get(key)
        if item is None:
            self.misses += 1
            return None
        expire, payload = item
        if now >= expire:
            del self._entries[key]
            self.expirations += 1
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return payload

    def put(self, key, payload, ttl, now):
        """Cache *payload* under *key* for *ttl* seconds."""
        if ttl <= 0:
            return  # TTL 0 records are not cached (RFC 1035)
        if key in self._entries:
            self._entries.move_to_end(key)
        elif len(self._entries) >= self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[key] = (now + ttl, payload)

    def remaining_ttl(self, key, now):
        """Seconds until *key* expires, or 0 when absent/expired."""
        item = self._entries.get(key)
        if item is None:
            return 0.0
        return max(0.0, item[0] - now)

    def invalidate(self, key):
        """Drop *key* if present."""
        self._entries.pop(key, None)

    def __len__(self):
        return len(self._entries)

    def __contains__(self, key):
        return key in self._entries

    def hit_ratio(self):
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


#: sentinel payloads for the negative cache
NEG_NXDOMAIN = "NXDOMAIN"
NEG_NODATA = "NODATA"


class NegativeCache:
    """RFC 2308 negative cache.

    NXDOMAIN is cached per *name* (it denies the whole name, any
    type); NoData is cached per (name, qtype).  The caching duration
    comes from the zone's SOA minimum -- the "negative caching TTL"
    whose misconfiguration Section 5 dissects.
    """

    def __init__(self, max_entries=100_000):
        self._cache = TtlCache(max_entries)

    def put_nxdomain(self, qname, negttl, now):
        self._cache.put(("nxd", qname), NEG_NXDOMAIN, negttl, now)

    def put_nodata(self, qname, qtype, negttl, now):
        self._cache.put(("nodata", qname, int(qtype)), NEG_NODATA, negttl, now)

    def get(self, qname, qtype, now):
        """Return NEG_NXDOMAIN / NEG_NODATA / None for (qname, qtype)."""
        if self._cache.get(("nxd", qname), now) is not None:
            return NEG_NXDOMAIN
        if self._cache.get(("nodata", qname, int(qtype)), now) is not None:
            return NEG_NODATA
        return None

    def __len__(self):
        return len(self._cache)

    @property
    def hits(self):
        return self._cache.hits

    @property
    def misses(self):
        return self._cache.misses
