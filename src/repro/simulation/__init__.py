"""The SIE substitute: a deterministic model of the global DNS.

The paper's raw data -- "a large stream of passive observations of DNS
traffic between recursive resolvers and authoritative nameservers"
from the Farsight Security Information Exchange -- is proprietary.
This subpackage replaces it with a synthetic Internet that exercises
the exact same code paths (see DESIGN.md, "Substitutions"):

* :mod:`~repro.simulation.topology` -- organizations, ASes, IP
  prefixes, nameserver fleets (the Table 1 cast plus a long tail);
* :mod:`~repro.simulation.zones` -- the root zone, TLD zones, SLD
  zones and their records, with Zipf-distributed popularity;
* :mod:`~repro.simulation.buildout` -- assembles a
  :class:`~repro.simulation.buildout.GlobalDns` instance from a
  :class:`~repro.simulation.scenario.Scenario`;
* :mod:`~repro.simulation.authoritative` -- authoritative server
  logic: referrals, authoritative answers, NXDOMAIN, NoData, DNSSEC;
* :mod:`~repro.simulation.resolver` -- caching recursive resolvers
  (TTL cache, RFC 2308 negative cache, optional QNAME minimization);
* :mod:`~repro.simulation.workload` -- client query generators (web
  with Happy Eyeballs, PTR, TXT, MX, NS/PRSD, ...);
* :mod:`~repro.simulation.botnet` -- DGA botnet traffic (the Mylobot
  analogue behind the paper's NXDOMAIN spikes);
* :mod:`~repro.simulation.sensor` / :mod:`~repro.simulation.sie` --
  passive sensors above each resolver, merged into one time-ordered
  channel, exactly what DNS Observatory ingests.

Everything is deterministic given the scenario seed.
"""

from repro.simulation.buildout import GlobalDns, build_global_dns
from repro.simulation.scenario import Scenario
from repro.simulation.sie import SieChannel, simulate_stream

__all__ = [
    "GlobalDns",
    "build_global_dns",
    "Scenario",
    "SieChannel",
    "simulate_stream",
]
