"""Scenario configuration: every knob of the simulated DNS.

A :class:`Scenario` fully determines a simulation run (together with
its seed).  Presets scale from :meth:`Scenario.tiny` (unit tests,
<10 k transactions) through :meth:`Scenario.small` to
:meth:`Scenario.medium` (benchmark harness).

Scripted infrastructure events drive the Section 4 and 5 experiments:
TTL changes (Figure 7/8), renumbering and NS changes (Table 4), and
IPv6 activation (Section 5.3).
"""


class TtlChange:
    """At time *at*, change the TTL of *name*'s records of *rtype*."""

    def __init__(self, at, name, new_ttl, rtype="A"):
        self.at = float(at)
        self.name = name.lower().rstrip(".")
        self.new_ttl = int(new_ttl)
        self.rtype = rtype

    def __repr__(self):
        return "TtlChange(%.0fs, %s %s -> %d)" % (
            self.at, self.name, self.rtype, self.new_ttl)


class Renumber:
    """At time *at*, change *fqdn*'s A records to *new_ips*
    (optionally also its TTL -- the ns2.oh-isp.com case of Table 4)."""

    def __init__(self, at, fqdn, new_ips, new_ttl=None):
        self.at = float(at)
        self.fqdn = fqdn.lower().rstrip(".")
        self.new_ips = tuple(new_ips)
        self.new_ttl = None if new_ttl is None else int(new_ttl)

    def __repr__(self):
        return "Renumber(%.0fs, %s)" % (self.at, self.fqdn)


class NsChange:
    """At time *at*, repoint *sld*'s delegation to new nameservers
    (hostnames resolved within the simulation; Table 4 "Change NS")."""

    def __init__(self, at, sld, new_ns_org, new_ttl=None):
        self.at = float(at)
        self.sld = sld.lower().rstrip(".")
        #: organization that will host the new nameservers
        self.new_ns_org = new_ns_org
        self.new_ttl = None if new_ttl is None else int(new_ttl)

    def __repr__(self):
        return "NsChange(%.0fs, %s -> %s)" % (self.at, self.sld, self.new_ns_org)


class EnableIpv6:
    """At time *at*, publish AAAA records for *fqdn* (Section 5.3)."""

    def __init__(self, at, fqdn):
        self.at = float(at)
        self.fqdn = fqdn.lower().rstrip(".")

    def __repr__(self):
        return "EnableIpv6(%.0fs, %s)" % (self.at, self.fqdn)


class JunkSurge:
    """From time *at* on, *qps* of junk queries hit *sld*: random
    nonexistent subdomains (PRSD-style), all answered NXDOMAIN.

    This reproduces the paper's Figure 8 "inconsistent" cases: query
    volume grows although the TTL went *up*, because the growth is
    query-only -- "resolvers are increasingly querying for
    non-existent FQDNs" (§4.1).  Handled by the workload mix, not the
    zone mutator.
    """

    def __init__(self, at, sld, qps):
        self.at = float(at)
        self.sld = sld.lower().rstrip(".")
        self.qps = float(qps)

    def __repr__(self):
        return "JunkSurge(%.0fs, %s, %.1f qps)" % (self.at, self.sld,
                                                   self.qps)


class TunnelAttack:
    """From *at* until *until*, a DNS-tunnel client exfiltrates data
    through *sld*: every query carries a fresh high-entropy payload
    encoded in the subdomain labels (the detection target of the
    ``exfil`` and ``noh`` detectors, see :mod:`repro.detect`).

    ``sld=None`` picks a deterministic wildcard-answering victim zone
    at workload-build time, so queries are *answered* -- a live tunnel
    endpoint, not an NXDOMAIN storm.  Ground truth for the resolved
    victim is exposed via ``WorkloadMix.attack_labels()``.
    """

    kind = "tunnel"

    def __init__(self, at, qps, sld=None, until=None, label_len=40,
                 payload_labels=2):
        self.at = float(at)
        self.qps = float(qps)
        self.sld = None if sld is None else sld.lower().rstrip(".")
        self.until = None if until is None else float(until)
        #: characters per payload label
        self.label_len = int(label_len)
        #: payload labels per query
        self.payload_labels = int(payload_labels)

    def __repr__(self):
        return "TunnelAttack(%.0fs, %.1f qps, %s)" % (
            self.at, self.qps, self.sld or "<auto>")


class WaterTorture:
    """From *at* until *until*, a random-subdomain (water-torture)
    DDoS floods *sld* with *qps* queries for random nonexistent
    subdomains -- the ``ddos`` detector's target workload.  Unlike
    :class:`JunkSurge` (a PRSD nuisance against whatever SLD the
    Figure 8 experiment names), this is a labeled attack: the victim
    (``sld=None`` picks a deterministic non-wildcard zone) appears in
    ``WorkloadMix.attack_labels()`` ground truth.
    """

    kind = "watertorture"

    def __init__(self, at, qps, sld=None, until=None, label_len=12):
        self.at = float(at)
        self.qps = float(qps)
        self.sld = None if sld is None else sld.lower().rstrip(".")
        self.until = None if until is None else float(until)
        #: characters in the random subdomain label
        self.label_len = int(label_len)

    def __repr__(self):
        return "WaterTorture(%.0fs, %.1f qps, %s)" % (
            self.at, self.qps, self.sld or "<auto>")


class Scenario:
    """All simulation parameters.  See :meth:`tiny` for a quick start.

    The defaults aim at the qualitative shape of the paper's Big
    Picture: Zipf-concentrated domain popularity, the Table 1
    organization cast, the Table 2 QTYPE mix, four delay regimes, a
    DGA botnet, Happy-Eyeballs dual-stack clients, and a handful of
    IPv4-only domains with pathologically low negative-caching TTLs.
    """

    def __init__(self, seed=2019, duration=600.0, client_qps=200.0,
                 n_resolvers=64, n_contributors=12, n_tlds=120,
                 n_slds=2000, fqdns_per_sld=4, popular_fqdns=2000,
                 sld_zipf_s=1.05, dualstack_fraction=0.35,
                 qmin_resolver_fraction=0.02, unanswered_rate=0.02,
                 botnet_share=0.10, tld_typo_share=0.01,
                 workload_weights=None, resolver_cache_size=200_000,
                 scripted_events=(), ipv6_sld_fraction=0.45,
                 dnssec_sld_fraction=0.25, wire_check_fraction=0.0,
                 low_negttl_specials=True, prefetch_resolver_fraction=0.0,
                 resolver_ipv6_fraction=0.3, diurnal_amplitude=0.0,
                 diurnal_period=86400.0, encrypted_fraction=0.0,
                 doh_share=0.5, padding_block=128):
        #: master seed for all RNG substreams
        self.seed = int(seed)
        #: simulated duration in seconds
        self.duration = float(duration)
        #: client-level query events per second (upstream transactions
        #: emerge from cache misses, typically 0.3-1.5x this rate)
        self.client_qps = float(client_qps)
        #: number of recursive resolvers (vantage points)
        self.n_resolvers = int(n_resolvers)
        #: number of SIE contributors the resolvers are grouped into
        self.n_contributors = int(n_contributors)
        #: active TLDs beyond com/net (ccTLDs and new gTLDs)
        self.n_tlds = int(n_tlds)
        #: registered SLD zones
        self.n_slds = int(n_slds)
        #: average FQDNs per SLD zone
        self.fqdns_per_sld = int(fqdns_per_sld)
        #: size of the popular-FQDN list clients browse
        self.popular_fqdns = int(popular_fqdns)
        #: Zipf exponent of SLD popularity
        self.sld_zipf_s = float(sld_zipf_s)
        #: fraction of clients doing Happy Eyeballs (A + AAAA)
        self.dualstack_fraction = float(dualstack_fraction)
        #: fraction of resolvers with QNAME minimization enabled
        self.qmin_resolver_fraction = float(qmin_resolver_fraction)
        #: probability a nameserver drops a query (unans feature)
        self.unanswered_rate = float(unanswered_rate)
        #: share of client events that are botnet DGA queries
        self.botnet_share = float(botnet_share)
        #: share of client events querying nonexistent TLDs (root NXD)
        self.tld_typo_share = float(tld_typo_share)
        #: QTYPE workload mixture weights (see workload.DEFAULT_WEIGHTS)
        self.workload_weights = dict(workload_weights or {})
        #: resolver cache entry limit
        self.resolver_cache_size = int(resolver_cache_size)
        #: scripted infrastructure events (TtlChange, Renumber, ...)
        self.scripted_events = list(scripted_events)
        #: fraction of SLDs with AAAA records (server-side IPv6)
        self.ipv6_sld_fraction = float(ipv6_sld_fraction)
        #: fraction of SLDs that are DNSSEC-signed
        self.dnssec_sld_fraction = float(dnssec_sld_fraction)
        #: fraction of transactions round-tripped through real wire
        #: bytes (slow; integration tests set 1.0)
        self.wire_check_fraction = float(wire_check_fraction)
        #: install the Figure 9 cast (NTP/ad/CDN domains with low
        #: negative-caching TTLs)
        self.low_negttl_specials = bool(low_negttl_specials)
        #: fraction of resolvers with query prefetching enabled (§5.1)
        self.prefetch_resolver_fraction = float(prefetch_resolver_fraction)
        #: fraction of resolvers that reach dual-stack nameservers
        #: over IPv6 (the srvip dataset tracks v4 and v6 addresses)
        self.resolver_ipv6_fraction = float(resolver_ipv6_fraction)
        #: diurnal traffic modulation: client rates swing by this
        #: fraction (0 = flat) over *diurnal_period* seconds -- the
        #: "user interest and diurnal patterns" behind the hourly top
        #: lists of §4.2 [55]
        self.diurnal_amplitude = float(diurnal_amplitude)
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        self.diurnal_period = float(diurnal_period)
        #: fraction of resolvers whose upstream channel is encrypted
        #: (DoH/DoT): their sensors see only size/timing observations,
        #: feeding the ``_encrypted`` dataset instead of the plaintext
        #: trackers.  Per-resolver membership is a pure hash of the
        #: resolver IP, so the encrypted sets *nest* as the fraction
        #: rises -- the blindness sweep is monotone by construction.
        self.encrypted_fraction = float(encrypted_fraction)
        if not 0.0 <= self.encrypted_fraction <= 1.0:
            raise ValueError("encrypted_fraction must be in [0, 1]")
        #: among encrypted resolvers, the share using DoH (the rest
        #: use DoT); DoH adds more per-message framing overhead
        self.doh_share = float(doh_share)
        if not 0.0 <= self.doh_share <= 1.0:
            raise ValueError("doh_share must be in [0, 1]")
        #: RFC 8467-style padding block size applied on encrypted
        #: channels before TLS framing
        self.padding_block = int(padding_block)
        if self.padding_block < 1:
            raise ValueError("padding_block must be >= 1")

    # -- presets --------------------------------------------------------

    @classmethod
    def tiny(cls, **overrides):
        """Unit-test scale: a few thousand transactions, seconds to run."""
        params = dict(
            duration=180.0, client_qps=40.0, n_resolvers=12,
            n_contributors=4, n_tlds=30, n_slds=150, fqdns_per_sld=3,
            popular_fqdns=200,
        )
        params.update(overrides)
        return cls(**params)

    @classmethod
    def small(cls, **overrides):
        """Integration scale: ~50 k transactions."""
        params = dict(
            duration=420.0, client_qps=120.0, n_resolvers=32,
            n_contributors=8, n_tlds=60, n_slds=600, fqdns_per_sld=3,
            popular_fqdns=800,
        )
        params.update(overrides)
        return cls(**params)

    @classmethod
    def medium(cls, **overrides):
        """Benchmark scale: a few hundred thousand transactions."""
        params = dict(
            duration=900.0, client_qps=300.0, n_resolvers=64,
            n_contributors=12, n_tlds=120, n_slds=2500,
            fqdns_per_sld=4, popular_fqdns=2500,
        )
        params.update(overrides)
        return cls(**params)

    def __repr__(self):
        return "Scenario(seed=%d, duration=%.0fs, qps=%.0f, slds=%d)" % (
            self.seed, self.duration, self.client_qps, self.n_slds)
