"""DGA botnet traffic: the Mylobot analogue.

Section 3.2: "the surprising starting point of the NXDOMAIN traffic
above 20% is caused by a large botnet, likely Mylobot.  The botnet's
Domain Generation Algorithm (DGA) produced millions of FQDNs under
thousands of non-existing SLDs within the .com TLD, which caused
spikes of NXDOMAIN traffic towards the gTLD nameservers."

The generator reproduces exactly that structure: a bounded pool of
pseudo-random ``.com`` SLDs (thousands), each queried with rotating
host labels, funnelled through the subset of resolvers serving the
infected networks.  Every query ends as gTLD NXDOMAIN -- unique SLDs
defeat both the resolvers' delegation caches and, at DGA scale, their
negative caches.
"""

from repro.dnswire.constants import QTYPE
from repro.simulation.workload import ClientEvent

#: size of the DGA SLD pool ("thousands of non-existing SLDs")
DGA_SLD_POOL = 4000

#: fraction of resolvers with infected client populations
INFECTED_RESOLVER_FRACTION = 0.5


def dga_name(rng, pool_size=DGA_SLD_POOL):
    """One DGA FQDN: random host label under a pooled fake .com SLD."""
    sld_index = rng.randrange(pool_size)
    host = "%08x" % rng.getrandbits(32)
    return "%s.mylo%05d.com" % (host, sld_index)


def dga_events(mix, rate):
    """Generator of botnet :class:`ClientEvent`; plugged into the
    workload mix as the ``botnet`` source."""
    scenario = mix.scenario
    n_infected = max(1, int(scenario.n_resolvers
                            * INFECTED_RESOLVER_FRACTION))
    for t, rng in mix._arrivals("botnet", rate):
        resolver = rng.randrange(n_infected)
        yield ClientEvent(t, resolver, dga_name(rng), QTYPE.A, "botnet")
