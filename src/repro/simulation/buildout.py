"""Scenario buildout: assemble the simulated global DNS.

Creates the topology (Table 1 cast), the root and gTLD letters A-M,
ccTLD/new-gTLD zones, the Zipf-popular SLD population with their
hosting assignments, FQDN records (A/AAAA/MX/TXT/CNAME), reverse-DNS
zones, the Figure 9 special domains with low negative-caching TTLs,
and the popular-FQDN catalog the client workload browses.
"""

import math

from repro.dnswire.constants import QTYPE
from repro.simulation.rng import RngHub, ZipfSampler
from repro.simulation.scenario import (
    EnableIpv6,
    JunkSurge,
    NsChange,
    Renumber,
    Scenario,
    TtlChange,
    TunnelAttack,
    WaterTorture,
)
from repro.simulation.topology import Nameserver, Topology
from repro.simulation.zones import RootZone, SldZone, TldZone

#: Root letters with their Figure 3c delay character: the heavily
#: mirrored letters (E, F, L) are "colocated"-fast, most are regional,
#: a few are distant.
_ROOT_LETTER_CLASSES = {
    "a": "regional", "b": "distant", "c": "regional", "d": "regional",
    "e": "colocated", "f": "colocated", "g": "distant", "h": "distant",
    "i": "regional", "j": "regional", "k": "regional", "l": "colocated",
    "m": "regional",
}

#: gTLD letters (Figure 3d): consistent, grouped; B is the fastest.
_GTLD_LETTER_CLASSES = {
    "b": "colocated",
    "a": "regional", "c": "regional", "d": "regional", "e": "regional",
    "f": "regional", "g": "regional", "h": "regional", "i": "regional",
    "j": "distant", "k": "distant", "l": "distant", "m": "distant",
}

#: Real-ish ccTLDs / new gTLDs used before falling back to generated
#: names.  uk/il/me host multi-label registry suffixes (Table 3).
_NAMED_TLDS = (
    "arpa", "net", "org", "de", "uk", "il", "me", "nl", "ru", "br",
    "jp", "cn", "fr", "it", "pl", "au", "ke", "by", "io", "co",
    "info", "biz", "top", "xyz", "online", "site", "dev", "app",
    "cloud", "shop", "club", "icu", "vip", "store", "tech", "us",
    "ca", "es", "se", "ch", "at", "be",
)

_REGISTRY_SUFFIXES = {
    "uk": ("co.uk", "org.uk", "ac.uk"),
    "il": ("co.il", "org.il"),
    "me": ("net.me", "org.me"),
    "au": ("com.au", "net.au"),
}

_HOSTNAMES = ("www", "api", "cdn", "mail", "img", "static", "m", "app",
              "edge", "assets")

_A_TTL_CHOICES = (60, 60, 300, 300, 300, 300, 600, 3600, 3600, 86400)
_NEGTTL_CHOICES = (300, 900, 3600, 3600, 86400)

#: Figure 9 cast: (fqdn, catalog rank, A-TTL, negative TTL).  The two
#: NTP hosts of "a popular operating system" (ranks 81/116), the ad
#: network (141), the CDN update host (167), and the blog host whose
#: *high* negTTL some resolvers ignore (140).
SPECIAL_V4ONLY = (
    ("time-a.ntpsync.com", 81, 900, 15),
    ("time-b.ntpsync.com", 116, 600, 15),
    ("blogs.webjournal.net", 140, 600, 3600),
    ("ads.clickgrid.net", 141, 300, 60),
    ("updates.softcdn.com", 167, 3600, 600),
)

#: Figure 7 subject: the IoT video-surveillance web domain.
XMSECU_FQDN = "www.xmsecu.com"


class GlobalDns:
    """The fully built simulated DNS: topology + zone tree + catalog."""

    def __init__(self, scenario, hub, topology, root, slds, catalog,
                 wildcard_slds, reverse_zones):
        self.scenario = scenario
        self.hub = hub
        self.topology = topology
        #: :class:`~repro.simulation.zones.RootZone`
        self.root = root
        #: list of SldZone in popularity-rank order
        self.slds = slds
        #: popular FQDN catalog: list of (fqdn, SldZone), rank order
        self.catalog = catalog
        #: SLD zones answering wildcard TXT/A (disposable-domain hosts)
        self.wildcard_slds = wildcard_slds
        #: reverse-DNS zones (N.in-addr.arpa)
        self.reverse_zones = reverse_zones
        #: pending scripted events, sorted by time
        self._events = sorted(scenario.scripted_events, key=lambda e: e.at)
        self._next_event = 0
        self.applied_events = []

    # ------------------------------------------------------------------

    def find_sld_zone(self, name):
        """Ground-truth lookup of the SLD zone covering *name*."""
        name = name.lower().rstrip(".")
        tld = name.rsplit(".", 1)[-1]
        tld_zone = self.root.tlds.get(tld)
        if tld_zone is None:
            return None
        return tld_zone.delegation_for(name)

    def all_nameserver_ips(self):
        """Every allocated authoritative nameserver IP."""
        return list(self.topology.nameservers_by_ip)

    # -- scripted infrastructure events ---------------------------------

    def apply_events_until(self, now):
        """Apply all scripted events with ``at <= now``."""
        while (self._next_event < len(self._events)
               and self._events[self._next_event].at <= now):
            event = self._events[self._next_event]
            self._next_event += 1
            self._apply(event)
            self.applied_events.append(event)

    def _apply(self, event):
        if isinstance(event, TtlChange):
            zone = self.find_sld_zone(event.name)
            if zone is None:
                raise KeyError("TtlChange target %r not found" % event.name)
            if event.rtype == "NS":
                zone.ns_ttl = event.new_ttl
            elif event.rtype == "SOA":
                zone.soa_negttl = event.new_ttl
            else:
                qtype = QTYPE[event.rtype]
                if event.name != zone.name and event.name in zone.records:
                    zone.set_ttl(event.name, qtype, event.new_ttl)
                else:
                    # Apex target: apply to every record of the type in
                    # the zone (an operator slashing the zone's TTLs).
                    for fqdn, by_type in zone.records.items():
                        if int(qtype) in by_type:
                            zone.set_ttl(fqdn, qtype, event.new_ttl)
        elif isinstance(event, Renumber):
            zone = self.find_sld_zone(event.fqdn)
            if zone is None:
                raise KeyError("Renumber target %r not found" % event.fqdn)
            old = zone.get_record(event.fqdn, QTYPE.A)
            ttl = event.new_ttl if event.new_ttl is not None else \
                (old.ttl if old else 300)
            zone.add_record(event.fqdn, QTYPE.A, ttl, event.new_ips)
        elif isinstance(event, NsChange):
            zone = self.find_sld_zone(event.sld)
            if zone is None:
                raise KeyError("NsChange target %r not found" % event.sld)
            new_ns = [
                self.topology.allocate_nameserver(
                    event.new_ns_org,
                    hostname="ns%d.%s" % (i + 1, event.sld))
                for i in range(2)
            ]
            zone.nameservers = new_ns
            if event.new_ttl is not None:
                zone.ns_ttl = event.new_ttl
            # Keep the apex NS RRset in sync with the delegation.
            if zone.get_record(event.sld, QTYPE.NS) is not None:
                zone.add_record(event.sld, QTYPE.NS, zone.ns_ttl,
                                tuple(ns.hostname for ns in new_ns))
        elif isinstance(event, EnableIpv6):
            zone = self.find_sld_zone(event.fqdn)
            if zone is None:
                raise KeyError("EnableIpv6 target %r not found" % event.fqdn)
            a_record = zone.get_record(event.fqdn, QTYPE.A)
            ttl = a_record.ttl if a_record else 300
            v6 = tuple("2001:db8:%x::%d" % (abs(hash(event.fqdn)) % 0xFFFF,
                                            i + 1)
                       for i in range(len(a_record.values) if a_record else 1))
            zone.add_record(event.fqdn, QTYPE.AAAA, ttl, v6)
        elif isinstance(event, (JunkSurge, TunnelAttack, WaterTorture)):
            pass  # traffic-side events; realized by the workload mix
        else:
            raise TypeError("unknown scripted event %r" % (event,))


def build_global_dns(scenario=None):
    """Build a :class:`GlobalDns` for *scenario* (default: tiny)."""
    scenario = scenario or Scenario.tiny()
    hub = RngHub(scenario.seed)
    rng = hub.stream("buildout")
    topology = Topology(hub, n_tail_orgs=max(20, scenario.n_slds // 40))

    root = _build_root(topology)
    gtld_servers = _build_gtld_servers(topology)
    _build_tlds(scenario, topology, root, gtld_servers, rng)
    slds, wildcard_slds = _build_slds(scenario, topology, root, rng)
    reverse_zones = _build_reverse_dns(topology, root, rng)
    catalog = _build_catalog(scenario, root, slds, rng)

    return GlobalDns(scenario, hub, topology, root, slds, catalog,
                     wildcard_slds, reverse_zones)


# ----------------------------------------------------------------------
# construction helpers
# ----------------------------------------------------------------------

def _build_root(topology):
    roots = []
    for letter, distance_class in sorted(_ROOT_LETTER_CLASSES.items()):
        org_name = "ROOT%s" % letter.upper()
        # Each root letter is its own operator with its own AS.
        if org_name not in topology.orgs:
            from repro.simulation.topology import Organization

            org = Organization(org_name, "root", [], True,
                               {distance_class: 1.0}, 0.4)
            asn = topology._next_asn
            topology._next_asn += 1
            org.asns.append(asn)
            topology.asnames.add(
                asn, "%s-OPS - %s.root-servers.net operator"
                % (org_name, letter))
            prefix = topology._allocate_prefix()
            org.prefixes.append(prefix)
            topology.asdb.add_prefix(prefix, asn)
            v6_prefix = topology._allocate_v6_prefix()
            org.v6_prefixes.append(v6_prefix)
            topology.asdb.add_prefix(v6_prefix, asn)
            topology.orgs[org_name] = org
        ns = topology.allocate_nameserver(
            org_name, hostname="%s.root-servers.net" % letter)
        ns.distance_class = distance_class
        roots.append(ns)
    return RootZone(roots)


def _build_gtld_servers(topology):
    """The 13 VERISIGN gTLD letters, shared by com and net."""
    servers = []
    for letter, distance_class in sorted(_GTLD_LETTER_CLASSES.items()):
        ns = topology.allocate_nameserver(
            "VERISIGN", hostname="%s.gtld-servers.net" % letter)
        ns.anycast = False  # per-letter consistency (Figure 3d)
        ns.distance_class = distance_class
        servers.append(ns)
    return servers


def _build_tlds(scenario, topology, root, gtld_servers, rng):
    com = TldZone("com", gtld_servers, soa_negttl=900)
    net = TldZone("net", gtld_servers, soa_negttl=900)
    root.register(com)
    root.register(net)
    dns_orgs = ("PCH", "ULTRADNS", "DYNDNS")
    names = [t for t in _NAMED_TLDS if t != "net"]
    while len(names) < scenario.n_tlds - 2:
        names.append("t%03d" % len(names))
    for tld_name in names[: scenario.n_tlds - 2]:
        n_servers = rng.randint(2, 5)
        servers = []
        for i in range(n_servers):
            org = rng.choice(dns_orgs)
            servers.append(topology.allocate_nameserver(
                org, hostname="ns%d.nic.%s" % (i + 1, tld_name)))
        zone = TldZone(tld_name, servers, soa_negttl=900,
                       registry_suffixes=_REGISTRY_SUFFIXES.get(tld_name, ()))
        root.register(zone)


def _hosting_org(topology, rng, popularity=0.0):
    """Draw a hosting org by Table 1 weight.

    *popularity* in [0, 1] (1 = most popular SLD): popular domains
    live disproportionately on CDN/cloud infrastructure -- that is
    what makes the most popular nameservers faster and closer in
    Figure 3b -- while the tail sits on small hosters.
    """
    names = []
    weights = []
    for name, org in topology.orgs.items():
        if org.hosting_weight <= 0:
            continue
        weight = org.hosting_weight
        if org.kind in ("cdn", "dns"):
            # Anycast CDN/DNS operators host the head of the ranking.
            weight *= 0.2 + 3.5 * popularity ** 1.5
        elif org.kind == "cloud":
            weight *= 0.6 + 1.2 * popularity
        else:  # hosting/isp tail
            weight *= 1.7 - 1.6 * popularity
        names.append(name)
        weights.append(weight)
    return rng.choices(names, weights=weights, k=1)[0]


def _sld_tld(scenario, root, rng, rank):
    """Pick the TLD for SLD of *rank*: com-heavy, rest Zipf-ish."""
    r = rng.random()
    if r < 0.52:
        return "com"
    if r < 0.60:
        return "net"
    others = [t for t in root.tlds if t not in ("com", "net", "arpa")]
    if not others:
        return "com"
    index = min(int(rng.paretovariate(0.9)) - 1, len(others) - 1)
    return others[index]


# Per-org nameserver pooling: anycast operators reuse small fleets
# (CLOUDFLARE's 995 servers vs AKAMAI's 6,844 in Table 1); cloud and
# hosting providers allocate fresh VPS-style IPs per customer zone.
_POOLED_ORGS = {
    "CLOUDFLARE": 24, "PCH": 16, "ULTRADNS": 24, "GOOGLE": 20,
    "MICROSOFT": 40, "DYNDNS": 40, "GODADDY": 40,
}


def _sld_nameservers(topology, org_name, sld_name, rng, pools):
    org = topology.orgs[org_name]
    pool_size = _POOLED_ORGS.get(org_name)
    if pool_size is not None:
        pool = pools.get(org_name)
        if pool is None:
            pool = []
            pools[org_name] = pool
        while len(pool) < pool_size:
            pool.append(topology.allocate_nameserver(org_name))
        return rng.sample(pool, k=min(2, len(pool)))
    # Fresh per-zone allocation (AMAZON, AKAMAI, tail hosting).
    count = 3 if org_name == "AKAMAI" else 2
    in_bailiwick = org.kind in ("hosting", "isp")
    return [
        topology.allocate_nameserver(
            org_name,
            hostname="ns%d.%s" % (i + 1, sld_name) if in_bailiwick else None)
        for i in range(count)
    ]


def _content_ips(rng, count=1):
    return tuple(
        "198.%d.%d.%d" % (rng.randint(16, 255), rng.randint(0, 255),
                          rng.randint(1, 254))
        for _ in range(count)
    )


def _build_slds(scenario, topology, root, rng):
    slds = []
    wildcard_slds = []
    pools = {}
    special_slds = _special_sld_plan(scenario)
    for rank in range(scenario.n_slds):
        special = special_slds.get(rank)
        if special is not None:
            name = special["sld"]
        else:
            tld = _sld_tld(scenario, root, rng, rank)
            name = "domain%05d.%s" % (rank, tld)
        tld_name = name.rsplit(".", 1)[-1]
        tld_zone = root.tlds.get(tld_name)
        if tld_zone is None:
            continue
        # Log-scaled popularity: Zipf traffic concentrates on the very
        # first ranks, so rank 10 of 1000 is already "head" territory.
        popularity = max(0.0, 1.0 - math.log10(1.0 + rank)
                         / math.log10(1.0 + scenario.n_slds))
        org_name = special["org"] if special and "org" in special else \
            _hosting_org(topology, rng, popularity=popularity)
        zone = SldZone(
            name,
            _sld_nameservers(topology, org_name, name, rng, pools),
            soa_negttl=special["negttl"] if special else
            rng.choice(_NEGTTL_CHOICES),
            signed=rng.random() < scenario.dnssec_sld_fraction,
            dynamic_ttl=(special or {}).get("dynamic_ttl", False),
        )
        has_ipv6 = (special or {}).get(
            "ipv6", rng.random() < scenario.ipv6_sld_fraction)
        base_ttl = special["ttl"] if special else rng.choice(_A_TTL_CHOICES)
        n_hosts = max(1, min(len(_HOSTNAMES),
                             int(rng.gauss(scenario.fqdns_per_sld, 1.5))))
        hosts = [""] + list(_HOSTNAMES[:n_hosts])
        for host in hosts:
            fqdn = "%s.%s" % (host, name) if host else name
            ips = _content_ips(rng, rng.choice((1, 1, 1, 2, 3)))
            zone.add_record(fqdn, QTYPE.A, base_ttl, ips)
            if has_ipv6:
                v6 = tuple("2001:db8:%04x::%d" % (rank % 0xFFFF, i + 1)
                           for i in range(len(ips)))
                zone.add_record(fqdn, QTYPE.AAAA, base_ttl, v6)
        zone.add_record(name, QTYPE.MX, 3600, ("mail.%s" % name,))
        zone.add_record(name, QTYPE.TXT, 3600, ("v=spf1 ip4:198.0.0.0/8 -all",))
        zone.add_record(name, QTYPE.SOA, 3600, ("ns1.%s" % name,))
        zone.add_record(name, QTYPE.NS, zone.ns_ttl,
                        tuple(ns.hostname for ns in zone.nameservers))
        if zone.signed:
            zone.add_record(name, QTYPE.DS, 86400, ("ds-sha256-digest",))
        if rng.random() < 0.25:
            zone.add_record("_sip._tcp.%s" % name, QTYPE.SRV, 300,
                            ("sip.%s" % name,))
        if rng.random() < 0.15 and n_hosts >= 3:
            # CDN-style alias: cdn host becomes a CNAME to www.
            zone.remove_record("cdn.%s" % name, QTYPE.A)
            zone.remove_record("cdn.%s" % name, QTYPE.AAAA)
            zone.add_record("cdn.%s" % name, QTYPE.CNAME, 300,
                            ("www.%s" % name,))
        if special and special.get("wildcard"):
            wildcard_slds.append(zone)
            zone.wildcard = special["wildcard"]
        elif rng.random() < 0.04:
            zone.wildcard = {"A": (60, _content_ips(rng, 1))}
            wildcard_slds.append(zone)
        else:
            zone.wildcard = None
        tld_zone.register(zone)
        slds.append(zone)
    return slds, wildcard_slds


def _special_sld_plan(scenario):
    """SLD ranks reserved for the special-cast domains."""
    plan = {}
    if not scenario.low_negttl_specials:
        return plan
    # Figure 7: xmsecu.com at a busy rank, TTL 600, hosted on a tail org.
    plan[40] = {"sld": "xmsecu.com", "ttl": 600, "negttl": 3600,
                "ipv6": False}
    # Figure 9 cast (SLD-level; the FQDNs get catalog ranks later).
    plan[40 + 1] = {"sld": "ntpsync.com", "ttl": 900, "negttl": 15,
                    "ipv6": False}
    plan[40 + 2] = {"sld": "webjournal.net", "ttl": 600, "negttl": 3600,
                    "ipv6": False}
    plan[40 + 3] = {"sld": "clickgrid.net", "ttl": 300, "negttl": 60,
                    "ipv6": False}
    plan[40 + 4] = {"sld": "softcdn.com", "ttl": 3600, "negttl": 600,
                    "ipv6": False, "org": "AKAMAI"}
    # TXT-protocol anti-virus domain (Table 2's TTL-5 TXT traffic).
    plan[46] = {"sld": "avscan-lookup.com", "ttl": 300, "negttl": 60,
                "ipv6": False,
                "wildcard": {"TXT": (5, ("scan=clean",))}}
    # A non-conforming dynamic-TTL domain (Table 4).
    plan[47] = {"sld": "vicovoip.it", "ttl": 1000, "negttl": 900,
                "ipv6": False, "dynamic_ttl": True}
    return plan


def _build_reverse_dns(topology, root, rng):
    """A few N.in-addr.arpa zones with wildcard PTR answers."""
    arpa = root.tlds.get("arpa")
    if arpa is None:
        return []
    zones = []
    for octet in (198, 203, 100, 20):
        name = "%d.in-addr.arpa" % octet
        servers = [topology.allocate_nameserver(
            rng.choice(("PCH", "ULTRADNS")),
            hostname="ns%d.rdns%d.arpa-ops.net" % (i + 1, octet))
            for i in range(2)]
        zone = SldZone(name, servers, soa_negttl=3600)
        # ~55% of reverse names exist (Table 2: PTR valid 54%).
        zone.wildcard = {"PTR": (86400, ("host.isp-pool.net",)),
                         "_exists_prob": 0.55}
        zone.add_record(name, QTYPE.NS, 86400,
                        tuple(ns.hostname for ns in servers))
        arpa.register(zone)
        zones.append(zone)
    return zones


def _build_catalog(scenario, root, slds, rng):
    """The popular-FQDN catalog: rank -> (fqdn, zone)."""
    catalog = []
    specials = {rank: fqdn for fqdn, rank, _, _ in SPECIAL_V4ONLY}
    sld_sampler = ZipfSampler(max(len(slds), 1), scenario.sld_zipf_s)
    lookup = {zone.name: zone for zone in slds}
    xmsecu = lookup.get("xmsecu.com")
    rank = 0
    while len(catalog) < scenario.popular_fqdns and slds:
        if rank in specials:
            fqdn = specials[rank]
            zone = lookup.get(fqdn.split(".", 1)[1])
            if zone is not None:
                _ensure_special_record(zone, fqdn)
                catalog.append((fqdn, zone))
                rank += 1
                continue
        if rank == 50 and xmsecu is not None:
            catalog.append((XMSECU_FQDN, xmsecu))
            rank += 1
            continue
        zone = slds[sld_sampler.sample(rng)]
        # Browsers look up names that resolve to addresses: skip the
        # service-only records (_sip._tcp and friends).
        fqdns = [f for f in zone.fqdns()
                 if zone.get_record(f, QTYPE.A) is not None
                 or zone.get_record(f, QTYPE.CNAME) is not None]
        if not fqdns:
            continue
        fqdn = rng.choice(fqdns)
        catalog.append((fqdn, zone))
        rank += 1
    return catalog


def _ensure_special_record(zone, fqdn):
    """Make sure the Figure 9 FQDNs exist (A-only, zone TTL)."""
    if zone.get_record(fqdn, QTYPE.A) is None:
        base = zone.get_record(zone.name, QTYPE.A)
        ttl = base.ttl if base else 300
        zone.add_record(fqdn, QTYPE.A, ttl, ("198.51.100.77",))
    zone.remove_record(fqdn, QTYPE.AAAA)
