"""Zone data model: root, TLD and SLD zones with mutable records.

The simulated DNS tree has three authoritative levels, matching the
resolution paths the paper observes:

* :class:`RootZone` -- 13 root letters; refers to TLD servers or
  answers NXDOMAIN for nonexistent TLDs (Section 3.5: 96.2 % of root
  traffic is NXDOMAIN);
* :class:`TldZone` -- e.g. ``com`` served by the 13 gTLD letters;
  refers to SLD nameservers or answers NXDOMAIN (where the botnet DGA
  traffic of Section 3.2 lands);
* :class:`SldZone` -- authoritative answers with the AA flag: data,
  NoData (the Section 5 empty-AAAA case), or NXDOMAIN, all with the
  zone's SOA negative-caching TTL.

Records are mutable so scripted events (Section 4: TTL changes,
renumbering, NS changes, IPv6 activation) can be applied mid-run.
"""

from repro.dnswire.constants import QTYPE, RCODE


class RecordSet:
    """One (name, qtype) RRset: TTL + value tuple."""

    __slots__ = ("ttl", "values")

    def __init__(self, ttl, values):
        self.ttl = int(ttl)
        self.values = tuple(values)

    def __repr__(self):
        return "RecordSet(ttl=%d, %r)" % (self.ttl, self.values)


class Answer:
    """Outcome of one authoritative query -- the simulator's compact
    stand-in for a response message (convertible to real wire bytes by
    :mod:`repro.simulation.authoritative`)."""

    __slots__ = ("rcode", "aa", "records", "referral_ns", "ns_ttl",
                 "soa_negttl", "signed", "cname_targets")

    def __init__(self, rcode, aa, records=(), referral_ns=(), ns_ttl=0,
                 soa_negttl=None, signed=False, cname_targets=()):
        #: response code (RCODE)
        self.rcode = rcode
        #: authoritative answer flag
        self.aa = aa
        #: ANSWER section: tuples (qtype, ttl, value)
        self.records = tuple(records)
        #: AUTHORITY NS hostnames (referral or zone NS)
        self.referral_ns = tuple(referral_ns)
        #: TTL of the authority NS records
        self.ns_ttl = ns_ttl
        #: SOA minimum present in AUTHORITY (negative answers)
        self.soa_negttl = soa_negttl
        #: zone is DNSSEC-signed (RRSIGs accompany the answer)
        self.signed = signed
        #: CNAME chain targets included in the answer
        self.cname_targets = tuple(cname_targets)

    @property
    def is_referral(self):
        return (self.rcode == RCODE.NOERROR and not self.aa
                and bool(self.referral_ns))

    @property
    def answer_ips(self):
        return tuple(value for qtype, _, value in self.records
                     if qtype in (QTYPE.A, QTYPE.AAAA))

    def estimated_size(self, qname):
        """Rough response wire size in bytes (resp_size feature).

        Header (12) + question (len+6) + ~28 bytes per answer record +
        ~24 per authority record + SOA (~44).
        """
        size = 12 + len(qname) + 6
        size += 28 * len(self.records)
        size += 24 * len(self.referral_ns)
        if self.soa_negttl is not None:
            size += 44 + len(qname) // 2
        if self.signed:
            size += 96 * max(1, len(self.records) // 2)
        return size


class SldZone:
    """A second-level (registrable) zone with authoritative data."""

    def __init__(self, name, nameservers, soa_negttl=3600, ns_ttl=86400,
                 signed=False, dynamic_ttl=False):
        #: zone apex, canonical form (e.g. ``example.com``)
        self.name = name
        #: list of :class:`~repro.simulation.topology.Nameserver`
        self.nameservers = list(nameservers)
        #: RFC 2308 negative-caching TTL (SOA minimum)
        self.soa_negttl = int(soa_negttl)
        #: TTL of the zone's NS records
        self.ns_ttl = int(ns_ttl)
        #: DNSSEC-signed zone
        self.signed = signed
        #: non-conforming server: answers with a varying (decreasing)
        #: TTL on every response (the Table 4 "Non-conforming" class)
        self.dynamic_ttl = dynamic_ttl
        #: fqdn -> {qtype: RecordSet}
        self.records = {}
        #: wildcard answers: {"A"/"TXT"/"PTR": (ttl, values)} applied
        #: to any name under the apex not explicitly present; the
        #: special key "_exists_prob" makes a (deterministic) fraction
        #: of names NXDOMAIN instead (reverse-DNS realism).
        self.wildcard = None
        self._dynamic_counter = 0

    # -- record management ----------------------------------------------

    def add_record(self, fqdn, qtype, ttl, values):
        """Install/replace the RRset for (fqdn, qtype)."""
        fqdn = fqdn.lower().rstrip(".")
        self.records.setdefault(fqdn, {})[int(qtype)] = RecordSet(ttl, values)

    def get_record(self, fqdn, qtype):
        by_type = self.records.get(fqdn)
        return by_type.get(int(qtype)) if by_type else None

    def remove_record(self, fqdn, qtype):
        by_type = self.records.get(fqdn)
        if by_type:
            by_type.pop(int(qtype), None)

    def set_ttl(self, fqdn, qtype, ttl):
        """Change an RRset's TTL in place (scripted TtlChange)."""
        rset = self.get_record(fqdn, qtype)
        if rset is None:
            raise KeyError("no %s record at %s" % (qtype, fqdn))
        rset.ttl = int(ttl)

    def fqdns(self):
        return list(self.records)

    # -- query answering ---------------------------------------------------

    def answer(self, qname, qtype):
        """Authoritative answer for *qname*/*qtype* (AA always set)."""
        qname = qname.lower().rstrip(".")
        qtype = int(qtype)
        by_type = self.records.get(qname)
        if by_type is None:
            return self._wildcard_answer(qname, qtype)
        records = []
        cname_targets = []
        rset = by_type.get(qtype)
        if rset is None and QTYPE.CNAME in by_type and qtype != QTYPE.CNAME:
            # Follow the CNAME chain within this zone.
            cname = by_type[QTYPE.CNAME]
            target = cname.values[0]
            records.append((int(QTYPE.CNAME), self._ttl(cname), target))
            cname_targets.append(target)
            target_types = self.records.get(target.lower().rstrip("."), {})
            rset = target_types.get(qtype)
        if rset is None and qtype == QTYPE.ANY:
            for any_qtype, any_rset in by_type.items():
                for value in any_rset.values:
                    records.append((any_qtype, self._ttl(any_rset), value))
            rset = None
        elif rset is not None:
            for value in rset.values:
                records.append((qtype, self._ttl(rset), value))
        if not records:
            # Existing name, no data of this type: NoData with SOA.
            return Answer(RCODE.NOERROR, aa=True,
                          soa_negttl=self.soa_negttl, signed=self.signed)
        return Answer(RCODE.NOERROR, aa=True, records=records,
                      signed=self.signed, cname_targets=cname_targets)

    def _wildcard_answer(self, qname, qtype):
        """Answer for a name with no explicit records: wildcard data,
        wildcard NoData, or NXDOMAIN."""
        nxdomain = Answer(RCODE.NXDOMAIN, aa=True,
                          soa_negttl=self.soa_negttl, signed=self.signed)
        wildcard = self.wildcard
        if wildcard is None:
            return nxdomain
        if qname != self.name and not qname.endswith("." + self.name):
            return nxdomain
        exists_prob = wildcard.get("_exists_prob")
        if exists_prob is not None:
            from repro.sketches._hashing import hash64

            if hash64(qname, seed=97) / 2.0 ** 64 >= exists_prob:
                return nxdomain
        spec = wildcard.get(QTYPE.name_of(qtype))
        if spec is None:
            # The wildcard synthesizes the name but not this type.
            return Answer(RCODE.NOERROR, aa=True,
                          soa_negttl=self.soa_negttl, signed=self.signed)
        ttl, values = spec
        records = tuple((int(qtype), ttl, value) for value in values)
        return Answer(RCODE.NOERROR, aa=True, records=records,
                      signed=self.signed)

    def _ttl(self, rset):
        if not self.dynamic_ttl:
            return rset.ttl
        # Non-conforming: cycle a decreasing TTL below the nominal one.
        self._dynamic_counter = (self._dynamic_counter + 7) % 1024
        return max(1, rset.ttl - self._dynamic_counter)


class TldZone:
    """A top-level zone: delegations to SLD nameservers."""

    def __init__(self, name, nameservers, ns_ttl=172800, soa_negttl=900,
                 registry_suffixes=()):
        self.name = name
        self.nameservers = list(nameservers)
        self.ns_ttl = int(ns_ttl)
        self.soa_negttl = int(soa_negttl)
        #: extra public-suffix trees hosted in this TLD zone (e.g.
        #: ``co.uk`` inside ``uk``) -- the Table 3 whitelist cases
        self.registry_suffixes = tuple(registry_suffixes)
        #: sld apex -> SldZone
        self.slds = {}

    def register(self, sld_zone):
        self.slds[sld_zone.name] = sld_zone

    def delegation_for(self, qname):
        """Return the :class:`SldZone` whose delegation covers *qname*."""
        qname = qname.lower().rstrip(".")
        labels = qname.split(".")
        # Try progressively shorter suffixes: deepest registrable first
        # (handles multi-label suffixes like co.uk).
        for i in range(len(labels)):
            candidate = ".".join(labels[i:])
            zone = self.slds.get(candidate)
            if zone is not None:
                return zone
        return None

    def answer(self, qname, qtype):
        """Referral to the SLD's nameservers, or NXDOMAIN."""
        zone = self.delegation_for(qname)
        if zone is None:
            qname_c = qname.lower().rstrip(".")
            if qname_c == self.name or qname_c in self.registry_suffixes:
                # Query for the TLD apex itself: minimal NoError.
                return Answer(RCODE.NOERROR, aa=True,
                              referral_ns=tuple(
                                  ns.hostname for ns in self.nameservers),
                              ns_ttl=self.ns_ttl)
            return Answer(RCODE.NXDOMAIN, aa=True,
                          soa_negttl=self.soa_negttl)
        return Answer(
            RCODE.NOERROR, aa=False,
            referral_ns=tuple(ns.hostname for ns in zone.nameservers),
            ns_ttl=zone.ns_ttl,
        )


class RootZone:
    """The root: delegations to TLD nameservers."""

    NS_TTL = 518400
    SOA_NEGTTL = 86400

    def __init__(self, nameservers):
        #: the 13 root letters (anycast nameservers)
        self.nameservers = list(nameservers)
        #: tld name -> TldZone
        self.tlds = {}

    def register(self, tld_zone):
        self.tlds[tld_zone.name] = tld_zone

    def tld_of(self, qname):
        qname = qname.lower().rstrip(".")
        return qname.rsplit(".", 1)[-1] if qname else ""

    def answer(self, qname, qtype):
        tld = self.tld_of(qname)
        zone = self.tlds.get(tld)
        if zone is None:
            return Answer(RCODE.NXDOMAIN, aa=True,
                          soa_negttl=self.SOA_NEGTTL)
        return Answer(
            RCODE.NOERROR, aa=False,
            referral_ns=tuple(ns.hostname for ns in zone.nameservers),
            ns_ttl=zone.ns_ttl,
        )
