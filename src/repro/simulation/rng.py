"""Deterministic random-number plumbing for the simulator.

Every component draws from a named substream derived from the scenario
seed, so adding a new consumer never perturbs the draws of existing
ones -- experiments stay reproducible across code changes that only
add components.
"""

import bisect
import random

from repro.sketches._hashing import hash64


class RngHub:
    """Factory of independent, named ``random.Random`` substreams."""

    def __init__(self, seed=0):
        self.seed = int(seed)
        self._streams = {}

    def stream(self, name):
        """Return the (cached) substream for *name*."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(hash64(name, self.seed))
            self._streams[name] = rng
        return rng

    def fork(self, name):
        """A fresh, uncached substream (for per-entity generators)."""
        return random.Random(hash64("fork:" + name, self.seed))

    def uniform_hash(self, name):
        """A deterministic float in [0, 1) keyed by *name* -- used for
        per-entity decisions (e.g. which resolvers enable qmin) that
        must not depend on draw order."""
        return hash64(name, self.seed) / 2.0 ** 64


class ZipfSampler:
    """Sample ranks 0..n-1 with probability proportional to 1/(r+1)^s.

    Heavy-tailed popularity is the defining property of DNS objects
    (Section 2.2: "their distributions are often heavy-tailed"); the
    simulator uses this for domains, nameservers, and clients.
    Sampling is O(log n) via a precomputed CDF.
    """

    def __init__(self, n, s=1.0, rng=None):
        if n < 1:
            raise ValueError("n must be >= 1")
        if s < 0:
            raise ValueError("s must be >= 0")
        self.n = int(n)
        self.s = float(s)
        self._rng = rng if rng is not None else random.Random(0)
        cdf = []
        total = 0.0
        for rank in range(self.n):
            total += 1.0 / (rank + 1.0) ** self.s
            cdf.append(total)
        self._cdf = cdf
        self._total = total

    def sample(self, rng=None):
        """Draw one rank (0 = most popular)."""
        r = (rng or self._rng).random() * self._total
        return bisect.bisect_left(self._cdf, r)

    def probability(self, rank):
        """Exact probability of *rank* under this distribution."""
        if not 0 <= rank < self.n:
            raise ValueError("rank out of range")
        return (1.0 / (rank + 1.0) ** self.s) / self._total


def exponential_gap(rng, rate):
    """Next inter-arrival gap of a Poisson process with *rate* (ev/s)."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    return rng.expovariate(rate)
