"""Caching recursive resolvers with iterative resolution.

Each resolver is one vantage point: it serves client queries from its
caches and, on a miss, walks the delegation tree -- root, TLD, SLD --
emitting one upstream transaction per authoritative query.  Those
transactions are exactly what the SIE sensor above the resolver
captures (Section 2.1).

QNAME minimization (Section 3.6): a qmin-enabled resolver sends only
as many QNAME labels as the queried zone needs (``com`` to the root,
``example.com`` to the TLD, RFC 7816, using NS-type probe queries),
while a conventional resolver leaks the full QNAME everywhere -- the
behavioural difference Table 3 detects.
"""

from repro.dnswire.constants import QTYPE, RCODE
from repro.dnswire.name import last_labels, split_labels
from repro.simulation.resolvercache import (
    NEG_NODATA,
    NEG_NXDOMAIN,
    NegativeCache,
    TtlCache,
)

_MAX_RETRIES = 2


class ResolveResult:
    """Outcome of one client query as seen below the resolver."""

    __slots__ = ("status", "from_cache", "transactions")

    def __init__(self, status, from_cache, transactions):
        #: "data" | "nodata" | "nxdomain" | "servfail"
        self.status = status
        #: True when no upstream traffic was needed
        self.from_cache = from_cache
        #: upstream transactions emitted for this query
        self.transactions = transactions


class RecursiveResolver:
    """One recursive resolver vantage point."""

    def __init__(self, ip, global_dns, service, hub, source="src0",
                 qmin=False, dnssec_ok=True, cache_size=200_000,
                 prefetch=False, prefetch_window=15.0):
        self.ip = ip
        self.global_dns = global_dns
        self.service = service
        self.source = source
        #: QNAME minimization enabled (RFC 7816)
        self.qmin = qmin
        #: sets the EDNS0 DO bit on queries
        self.dnssec_ok = dnssec_ok
        #: optional clamp on negative-caching TTLs (some resolvers do
        #: not respect high negative TTLs -- the Figure 9 rank-140 case)
        self.neg_ttl_cap = None
        #: refresh popular entries shortly before expiry ("query
        #: prefetching", one of the §5.1 traffic factors)
        self.prefetch = prefetch
        self.prefetch_window = float(prefetch_window)
        #: upstream refreshes triggered by prefetching
        self.prefetches = 0
        #: the resolver's own IPv6 address, when it can query
        #: dual-stack nameservers over v6 (None = v4-only transport)
        self.ipv6_addr = None
        #: upstream channel transport: ``"plain"`` (UDP/53, sensors
        #: see full payloads) or ``"doh"``/``"dot"`` (the sensor above
        #: this resolver captures only size/timing observations)
        self.transport = "plain"
        self._rng = hub.fork("resolver:%s" % ip)
        self.rrcache = TtlCache(cache_size)
        self.negcache = NegativeCache(cache_size)
        #: zone apex -> (expire_ts, zone object) delegation cache
        self._delegations = TtlCache(cache_size)
        #: client-facing accounting
        self.client_queries = 0
        self.cache_answers = 0

    # ------------------------------------------------------------------

    def resolve(self, qname, qtype, now, emit):
        """Resolve (qname, qtype) at time *now*.

        *emit* is called with every upstream transaction (the sensor
        hook).  Returns a :class:`ResolveResult`.
        """
        self.client_queries += 1
        qname = qname.lower().rstrip(".")
        qtype = int(qtype)

        cached = self.rrcache.get((qname, qtype), now)
        if cached is not None:
            self.cache_answers += 1
            if not (self.prefetch and
                    self.rrcache.remaining_ttl((qname, qtype), now)
                    <= self.prefetch_window):
                return ResolveResult("data", True, [])
            # Prefetch: the client is served from cache, but the entry
            # is about to expire -- refresh it upstream now.
            self.prefetches += 1
            self.rrcache.invalidate((qname, qtype))
        neg = self.negcache.get(qname, qtype, now)
        if neg is not None:
            self.cache_answers += 1
            status = "nxdomain" if neg == NEG_NXDOMAIN else "nodata"
            return ResolveResult(status, True, [])

        transactions = []
        clock = now

        def ask(zone, nameservers, send_qname, send_qtype):
            """Query the zone, retrying across its nameservers."""
            nonlocal clock
            candidates = list(nameservers)
            self._rng.shuffle(candidates)
            for ns in candidates[:_MAX_RETRIES + 1]:
                txn, answer = self.service.serve(
                    self, ns, zone, send_qname, send_qtype, clock)
                transactions.append(txn)
                emit(txn)
                if answer is not None:
                    clock += txn.delay_ms / 1000.0
                    return answer
                clock += 0.4  # timeout before retrying elsewhere
            return None

        # --- find the deepest cached delegation --------------------------
        labels = split_labels(qname)
        sld_zone = None
        for i in range(len(labels) - 1):
            candidate = ".".join(labels[i:])
            zone = self._delegations.get(("sld", candidate), now)
            if zone is not None:
                sld_zone = zone
                break

        root = self.global_dns.root
        if sld_zone is None:
            tld_name = labels[-1] if labels else ""
            tld_zone = self._delegations.get(("tld", tld_name), now)
            if tld_zone is None:
                # --- query the root ---------------------------------
                send = last_labels(qname, 1) if self.qmin else qname
                send_qtype = QTYPE.NS if self.qmin else qtype
                answer = ask(root, root.nameservers, send, send_qtype)
                if answer is None:
                    return ResolveResult("servfail", False, transactions)
                if answer.rcode == RCODE.NXDOMAIN:
                    self.negcache.put_nxdomain(
                        qname, answer.soa_negttl or root.SOA_NEGTTL, now)
                    return ResolveResult("nxdomain", False, transactions)
                tld_zone = root.tlds.get(tld_name)
                if tld_zone is None:
                    return ResolveResult("servfail", False, transactions)
                self._delegations.put(("tld", tld_name), tld_zone,
                                      answer.ns_ttl, now)
            # --- query the TLD servers ------------------------------
            send = self._minimized_for_tld(qname, tld_zone) \
                if self.qmin else qname
            send_qtype = QTYPE.NS if self.qmin and send != qname else qtype
            answer = ask(tld_zone, tld_zone.nameservers, send, send_qtype)
            if answer is None:
                return ResolveResult("servfail", False, transactions)
            if answer.rcode == RCODE.NXDOMAIN:
                self.negcache.put_nxdomain(
                    qname, answer.soa_negttl or tld_zone.soa_negttl, now)
                return ResolveResult("nxdomain", False, transactions)
            sld_zone = tld_zone.delegation_for(qname)
            if sld_zone is None:
                # TLD apex query or registry-internal name: treat the
                # TLD answer as terminal NoData.
                self.negcache.put_nodata(qname, qtype,
                                         tld_zone.soa_negttl, now)
                return ResolveResult("nodata", False, transactions)
            self._delegations.put(("sld", sld_zone.name), sld_zone,
                                  answer.ns_ttl, now)

        # --- query the SLD authoritative servers ---------------------
        answer = ask(sld_zone, sld_zone.nameservers, qname, qtype)
        if answer is None:
            return ResolveResult("servfail", False, transactions)
        if answer.rcode == RCODE.NXDOMAIN:
            self.negcache.put_nxdomain(
                qname, self._neg_ttl(answer.soa_negttl), now)
            return ResolveResult("nxdomain", False, transactions)
        if answer.records:
            ttl = min(ttl for _, ttl, _ in answer.records)
            self.rrcache.put((qname, qtype), answer.answer_ips or True,
                             ttl, now)
            return ResolveResult("data", False, transactions)
        # NoData: cache negatively for the SOA minimum.
        self.negcache.put_nodata(
            qname, qtype, self._neg_ttl(answer.soa_negttl or 0), now)
        return ResolveResult("nodata", False, transactions)

    def _neg_ttl(self, negttl):
        """Apply the resolver's negative-TTL clamp, if configured."""
        if self.neg_ttl_cap is not None:
            return min(negttl, self.neg_ttl_cap)
        return negttl

    # ------------------------------------------------------------------

    @staticmethod
    def _minimized_for_tld(qname, tld_zone):
        """The QNAME a qmin resolver sends to a TLD server: one label
        below the zone cut, i.e. usually 2 labels (example.com), or 3
        for registry suffixes hosted in the TLD zone (bbc.co.uk -> the
        Table 3 whitelist case)."""
        labels = split_labels(qname)
        depth = 2
        for suffix in tld_zone.registry_suffixes:
            if qname == suffix or qname.endswith("." + suffix):
                depth = len(split_labels(suffix)) + 1
                break
        return ".".join(labels[-depth:]) if len(labels) >= depth else qname

    def cache_hit_ratio(self):
        """Share of client queries answered without upstream traffic."""
        if not self.client_queries:
            return 0.0
        return self.cache_answers / self.client_queries

    def __repr__(self):
        return "RecursiveResolver(%s, qmin=%s)" % (self.ip, self.qmin)
