"""Adversarial workloads with ground-truth labels.

Two labeled attack generators ride the scripted-event mechanism next
to the DGA botnet (:mod:`repro.simulation.botnet`) and
:class:`~repro.simulation.scenario.JunkSurge`:

* :class:`~repro.simulation.scenario.TunnelAttack` -- a DNS-tunnel /
  exfiltration client pushing fresh high-entropy subdomains through a
  wildcard-answering victim zone (every query resolves, like a live
  tunnel server);
* :class:`~repro.simulation.scenario.WaterTorture` -- a
  random-subdomain DDoS botnet flooding a non-wildcard victim zone
  with unique nonexistent names (every query is a cache miss ending in
  NXDOMAIN at the victim's authoritative).

Victims default to deterministically chosen zones of the simulated
DNS, and :func:`attack_labels` exports the resolved ground truth --
``(kind, esld, start, end)`` per attack -- which
:mod:`repro.analysis.detectquality` scores detector output against.
"""

from repro.dnswire.constants import QTYPE
from repro.simulation.workload import ClientEvent

#: fraction of resolvers fronting infected clients (water torture is
#: botnet-sourced; tunnels are single-operator but roam resolvers)
ATTACK_RESOLVER_FRACTION = 0.5

_LABEL_ALPHABET = "abcdefghijklmnopqrstuvwxyz0123456789"


class ResolvedAttack:
    """A scripted attack bound to its concrete victim zone."""

    __slots__ = ("event", "esld", "index")

    def __init__(self, event, esld, index):
        self.event = event
        self.esld = esld
        self.index = index

    @property
    def kind(self):
        return self.event.kind

    def label(self, duration):
        end = self.event.until
        end = duration if end is None else min(end, duration)
        return {
            "kind": self.event.kind,
            "esld": self.esld,
            "start": self.event.at,
            "end": end,
            "qps": self.event.qps,
        }


def resolve_attacks(mix):
    """Bind every scripted attack event to a victim zone.

    The choice is deterministic given the scenario (it only reads the
    zone lists built from the scenario seed): tunnels prefer a
    wildcard **A** zone (answered queries) that is not an anti-virus
    TXT zone, water torture a mid-popularity non-wildcard zone
    (NXDOMAIN floods).  Distinct attacks get distinct victims.
    """
    from repro.simulation.scenario import TunnelAttack, WaterTorture

    resolved = []
    used = set()
    for index, event in enumerate(mix.scenario.scripted_events):
        if not isinstance(event, (TunnelAttack, WaterTorture)):
            continue
        if event.sld is not None:
            esld = event.sld
        elif isinstance(event, TunnelAttack):
            esld = _pick_tunnel_victim(mix.dns, used)
        else:
            esld = _pick_torture_victim(mix.dns, used)
        used.add(esld)
        resolved.append(ResolvedAttack(event, esld, index))
    return resolved


def _pick_tunnel_victim(dns, used):
    wildcards = [z for z in dns.wildcard_slds if z.name not in used]
    plain_a = [z for z in wildcards
               if not (z.wildcard and "TXT" in z.wildcard)]
    for pool in (plain_a, wildcards, dns.slds):
        for zone in pool:
            if zone.name not in used:
                return zone.name
    raise ValueError("no zone available for a tunnel victim")


def _pick_torture_victim(dns, used):
    slds = dns.slds
    # Start mid-list: head zones carry heavy legitimate traffic, tail
    # zones barely resolve; the middle is a plausible victim.
    order = slds[len(slds) // 3:] + slds[: len(slds) // 3]
    for zone in order:
        if zone.wildcard is None and zone.name not in used:
            return zone.name
    for zone in order:
        if zone.name not in used:
            return zone.name
    raise ValueError("no zone available for a water-torture victim")


def attack_events(mix, attack):
    """The :class:`ClientEvent` generator for one resolved attack."""
    from repro.simulation.scenario import TunnelAttack

    if isinstance(attack.event, TunnelAttack):
        return _tunnel_events(mix, attack)
    return _torture_events(mix, attack)


def _window(mix, event):
    end = mix.scenario.duration
    if event.until is not None:
        end = min(end, event.until)
    return event.at, end


def _infected_resolver(mix, rng):
    n = max(1, int(mix.scenario.n_resolvers * ATTACK_RESOLVER_FRACTION))
    return rng.randrange(n)


def _tunnel_events(mix, attack):
    event = attack.event
    rng = mix.hub.stream("tunnel:%d" % attack.index)
    start, end = _window(mix, event)
    choice = rng.choice
    t = start + rng.expovariate(event.qps)
    while t < end:
        payload = ".".join(
            "".join(choice(_LABEL_ALPHABET)
                    for _ in range(event.label_len))
            for _ in range(event.payload_labels))
        qname = "%s.t.%s" % (payload, attack.esld)
        yield ClientEvent(t, _infected_resolver(mix, rng), qname,
                          QTYPE.A, "tunnel")
        t += rng.expovariate(event.qps)


def _torture_events(mix, attack):
    event = attack.event
    rng = mix.hub.stream("watertorture:%d" % attack.index)
    start, end = _window(mix, event)
    choice = rng.choice
    t = start + rng.expovariate(event.qps)
    while t < end:
        label = "".join(choice(_LABEL_ALPHABET)
                        for _ in range(event.label_len))
        qname = "%s.%s" % (label, attack.esld)
        yield ClientEvent(t, _infected_resolver(mix, rng), qname,
                          QTYPE.A, "watertorture")
        t += rng.expovariate(event.qps)
