"""Network topology: organizations, ASes, prefixes, nameserver fleets.

Builds the cast of Table 1 -- AMAZON, VERISIGN, CLOUDFLARE, AKAMAI,
MICROSOFT, PCH, ULTRADNS, GOOGLE, DYNDNS, GODADDY -- plus a long tail
of hosting providers and ISPs, each with:

* one or more ASes announcing IPv4 (and some IPv6) prefixes,
  registered in an :class:`~repro.netsim.asdb.AsDatabase` and an
  :class:`~repro.netsim.asnames.AsNameRegistry` exactly like the
  Route Views + AS Names pipeline of Section 3.3;
* a *delay mix*: the distribution over the four Figure 3a distance
  classes its nameservers exhibit (CDNs anycast close to resolvers,
  cloud VPS fleets sit behind longer paths);
* a nameserver fleet grown on demand by the zone buildout.

Path selection: for an **anycast** nameserver each resolver draws its
own distance class from the org's mix (different resolvers hit
different mirrors); for a **unicast** nameserver the class is drawn
once and shared by all resolvers, with per-resolver jitter in the base
delay.
"""

from repro.netsim.asdb import AsDatabase
from repro.netsim.asnames import AsNameRegistry
from repro.netsim.latency import PathProfile

#: The Table 1 organizations: (name, kind, #ASes, anycast, delay mix,
#: server processing ms, share weight for SLD hosting assignment).
#: Delay mixes are tuned so mean delays/hops land near the paper's
#: Table 1 values (AMAZON 60.9 ms / 12 hops ... AKAMAI 14.9 ms / 7.3).
MAJOR_ORGS = (
    ("AMAZON", "cloud", 3, False,
     {"colocated": 0.02, "regional": 0.25, "distant": 0.71, "impaired": 0.02},
     2.0, 0.26),
    ("VERISIGN", "registry", 7, True,
     {"colocated": 0.05, "regional": 0.35, "distant": 0.60, "impaired": 0.00},
     0.5, 0.0),
    ("CLOUDFLARE", "cdn", 2, True,
     {"colocated": 0.25, "regional": 0.55, "distant": 0.20, "impaired": 0.00},
     0.3, 0.11),
    ("AKAMAI", "cdn", 6, True,
     {"colocated": 0.45, "regional": 0.45, "distant": 0.10, "impaired": 0.00},
     0.3, 0.11),
    ("MICROSOFT", "cloud", 5, False,
     {"colocated": 0.01, "regional": 0.15, "distant": 0.80, "impaired": 0.04},
     2.5, 0.05),
    ("PCH", "dns", 2, True,
     {"colocated": 0.20, "regional": 0.55, "distant": 0.25, "impaired": 0.00},
     0.5, 0.04),
    ("ULTRADNS", "dns", 1, True,
     {"colocated": 0.22, "regional": 0.58, "distant": 0.20, "impaired": 0.00},
     0.5, 0.04),
    ("GOOGLE", "cloud", 1, False,
     {"colocated": 0.01, "regional": 0.10, "distant": 0.85, "impaired": 0.04},
     2.0, 0.04),
    ("DYNDNS", "dns", 1, False,
     {"colocated": 0.05, "regional": 0.30, "distant": 0.65, "impaired": 0.00},
     1.0, 0.03),
    ("GODADDY", "hosting", 2, False,
     {"colocated": 0.02, "regional": 0.25, "distant": 0.70, "impaired": 0.03},
     1.5, 0.02),
)

_TAIL_MIX = {
    "colocated": 0.01, "regional": 0.20, "distant": 0.74, "impaired": 0.05,
}

#: registration countries for the long-tail hosters/ISPs, weighted
#: toward the hosting-heavy economies; assignment is a pure per-ASN
#: hash so adding the country layer perturbs no existing RNG stream
_TAIL_COUNTRIES = (
    "US", "US", "DE", "DE", "NL", "FR", "GB", "RU", "CN", "JP",
    "BR", "IN", "CA", "PL", "SG", "AU",
)

_AS_NAME_TEMPLATES = {
    "AMAZON": "AMAZON-%02d - Amazon.com, Inc., US",
    "VERISIGN": "VERISIGN-AS%d - VeriSign Global Registry Services, US",
    "CLOUDFLARE": "CLOUDFLARENET-%d - Cloudflare, Inc., US",
    "AKAMAI": "AKAMAI-ASN%d - Akamai Technologies, Inc., US",
    "MICROSOFT": "MICROSOFT-CORP-%02d - Microsoft Corporation, US",
    "PCH": "PCH-AS%d - Packet Clearing House, US",
    "ULTRADNS": "ULTRADNS-%d - NeuStar, Inc., US",
    "GOOGLE": "GOOGLE-%d - Google LLC, US",
    "DYNDNS": "DYNDNS-%d - Dynamic Network Services, US",
    "GODADDY": "GODADDY-%02d - GoDaddy.com, LLC, US",
}


class Organization:
    """One operator: ASes, prefixes, and a nameserver fleet."""

    def __init__(self, name, kind, asns, anycast, delay_mix,
                 server_delay_ms, hosting_weight=0.0):
        self.name = name
        self.kind = kind
        self.asns = list(asns)
        self.anycast = anycast
        self.delay_mix = dict(delay_mix)
        self.server_delay_ms = float(server_delay_ms)
        self.hosting_weight = float(hosting_weight)
        #: "a.b.0.0/16"-style IPv4 prefixes, one per AS by default
        self.prefixes = []
        #: IPv6 /48 prefixes (dual-stack orgs announce one per AS)
        self.v6_prefixes = []
        #: nameservers allocated so far
        self.nameservers = []
        self._next_host = {}

    def __repr__(self):
        return "Organization(%s, ASes=%r, servers=%d)" % (
            self.name, self.asns, len(self.nameservers))


class Nameserver:
    """One authoritative nameserver (IPv4, optionally dual-stack)."""

    __slots__ = ("ip", "ipv6", "hostname", "org", "anycast",
                 "distance_class", "server_delay_ms", "initial_ttl",
                 "unanswered_rate")

    def __init__(self, ip, hostname, org, anycast, distance_class,
                 server_delay_ms, initial_ttl=64, unanswered_rate=0.0,
                 ipv6=None):
        self.ip = ip
        #: optional IPv6 address of the same machine (the srvip
        #: dataset tracks "nameserver IPv4/IPv6 address", §3.1)
        self.ipv6 = ipv6
        self.hostname = hostname
        #: organization *name* (lookup via Topology.org())
        self.org = org
        self.anycast = anycast
        #: base distance class for unicast servers (mix key)
        self.distance_class = distance_class
        self.server_delay_ms = server_delay_ms
        self.initial_ttl = initial_ttl
        self.unanswered_rate = unanswered_rate

    def __repr__(self):
        return "Nameserver(%s, %s, %s)" % (self.ip, self.hostname, self.org)


class Topology:
    """Organizations + address plan + per-path delay profiles."""

    def __init__(self, hub, n_tail_orgs=60):
        self._hub = hub
        self._rng = hub.stream("topology")
        self.orgs = {}
        self.asdb = AsDatabase()
        self.asnames = AsNameRegistry()
        #: ASN -> ISO country code, the registration-country layer the
        #: vantage indices (:mod:`repro.analysis.vantage`) group by
        self.countries = {}
        self._next_asn = 64500
        self._used_slash16 = set()
        self._next_v6_index = 0
        self._path_cache = {}
        self.nameservers_by_ip = {}
        self._build_major_orgs()
        self._build_tail_orgs(n_tail_orgs)

    # -- construction ---------------------------------------------------

    def _build_major_orgs(self):
        for (name, kind, n_ases, anycast, mix, srv_delay,
             weight) in MAJOR_ORGS:
            org = Organization(name, kind, [], anycast, mix, srv_delay,
                               hosting_weight=weight)
            template = _AS_NAME_TEMPLATES[name]
            for i in range(n_ases):
                asn = self._next_asn
                self._next_asn += 1
                org.asns.append(asn)
                self.asnames.add(asn, template % (i + 1))
                self.countries[asn] = "US"  # the Table 1 cast is US-registered
                prefix = self._allocate_prefix()
                org.prefixes.append(prefix)
                self.asdb.add_prefix(prefix, asn)
                v6_prefix = self._allocate_v6_prefix()
                org.v6_prefixes.append(v6_prefix)
                self.asdb.add_prefix(v6_prefix, asn)
            self.orgs[name] = org

    def _build_tail_orgs(self, n_tail):
        for i in range(n_tail):
            name = "HOSTER%03d" % i
            kind = "hosting" if i % 3 else "isp"
            org = Organization(name, kind, [], False, _TAIL_MIX,
                               server_delay_ms=2.0,
                               hosting_weight=0.30 / max(n_tail, 1))
            asn = self._next_asn
            self._next_asn += 1
            org.asns.append(asn)
            self.asnames.add(
                asn, "%s-NET - %s Hosting Ltd" % (name, name.capitalize()))
            self.countries[asn] = _TAIL_COUNTRIES[int(
                self._hub.uniform_hash("cc:%d" % asn)
                * len(_TAIL_COUNTRIES))]
            prefix = self._allocate_prefix()
            org.prefixes.append(prefix)
            self.asdb.add_prefix(prefix, asn)
            v6_prefix = self._allocate_v6_prefix()
            org.v6_prefixes.append(v6_prefix)
            self.asdb.add_prefix(v6_prefix, asn)
            self.orgs[name] = org

    #: share of each org kind's nameservers that are dual-stack
    #: (server-side IPv6 adoption is highest among CDN/DNS operators)
    _V6_SERVER_FRACTION = {
        "cdn": 0.9, "dns": 0.9, "registry": 0.95, "root": 1.0,
        "cloud": 0.5, "hosting": 0.2, "isp": 0.15,
    }

    #: first octets excluded from the synthetic address plan
    #: (private/loopback/multicast/documentation space)
    _RESERVED_FIRST_OCTETS = frozenset(
        (0, 10, 100, 127, 169, 172, 192, 198, 203)
        + tuple(range(224, 256)))

    def _allocate_prefix(self):
        # Scatter org /16s across the unicast IPv4 space, like real
        # allocations -- the Figure 6 Hilbert map and the §3.7 /24
        # dispersion statistics depend on it.  Deterministic via the
        # topology RNG stream.
        while True:
            first = self._rng.randrange(1, 224)
            if first in self._RESERVED_FIRST_OCTETS:
                continue
            second = self._rng.randrange(256)
            if (first, second) not in self._used_slash16:
                self._used_slash16.add((first, second))
                return "%d.%d.0.0/16" % (first, second)

    def _allocate_v6_prefix(self):
        index = self._next_v6_index
        self._next_v6_index += 1
        return "2620:%x:%x::/48" % (0x100 + index // 0x10000,
                                    index % 0x10000)

    # -- fleet management ------------------------------------------------

    def org(self, name):
        return self.orgs[name]

    def major_org_names(self):
        return [spec[0] for spec in MAJOR_ORGS]

    def tail_org_names(self):
        return [n for n in self.orgs if n.startswith("HOSTER")]

    def allocate_nameserver(self, org_name, hostname=None,
                            unanswered_rate=0.0):
        """Create a new nameserver IP inside *org_name*'s space."""
        org = self.orgs[org_name]
        prefix = org.prefixes[len(org.nameservers) % len(org.prefixes)]
        base = prefix.split("/")[0].rsplit(".", 2)[0]  # "a.b"
        # Scatter hosts across the /16: real nameservers are widely
        # dispersed over the address space (§3.7: 48% of observed /24s
        # hold a single address).
        used = org._next_host.setdefault(prefix, set())
        while True:
            third = self._rng.randrange(256)
            fourth = self._rng.randrange(1, 255)
            if (third, fourth) not in used:
                used.add((third, fourth))
                break
        ip = "%s.%d.%d" % (base, third, fourth)
        if hostname is None:
            hostname = "ns%d.%s-dns.net" % (
                len(org.nameservers) + 1, org.name.lower())
        distance_class = self._draw_class(org.delay_mix)
        ipv6 = None
        v6_fraction = self._V6_SERVER_FRACTION.get(org.kind, 0.2)
        if org.v6_prefixes and self._rng.random() < v6_fraction:
            v6_base = org.v6_prefixes[
                len(org.nameservers) % len(org.v6_prefixes)].split("/")[0]
            # "2620:100:a::/48" -> "2620:100:a:53::7"
            ipv6 = "%s:53::%x" % (v6_base.rstrip(":"),
                                  len(org.nameservers) + 1)
        ns = Nameserver(
            ip=ip, hostname=hostname, org=org.name, anycast=org.anycast,
            distance_class=distance_class,
            server_delay_ms=org.server_delay_ms,
            initial_ttl=self._rng.choice((64, 64, 64, 255)),
            unanswered_rate=unanswered_rate,
            ipv6=ipv6,
        )
        org.nameservers.append(ns)
        self.nameservers_by_ip[ip] = ns
        if ipv6 is not None:
            self.nameservers_by_ip[ipv6] = ns
        return ns

    def _draw_class(self, mix, rng=None):
        rng = rng or self._rng
        r = rng.random()
        total = 0.0
        for cls_name, weight in mix.items():
            total += weight
            if r < total:
                return cls_name
        return "distant"

    # -- path model -------------------------------------------------------

    def path_profile(self, resolver_ip, ns):
        """Deterministic :class:`PathProfile` for a resolver-nameserver
        pair.  Anycast servers re-draw the distance class per resolver
        (each resolver reaches a nearby mirror); unicast servers keep
        their base class."""
        key = (resolver_ip, ns.ip)
        profile = self._path_cache.get(key)
        if profile is None:
            pair_rng = self._hub.fork("path:%s:%s" % (resolver_ip, ns.ip))
            if ns.anycast:
                distance_class = self._draw_class(
                    self.orgs[ns.org].delay_mix, pair_rng)
            else:
                distance_class = ns.distance_class
            profile = PathProfile.from_distance_class(
                distance_class, pair_rng, initial_ttl=ns.initial_ttl)
            profile.server_delay_ms = ns.server_delay_ms
            self._path_cache[key] = profile
        return profile

    def org_of_ip(self, ip):
        """Reverse lookup via the AS database (what the analysis does)."""
        asn = self.asdb.lookup(ip)
        return self.asnames.org(asn)
