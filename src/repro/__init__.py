"""DNS Observatory: stream analytics for passive DNS.

A complete, self-contained reproduction of *DNS Observatory: The Big
Picture of the DNS* (Foremski, Gasser, Moura -- IMC 2019):

* :mod:`repro.observatory` -- the paper's core contribution: Top-k
  tracking with Space-Saving, the Section 2.3 traffic feature set,
  60-second windows, TSV time series and time aggregation;
* :mod:`repro.sketches` -- the probabilistic data structures
  (Space-Saving, Bloom filters, HyperLogLog, streaming histograms);
* :mod:`repro.dnswire` -- DNS protocol substrate (wire format, EDNS0,
  Public Suffix List);
* :mod:`repro.netsim` -- IP-layer substrate (packets, hop inference,
  AS attribution, Hilbert heatmaps, delay models);
* :mod:`repro.simulation` -- the SIE substitute: a deterministic
  synthetic Internet producing the resolver-to-authoritative
  transaction stream the Observatory ingests;
* :mod:`repro.analysis` -- the measurement study: every table and
  figure of Sections 3-5;
* :mod:`repro.cli` -- the ``dns-observatory`` command-line tool.

Quick start::

    from repro.observatory import Observatory
    from repro.simulation import Scenario, SieChannel

    channel = SieChannel(Scenario.tiny())
    obs = Observatory(datasets=["srvip", "qname", "qtype"])
    obs.consume(channel.run())
    obs.finish()
    for entry in obs.tracker("srvip").top(10):
        print(entry.key, entry.hits)
"""

__version__ = "1.0.0"

from repro.observatory import Observatory
from repro.simulation import Scenario, SieChannel

__all__ = ["Observatory", "Scenario", "SieChannel", "__version__"]
