"""Live daemon: ingest → store → push-to-client in one process.

The paper's DNS Observatory is an always-on platform -- streams flow
in, aggregates become visible to operators continuously (§2).  The
batch tooling reproduces the *math* of that loop (``replay`` writes
windows, ``serve --follow`` re-scans, clients poll); this module
closes it into a single continuously running process::

    source ──► ingest thread ──► Observatory / ShardedObservatory
                  │                   │ window flush (atomic TSV)
                  │                   ▼
                  │             flush_hook(path)
                  │        ┌──────────┴──────────────┐
                  │        ▼                         ▼
                  │  SeriesStore.notify_flush   FlushBroker.publish
                  │  (O(1) reconcile, no scan)  (threadsafe → loop)
                  │                                  │
    asyncio loop ─┴─► ObservatoryServer ◄────────────┘
                        /series?follow=   long-poll wakes
                        /stream           SSE event goes out

A window is queryable -- and pushed to every open subscriber -- the
moment its ``os.replace`` lands, without a directory re-scan: the
flush hook hands the exact path to the store's single-file reconcile
and rings the broker.

The transaction *source* is pluggable: the simulator's
:class:`~repro.simulation.sie.SieChannel`, a transaction-line file, or
stdin (an SIE-style pipe).  ``pace`` maps the stream's virtual time
onto wall time (1.0 = real time, 10 = 10x compressed, 0 = as fast as
possible), so a simulated day can drive a live dashboard in minutes.

Lifecycle: the daemon owns signal dispatch (the server's
``serve_forever`` handlers stay uninstalled).  SIGTERM/SIGINT stops
the pacer, drains the pending batch, cuts the final partial window
(whose flush still reaches subscribers), closes the broker so every
long-poll returns and every SSE stream ends with ``event: eof``, then
gracefully drains HTTP connections and exits 0.  An ingest failure
tears the daemon down the same way but exits 1 -- a supervisor
restarts it, and ``/platform/health`` shows ``daemon-ingest`` failing
in the meantime.
"""

import asyncio
import logging
import select
import signal
import sys
import threading
import time
import traceback

from repro.observatory import segments as segmentfmt
from repro.observatory.alerts import DAEMON_RULES, DEFAULT_RULES
from repro.observatory.pipeline import Observatory
from repro.observatory.store import SeriesStore
from repro.observatory.telemetry import Telemetry
from repro.observatory.transaction import Transaction
from repro.server import build_server
from repro.server.push import FlushBroker

logger = logging.getLogger(__name__)

#: ingest dispatches a partial batch after this many wall seconds, so
#: a slow paced stream still advances windows promptly
DISPATCH_INTERVAL = 0.25

#: transactions per ingest dispatch (amortizes the batch fast path)
BATCH_SIZE = 1024

#: pacer sleep quantum -- bounds shutdown latency while paced
PACE_SLICE = 0.1

#: seconds to wait for the ingest thread's final cut before giving up
#: (the thread is a daemon thread, so a wedged source cannot block
#: process exit forever)
JOIN_TIMEOUT = 30.0


def stdin_transactions(stop, fh=None, poll_seconds=0.25):
    """Yield transactions from *fh* (default stdin) line by line.

    Polls with :func:`select.select` so a shutdown request interrupts
    an idle pipe instead of leaving the ingest thread wedged in a
    blocking read past the join timeout.
    """
    fh = sys.stdin if fh is None else fh
    while not stop.is_set():
        try:
            ready, _, _ = select.select([fh], [], [], poll_seconds)
        except (OSError, ValueError):  # fd closed under us
            return
        if not ready:
            continue
        line = fh.readline()
        if not line:
            return
        if line.strip():
            yield Transaction.from_line(line)


class LiveDaemon:
    """One process running ingest and the HTTP query API together.

    Parameters
    ----------
    source:
        Iterable of :class:`~repro.observatory.transaction.Transaction`
        in time order, or a callable ``source(stop_event) ->
        iterable`` (the stdin reader needs the stop event to stay
        interruptible).
    output_dir:
        Directory TSV windows are written to and served from.
    datasets / k / window_seconds / shards / transport / ring_bytes:
        Ingest configuration, as for ``replay``.
    pace:
        Virtual-to-wall time speed-up factor; ``0`` disables pacing.
    host / port / cache_windows / max_connections / stream_threshold:
        Serving configuration, as for ``serve``.
    rules:
        Alert rules; :data:`~repro.observatory.alerts.DAEMON_RULES`
        are appended so ``/platform/health`` covers the daemon itself.
    detectors:
        Abuse-detection spec passed through to the pipeline (``True``
        for all registered detectors, or a list of names; see
        :mod:`repro.detect`).  When set, every window also emits a
        ``_detector`` meta-dataset and
        :data:`~repro.observatory.alerts.DETECTOR_RULES` join the rule
        set, so a flagged eSLD trips ``/platform/health``.
    vantage:
        Optional :class:`~repro.analysis.vantage.VantageEmitter`:
        every flushed ``srvip`` window additionally derives per-ASN
        and per-country ``_vantage_*`` index windows through the same
        flush path, served live at ``/vantage``.
    auth_tokens / rate_limit / rate_burst:
        Serving admission control, as for ``serve --token`` /
        ``--rate-limit`` (bearer-token allowlist -> 401, per-client
        token bucket -> 429 + ``Retry-After``).
    segments:
        Build a columnar sidecar segment
        (:mod:`~repro.observatory.segments`) for every flushed window
        before it is reconciled into the store, so a window evicted
        from the LRU is re-read as a binary column scan, never a text
        re-parse.
    exit_when_done:
        Shut down (exit 0) when the source is exhausted instead of
        continuing to serve the accumulated windows.
    ready_callback:
        Called with the bound server once HTTP is accepting (before
        the first transaction is ingested).
    """

    def __init__(self, source, output_dir, datasets=("srvip", "qname"),
                 k=2000, window_seconds=60.0, shards=1,
                 transport="pickle", ring_bytes=None, pace=1.0,
                 host="127.0.0.1", port=8053, cache_windows=256,
                 max_connections=64, stream_threshold=None, rules=None,
                 segments=False, exit_when_done=False,
                 ready_callback=None, batch_size=BATCH_SIZE,
                 dispatch_interval=DISPATCH_INTERVAL, detectors=None,
                 vantage=None, auth_tokens=None, rate_limit=None,
                 rate_burst=None):
        self._source = source
        self.output_dir = output_dir
        self.datasets = list(datasets)
        self.k = int(k)
        self.window_seconds = float(window_seconds)
        self.shards = int(shards)
        self.transport = transport
        self.ring_bytes = ring_bytes
        self.pace = float(pace)
        self.host = host
        self.port = port
        self.cache_windows = cache_windows
        self.max_connections = max_connections
        self.stream_threshold = stream_threshold
        self.detectors = detectors
        self.vantage = vantage
        self.auth_tokens = auth_tokens
        self.rate_limit = rate_limit
        self.rate_burst = rate_burst
        base = DEFAULT_RULES if rules is None else rules
        self.rules = list(base) + list(DAEMON_RULES)
        if detectors:
            from repro.observatory.alerts import DETECTOR_RULES
            self.rules += list(DETECTOR_RULES)
        self.segments = bool(segments)
        self.exit_when_done = exit_when_done
        self.ready_callback = ready_callback
        self.batch_size = int(batch_size)
        self.dispatch_interval = float(dispatch_interval)

        self._stop = threading.Event()
        self._loop = None
        self._ingest_thread = None
        self._shutdown_task = None
        self._finished = False
        self._finish_lock = threading.Lock()

        # observable state (read cross-thread: plain attributes only)
        self.telemetry = Telemetry()
        self.store = None
        self.broker = None
        self.server = None
        self.observatory = None
        self.windows_flushed = 0
        self.txns_ingested = 0
        self.ingest_active = False
        self.ingest_error = None
        self.last_flush_unix = None
        self._lag = 0.0
        self._started_unix = time.time()

    # -- wiring ---------------------------------------------------------

    def run(self):
        """Blocking entry point; returns the process exit code."""
        return asyncio.run(self._main())

    def _build_observatory(self):
        specs = [(name, self.k) for name in self.datasets]
        if self.shards > 1:
            from repro.observatory.sharded import ShardedObservatory
            extra = {}
            if self.ring_bytes:
                extra["ring_bytes"] = self.ring_bytes
            return ShardedObservatory(
                shards=self.shards, datasets=specs,
                output_dir=self.output_dir,
                window_seconds=self.window_seconds,
                transport=self.transport, keep_dumps=False,
                telemetry=self.telemetry, flush_hook=self._on_flush,
                detectors=self.detectors, encrypted=True,
                vantage=self.vantage, **extra)
        return Observatory(
            datasets=specs, output_dir=self.output_dir,
            window_seconds=self.window_seconds, keep_dumps=False,
            telemetry=self.telemetry, flush_hook=self._on_flush,
            detectors=self.detectors, encrypted=True,
            vantage=self.vantage)

    async def _main(self):
        loop = asyncio.get_running_loop()
        self._loop = loop
        self.broker = FlushBroker(loop)
        self.store = SeriesStore(self.output_dir,
                                 cache_windows=self.cache_windows,
                                 follow=False, telemetry=self.telemetry)
        self.telemetry.register("daemon", self._heartbeat_row,
                                deltas=("txns",))
        self.observatory = self._build_observatory()
        self.server, app = await build_server(
            self.output_dir, host=self.host, port=self.port,
            store=self.store, telemetry=self.telemetry,
            rules=self.rules, max_connections=self.max_connections,
            stream_threshold=self.stream_threshold,
            broker=self.broker, daemon_status=self.status,
            auth_tokens=self.auth_tokens, rate_limit=self.rate_limit,
            rate_burst=self.rate_burst)
        saved = []
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                previous = signal.getsignal(sig)
                loop.add_signal_handler(sig, self._request_shutdown)
            except (NotImplementedError, RuntimeError):
                continue  # non-POSIX event loop
            saved.append((sig, previous))
        self._ingest_thread = threading.Thread(
            target=self._ingest, name="daemon-ingest", daemon=True)
        self._ingest_thread.start()
        if self.ready_callback is not None:
            self.ready_callback(self.server)
        try:
            await self.server.wait_closed()
        finally:
            for sig, previous in saved:
                try:
                    loop.remove_signal_handler(sig)
                    if previous is not None:
                        signal.signal(sig, previous)
                except (NotImplementedError, RuntimeError, OSError,
                        ValueError):  # pragma: no cover - teardown race
                    pass
            self._stop.set()
            await loop.run_in_executor(None, self._join_ingest)
            self.broker.close()
            self.store.flush_manifest()
        return 1 if self.ingest_error else 0

    # -- lifecycle ------------------------------------------------------

    def _request_shutdown(self):
        """Begin the drain sequence (idempotent; loop thread only)."""
        if self._shutdown_task is None:
            self._shutdown_task = asyncio.ensure_future(self._shutdown())

    async def _shutdown(self):
        # Stop the pacer first: the ingest thread drains its pending
        # batch and cuts the final partial window, whose flush is
        # published to the *still-open* broker -- subscribers receive
        # the cut window before the eof.
        self._stop.set()
        await asyncio.get_running_loop().run_in_executor(
            None, self._join_ingest)
        self.broker.close()
        self.server.begin_shutdown()

    def _join_ingest(self):
        thread = self._ingest_thread
        if thread is not None and thread.is_alive():
            thread.join(JOIN_TIMEOUT)
            if thread.is_alive():  # pragma: no cover - wedged source
                logger.error("ingest thread did not stop within %ss",
                             JOIN_TIMEOUT)

    # -- ingest thread --------------------------------------------------

    def _paced(self, source):
        """Map the stream's virtual time onto wall time.

        Sleeps in :data:`PACE_SLICE` slices so a shutdown request
        interrupts the pacer within one slice; records how far wall
        clock has slipped behind the schedule as ``ingest_lag_s``.
        """
        speed = self.pace
        if speed <= 0:
            for txn in source:
                if self._stop.is_set():
                    return
                yield txn
            return
        wall0 = time.monotonic()
        virtual0 = None
        for txn in source:
            if virtual0 is None:
                virtual0 = txn.ts
            target = (txn.ts - virtual0) / speed
            while not self._stop.is_set():
                ahead = target - (time.monotonic() - wall0)
                if ahead <= 0:
                    break
                time.sleep(min(ahead, PACE_SLICE))
            if self._stop.is_set():
                return
            self._lag = max(0.0, (time.monotonic() - wall0) - target)
            yield txn

    def _ingest(self):
        self.ingest_active = True
        requested_stop = False
        try:
            source = self._source
            if callable(source):
                source = source(self._stop)
            consume_batch = self.observatory.consume_batch
            buffer = []
            last_dispatch = time.monotonic()
            for txn in self._paced(source):
                buffer.append(txn)
                now = time.monotonic()
                if len(buffer) >= self.batch_size or \
                        now - last_dispatch >= self.dispatch_interval:
                    consume_batch(buffer)
                    self.txns_ingested += len(buffer)
                    buffer = []
                    last_dispatch = now
            if buffer:
                consume_batch(buffer)
                self.txns_ingested += len(buffer)
        except Exception:
            self.ingest_error = traceback.format_exc()
            logger.exception("daemon ingest failed")
        finally:
            try:
                self._finish_observatory()
            except Exception:  # pragma: no cover - double fault
                if self.ingest_error is None:
                    self.ingest_error = traceback.format_exc()
                logger.exception("final window cut failed")
            self.ingest_active = False
            if not self._stop.is_set():
                # natural end or crash: the loop must drive the drain
                if self.ingest_error is not None or self.exit_when_done:
                    requested_stop = True
            if requested_stop and self._loop is not None:
                try:
                    self._loop.call_soon_threadsafe(
                        self._request_shutdown)
                except RuntimeError:  # pragma: no cover - loop gone
                    pass

    def _finish_observatory(self):
        """Cut and flush the trailing partial window exactly once."""
        with self._finish_lock:
            if self._finished or self.observatory is None:
                return
            self._finished = True
            self.observatory.finish()

    def _on_flush(self, path):
        """Ingest-thread flush hook: reconcile one file, wake pushers."""
        if self.segments:
            # sidecar first, so the reconciled ref's cold read already
            # finds a fresh segment; best effort -- a failed build just
            # leaves the window on the text-parse path
            try:
                segmentfmt.build_segment(path)
            except OSError:
                logger.warning("segment build failed for %r", path)
        try:
            self.store.notify_flush(path)
        except Exception:  # pragma: no cover - defensive: keep ingest up
            logger.exception("notify_flush(%r) failed", path)
        self.windows_flushed += 1
        self.last_flush_unix = time.time()
        self.broker.publish_threadsafe(path)

    # -- observability --------------------------------------------------

    def _heartbeat_row(self, now):
        """One ``daemon`` row per window flush in ``_platform`` --
        the heartbeat :data:`DAEMON_RULES` evaluates."""
        return {
            "ingest_ok": 0 if self.ingest_error else 1,
            "ingest_active": 1 if self.ingest_active else 0,
            "ingest_lag_s": round(self._lag, 3),
            "windows_flushed": self.windows_flushed,
            "subscribers": self.broker.subscribers
            if self.broker is not None else 0,
            "txns": self.txns_ingested,
        }

    def status(self):
        """Live daemon section of ``/platform/health`` (not limited
        to flush boundaries, unlike the ``_platform`` heartbeat)."""
        return {
            "running": not self._stop.is_set(),
            "ingest_active": self.ingest_active,
            "ingest_ok": self.ingest_error is None,
            "windows_flushed": self.windows_flushed,
            "txns_ingested": self.txns_ingested,
            "ingest_lag_s": round(self._lag, 3),
            "subscribers": self.broker.subscribers
            if self.broker is not None else 0,
            "flushes_published": self.broker.flushes
            if self.broker is not None else 0,
            "last_flush_unix": self.last_flush_unix,
            "started_at_unix": round(self._started_unix, 1),
            "pace": self.pace,
            "window_seconds": self.window_seconds,
            "shards": self.shards,
        }
