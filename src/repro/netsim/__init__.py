"""IP-layer substrate: packets, hop inference, AS attribution, Hilbert maps.

The Observatory parses "raw packets, starting at the IP header"
(Section 2.1), infers router hop counts from the IP TTL (Section 3.5,
[39]), attributes nameserver IPs to Autonomous Systems via Route Views
data (Section 3.3), and renders the nameserver address space on a
Hilbert space-filling curve (Figure 6).  This subpackage provides all
of those building blocks:

* :mod:`~repro.netsim.addr` -- address/prefix arithmetic;
* :mod:`~repro.netsim.packet` -- IPv4/IPv6 + UDP header codecs;
* :mod:`~repro.netsim.hops` -- initial-TTL hop-count inference;
* :mod:`~repro.netsim.asdb` -- longest-prefix-match ASN table;
* :mod:`~repro.netsim.asnames` -- AS-name registry and organization
  name extraction;
* :mod:`~repro.netsim.hilbert` -- Hilbert curve /24 heatmaps;
* :mod:`~repro.netsim.latency` -- resolver-to-nameserver delay model.
"""

from repro.netsim.addr import (
    ipv4_from_int,
    ipv4_prefix_of,
    ipv4_to_int,
    prefix_contains,
    slash24_of,
)
from repro.netsim.asdb import AsDatabase
from repro.netsim.asnames import AsNameRegistry, extract_org
from repro.netsim.hilbert import HilbertHeatmap, d2xy, xy2d
from repro.netsim.hops import infer_hops, infer_initial_ttl
from repro.netsim.latency import DelayModel, PathProfile
from repro.netsim.packet import UdpDatagram, build_udp_ipv4, parse_ip_packet

__all__ = [
    "ipv4_from_int",
    "ipv4_prefix_of",
    "ipv4_to_int",
    "prefix_contains",
    "slash24_of",
    "AsDatabase",
    "AsNameRegistry",
    "extract_org",
    "HilbertHeatmap",
    "d2xy",
    "xy2d",
    "infer_hops",
    "infer_initial_ttl",
    "DelayModel",
    "PathProfile",
    "UdpDatagram",
    "build_udp_ipv4",
    "parse_ip_packet",
]
