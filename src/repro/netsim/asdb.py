"""Longest-prefix-match IP-to-ASN database.

Section 3.3: "we associate each IP address in our Top-100K nameserver
list with its corresponding AS number, using the data collected by the
University of Oregon's Route Views project".  This module provides the
lookup machinery; in the reproduction the table is populated from the
simulator's topology (and can be loaded from a Route-Views-style TSV).

The implementation indexes prefixes by length and masks the queried
address per populated length, longest first -- at most 33 dict probes
per IPv4 lookup, cache-friendly and allocation-free.
"""

from repro.netsim.addr import ipv4_prefix_of, ipv4_to_int, is_ipv6, ipv6_to_int


class AsDatabase:
    """IP prefix -> ASN longest-prefix-match table (IPv4 and IPv6)."""

    def __init__(self):
        # prefixlen -> {network_int: asn}
        self._v4 = {}
        self._v6 = {}
        self._v4_lengths = ()
        self._v6_lengths = ()

    def add_prefix(self, prefix, asn):
        """Register ``prefix`` (e.g. ``"192.0.2.0/24"``) as announced
        by *asn*.  Later registrations of the same prefix overwrite."""
        network, _, lenstr = prefix.partition("/")
        if not lenstr:
            raise ValueError("prefix must include a length: %r" % (prefix,))
        prefixlen = int(lenstr)
        if is_ipv6(network):
            if not 0 <= prefixlen <= 128:
                raise ValueError("bad IPv6 prefix length: %r" % (prefix,))
            value = ipv6_to_int(network)
            mask = ((1 << 128) - 1) ^ ((1 << (128 - prefixlen)) - 1)
            table = self._v6.setdefault(prefixlen, {})
            table[value & mask] = int(asn)
            self._v6_lengths = tuple(sorted(self._v6, reverse=True))
        else:
            if not 0 <= prefixlen <= 32:
                raise ValueError("bad IPv4 prefix length: %r" % (prefix,))
            network_int = ipv4_prefix_of(network, prefixlen)
            table = self._v4.setdefault(prefixlen, {})
            table[network_int] = int(asn)
            self._v4_lengths = tuple(sorted(self._v4, reverse=True))

    def lookup(self, address):
        """Return the ASN announcing *address*, or None (no covering
        prefix -- unrouted space)."""
        if is_ipv6(address):
            value = ipv6_to_int(address)
            for prefixlen in self._v6_lengths:
                mask = ((1 << 128) - 1) ^ ((1 << (128 - prefixlen)) - 1)
                asn = self._v6[prefixlen].get(value & mask)
                if asn is not None:
                    return asn
            return None
        value = ipv4_to_int(address)
        for prefixlen in self._v4_lengths:
            shifted = (value >> (32 - prefixlen) << (32 - prefixlen)
                       if prefixlen else 0)
            asn = self._v4[prefixlen].get(shifted)
            if asn is not None:
                return asn
        return None

    def __len__(self):
        return sum(len(t) for t in self._v4.values()) + \
            sum(len(t) for t in self._v6.values())

    @classmethod
    def from_tsv(cls, lines):
        """Load from Route-Views-style TSV lines: ``prefix<TAB>asn``."""
        db = cls()
        for raw in lines:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            prefix, asn = line.split("\t")[:2]
            db.add_prefix(prefix, int(asn))
        return db

    def to_tsv(self):
        """Dump as TSV lines (IPv4 only, for readability in tests)."""
        from repro.netsim.addr import ipv4_from_int

        lines = []
        for prefixlen in sorted(self._v4):
            for network, asn in sorted(self._v4[prefixlen].items()):
                lines.append("%s/%d\t%d" % (ipv4_from_int(network), prefixlen, asn))
        return lines
