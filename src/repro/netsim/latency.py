"""Resolver-to-nameserver delay model.

Section 3.5: "this delay generally comes from two sources: the
Internet transmission delay, and the server processing delay", and
nameservers closer in router hops tend to respond faster.  The paper's
Figure 3a splits the delay CDF into four regimes: 0-5 ms (co-located,
3.1 % of nameservers), 5-35 ms (same country, 22.3 %), 35-350 ms
(distant, 71.5 %), >350 ms (impaired, 2.3 %).

:class:`PathProfile` is the per-(resolver, nameserver) ground truth --
hop count plus base network delay -- and :class:`DelayModel` samples a
response delay: base RTT + lognormal jitter + server processing time.
The simulator assigns profiles so that popular nameservers (CDNs,
anycast) get short paths, reproducing the rank-vs-delay correlation of
Figure 3b.
"""

import math


class PathProfile:
    """Ground-truth path between one resolver and one nameserver."""

    __slots__ = ("hops", "base_delay_ms", "server_delay_ms", "initial_ttl")

    def __init__(self, hops, base_delay_ms, server_delay_ms=1.0,
                 initial_ttl=64):
        if hops < 1:
            raise ValueError("a path has at least one hop")
        if base_delay_ms < 0 or server_delay_ms < 0:
            raise ValueError("delays must be non-negative")
        #: router hops between resolver and nameserver
        self.hops = int(hops)
        #: one-way-ish base network RTT contribution in milliseconds
        self.base_delay_ms = float(base_delay_ms)
        #: nameserver processing time in milliseconds
        self.server_delay_ms = float(server_delay_ms)
        #: initial TTL the nameserver's OS uses (for hop inference)
        self.initial_ttl = int(initial_ttl)

    @classmethod
    def from_distance_class(cls, distance_class, rng, initial_ttl=64):
        """Build a profile for one of the paper's four delay regimes.

        ``distance_class`` is one of ``"colocated"``, ``"regional"``,
        ``"distant"``, ``"impaired"`` (Figure 3a sections 1-4).
        """
        if distance_class == "colocated":
            hops = rng.randint(1, 4)
            base = rng.uniform(0.2, 4.0)
        elif distance_class == "regional":
            hops = rng.randint(4, 10)
            base = rng.uniform(5.0, 35.0)
        elif distance_class == "distant":
            hops = rng.randint(8, 22)
            base = rng.uniform(35.0, 300.0)
        elif distance_class == "impaired":
            hops = rng.randint(12, 30)
            base = rng.uniform(350.0, 900.0)
        else:
            raise ValueError("unknown distance class %r" % (distance_class,))
        return cls(hops=hops, base_delay_ms=base, initial_ttl=initial_ttl)


class DelayModel:
    """Sample response delays for a :class:`PathProfile`.

    delay = base + lognormal jitter (sigma scales with base) + server
    processing.  Deterministic given the caller's RNG.
    """

    def __init__(self, jitter_sigma=0.25, min_delay_ms=0.1):
        self.jitter_sigma = float(jitter_sigma)
        self.min_delay_ms = float(min_delay_ms)

    def sample_ms(self, profile, rng):
        """Return one response delay in milliseconds."""
        jitter = math.exp(rng.gauss(0.0, self.jitter_sigma))
        delay = profile.base_delay_ms * jitter + profile.server_delay_ms
        return max(delay, self.min_delay_ms)

    def expected_ms(self, profile):
        """Mean of the sampled distribution (for tests/calibration)."""
        lognormal_mean = math.exp(self.jitter_sigma ** 2 / 2.0)
        return max(
            profile.base_delay_ms * lognormal_mean + profile.server_delay_ms,
            self.min_delay_ms,
        )
