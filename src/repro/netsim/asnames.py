"""AS name registry and organization-name extraction.

Section 3.3: "for each ASN, we lookup its name using the AS Names
dataset [35].  Finally, we extract the organization name from each AS
Name string, and aggregate nameservers in groups based on the result."

AS Names strings look like ``"AMAZON-02 - Amazon.com, Inc., US"`` or
``"CLOUDFLARENET - Cloudflare, Inc., US"``; several ASes of one
operator share an organization (Table 1 reports AMAZON with 3 ASes,
VERISIGN with 7, ...).  :func:`extract_org` normalizes the leading
network tag into that shared organization name.
"""

import re

_ORG_TAG = re.compile(r"^([A-Za-z][A-Za-z0-9&.]*)")
_TRAILING_QUALIFIER = re.compile(
    r"(NET(WORK)?S?|COM|ORG|INC|LLC|AS|ASN|EU|US|INT|GLOBAL)$"
)


def extract_org(as_name):
    """Extract a normalized organization name from an AS Name string.

    ``"AMAZON-02 - Amazon.com, Inc., US"`` -> ``"AMAZON"``;
    ``"CLOUDFLARENET - Cloudflare, Inc."`` -> ``"CLOUDFLARE"``;
    ``"MICROSOFT-CORP-MSN-AS-BLOCK"`` -> ``"MICROSOFT"``.

    The heuristic mirrors the paper's aggregation: take the leading
    tag before any separator, uppercase it, and strip common suffixes
    (numeric qualifiers, NET/COM/INC/AS...).
    """
    if not as_name:
        return "UNKNOWN"
    head = as_name.split(" - ")[0].split(",")[0].strip()
    # Keep only the first dash-free tag plus handle NAME-NN qualifiers.
    tag = head.split(" ")[0]
    parts = tag.split("-")
    base = parts[0].upper()
    match = _ORG_TAG.match(base)
    if match:
        base = match.group(1).upper()
    # CLOUDFLARENET -> CLOUDFLARE, GOOGLENET -> GOOGLE, but do not
    # truncate short names (PCH must stay PCH).
    stripped = _TRAILING_QUALIFIER.sub("", base)
    if len(stripped) >= 4:
        base = stripped
    return base or "UNKNOWN"


class AsNameRegistry:
    """ASN -> AS Name mapping with organization grouping."""

    def __init__(self):
        self._names = {}

    def add(self, asn, as_name):
        """Register *as_name* for *asn*."""
        self._names[int(asn)] = as_name

    def name(self, asn):
        """Return the raw AS Name string, or ``"AS<asn>"`` if unknown."""
        if asn is None:
            return "UNKNOWN"
        return self._names.get(int(asn), "AS%d" % asn)

    def org(self, asn):
        """Return the extracted organization name for *asn*."""
        if asn is None:
            return "UNKNOWN"
        name = self._names.get(int(asn))
        return extract_org(name) if name else "AS%d" % asn

    def __len__(self):
        return len(self._names)

    def __contains__(self, asn):
        return int(asn) in self._names

    def asns_of_org(self, org):
        """Return the sorted list of ASNs whose org name equals *org*."""
        return sorted(
            asn for asn, name in self._names.items() if extract_org(name) == org
        )

    @classmethod
    def from_tsv(cls, lines):
        """Load from TSV lines: ``asn<TAB>as_name``."""
        reg = cls()
        for raw in lines:
            line = raw.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            asn, name = line.split("\t", 1)
            reg.add(int(asn), name)
        return reg
