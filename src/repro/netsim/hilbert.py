"""Hilbert space-filling curve heatmaps of the IPv4 space (Figure 6).

The paper visualizes "all observed IPv4 addresses of authoritative
nameservers" with the ipv4-heatmap tool [68]: "each pixel corresponds
to a /24 prefix" laid out along a 12th-order Hilbert curve (2^24 /24
prefixes -> a 4096 x 4096 grid), which keeps numerically adjacent
prefixes visually adjacent.

This module implements the curve mapping (the classic Lam & Shapiro
d2xy/xy2d iteration) and a :class:`HilbertHeatmap` accumulator that
counts addresses per /24 and can render a downsampled density grid or
ASCII art for terminal inspection.
"""

from repro.netsim.addr import ipv4_to_int


def d2xy(order, d):
    """Map curve position *d* to (x, y) on a 2^order x 2^order grid."""
    n = 1 << order
    if not 0 <= d < n * n:
        raise ValueError("d out of range for order %d" % order)
    x = y = 0
    t = d
    s = 1
    while s < n:
        rx = 1 & (t // 2)
        ry = 1 & (t ^ rx)
        # Rotate quadrant
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        x += s * rx
        y += s * ry
        t //= 4
        s *= 2
    return x, y


def xy2d(order, x, y):
    """Inverse of :func:`d2xy`."""
    n = 1 << order
    if not (0 <= x < n and 0 <= y < n):
        raise ValueError("coordinates out of range for order %d" % order)
    d = 0
    s = n // 2
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        d += s * s * ((3 * rx) ^ ry)
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        s //= 2
    return d


class HilbertHeatmap:
    """Count IPv4 addresses per /24 prefix along the Hilbert curve.

    Parameters
    ----------
    order:
        Hilbert curve order of the *output* grid.  The canonical
        ipv4-heatmap uses order 12 (one pixel per /24); lower orders
        aggregate 4^(12-order) /24s per cell, handy for ASCII output.
    """

    FULL_ORDER = 12  # 2^24 /24-prefixes = (2^12)^2 grid

    def __init__(self, order=12):
        if not 1 <= order <= self.FULL_ORDER:
            raise ValueError("order must be in [1, 12]")
        self.order = order
        self._counts = {}  # /24 index -> address count

    def add(self, address):
        """Record one observed IPv4 address."""
        index = ipv4_to_int(address) >> 8  # /24 index, 24 bits
        self._counts[index] = self._counts.get(index, 0) + 1

    def add_count(self, slash24_index, count=1):
        """Record *count* addresses for a raw /24 index (0..2^24-1)."""
        if not 0 <= slash24_index < (1 << 24):
            raise ValueError("slash24 index out of range")
        self._counts[slash24_index] = self._counts.get(slash24_index, 0) + count

    @property
    def populated_prefixes(self):
        """Number of distinct /24 prefixes with at least one address."""
        return len(self._counts)

    def prefix_density_histogram(self):
        """Return ``{addresses_in_prefix: number_of_prefixes}``.

        Section 3.7 reports 48 % of observed /24s holding a single
        nameserver address, 24 % two, 7.7 % three -- this is exactly
        that distribution.
        """
        hist = {}
        for count in self._counts.values():
            hist[count] = hist.get(count, 0) + 1
        return hist

    def grid(self):
        """Render a dense 2^order x 2^order count grid (list of rows).

        Each /24 is placed at its order-12 Hilbert position and then
        downsampled into the requested output order by integer
        division of the coordinates, preserving locality.
        """
        size = 1 << self.order
        shift = self.FULL_ORDER - self.order
        rows = [[0] * size for _ in range(size)]
        for index, count in self._counts.items():
            x, y = d2xy(self.FULL_ORDER, index)
            rows[y >> shift][x >> shift] += count
        return rows

    def to_pgm(self, path):
        """Write the grid as a plain PGM grayscale image.

        The canonical ipv4-heatmap [68] renders a PNG; plain PGM (P2)
        needs no imaging libraries and opens in any viewer.  Intensity
        is log-scaled density, 0 = empty.
        """
        rows = self.grid()
        peak = max((c for row in rows for c in row), default=0)
        maxval = 255
        with open(path, "w", encoding="ascii") as fh:
            fh.write("P2\n# repro DNS Observatory Figure 6\n")
            fh.write("%d %d\n%d\n" % (len(rows[0]), len(rows), maxval))
            peak_bits = peak.bit_length() if peak else 1
            for row in rows:
                fh.write(" ".join(
                    str(0 if c == 0 else
                        max(32, min(maxval,
                                    round(c.bit_length() / peak_bits
                                          * maxval))))
                    for c in row) + "\n")
        return path

    def to_ascii(self, shades=" .:-=+*#%@"):
        """Render the grid as ASCII art (log-scaled density)."""
        rows = self.grid()
        peak = max((c for row in rows for c in row), default=0)
        if peak == 0:
            return "\n".join("".join(shades[0] for _ in row) for row in rows)
        out = []
        levels = len(shades) - 1
        for row in rows:
            line = []
            for count in row:
                if count == 0:
                    line.append(shades[0])
                else:
                    # log scale: 1 address -> lowest ink, peak -> full ink
                    frac = (count.bit_length() / peak.bit_length()) if peak > 1 else 1.0
                    line.append(shades[max(1, min(levels, round(frac * levels)))])
            out.append("".join(line))
        return "\n".join(out)
