"""IPv4/IPv6 + UDP header codecs.

The SIE sensors submit "raw packets, starting at the IP header"
(Section 2.1); the Observatory's preprocessor parses the IP and UDP
headers to recover addresses, ports, payload, and the IP TTL used for
hop-count inference.  These codecs implement exactly that: enough of
RFC 791 / RFC 8200 / RFC 768 to build and parse DNS-over-UDP packets,
including a correct IPv4 header checksum.
"""

import ipaddress
import struct

from repro.netsim.addr import ipv4_from_int, ipv4_to_int

PROTO_UDP = 17
PROTO_TCP = 6
IPV4_HEADER_LEN = 20
IPV6_HEADER_LEN = 40
UDP_HEADER_LEN = 8
TCP_HEADER_LEN = 20


class PacketError(ValueError):
    """Raised for malformed or unsupported packets."""


class UdpDatagram:
    """Parsed view of an IP packet carrying DNS (UDP/53 or TCP/53).

    For TCP segments the ``payload`` already has the RFC 1035 §4.2.2
    two-byte length prefix stripped, so it is a bare DNS message in
    both cases.  (The name is historical; ``transport`` tells which.)
    """

    __slots__ = ("src_ip", "dst_ip", "src_port", "dst_port", "ttl",
                 "payload", "ip_version", "transport")

    def __init__(self, src_ip, dst_ip, src_port, dst_port, ttl, payload,
                 ip_version=4, transport="udp"):
        self.src_ip = src_ip
        self.dst_ip = dst_ip
        self.src_port = src_port
        self.dst_port = dst_port
        #: IPv4 TTL or IPv6 hop limit as observed on the wire
        self.ttl = ttl
        self.payload = payload
        self.ip_version = ip_version
        #: "udp" or "tcp"
        self.transport = transport

    def __repr__(self):
        return "UdpDatagram(%s:%d -> %s:%d, %s, ttl=%d, %d bytes)" % (
            self.src_ip, self.src_port, self.dst_ip, self.dst_port,
            self.transport, self.ttl, len(self.payload),
        )


def ipv4_checksum(header):
    """RFC 791 ones'-complement header checksum."""
    if len(header) % 2:
        header += b"\x00"
    total = sum(struct.unpack(">%dH" % (len(header) // 2), header))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


def build_udp_ipv4(src_ip, dst_ip, src_port, dst_port, payload, ttl=64):
    """Build a complete IPv4/UDP packet carrying *payload*."""
    udp_length = UDP_HEADER_LEN + len(payload)
    total_length = IPV4_HEADER_LEN + udp_length
    if total_length > 0xFFFF:
        raise PacketError("payload too large for IPv4")
    header = struct.pack(
        ">BBHHHBBHII",
        (4 << 4) | 5,          # version 4, IHL 5 words
        0,                      # DSCP/ECN
        total_length,
        0,                      # identification
        0,                      # flags/fragment offset
        ttl,
        PROTO_UDP,
        0,                      # checksum placeholder
        ipv4_to_int(src_ip),
        ipv4_to_int(dst_ip),
    )
    checksum = ipv4_checksum(header)
    header = header[:10] + struct.pack(">H", checksum) + header[12:]
    # UDP checksum 0 is legal over IPv4 ("no checksum computed").
    udp = struct.pack(">HHHH", src_port, dst_port, udp_length, 0)
    return header + udp + payload


def build_udp_ipv6(src_ip, dst_ip, src_port, dst_port, payload, hop_limit=64):
    """Build a complete IPv6/UDP packet carrying *payload*.

    The mandatory IPv6 UDP checksum is computed over the standard
    pseudo-header.
    """
    udp_length = UDP_HEADER_LEN + len(payload)
    src = ipaddress.IPv6Address(src_ip).packed
    dst = ipaddress.IPv6Address(dst_ip).packed
    header = struct.pack(
        ">IHBB", 6 << 28, udp_length, PROTO_UDP, hop_limit
    ) + src + dst
    pseudo = src + dst + struct.pack(">IHBB", udp_length, 0, 0, PROTO_UDP)
    udp_zero = struct.pack(">HHHH", src_port, dst_port, udp_length, 0)
    checksum = ipv4_checksum(pseudo + udp_zero + payload)
    if checksum == 0:
        checksum = 0xFFFF
    udp = struct.pack(">HHHH", src_port, dst_port, udp_length, checksum)
    return header + udp + payload


def build_dns_tcp_ipv4(src_ip, dst_ip, src_port, dst_port, dns_payload,
                       ttl=64, seq=1):
    """Build an IPv4/TCP segment carrying one DNS message.

    DNS-over-TCP prefixes the message with a two-byte length
    (RFC 1035 §4.2.2).  This builder emits a single PSH+ACK segment --
    the common case for DNS responses that fit one MSS -- which is
    what a passive sensor reassembling simple TCP/53 flows sees.

    The paper treats TCP/53 as future work (<3 % of traffic); this
    implements that extension.
    """
    if len(dns_payload) > 0xFFFF:
        raise PacketError("DNS message too large for TCP framing")
    framed = struct.pack(">H", len(dns_payload)) + dns_payload
    total_length = IPV4_HEADER_LEN + TCP_HEADER_LEN + len(framed)
    if total_length > 0xFFFF:
        raise PacketError("segment too large for IPv4")
    header = struct.pack(
        ">BBHHHBBHII",
        (4 << 4) | 5, 0, total_length, 0, 0, ttl, PROTO_TCP, 0,
        ipv4_to_int(src_ip), ipv4_to_int(dst_ip),
    )
    checksum = ipv4_checksum(header)
    header = header[:10] + struct.pack(">H", checksum) + header[12:]
    tcp = struct.pack(
        ">HHIIBBHHH",
        src_port, dst_port, seq, 0,
        (TCP_HEADER_LEN // 4) << 4,  # data offset, no options
        0x18,                         # PSH | ACK
        0xFFFF, 0, 0,                 # window, checksum (0), urgent
    )
    return header + tcp + framed


def parse_ip_packet(packet):
    """Parse an IPv4 or IPv6 packet into a :class:`UdpDatagram`.

    UDP/53 and single-segment TCP/53 (with the RFC 1035 length
    prefix) are supported.
    """
    if not packet:
        raise PacketError("empty packet")
    version = packet[0] >> 4
    if version == 4:
        return _parse_ipv4(packet)
    if version == 6:
        return _parse_ipv6(packet)
    raise PacketError("unknown IP version %d" % version)


def _parse_ipv4(packet):
    if len(packet) < IPV4_HEADER_LEN:
        raise PacketError("truncated IPv4 header")
    ihl = (packet[0] & 0x0F) * 4
    if ihl < IPV4_HEADER_LEN or len(packet) < ihl:
        raise PacketError("bad IPv4 IHL")
    total_length, = struct.unpack_from(">H", packet, 2)
    ttl = packet[8]
    proto = packet[9]
    src = ipv4_from_int(struct.unpack_from(">I", packet, 12)[0])
    dst = ipv4_from_int(struct.unpack_from(">I", packet, 16)[0])
    if total_length > len(packet):
        raise PacketError("IPv4 total length exceeds capture")
    transport = packet[ihl:total_length]
    if proto == PROTO_UDP:
        return _parse_udp(transport, src, dst, ttl, 4)
    if proto == PROTO_TCP:
        return _parse_tcp(transport, src, dst, ttl, 4)
    raise PacketError("unsupported protocol %d" % proto)


def _parse_ipv6(packet):
    if len(packet) < IPV6_HEADER_LEN:
        raise PacketError("truncated IPv6 header")
    payload_length, next_header, hop_limit = struct.unpack_from(">HBB", packet, 4)
    src = str(ipaddress.IPv6Address(packet[8:24]))
    dst = str(ipaddress.IPv6Address(packet[24:40]))
    transport = packet[IPV6_HEADER_LEN:IPV6_HEADER_LEN + payload_length]
    if next_header == PROTO_UDP:
        return _parse_udp(transport, src, dst, hop_limit, 6)
    if next_header == PROTO_TCP:
        return _parse_tcp(transport, src, dst, hop_limit, 6)
    raise PacketError("unsupported next header %d" % next_header)


def _parse_tcp(tcp, src, dst, ttl, version):
    if len(tcp) < TCP_HEADER_LEN:
        raise PacketError("truncated TCP header")
    src_port, dst_port = struct.unpack_from(">HH", tcp, 0)
    data_offset = (tcp[12] >> 4) * 4
    if data_offset < TCP_HEADER_LEN or data_offset > len(tcp):
        raise PacketError("bad TCP data offset")
    segment = tcp[data_offset:]
    if len(segment) < 2:
        raise PacketError("TCP segment without DNS length prefix")
    (dns_length,) = struct.unpack_from(">H", segment, 0)
    if 2 + dns_length > len(segment):
        raise PacketError("truncated DNS-over-TCP message")
    payload = segment[2:2 + dns_length]
    return UdpDatagram(src, dst, src_port, dst_port, ttl, payload,
                       version, transport="tcp")


def _parse_udp(udp, src, dst, ttl, version):
    if len(udp) < UDP_HEADER_LEN:
        raise PacketError("truncated UDP header")
    src_port, dst_port, udp_length, _ = struct.unpack_from(">HHHH", udp, 0)
    if udp_length < UDP_HEADER_LEN or udp_length > len(udp):
        raise PacketError("bad UDP length")
    payload = udp[UDP_HEADER_LEN:udp_length]
    return UdpDatagram(src, dst, src_port, dst_port, ttl, payload, version)
