"""IPv4/IPv6 address and prefix arithmetic helpers.

Thin, allocation-light wrappers used on the simulator and analysis hot
paths, where ``ipaddress`` object churn would dominate runtime.
"""

import ipaddress
import struct


def ipv4_to_int(address):
    """``"192.0.2.1"`` -> ``0xC0000201``."""
    parts = address.split(".")
    if len(parts) != 4:
        raise ValueError("invalid IPv4 address: %r" % (address,))
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError("invalid IPv4 octet in %r" % (address,))
        value = (value << 8) | octet
    return value


def ipv4_from_int(value):
    """``0xC0000201`` -> ``"192.0.2.1"``."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError("IPv4 integer out of range: %r" % (value,))
    return "%d.%d.%d.%d" % (
        value >> 24 & 0xFF, value >> 16 & 0xFF, value >> 8 & 0xFF, value & 0xFF
    )


def ipv4_prefix_of(address, prefixlen):
    """Return the network integer of *address* under *prefixlen*."""
    if not 0 <= prefixlen <= 32:
        raise ValueError("prefixlen out of range: %r" % (prefixlen,))
    value = address if isinstance(address, int) else ipv4_to_int(address)
    if prefixlen == 0:
        return 0
    mask = (0xFFFFFFFF << (32 - prefixlen)) & 0xFFFFFFFF
    return value & mask


def slash24_of(address):
    """Return the /24 prefix string of an IPv4 address.

    ``"192.0.2.77"`` -> ``"192.0.2.0/24"``.  Figures 5 and 6 of the
    paper count nameservers per /24.
    """
    network = ipv4_prefix_of(address, 24)
    return "%s/24" % ipv4_from_int(network)


def prefix_contains(network, prefixlen, address):
    """True when IPv4 *address* falls inside ``network/prefixlen``."""
    return ipv4_prefix_of(address, prefixlen) == ipv4_prefix_of(network, prefixlen)


def is_ipv6(address):
    """Cheap IPv6 test: presence of a colon."""
    return ":" in address


def ipv6_to_int(address):
    """Full 128-bit integer of an IPv6 address string."""
    return int(ipaddress.IPv6Address(address))


def ipv6_from_int(value):
    """128-bit integer -> canonical IPv6 string."""
    return str(ipaddress.IPv6Address(value))


def pack_ipv4(address):
    """IPv4 string -> 4 packed bytes."""
    return struct.pack(">I", ipv4_to_int(address))


def unpack_ipv4(data):
    """4 packed bytes -> IPv4 string."""
    (value,) = struct.unpack(">I", data)
    return ipv4_from_int(value)
