"""Hop-count inference from the observed IP TTL.

Section 3.5 derives "the number of network hops between resolvers and
nameservers ... from the IP initial TTL value", citing the hop-count
filtering technique of Jin, Wang & Shin (CCS 2003): operating systems
initialize the TTL to one of a few well-known values (32, 64, 128,
255); a router decrements it once per hop, so the initial value can be
recovered as the smallest ladder value >= the observed TTL, and the
hop count is their difference.
"""

#: Well-known initial TTL values, ascending.
INITIAL_TTL_LADDER = (32, 64, 128, 255)


def infer_initial_ttl(observed_ttl):
    """Return the inferred initial TTL for an observed on-wire TTL."""
    if not 0 <= observed_ttl <= 255:
        raise ValueError("TTL out of range: %r" % (observed_ttl,))
    for rung in INITIAL_TTL_LADDER:
        if observed_ttl <= rung:
            return rung
    return 255


def infer_hops(observed_ttl):
    """Return the inferred router hop count for an observed TTL.

    A host one router away sends TTL 64 and we observe 63 -> 1 hop.
    The inference under-counts when the true path exceeds the gap to
    the next ladder rung (e.g. >32 hops from a TTL-64 sender), which
    is rare on the real Internet and in our simulation.
    """
    return infer_initial_ttl(observed_ttl) - observed_ttl


def ttl_after_path(initial_ttl, hops):
    """Forward model: the TTL observed after *hops* routers.

    Used by the simulator to emit packets whose TTLs are consistent
    with the ground-truth path length, so the inference above can be
    validated end to end.
    """
    if hops < 0:
        raise ValueError("hops must be >= 0")
    remaining = initial_ttl - hops
    if remaining <= 0:
        raise ValueError(
            "packet would be dropped: %d hops exceeds TTL %d" % (hops, initial_ttl)
        )
    return remaining
