"""Plain-text table rendering for the analysis reports.

The benchmark harness prints each reproduced table/figure as text;
this module keeps the formatting in one place.
"""


def format_table(headers, rows, title=None, align=None):
    """Render *rows* (sequences of cells) under *headers* as text.

    ``align`` is an optional string of 'l'/'r' per column (default:
    right-align numbers, left-align everything else, judged per cell).
    """
    headers = [str(h) for h in headers]
    str_rows = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))

    def fmt_row(cells, pads):
        parts = []
        for i, cell in enumerate(cells):
            width = widths[i] if i < len(widths) else len(cell)
            if pads[i] == "r":
                parts.append(cell.rjust(width))
            else:
                parts.append(cell.ljust(width))
        return "  ".join(parts).rstrip()

    if align is None:
        pads = ["l"] * len(widths)
        for row in str_rows:
            for i, cell in enumerate(row):
                if _is_number(cell):
                    pads[i] = "r"
    else:
        pads = list(align) + ["l"] * (len(widths) - len(align))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), 8))
    lines.append(fmt_row(headers, pads))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(fmt_row(row, pads))
    return "\n".join(lines)


def format_percent(value, digits=1):
    """0.163 -> '16.3%'."""
    return "%.*f%%" % (digits, value * 100.0)


def format_count(value):
    """Humanize counts: 5026 -> '5,026'."""
    return "{:,}".format(int(round(value)))


def format_series(pairs, x_label="x", y_label="y", max_points=24):
    """Render an (x, y) series as a compact two-column listing,
    downsampling evenly when longer than *max_points*."""
    pairs = list(pairs)
    if len(pairs) > max_points:
        step = len(pairs) / max_points
        pairs = [pairs[int(i * step)] for i in range(max_points)]
    return format_table([x_label, y_label],
                        [(x, _cell(y)) for x, y in pairs])


def _cell(value):
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e12:
            return str(int(value))
        return "%.2f" % value
    return str(value)


def _is_number(cell):
    try:
        float(cell.rstrip("%").replace(",", ""))
        return True
    except ValueError:
        return False
