"""Figure 9 and Section 5: Happy Eyeballs vs negative-caching TTLs.

For the top FQDNs by traffic, relate:

* the share of all responses that are *empty AAAA* (AAAA NoData --
  the ok6nil feature), and
* the quotient ``A-record TTL / negative-caching TTL`` -- "the larger
  the quotient the more likely many empty AAAA responses".

Also reproduces Section 5.3: after a domain publishes AAAA records,
its empty-AAAA share collapses while total query volume stays roughly
flat when negTTL ~ TTL.
"""

from repro.analysis.seriesops import (
    accumulate_dumps,
    key_series,
    ranked_keys,
    split_dumps_at,
)
from repro.analysis.tables import format_percent, format_table


class FqdnHappyEyeballs:
    """One Figure 9 point."""

    __slots__ = ("fqdn", "rank", "hits", "empty_aaaa_share", "a_ttl",
                 "neg_ttl", "quotient", "aaaa_queries", "aaaa_data")

    def __init__(self, fqdn, rank, row, neg_ttl, horizon=None):
        self.fqdn = fqdn
        self.rank = rank
        self.hits = row.get("hits", 0)
        answered = max(self.hits - row.get("unans", 0), 1)
        self.empty_aaaa_share = row.get("ok6nil", 0) / answered
        self.a_ttl = row.get("ttl_top1", 0) or 0
        self.neg_ttl = neg_ttl
        # Over an analysis horizon H, any TTL >= H produces at most one
        # upstream query per resolver, so the *effective* quotient
        # clamps both TTLs to H (matters only for short runs; the
        # paper's 1-month horizon dwarfs all TTLs).
        eff_a = min(self.a_ttl, horizon) if horizon else self.a_ttl
        eff_neg = min(neg_ttl, horizon) if horizon else neg_ttl
        self.quotient = (eff_a / eff_neg) if eff_neg else 0.0
        #: AAAA NoError responses and those that carried data
        self.aaaa_queries = row.get("ok6", 0)
        self.aaaa_data = max(self.aaaa_queries - row.get("ok6nil", 0), 0)

    @property
    def ipv4_only(self):
        """AAAA queries observed, essentially none answered with data."""
        return (self.aaaa_queries > 0
                and self.aaaa_data <= 0.01 * self.aaaa_queries)


def figure9(obs, negttl_lookup, dataset="qname", top_n=200, horizon=None):
    """Compute the Figure 9 series for the top-*top_n* FQDNs.

    *negttl_lookup(fqdn)* returns the domain's negative-caching TTL
    (SOA minimum) -- ground truth from the simulation, or a DNSDB /
    active-lookup source in a real deployment.  *horizon* (seconds)
    clamps TTLs to the analyzed duration when computing quotients.
    """
    rows = accumulate_dumps(obs.dumps[dataset])
    ranked = ranked_keys(rows, by="hits")[:top_n]
    points = []
    for rank, fqdn in enumerate(ranked, start=1):
        neg_ttl = negttl_lookup(fqdn)
        if neg_ttl is None:
            continue
        points.append(FqdnHappyEyeballs(fqdn, rank, rows[fqdn], neg_ttl,
                                        horizon=horizon))
    return points


def high_empty_fqdns(points, threshold=0.70):
    """FQDNs whose responses are mostly empty AAAA (the paper finds 5
    above 70 % in the top 200)."""
    return [p for p in points if p.empty_aaaa_share > threshold]


def quotient_correlation(points, quotient_threshold=2.0):
    """The paper's qualitative claim: large TTL/negTTL quotients go
    with large empty-AAAA shares.  Computed among IPv4-only FQDNs
    (domains with AAAA data have near-zero empty shares regardless of
    the quotient).  Returns the mean empty share for high-quotient vs
    low-quotient FQDNs."""
    v4only = [p for p in points if p.ipv4_only and p.a_ttl > 0]
    high = [p.empty_aaaa_share for p in v4only
            if p.quotient >= quotient_threshold]
    low = [p.empty_aaaa_share for p in v4only
           if p.quotient < quotient_threshold]
    return {
        "high_quotient_mean_share": sum(high) / len(high) if high else 0.0,
        "low_quotient_mean_share": sum(low) / len(low) if low else 0.0,
        "high_quotient_count": len(high),
        "low_quotient_count": len(low),
    }


def ipv6_rollout(obs, fqdn, rollout_ts, dataset="qname"):
    """Section 5.3: empty-AAAA share and query volume before/after a
    domain enables IPv6."""
    before_dumps, after_dumps = split_dumps_at(obs.dumps[dataset],
                                               rollout_ts)
    result = {}
    for label, dumps in (("before", before_dumps), ("after", after_dumps)):
        rows = accumulate_dumps(dumps)
        row = rows.get(fqdn, {})
        hits = row.get("hits", 0)
        answered = max(hits - row.get("unans", 0), 1)
        windows = len(dumps) or 1
        result[label] = {
            "hits_per_window": hits / windows,
            "empty_aaaa_share": row.get("ok6nil", 0) / answered,
            # AAAA responses actually carrying addresses:
            "aaaa_data_share": max(
                row.get("ok6", 0) - row.get("ok6nil", 0), 0) / answered,
        }
    return result


def render_figure9(points, highlight_threshold=0.70):
    interesting = sorted(points, key=lambda p: -p.empty_aaaa_share)[:10]
    rows = [(p.rank, p.fqdn, format_percent(p.empty_aaaa_share),
             p.a_ttl, p.neg_ttl, "%.1f" % p.quotient)
            for p in interesting]
    lines = [format_table(
        ["rank", "FQDN", "empty AAAA", "A TTL", "negTTL", "quotient"],
        rows, title="Figure 9: empty AAAA responses vs negative TTL")]
    high = high_empty_fqdns(points, highlight_threshold)
    lines.append("FQDNs with >%s empty AAAA: %d of %d"
                 % (format_percent(highlight_threshold, 0), len(high),
                    len(points)))
    corr = quotient_correlation(points)
    lines.append(
        "mean empty share: quotient>=2 -> %s (n=%d); quotient<2 -> %s (n=%d)"
        % (format_percent(corr["high_quotient_mean_share"]),
           corr["high_quotient_count"],
           format_percent(corr["low_quotient_mean_share"]),
           corr["low_quotient_count"]))
    return "\n".join(lines)


def render_ipv6_rollout(result, fqdn):
    rows = []
    for label in ("before", "after"):
        r = result[label]
        rows.append([label, "%.1f" % r["hits_per_window"],
                     format_percent(r["empty_aaaa_share"]),
                     format_percent(r["aaaa_data_share"])])
    return format_table(
        ["epoch", "queries/win", "empty AAAA", "AAAA with data"],
        rows, title="Section 5.3: IPv6 rollout for %s" % fqdn)
