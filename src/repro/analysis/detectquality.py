"""Detection quality: precision / recall / time-to-detection.

Scores the ``_detector`` meta-dataset (:mod:`repro.detect`) against
the simulator's ground-truth attack labels
(``WorkloadMix.attack_labels()``, exported by ``simulate --labels``).
Rendered by ``repro report --detect`` and asserted by the detection
quality gates in the test suite.

Scoring model
-------------
Each attack label names a victim eSLD and a kind (``tunnel`` /
``watertorture``).  A *detection* is any per-key ``_detector`` row
(``<detector>.<esld>``) with ``flagged == 1`` in any window.

* **Precision** is measured against the full malicious eSLD set: a
  tunnel victim flagged by the ``ddos`` detector is still a true
  positive -- the domain *is* under attack, the operator is right to
  look at it.  Only a flag on a never-attacked eSLD is a false
  positive.
* **Recall** is per-detector against that detector's own target kinds
  (:data:`DETECTOR_KINDS`): ``exfil`` and ``noh`` must find tunnel
  victims, ``ddos`` must find water-torture victims.
* **Time-to-detection** is the first flagged window's ``start_ts``
  minus the attack's labeled start, per detected target.
"""

import json

#: attack kinds each detector is responsible for recalling
DETECTOR_KINDS = {
    "exfil": ("tunnel",),
    "noh": ("tunnel",),
    "ddos": ("watertorture",),
}

try:
    from repro.detect import DETECTOR_DATASET
except ImportError:  # pragma: no cover - detect is a sibling package
    DETECTOR_DATASET = "_detector"


def load_labels(path):
    """Read a ground-truth label file written by ``simulate --labels``
    (a JSON list of ``{kind, esld, start, end, qps}`` dicts)."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if isinstance(payload, dict):
        payload = payload.get("attacks", [])
    return list(payload)


class DetectorScore:
    """Quality numbers for one detector against the label set."""

    __slots__ = ("name", "targets", "detections", "true_positives",
                 "false_positives", "missed", "time_to_detection")

    def __init__(self, name, targets, detections, true_positives,
                 false_positives, missed, time_to_detection):
        self.name = name
        #: eSLDs this detector should have found (its own kinds)
        self.targets = targets
        #: every eSLD the detector flagged, sorted
        self.detections = detections
        #: flagged eSLDs that were attacked (any kind)
        self.true_positives = true_positives
        #: flagged eSLDs never attacked
        self.false_positives = false_positives
        #: target eSLDs never flagged
        self.missed = missed
        #: {esld: seconds from attack start to first flagged window}
        self.time_to_detection = time_to_detection

    @property
    def precision(self):
        if not self.detections:
            return None
        return len(self.true_positives) / len(self.detections)

    @property
    def recall(self):
        if not self.targets:
            return None
        return (len(self.targets) - len(self.missed)) / len(self.targets)

    @property
    def mean_time_to_detection(self):
        if not self.time_to_detection:
            return None
        values = list(self.time_to_detection.values())
        return sum(values) / len(values)

    def as_dict(self):
        return {
            "detector": self.name,
            "targets": sorted(self.targets),
            "detections": list(self.detections),
            "true_positives": sorted(self.true_positives),
            "false_positives": sorted(self.false_positives),
            "missed": sorted(self.missed),
            "precision": self.precision,
            "recall": self.recall,
            "time_to_detection": dict(self.time_to_detection),
            "mean_time_to_detection": self.mean_time_to_detection,
        }

    def __repr__(self):
        fmt = lambda v: "-" if v is None else "%.3f" % v
        return "DetectorScore(%s, p=%s, r=%s)" % (
            self.name, fmt(self.precision), fmt(self.recall))


def first_flags(series):
    """``{detector: {esld: first flagged window start_ts}}`` from a
    time-ordered ``_detector`` series."""
    flags = {}
    for data in sorted(series, key=lambda d: d.start_ts):
        for key, row in data.rows:
            detector, sep, esld = key.partition(".")
            if not sep or not row.get("flagged"):
                continue  # summary row, or nothing flagged
            flags.setdefault(detector, {}).setdefault(esld, data.start_ts)
    return flags


def evaluate_detection(series, labels, detectors=None):
    """Score a ``_detector`` series against ground-truth *labels*.

    Parameters
    ----------
    series:
        Iterable of ``_detector`` window objects (``WindowDump`` or
        ``TimeSeriesData``).
    labels:
        Ground-truth dicts from :func:`load_labels`.
    detectors:
        Detector names to score; default: every detector appearing in
        the series plus every key of :data:`DETECTOR_KINDS` with a
        labeled target (so a detector that never emitted still scores
        recall = 0 rather than silently vanishing).

    Returns ``{detector: DetectorScore}``.
    """
    malicious = {label["esld"] for label in labels}
    starts = {}
    for label in labels:
        esld = label["esld"]
        starts[esld] = min(starts.get(esld, label["start"]),
                           label["start"])
    flags = first_flags(series)
    if detectors is None:
        names = set(flags)
        for name, kinds in DETECTOR_KINDS.items():
            if any(label["kind"] in kinds for label in labels):
                names.add(name)
        detectors = sorted(names)
    scores = {}
    for name in detectors:
        kinds = DETECTOR_KINDS.get(name, ())
        targets = {label["esld"] for label in labels
                   if label["kind"] in kinds}
        flagged = flags.get(name, {})
        detections = sorted(flagged)
        true_positives = {e for e in flagged if e in malicious}
        false_positives = {e for e in flagged if e not in malicious}
        missed = {e for e in targets if e not in flagged}
        ttd = {esld: flagged[esld] - starts[esld]
               for esld in sorted(targets - missed)}
        scores[name] = DetectorScore(
            name, targets, detections, true_positives, false_positives,
            missed, ttd)
    return scores


def detect_quality(source, labels, granularity="minutely",
                   detectors=None):
    """Evaluate detection quality from a store or a dump list.

    *source* is a :class:`~repro.observatory.store.SeriesStore` (the
    ``report --detect`` path) or an iterable of ``_detector`` windows
    straight from a pipeline.  Returns ``(series, scores)``.
    """
    if hasattr(source, "read"):
        series = source.read(DETECTOR_DATASET, granularity)
    else:
        series = [dump for dump in source
                  if dump.dataset == DETECTOR_DATASET]
    series = sorted(series, key=lambda d: d.start_ts)
    return series, evaluate_detection(series, labels,
                                      detectors=detectors)


def meets_floors(scores, precision_floor=0.9, recall_floor=0.8):
    """True when every detector with targets meets both floors (the
    acceptance gate of ``report --detect``)."""
    for score in scores.values():
        if score.precision is not None \
                and score.precision < precision_floor:
            return False
        if score.recall is not None and score.recall < recall_floor:
            return False
        if score.recall is None and score.targets:
            return False  # unreachable, but fail closed
    return True


def render_detect_quality(series, scores, precision_floor=0.9,
                          recall_floor=0.8):
    """The full ``report --detect`` text block."""
    from repro.analysis.tables import format_table

    out = []
    ok = meets_floors(scores, precision_floor, recall_floor)
    out.append("Detection quality: %s  (floors: precision >= %g, "
               "recall >= %g)" % ("PASS" if ok else "FAIL",
                                  precision_floor, recall_floor))
    if not series:
        out.append("")
        out.append("No _detector series found -- run replay/run with "
                   "--detectors to record detector output.")
        return "\n".join(out)
    out.append("Windows analyzed: %d  (t=%s .. %s)"
               % (len(series), series[0].start_ts, series[-1].start_ts))
    out.append("")
    rows = []
    fmt = lambda v: "-" if v is None else "%.3f" % v
    for name in sorted(scores):
        score = scores[name]
        rows.append([
            name,
            len(score.targets),
            len(score.detections),
            len(score.true_positives),
            len(score.false_positives),
            len(score.missed),
            fmt(score.precision),
            fmt(score.recall),
            "-" if score.mean_time_to_detection is None
            else "%.0fs" % score.mean_time_to_detection,
        ])
    out.append(format_table(
        ["detector", "targets", "flagged", "tp", "fp", "missed",
         "precision", "recall", "ttd"],
        rows, title="Per-detector quality"))
    details = []
    for name in sorted(scores):
        score = scores[name]
        for esld in score.detections:
            kind = "attacked" if esld in score.true_positives \
                else "FALSE POSITIVE"
            ttd = score.time_to_detection.get(esld)
            details.append([name, esld, kind,
                            "-" if ttd is None else "%.0fs" % ttd])
        for esld in sorted(score.missed):
            details.append([name, esld, "MISSED", "-"])
    if details:
        out.append("")
        out.append(format_table(["detector", "esld", "verdict", "ttd"],
                                details, title="Detections"))
    return "\n".join(out)
