"""Table 1: top AS organizations by DNS transaction volume.

"We associate each IP address in our Top-100K nameserver list with its
corresponding AS number ... lookup its name using the AS Names dataset
... extract the organization name ... The basic observation we make is
that the IP prefixes managed by just 10 organizations receive more
than half of the world's DNS queries."
"""

from repro.analysis.seriesops import accumulate_dumps, total_hits
from repro.analysis.tables import format_count, format_percent, format_table


class OrgRow:
    """One Table 1 row."""

    __slots__ = ("org", "asns", "hits", "servers", "delay_sum", "hops_sum")

    def __init__(self, org):
        self.org = org
        self.asns = set()
        self.hits = 0.0
        self.servers = 0
        self.delay_sum = 0.0
        self.hops_sum = 0.0

    @property
    def mean_delay(self):
        return self.delay_sum / self.hits if self.hits else 0.0

    @property
    def mean_hops(self):
        return self.hops_sum / self.hits if self.hits else 0.0


def table1(obs, asdb, asnames, dataset="srvip", top_orgs=10):
    """Compute Table 1 from the srvip tracker and the AS databases.

    Returns ``(rows, total_traffic, attributed_traffic)`` where rows
    are :class:`OrgRow`, ranked by transaction volume.
    """
    rows = accumulate_dumps(obs.dumps[dataset])
    total = total_hits(rows)
    orgs = {}
    attributed = 0.0
    for server_ip, row in rows.items():
        asn = asdb.lookup(server_ip)
        org_name = asnames.org(asn)
        org = orgs.get(org_name)
        if org is None:
            org = OrgRow(org_name)
            orgs[org_name] = org
        if asn is not None:
            org.asns.add(asn)
        hits = row.get("hits", 0)
        org.hits += hits
        org.servers += 1
        org.delay_sum += row.get("delay_q50", 0.0) * hits
        org.hops_sum += row.get("hops_q50", 0.0) * hits
        attributed += hits
    ranked = sorted(orgs.values(), key=lambda o: (-o.hits, o.org))
    return ranked[:top_orgs], total, attributed


def top_share(ranked_rows, total):
    """Combined traffic share of the listed organizations."""
    if not total:
        return 0.0
    return sum(row.hits for row in ranked_rows) / total


def render_table1(ranked_rows, total):
    lines = []
    table_rows = []
    for i, org in enumerate(ranked_rows, start=1):
        table_rows.append([
            i, org.org, len(org.asns),
            format_percent(org.hits / total if total else 0.0),
            format_count(org.servers),
            "%.1f" % org.mean_delay,
            "%.1f" % org.mean_hops,
        ])
    lines.append(format_table(
        ["#", "Name", "ASes", "global", "servers", "delay", "hops"],
        table_rows, title="Table 1: Top AS organizations"))
    lines.append("combined share of listed orgs: %s"
                 % format_percent(top_share(ranked_rows, total)))
    return "\n".join(lines)
