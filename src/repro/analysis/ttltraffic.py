"""Figures 7 and 8: how TTL changes drive query volumes (Section 4.1).

* Figure 7: the xmsecu.com case -- a TTL slash from minutes to seconds
  multiplies the query rate once old cache entries drain;
* Figure 8: across the top SLDs by traffic change between two epochs,
  TTL decreases correlate with traffic increases (roughly inverse);
  up-TTL/up-traffic "inconsistent" cases are mostly query-only growth
  (NXDOMAIN/junk), which the paper traces via response rates.
"""

from repro.analysis.seriesops import (
    accumulate_dumps,
    key_series,
    split_dumps_at,
)
from repro.analysis.tables import format_series, format_table


def ttl_traffic_timeseries(dumps, key):
    """Figure 7: per-window (start_ts, hits, ttl_top1) for one object."""
    series = []
    for dump in dumps:
        row = dump.row_map().get(key)
        if row is None:
            series.append((dump.start_ts, 0, None))
        else:
            series.append((dump.start_ts, row.get("hits", 0),
                           row.get("ttl_top1", None)))
    return series


def figure7(obs, key, dataset="esld", change_at=None):
    """The Figure 7 case study for one domain key.

    Returns a dict with the raw series and before/after rates (the
    after-epoch starts one old-TTL past the change to let caches
    drain, when *change_at* is given).
    """
    dumps = obs.dumps[dataset]
    series = ttl_traffic_timeseries(dumps, key)
    result = {"series": series}
    if change_at is not None and dumps:
        before = [hits for ts, hits, _ in series if ts < change_at]
        # Old TTL: traffic-weighted mode of the pre-change windows.
        votes = {}
        for ts, hits, ttl in series:
            if ts < change_at and ttl:
                votes[ttl] = votes.get(ttl, 0) + max(hits, 1)
        ttl_before = max(votes.items(), key=lambda kv: kv[1])[0] \
            if votes else 0
        # Entries cached under the old TTL drain before the new rate
        # shows; clamp the settling point inside the observed range.
        settle = change_at + ttl_before
        last_ts = series[-1][0] if series else change_at
        if settle >= last_ts:
            settle = change_at
        after = [hits for ts, hits, _ in series if ts >= settle]
        result["rate_before"] = sum(before) / len(before) if before else 0.0
        result["rate_after"] = sum(after) / len(after) if after else 0.0
        result["amplification"] = (
            result["rate_after"] / result["rate_before"]
            if result["rate_before"] else float("inf"))
    return result


class SldChange:
    """One Figure 8 point: an SLD's TTL and traffic change."""

    __slots__ = ("key", "ttl_before", "ttl_after", "queries_before",
                 "queries_after", "responses_before", "responses_after")

    def __init__(self, key, before_row, after_row):
        self.key = key
        self.ttl_before = before_row.get("ttl_top1", 0)
        self.ttl_after = after_row.get("ttl_top1", 0)
        self.queries_before = before_row.get("hits", 0)
        self.queries_after = after_row.get("hits", 0)
        resp_b = before_row.get("hits", 0) - before_row.get("unans", 0) \
            - before_row.get("nxd", 0)
        resp_a = after_row.get("hits", 0) - after_row.get("unans", 0) \
            - after_row.get("nxd", 0)
        self.responses_before = max(resp_b, 0)
        self.responses_after = max(resp_a, 0)

    @property
    def ttl_change(self):
        return self.ttl_after - self.ttl_before

    @property
    def traffic_change(self):
        return self.queries_after - self.queries_before

    @property
    def query_only_growth(self):
        """Queries grew but successful responses did not -- the
        paper's explanation for most up-TTL/up-traffic cases."""
        return (self.traffic_change > 0
                and self.responses_after <= self.responses_before * 1.1)


def figure8(obs, split_ts, dataset="esld", top_n=100):
    """Two-epoch TTL-vs-traffic comparison.

    Returns the top-*top_n* :class:`SldChange` by absolute traffic
    change, restricted to keys present in both epochs with a TTL
    reading.
    """
    before_dumps, after_dumps = split_dumps_at(obs.dumps[dataset], split_ts)
    before = accumulate_dumps(before_dumps)
    after = accumulate_dumps(after_dumps)
    changes = []
    for key in set(before) & set(after):
        b, a = before[key], after[key]
        if not b.get("ttl_top1") or not a.get("ttl_top1"):
            continue
        changes.append(SldChange(key, b, a))
    changes.sort(key=lambda c: -abs(c.traffic_change))
    return changes[:top_n]


def figure8_summary(changes):
    """The Figure 8 quadrant counts + the query-only diagnosis."""
    ttl_down = [c for c in changes if c.ttl_change < 0]
    ttl_up = [c for c in changes if c.ttl_change > 0]
    down_traffic_up = sum(1 for c in ttl_down if c.traffic_change > 0)
    up_traffic_up = [c for c in ttl_up if c.traffic_change > 0]
    up_traffic_down = sum(1 for c in ttl_up if c.traffic_change < 0)
    return {
        "ttl_down": len(ttl_down),
        "ttl_down_traffic_up": down_traffic_up,
        "ttl_up": len(ttl_up),
        "ttl_up_traffic_up": len(up_traffic_up),
        "ttl_up_traffic_down": up_traffic_down,
        "ttl_up_traffic_up_query_only": sum(
            1 for c in up_traffic_up if c.query_only_growth),
    }


def render_figure7(result, key):
    lines = [format_series(
        [("%ds" % ts, hits) for ts, hits, _ in result["series"]],
        x_label="window", y_label="queries (%s)" % key)]
    if "amplification" in result:
        lines.append(
            "rate before %.2f/win, after %.2f/win, amplification %.1fx"
            % (result["rate_before"], result["rate_after"],
               result["amplification"]))
    return "\n".join(lines)


def render_figure8(changes, summary):
    rows = [(c.key, c.ttl_before, c.ttl_after, round(c.traffic_change))
            for c in changes[:15]]
    lines = [format_table(
        ["SLD", "TTL before", "TTL after", "query change"],
        rows, title="Figure 8: top SLDs by traffic change")]
    lines.append(
        "TTL down: %(ttl_down)d (traffic up in %(ttl_down_traffic_up)d); "
        "TTL up: %(ttl_up)d (up %(ttl_up_traffic_up)d / "
        "down %(ttl_up_traffic_down)d; query-only growth "
        "%(ttl_up_traffic_up_query_only)d)" % summary)
    return "\n".join(lines)
