"""Table 2: the top-10 QTYPE profiles.

Reproduces the per-QTYPE columns of Table 2: global share, outcome mix
(data / nodata / nxd / other errors), qdots, distinct TLD/eSLD/FQDN
counts, the valid-name share, top TTL, distinct servers, delay, hops,
and response size.  The paper's headline shapes: A ~3x AAAA, AAAA
NoData ~40x A's, NS traffic dominated by NXDOMAIN, PTR slow and
deep-labelled, TXT with tiny TTLs.
"""

from repro.analysis.seriesops import accumulate_dumps, ranked_keys, total_hits
from repro.analysis.tables import format_percent, format_table


class QtypeRow:
    """One Table 2 row (values over the whole analyzed run)."""

    __slots__ = ("qtype", "hits", "global_share", "data", "nodata", "nxd",
                 "err", "qdots", "tlds", "eslds", "fqdns", "valid", "ttl",
                 "servers", "delay", "hops", "size")

    def __init__(self, qtype, row, total):
        hits = max(row.get("hits", 0), 1)
        ok = row.get("ok", 0)
        nodata = row.get("ok_nil", 0)
        nxd = row.get("nxd", 0)
        self.qtype = qtype
        self.hits = row.get("hits", 0)
        self.global_share = self.hits / total if total else 0.0
        # Outcome shares over *all* transactions of this QTYPE; "err"
        # covers other RCODEs and unanswered queries (paper Table 2).
        self.data = max(ok - nodata, 0) / hits
        self.nodata = nodata / hits
        self.nxd = nxd / hits
        self.err = max(hits - ok - nxd, 0) / hits
        self.qdots = row.get("qdots", 0.0)
        self.tlds = row.get("tlds", 0.0)
        self.eslds = row.get("eslds", 0.0)
        self.fqdns = row.get("qnames", 0.0)
        qnamesa = row.get("qnamesa", 0.0)
        # Cardinality estimates are noisy: clamp the ratio to [0, 1].
        self.valid = min(row.get("qnames", 0.0) / qnamesa, 1.0) \
            if qnamesa else 0.0
        self.ttl = int(row.get("ttl_top1", 0))
        self.servers = row.get("srvips", 0.0)
        self.delay = row.get("delay_q50", 0.0)
        self.hops = row.get("hops_q50", 0.0)
        self.size = row.get("size_q50", 0.0)


def table2(obs, dataset="qtype", top_n=10):
    """Compute Table 2 rows from the qtype tracker."""
    rows = accumulate_dumps(obs.dumps[dataset])
    total = total_hits(rows)
    ranked = ranked_keys(rows, by="hits")[:top_n]
    return [QtypeRow(name, rows[name], total) for name in ranked], total


def render_table2(qtype_rows):
    table_rows = []
    for i, row in enumerate(qtype_rows, start=1):
        table_rows.append([
            i, row.qtype,
            format_percent(row.global_share),
            format_percent(row.data),
            format_percent(row.nodata),
            format_percent(row.nxd),
            format_percent(row.err),
            "%.1f" % row.qdots,
            int(round(row.tlds)),
            int(round(row.eslds)),
            int(round(row.fqdns)),
            format_percent(row.valid, 0),
            row.ttl,
            int(round(row.servers)),
            "%.0f" % row.delay,
            "%.1f" % row.hops,
            "%.0f" % row.size,
        ])
    return format_table(
        ["#", "QTYPE", "global", "data", "nodata", "nxd", "err", "qdots",
         "TLDs", "eSLDs", "FQDNs", "valid", "TTL", "servers", "delay",
         "hops", "size"],
        table_rows, title="Table 2: Top QTYPEs")
