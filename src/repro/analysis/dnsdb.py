"""A DNSDB-like passive DNS history store (Section 4.2 methodology).

The paper manually looks up FQDNs in Farsight's DNSDB -- "a more
detailed, historical record of the DNS" -- to classify detected TTL
changes.  This module provides the equivalent store, fed by the same
transaction stream: per (name, rtype) it records the observed RRset
values and TTLs with first-seen/last-seen timestamps, supporting the
questions Table 4 asks (did the A values change?  the NS set?  only
the TTL?  or does the TTL bounce around per response?).
"""

from repro.dnswire.constants import QTYPE


class RrsetObservation:
    """One observed (value-set, ttl) state of an RRset."""

    __slots__ = ("values", "ttl", "first_seen", "last_seen", "count")

    def __init__(self, values, ttl, ts):
        self.values = values
        self.ttl = ttl
        self.first_seen = ts
        self.last_seen = ts
        self.count = 1

    def touch(self, ts):
        self.last_seen = max(self.last_seen, ts)
        self.first_seen = min(self.first_seen, ts)
        self.count += 1


class DnsdbStore:
    """Passive-DNS history keyed by (name, rtype)."""

    def __init__(self):
        # (name, rtype) -> {(values, ttl): RrsetObservation}
        self._history = {}

    def record(self, name, rtype, values, ttl, ts):
        """Record one observation of an RRset state."""
        key = (name, int(rtype))
        states = self._history.setdefault(key, {})
        state_key = (tuple(sorted(values)), int(ttl))
        obs = states.get(state_key)
        if obs is None:
            states[state_key] = RrsetObservation(state_key[0], int(ttl), ts)
        else:
            obs.touch(ts)

    def observe_transaction(self, txn):
        """Feed one transaction (A/AAAA answers and NS record data).

        Only *authoritative* answers are recorded (§4.2: "we consider
        only the responses that come from authoritative nameservers
        ... which have the AA flag set") -- referral NS sets describe
        the delegation level that answered, not the zone's own data,
        and would fabricate NS "changes".
        """
        if not txn.answered or not txn.noerror or not txn.aa:
            return
        if txn.answer_ips and txn.qtype in (QTYPE.A, QTYPE.AAAA):
            ttl = txn.answer_ttls[0] if txn.answer_ttls else 0
            self.record(txn.qname, txn.qtype, txn.answer_ips, ttl, txn.ts)
        if txn.ns_names:
            ttl = txn.ns_ttls[0] if txn.ns_ttls else \
                (txn.answer_ttls[0] if txn.answer_ttls else 0)
            self.record(txn.qname, QTYPE.NS, txn.ns_names, ttl, txn.ts)

    # -- history queries -------------------------------------------------

    def states(self, name, rtype):
        """All observed states of (name, rtype), oldest first."""
        states = self._history.get((name, int(rtype)), {})
        return sorted(states.values(), key=lambda o: o.first_seen)

    def distinct_value_sets(self, name, rtype):
        """Number of distinct value sets ever observed."""
        return len({obs.values for obs in self.states(name, rtype)})

    def distinct_ttls(self, name, rtype):
        """Number of distinct TTLs ever observed."""
        return len({obs.ttl for obs in self.states(name, rtype)})

    def value_change(self, name, rtype):
        """The (old_values, new_values) of the most recent value-set
        change, or None when the values never changed."""
        seen = []
        for obs in self.states(name, rtype):
            if not seen or seen[-1] != obs.values:
                seen.append(obs.values)
        if len(seen) < 2:
            return None
        return seen[-2], seen[-1]

    def ttl_transition(self, name, rtype):
        """(old_ttl, new_ttl) across the most recent TTL change, or
        None."""
        seen = []
        for obs in self.states(name, rtype):
            if not seen or seen[-1] != obs.ttl:
                seen.append(obs.ttl)
        if len(seen) < 2:
            return None
        return seen[-2], seen[-1]

    def __len__(self):
        return len(self._history)

    def names(self):
        return sorted({name for name, _ in self._history})
