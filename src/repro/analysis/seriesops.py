"""Window-series operations shared by the analysis modules.

Observatory output is a sequence of per-window rows (in memory as
:class:`~repro.observatory.window.WindowDump`, on disk as TSV
time-series files).  The analyses typically need whole-run per-object
statistics, so this module accumulates windows: counters are summed
(total transactions), gauges are averaged weighted by the window's
``hits`` (an object's median delay should count when it had traffic).
"""

from repro.observatory.features import COUNTER_COLUMNS

_COUNTERS = frozenset(COUNTER_COLUMNS)

#: Columns holding discrete *values* (TTLs): averaging them across
#: windows is meaningless, so accumulation takes the hits-weighted
#: mode instead.
MODE_COLUMNS = frozenset(
    ("ttl_top1", "ttl_top2", "ttl_top3", "nsttl_top1"))

#: Columns accumulated with max across windows ("the deepest QNAME
#: ever observed" -- the §3.6 qmin evidence is any-window evidence).
MAX_COLUMNS = frozenset(("qdots_max",))


class AccumulatedRow(dict):
    """A per-object whole-run row; plain dict plus window bookkeeping."""

    def __init__(self):
        super().__init__()
        self.windows = 0


def accumulate_dumps(dumps):
    """Fold per-window rows into per-key whole-run rows.

    Parameters
    ----------
    dumps:
        Iterable of objects with ``.rows`` (list of ``(key, row)``) --
        WindowDumps or TimeSeriesData alike.

    Returns ``{key: AccumulatedRow}`` where counters are summed and
    gauges are hits-weighted means.
    """
    totals = {}
    weights = {}
    modes = {}
    for dump in dumps:
        for key, row in dump.rows:
            acc = totals.get(key)
            if acc is None:
                acc = AccumulatedRow()
                totals[key] = acc
                weights[key] = {}
                modes[key] = {}
            acc.windows += 1
            hits = row.get("hits", 0) or 0
            for col, value in row.items():
                if col in _COUNTERS:
                    acc[col] = acc.get(col, 0) + value
                elif col in MAX_COLUMNS:
                    if value > acc.get(col, 0):
                        acc[col] = value
                elif col in MODE_COLUMNS:
                    # 0 means "no TTL observed this window" (e.g. only
                    # NoData responses): not a vote against real values.
                    if value:
                        votes = modes[key].setdefault(col, {})
                        votes[value] = votes.get(value, 0.0) + max(hits, 1)
                else:
                    wsum = weights[key].get(col, 0.0)
                    acc[col] = (acc.get(col, 0.0) * wsum + value * hits) / \
                        (wsum + hits) if (wsum + hits) else 0.0
                    weights[key][col] = wsum + hits
    for key, per_col in modes.items():
        for col, votes in per_col.items():
            totals[key][col] = max(votes.items(), key=lambda kv: kv[1])[0]
    return totals


def ranked_keys(rows, by="hits", descending=True):
    """Keys of *rows* ranked by column *by* (ties broken by key)."""
    return [
        key for key, _ in sorted(
            rows.items(),
            key=lambda kv: ((-kv[1].get(by, 0)) if descending
                            else kv[1].get(by, 0), kv[0]),
        )
    ]


def total_hits(rows):
    """Sum of the hits column over all rows."""
    return sum(row.get("hits", 0) for row in rows.values())


def split_dumps_at(dumps, ts):
    """Split a dump list into (before, after) by window start time."""
    before = [d for d in dumps if d.start_ts < ts]
    after = [d for d in dumps if d.start_ts >= ts]
    return before, after


def key_series(dumps, key, column="hits"):
    """Time series of one key's column: list of (start_ts, value);
    windows where the key is absent yield 0 for counters."""
    series = []
    for dump in dumps:
        row = dump.row_map().get(key)
        value = row.get(column, 0) if row is not None else 0
        series.append((dump.start_ts, value))
    return series
