"""Window-series operations shared by the analysis modules.

Observatory output is a sequence of per-window rows (in memory as
:class:`~repro.observatory.window.WindowDump`, on disk as TSV
time-series files).  The analyses typically need whole-run per-object
statistics, so this module accumulates windows: counters are summed
(total transactions), gauges are averaged weighted by the window's
``hits`` (an object's median delay should count when it had traffic).
"""

from repro.observatory.features import COUNTER_COLUMNS

_COUNTERS = frozenset(COUNTER_COLUMNS)

#: Columns holding discrete *values* (TTLs): averaging them across
#: windows is meaningless, so accumulation takes the hits-weighted
#: mode instead.
MODE_COLUMNS = frozenset(
    ("ttl_top1", "ttl_top2", "ttl_top3", "nsttl_top1"))

#: Columns accumulated with max across windows ("the deepest QNAME
#: ever observed" -- the §3.6 qmin evidence is any-window evidence).
MAX_COLUMNS = frozenset(("qdots_max",))


class AccumulatedRow(dict):
    """A per-object whole-run row; plain dict plus window bookkeeping."""

    def __init__(self):
        super().__init__()
        self.windows = 0


class Accumulator:
    """Incremental window folder behind :func:`accumulate_dumps`.

    Windows are folded one at a time -- row-major
    (:meth:`fold_rows`, a list of ``(key, row_dict)``) or column-major
    (:meth:`fold_columns`, parallel value lists straight out of a
    columnar segment, no per-row dicts ever built).  Both folds apply
    the *same operations in the same order* per ``(key, column)``
    cell, so mixing them across windows -- cached parses for some,
    segment column scans for others -- produces bit-identical results
    to one row-major pass (the store's differential tests hold it to
    that).  Call :meth:`finish` exactly once to resolve mode columns
    and take the ``{key: AccumulatedRow}`` result.
    """

    __slots__ = ("totals", "_weights", "_modes")

    def __init__(self):
        self.totals = {}
        self._weights = {}
        self._modes = {}

    def _acc_for(self, key):
        acc = self.totals.get(key)
        if acc is None:
            acc = AccumulatedRow()
            self.totals[key] = acc
            self._weights[key] = {}
            self._modes[key] = {}
        return acc

    def fold_rows(self, rows):
        """Fold one window's ``(key, row_dict)`` list."""
        totals = self.totals
        weights = self._weights
        modes = self._modes
        for key, row in rows:
            acc = totals.get(key)
            if acc is None:
                acc = self._acc_for(key)
            acc.windows += 1
            hits = row.get("hits", 0) or 0
            for col, value in row.items():
                if col in _COUNTERS:
                    acc[col] = acc.get(col, 0) + value
                elif col in MAX_COLUMNS:
                    if value > acc.get(col, 0):
                        acc[col] = value
                elif col in MODE_COLUMNS:
                    # 0 means "no TTL observed this window" (e.g. only
                    # NoData responses): not a vote against real values.
                    if value:
                        votes = modes[key].setdefault(col, {})
                        votes[value] = votes.get(value, 0.0) + max(hits, 1)
                else:
                    wsum = weights[key].get(col, 0.0)
                    acc[col] = (acc.get(col, 0.0) * wsum + value * hits) / \
                        (wsum + hits) if (wsum + hits) else 0.0
                    weights[key][col] = wsum + hits

    def fold_columns(self, keys, columns, columns_values):
        """Fold one window given as parallel columns (segment layout).

        *keys* is the window's key list; *columns_values* holds one
        value list per name in *columns*.  Per-column type dispatch is
        decided once instead of once per cell, which is where the
        columnar accumulate speed comes from.
        """
        accs = [self._acc_for(key) for key in keys]
        for acc in accs:
            acc.windows += 1
        try:
            raw_hits = columns_values[columns.index("hits")]
        except ValueError:
            raw_hits = (0,) * len(keys)
        weights = self._weights
        modes = self._modes
        for col, values in zip(columns, columns_values):
            if col in _COUNTERS:
                for acc, value in zip(accs, values):
                    acc[col] = acc.get(col, 0) + value
            elif col in MAX_COLUMNS:
                for acc, value in zip(accs, values):
                    if value > acc.get(col, 0):
                        acc[col] = value
            elif col in MODE_COLUMNS:
                for key, value, hv in zip(keys, values, raw_hits):
                    if value:
                        votes = modes[key].setdefault(col, {})
                        votes[value] = votes.get(value, 0.0) + \
                            max(hv or 0, 1)
            else:
                for key, acc, value, hv in zip(keys, accs, values,
                                               raw_hits):
                    hits = hv or 0
                    wsum = weights[key].get(col, 0.0)
                    acc[col] = (acc.get(col, 0.0) * wsum + value * hits) \
                        / (wsum + hits) if (wsum + hits) else 0.0
                    weights[key][col] = wsum + hits

    def fold_columns_run(self, keys, columns, runs):
        """Fold a *run* of consecutive windows sharing one key tuple.

        *runs* is a list of ``columns_values`` (one per window, in
        window order), every window holding exactly the ordered *keys*
        and *columns*.  Stable key tuples are what a columnar engine
        calls clustered data, and they let the per-window Python
        overhead amortize across the run: counters collapse to one
        C-level ``sum(vals, start)`` per ``(key, column)`` cell --
        bit-identical to the sequential additions, since ``sum`` is
        exactly that left fold -- and the gauge recurrence keeps its
        state in locals instead of two dict round-trips per cell.
        Per ``(key, column)`` cell the windows are still applied in
        window order, so the result is bit-identical to folding each
        window through :meth:`fold_columns`.
        """
        n = len(runs)
        totals = self.totals
        weights = self._weights
        modes = self._modes
        accs = []
        wdicts = []
        for key in keys:
            acc = totals.get(key)
            if acc is None:
                acc = self._acc_for(key)
            accs.append(acc)
            wdicts.append(weights[key])
            acc.windows += n
        try:
            hi = columns.index("hits")
            hits_rows = list(zip(*[cv[hi] for cv in runs]))
        except ValueError:
            hits_rows = [(0,) * n] * len(keys)
        for ci, col in enumerate(columns):
            per_key = zip(*[cv[ci] for cv in runs])
            if col in _COUNTERS:
                for acc, vals in zip(accs, per_key):
                    acc[col] = sum(vals, acc.get(col, 0))
            elif col in MAX_COLUMNS:
                for acc, vals in zip(accs, per_key):
                    peak = max(vals)
                    if peak > acc.get(col, 0):
                        acc[col] = peak
            elif col in MODE_COLUMNS:
                for key, vals, hvs in zip(keys, per_key, hits_rows):
                    votes = None
                    for value, hv in zip(vals, hvs):
                        if value:
                            if votes is None:
                                votes = modes[key].setdefault(col, {})
                            votes[value] = votes.get(value, 0.0) + \
                                max(hv or 0, 1)
            else:
                for acc, wd, vals, hvs in zip(accs, wdicts, per_key,
                                              hits_rows):
                    wsum = wd.get(col, 0.0)
                    mean = acc.get(col, 0.0)
                    for value, hv in zip(vals, hvs):
                        hits = hv or 0
                        total = wsum + hits
                        mean = (mean * wsum + value * hits) / total \
                            if total else 0.0
                        wsum = total
                    acc[col] = mean
                    wd[col] = wsum

    def finish(self):
        """Resolve mode columns and return ``{key: AccumulatedRow}``."""
        totals = self.totals
        for key, per_col in self._modes.items():
            for col, votes in per_col.items():
                totals[key][col] = max(votes.items(),
                                       key=lambda kv: kv[1])[0]
        return totals


def accumulate_dumps(dumps):
    """Fold per-window rows into per-key whole-run rows.

    Parameters
    ----------
    dumps:
        Iterable of objects with ``.rows`` (list of ``(key, row)``) --
        WindowDumps or TimeSeriesData alike.

    Returns ``{key: AccumulatedRow}`` where counters are summed and
    gauges are hits-weighted means.
    """
    acc = Accumulator()
    for dump in dumps:
        acc.fold_rows(dump.rows)
    return acc.finish()


def ranked_keys(rows, by="hits", descending=True):
    """Keys of *rows* ranked by column *by* (ties broken by key)."""
    return [
        key for key, _ in sorted(
            rows.items(),
            key=lambda kv: ((-kv[1].get(by, 0)) if descending
                            else kv[1].get(by, 0), kv[0]),
        )
    ]


def total_hits(rows):
    """Sum of the hits column over all rows."""
    return sum(row.get("hits", 0) for row in rows.values())


def split_dumps_at(dumps, ts):
    """Split a dump list into (before, after) by window start time."""
    before = [d for d in dumps if d.start_ts < ts]
    after = [d for d in dumps if d.start_ts >= ts]
    return before, after


def key_series(dumps, key, column="hits"):
    """Time series of one key's column: list of (start_ts, value);
    windows where the key is absent yield 0 for counters."""
    series = []
    for dump in dumps:
        row = dump.row_map().get(key)
        value = row.get(column, 0) if row is not None else 0
        series.append((dump.start_ts, value))
    return series
