"""Figure 6: Hilbert-curve heatmap of observed nameserver IPv4 space.

"Each pixel corresponds to a /24 prefix.  The blue color means 1
address in given prefix used as a nameserver during a 3-day time
window."  The reproduction builds the same map with
:class:`~repro.netsim.hilbert.HilbertHeatmap` and reports the density
histogram plus an ASCII rendering for terminal inspection.
"""

from repro.analysis.tables import format_percent
from repro.netsim.addr import is_ipv6
from repro.netsim.hilbert import HilbertHeatmap


def build_heatmap(transactions, order=6):
    """Accumulate all observed nameserver IPv4 addresses into a map.

    Each distinct nameserver IP is counted once per /24 (the figure
    shows *addresses in use*, not traffic volume).
    """
    heatmap = HilbertHeatmap(order=order)
    seen = set()
    for txn in transactions:
        ip = txn.server_ip
        if ip in seen or is_ipv6(ip):
            continue
        seen.add(ip)
        heatmap.add(ip)
    return heatmap


def render_figure6(heatmap, max_rows=32):
    """ASCII rendering + the §3.7 density summary."""
    art = heatmap.to_ascii()
    lines = art.splitlines()
    if len(lines) > max_rows:
        step = len(lines) / max_rows
        lines = [lines[int(i * step)] for i in range(max_rows)]
    histogram = heatmap.prefix_density_histogram()
    total = sum(histogram.values()) or 1
    summary = ", ".join(
        "%d addr: %s" % (count, format_percent(histogram[count] / total))
        for count in sorted(histogram)[:4])
    return "\n".join([
        "Figure 6: Hilbert /24 heatmap (%d populated prefixes)"
        % heatmap.populated_prefixes,
        "=" * 48,
        *lines,
        "prefix density: %s" % summary,
    ])
