"""Per-country / per-ASN vantage indices (the vantage-point study).

The paper's per-AS breakdowns (Table 1) assume one privileged passive
vantage.  This module asks the world-observer question instead: *from
where you stand, how well does each network neighbourhood answer?*
Every flushed ``srvip`` window is regrouped by the announcing ASN and
its registration country (via an :class:`~repro.netsim.asdb.
AsDatabase`-backed :class:`VantageDb`), and two bounded indices are
computed per group:

* **reachability score** -- the answered fraction of transactions to
  the group's nameservers, in ``[0, 1]``;
* **time-to-answer index** -- ``1 / (1 + delay / 100 ms)`` of the
  hits-weighted median response delay, in ``(0, 1]``: 1.0 means
  answers come back instantly, 0.5 means a 100 ms median, long tails
  asymptote to 0.

The derived ``_vantage_asn`` / ``_vantage_cc`` meta-datasets ride the
normal TSV/segments/serving chain (``/vantage`` on the HTTP API) and
are byte-identical between sharded and single-process runs: the
derivation is a pure function of the emitted ``srvip`` dump, with
every input value first quantized through the TSV number format -- so
the indices are exactly reproducible from the ``srvip`` files alone.
"""

from repro.netsim.asdb import AsDatabase
from repro.observatory.tsv import _format, _parse, escape_key, unescape_key
from repro.observatory.window import WindowDump

#: derived meta-dataset names (reserved, like ``_platform``)
VANTAGE_ASN_DATASET = "_vantage_asn"
VANTAGE_CC_DATASET = "_vantage_cc"
VANTAGE_DATASETS = (VANTAGE_ASN_DATASET, VANTAGE_CC_DATASET)

#: group keys for addresses no prefix covers
UNROUTED_ASN_KEY = "AS0"
UNROUTED_CC_KEY = "--"

#: delay (ms) at which the time-to-answer index reads 0.5
TTA_HALF_MS = 100.0

#: derived row schema
VANTAGE_COLUMNS = [
    "hits", "unans", "answered", "servers", "reach", "tta", "delay_ms",
]


def _clamp01(value):
    if value < 0.0:
        return 0.0
    if value > 1.0:
        return 1.0
    return value


def reachability_score(hits, unans):
    """Answered fraction in ``[0, 1]``; 0.0 on a zero-traffic group."""
    hits = float(hits)
    if hits <= 0:
        return 0.0
    return _clamp01((hits - float(unans)) / hits)


def time_to_answer_index(delay_ms):
    """``1 / (1 + delay / TTA_HALF_MS)`` clamped to ``[0, 1]``.

    Negative or NaN-ish delays (hostile input) clamp rather than
    crash: the index is a ranking signal, not a measurement.
    """
    delay_ms = float(delay_ms)
    if not delay_ms >= 0.0:  # catches negatives and NaN
        return 1.0
    return _clamp01(1.0 / (1.0 + delay_ms / TTA_HALF_MS))


class VantageDb:
    """Prefix -> (ASN, country, org) attribution for vantage grouping.

    A thin layer over the Route-Views-style
    :class:`~repro.netsim.asdb.AsDatabase` longest-prefix match,
    adding the per-ASN registration country and organization name the
    vantage indices group by.  Populated from the simulator topology
    (:meth:`from_topology`) or a TSV snapshot (:meth:`from_tsv`,
    written by ``simulate --vantage-db``).
    """

    def __init__(self):
        self.asdb = AsDatabase()
        #: ASN -> (country, org)
        self._info = {}
        #: registration order of (prefix, asn) pairs, for to_tsv
        self._prefixes = []

    def __len__(self):
        return len(self._info)

    def add(self, prefix, asn, country=UNROUTED_CC_KEY, org=""):
        """Register *prefix* as announced by *asn* in *country*."""
        asn = int(asn)
        self.asdb.add_prefix(prefix, asn)
        self._prefixes.append((prefix, asn))
        self._info[asn] = (str(country), str(org))

    def lookup(self, address):
        """Return ``(asn, country, org)``; ``(None, None, None)`` for
        unrouted addresses."""
        asn = self.asdb.lookup(address)
        if asn is None:
            return (None, None, None)
        country, org = self._info.get(asn, (UNROUTED_CC_KEY, ""))
        return (asn, country, org)

    @classmethod
    def from_topology(cls, topology):
        """Build from a simulator :class:`~repro.simulation.topology.
        Topology` (both IPv4 and IPv6 prefixes, all orgs)."""
        db = cls()
        for name in sorted(topology.orgs):
            org = topology.orgs[name]
            for asn, prefix in zip(org.asns, org.prefixes):
                db.add(prefix, asn,
                       topology.countries.get(asn, UNROUTED_CC_KEY),
                       org.name)
            for asn, prefix in zip(org.asns, org.v6_prefixes):
                db.add(prefix, asn,
                       topology.countries.get(asn, UNROUTED_CC_KEY),
                       org.name)
        return db

    # -- TSV snapshot ---------------------------------------------------

    def to_tsv(self, path):
        """Write ``prefix<TAB>asn<TAB>country<TAB>org`` lines.

        Country and org are attacker-adjacent free text (real AS
        registries contain anything), so both are escaped with the
        series-key escapes -- a hostile org name cannot produce a
        field or line break.
        """
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("#prefix\tasn\tcountry\torg\n")
            for prefix, asn in self._prefixes:
                country, org = self._info[asn]
                fh.write("%s\t%d\t%s\t%s\n" % (
                    prefix, asn, escape_key(country), escape_key(org)))
        return path

    @classmethod
    def from_tsv(cls, path):
        """Inverse of :meth:`to_tsv`."""
        db = cls()
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.rstrip("\n")
                if not line or line.startswith("#"):
                    continue
                fields = line.split("\t")
                if len(fields) != 4:
                    raise ValueError(
                        "malformed vantage-db line: %r" % (line,))
                prefix, asn, country, org = fields
                db.add(prefix, int(asn), unescape_key(country),
                       unescape_key(org))
        return db


class _Group:
    """One ASN's or country's accumulation over a window."""

    __slots__ = ("hits", "unans", "servers", "delay_weight")

    def __init__(self):
        self.hits = 0.0
        self.unans = 0.0
        self.servers = 0
        #: sum of hits * delay_q50, for the hits-weighted mean
        self.delay_weight = 0.0

    def row(self):
        answered = max(self.hits - self.unans, 0.0)
        delay_ms = (self.delay_weight / self.hits) if self.hits > 0 \
            else 0.0
        return {
            "hits": self.hits,
            "unans": self.unans,
            "answered": answered,
            "servers": self.servers,
            "reach": reachability_score(self.hits, self.unans),
            "tta": time_to_answer_index(delay_ms),
            "delay_ms": delay_ms,
        }


def _quantized(value):
    """Round-trip *value* through the TSV number format, so derived
    indices depend only on the bytes the source series writes."""
    if isinstance(value, float):
        return _parse(_format(value))
    return value


class VantageEmitter:
    """Derive ``_vantage_asn`` / ``_vantage_cc`` dumps from ``srvip``.

    Hooked into the pipeline sinks: every emitted window of *source*
    produces two derived :class:`~repro.observatory.window.WindowDump`
    objects that flow through the same sink (and hence TSV/serving
    chain).  Derivation is deterministic and side-effect free, so the
    sharded and single-process paths -- whose *source* dumps are
    byte-identical -- emit byte-identical vantage series too.
    """

    def __init__(self, db, source="srvip"):
        self.db = db
        #: dataset whose dumps feed the derivation
        self.source = source
        #: derived windows so far (observability)
        self.windows_derived = 0

    def derive(self, dump):
        """Return the ``[_vantage_asn, _vantage_cc]`` dumps for one
        *source* window (empty list for a zero-row window)."""
        if not dump.rows:
            return []
        by_asn = {}
        by_cc = {}
        for key, row in dump.rows:
            asn, country, _org = self.db.lookup(key)
            if asn is None:
                asn_key, cc_key = UNROUTED_ASN_KEY, UNROUTED_CC_KEY
            else:
                asn_key, cc_key = "AS%d" % asn, country
            hits = _quantized(row.get("hits", 0))
            unans = _quantized(row.get("unans", 0))
            delay = _quantized(row.get("delay_q50", 0))
            for groups, group_key in ((by_asn, asn_key), (by_cc, cc_key)):
                group = groups.get(group_key)
                if group is None:
                    group = groups[group_key] = _Group()
                group.hits += hits
                group.unans += unans
                group.servers += 1
                group.delay_weight += hits * delay
        self.windows_derived += 1
        dumps = []
        for dataset, groups in ((VANTAGE_ASN_DATASET, by_asn),
                                (VANTAGE_CC_DATASET, by_cc)):
            rows = [(key, groups[key].row()) for key in sorted(groups)]
            dumps.append(WindowDump(
                dataset, dump.start_ts, rows,
                {"seen": dump.stats.get("seen", 0), "kept": len(rows)},
                columns=list(VANTAGE_COLUMNS)))
        return dumps
