"""Report-style renderer for platform health (``report --platform``).

The ``_platform`` meta-dataset (DESIGN.md §9) records the platform's
own vitals once per window; :mod:`repro.observatory.alerts` turns them
into verdicts.  This module renders both as the human-readable summary
the ROADMAP asked for: a per-component snapshot table of the latest
window, trend series for the headline signals (capture ratio, flush
latency), and the alert verdict list -- the same content
``/platform/health`` serves as JSON, shaped like the paper-figure
renderers.
"""

from repro.observatory import alerts
from repro.observatory.telemetry import PLATFORM_DATASET
from repro.analysis.tables import format_series, format_table

#: headline per-component columns for the snapshot table, in print
#: order (missing columns render blank -- rows are heterogeneous)
SNAPSHOT_COLUMNS = (
    "txns", "tracked", "capture_ratio", "gate_fill", "gate_fpr",
    "evictions", "flush_ms_p95", "queue_depth", "alive",
)

#: (component, column) series plotted as trends when present
TREND_SERIES = (
    ("tracker.*", "capture_ratio"),
    ("window", "flush_ms_p95"),
)


def platform_health(source, rules=alerts.DEFAULT_RULES, windows=60,
                    granularity="minutely"):
    """Evaluate platform health from a store or a dump list.

    Parameters
    ----------
    source:
        A :class:`~repro.observatory.store.SeriesStore`, or an
        iterable of ``_platform`` window objects (``WindowDump`` /
        ``TimeSeriesData``).
    windows:
        Most-recent windows considered.

    Returns ``(series, verdicts, summary)``.
    """
    if hasattr(source, "read"):
        series = source.read(PLATFORM_DATASET, granularity)
    else:
        series = [dump for dump in source
                  if dump.dataset == PLATFORM_DATASET]
    series = sorted(series, key=lambda d: d.start_ts)[-windows:]
    verdicts = alerts.evaluate(series, rules)
    return series, verdicts, alerts.summarize(verdicts)


def latest_rows(series):
    """Per-component latest-window rows: ``{component: (ts, row)}``."""
    latest = {}
    for data in series:
        for component, row in data.rows:
            latest[component] = (data.start_ts, row)
    return latest


def component_series(series, component_pattern, column):
    """Concatenated ``(ts, value)`` trend over matching components
    (values of multiple matches in one window are averaged)."""
    prefix = component_pattern[:-1] \
        if component_pattern.endswith("*") else None
    points = []
    for data in series:
        values = []
        for component, row in data.rows:
            matched = component == component_pattern if prefix is None \
                else component.startswith(prefix)
            if matched and column in row:
                values.append(row[column])
        if values:
            points.append((data.start_ts, sum(values) / len(values)))
    return points


def render_platform_health(series, verdicts, summary):
    """The full ``report --platform`` text block."""
    out = []
    status = summary["status"].upper()
    out.append("Platform health: %s  (%d ok / %d failed / %d no-data)"
               % (status, summary["rules_ok"], summary["rules_failed"],
                  summary["rules_no_data"]))
    if not series:
        out.append("")
        out.append("No _platform series found -- run replay/serve with "
                   "--telemetry to record platform vitals.")
        return "\n".join(out)
    first, last = series[0].start_ts, series[-1].start_ts
    out.append("Windows analyzed: %d  (t=%s .. %s)"
               % (len(series), first, last))
    out.append("")

    rows = []
    for component, (ts, row) in sorted(latest_rows(series).items()):
        cells = [component]
        for column in SNAPSHOT_COLUMNS:
            value = row.get(column)
            if value is None:
                cells.append("-")
            elif isinstance(value, float):
                cells.append("%.4g" % value)
            else:
                cells.append(value)
        rows.append(cells)
    out.append(format_table(
        ["component"] + [c for c in SNAPSHOT_COLUMNS], rows,
        title="Latest window per component"))
    out.append("")

    for pattern, column in TREND_SERIES:
        points = component_series(series, pattern, column)
        if len(points) >= 2:
            out.append("Trend: %s.%s" % (pattern, column))
            out.append(format_series(points, x_label="window_ts",
                                     y_label=column))
            out.append("")

    verdict_rows = []
    for verdict in sorted(verdicts,
                          key=lambda v: (v.status != alerts.FAIL,
                                         v.rule.name, v.component)):
        verdict_rows.append([
            verdict.status.upper(),
            verdict.rule.name,
            verdict.component,
            "-" if verdict.value is None else "%.4g" % verdict.value,
            "%s %g" % (verdict.rule.op, verdict.rule.threshold),
            verdict.failing_windows,
        ])
    out.append(format_table(
        ["status", "rule", "component", "value", "healthy when",
         "failing"],
        verdict_rows, title="Alert verdicts"))
    return "\n".join(out)
