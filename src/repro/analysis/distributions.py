"""Figure 2: traffic distributions for Top-k DNS objects.

"We analyze traffic distributions for various Top-k aggregations ...
Note that we plot an independent CDF curve that ends at 1.0 for each
case."  The headline findings the reproduction targets:

* ~1 k nameservers handle ~50 % of all observed traffic (Fig 2a);
* NXDOMAIN concentrates on the most popular nameservers (the botnet
  effect: the NXD CDF starts high);
* the FQDN aggregation captures far less traffic than the nameserver
  one (many FQDNs are ephemeral).
"""

from repro.analysis.seriesops import accumulate_dumps, ranked_keys, total_hits
from repro.analysis.tables import format_percent, format_table


class TrafficDistribution:
    """Rank-ordered cumulative traffic shares per response category."""

    CATEGORIES = ("all", "nxdomain", "noerror_data", "nodata")

    def __init__(self, rows, captured_stats=None):
        #: keys ranked by total hits, heaviest first
        self.keys = ranked_keys(rows, by="hits")
        self.rows = rows
        #: {"seen": ..., "kept": ...} from the window stats, if known
        self.captured_stats = captured_stats or {}
        self._totals = {c: 0.0 for c in self.CATEGORIES}
        self._cumulative = {c: [] for c in self.CATEGORIES}
        running = {c: 0.0 for c in self.CATEGORIES}
        for key in self.keys:
            row = rows[key]
            values = self._category_values(row)
            for cat in self.CATEGORIES:
                running[cat] += values[cat]
                self._cumulative[cat].append(running[cat])
        for cat in self.CATEGORIES:
            self._totals[cat] = running[cat]

    @staticmethod
    def _category_values(row):
        ok = row.get("ok", 0)
        nodata = row.get("ok_nil", 0)
        return {
            "all": row.get("hits", 0),
            "nxdomain": row.get("nxd", 0),
            "noerror_data": max(ok - nodata, 0),
            "nodata": nodata,
        }

    def cdf(self, category):
        """Independent CDF (ends at 1.0) of *category* over ranks."""
        total = self._totals[category]
        if total <= 0:
            return [0.0] * len(self.keys)
        return [v / total for v in self._cumulative[category]]

    def share_of_top(self, n, category="all"):
        """Share of *category* traffic handled by the top-*n* objects."""
        total = self._totals[category]
        if total <= 0 or not self.keys:
            return 0.0
        index = min(n, len(self.keys)) - 1
        return self._cumulative[category][index] / total

    def objects_for_share(self, share, category="all"):
        """Smallest rank whose cumulative share reaches *share*."""
        cdf = self.cdf(category)
        for i, value in enumerate(cdf):
            if value >= share:
                return i + 1
        return len(cdf)

    def capture_ratio(self):
        """Share of the raw stream captured in this top list (§3.1)."""
        seen = self.captured_stats.get("seen", 0)
        if not seen:
            return None
        return self._totals["all"] / seen

    def category_share(self, category):
        """Category's share of all captured transactions."""
        total = self._totals["all"]
        return self._totals[category] / total if total else 0.0


def figure2(obs, datasets=("srvip", "qname", "esld")):
    """Compute the Figure 2 distributions from an Observatory run."""
    results = {}
    for name in datasets:
        dumps = obs.dumps[name]
        rows = accumulate_dumps(dumps)
        stats = {
            "seen": sum(d.stats.get("seen", 0) for d in dumps),
            "kept": sum(d.stats.get("kept", 0) for d in dumps),
        }
        results[name] = TrafficDistribution(rows, stats)
    return results


def render_figure2(results, sample_ranks=(1, 10, 100, 1000, 10000)):
    """Text rendering of the Figure 2 CDF curves."""
    sections = []
    for name, dist in results.items():
        n = len(dist.keys)
        rows = []
        for rank in sample_ranks:
            if rank > n:
                break
            rows.append([
                rank,
                format_percent(dist.share_of_top(rank, "all")),
                format_percent(dist.share_of_top(rank, "nxdomain")),
                format_percent(dist.share_of_top(rank, "noerror_data")),
                format_percent(dist.share_of_top(rank, "nodata")),
            ])
        capture = dist.capture_ratio()
        title = "Figure 2 (%s): %d objects%s" % (
            name, n,
            ", capture %s" % format_percent(capture)
            if capture is not None else "")
        sections.append(format_table(
            ["rank<=", "all", "NXDOMAIN", "NOERROR+data", "NODATA"],
            rows, title=title))
        sections.append(
            "category shares: NXD %s, NOERROR+data %s, NODATA %s"
            % (format_percent(dist.category_share("nxdomain")),
               format_percent(dist.category_share("noerror_data")),
               format_percent(dist.category_share("nodata"))))
        half = dist.objects_for_share(0.5)
        sections.append("objects covering 50%% of traffic: %d" % half)
        sections.append("")
    return "\n".join(sections)
