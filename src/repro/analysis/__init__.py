"""The measurement study: reproductions of every table and figure.

Each module computes one of the paper's results from Observatory
output (window dumps / TSV time series) and renders it as a text
table or data series:

* :mod:`~repro.analysis.distributions`   -- Figure 2 (traffic CDFs);
* :mod:`~repro.analysis.asattribution`   -- Table 1 (top AS orgs);
* :mod:`~repro.analysis.qtypes`          -- Table 2 (QTYPE profiles);
* :mod:`~repro.analysis.delays`          -- Figure 3 (response delays);
* :mod:`~repro.analysis.qmin`            -- Table 3 / §3.6 (QNAME min.);
* :mod:`~repro.analysis.representativeness` -- Figures 4 and 5;
* :mod:`~repro.analysis.heatmap`         -- Figure 6 (Hilbert map);
* :mod:`~repro.analysis.ttltraffic`      -- Figures 7 and 8;
* :mod:`~repro.analysis.ttlchanges`      -- Table 4 (+ the DNSDB-like
  history store in :mod:`~repro.analysis.dnsdb`);
* :mod:`~repro.analysis.happyeyeballs`   -- Figure 9 and §5.3.

Beyond the paper's own results:

* :mod:`~repro.analysis.detectquality`   -- detector precision/recall
  vs simulator ground truth;
* :mod:`~repro.analysis.vantage`         -- per-ASN / per-country
  reachability + time-to-answer indices (the vantage-point study);
* :mod:`~repro.analysis.blindness`       -- what the pipeline stops
  seeing as encrypted DNS deploys (``report --blindness``).

Shared plumbing lives in :mod:`~repro.analysis.seriesops` (window
accumulation) and :mod:`~repro.analysis.tables` (text rendering).
"""

from repro.analysis.seriesops import accumulate_dumps, ranked_keys

__all__ = ["accumulate_dumps", "ranked_keys"]
