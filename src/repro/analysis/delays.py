"""Figure 3: response delays and network hops.

Four panels:

a) CDF of per-nameserver median delays, split into the paper's four
   regimes (0-5 ms co-located, 5-35 ms regional, 35-350 ms distant,
   >350 ms impaired);
b) nameserver rank vs delay and hop count in groups of neighbouring
   ranks -- the "popular nameservers are faster and closer" result;
c) the 13 root letters: delay quartiles + hops, plus the 96.2 %-NXD
   observation;
d) the 13 gTLD letters, grouped behaviour with B fastest.
"""

from repro.analysis.seriesops import accumulate_dumps, ranked_keys, total_hits
from repro.analysis.tables import format_percent, format_table

#: Figure 3a regime boundaries in milliseconds.
DELAY_SECTIONS = ((0.0, 5.0), (5.0, 35.0), (35.0, 350.0), (350.0, None))


def delay_cdf(obs, dataset="srvip"):
    """Panel (a): sorted per-nameserver median delays + section shares.

    Returns ``(sorted_delays, section_shares)``.
    """
    rows = accumulate_dumps(obs.dumps[dataset])
    delays = sorted(
        row.get("delay_q50", 0.0) for row in rows.values()
        if row.get("hits", 0) > 0 and (row.get("hits", 0) - row.get("unans", 0)) > 0
    )
    n = len(delays) or 1
    shares = []
    for low, high in DELAY_SECTIONS:
        count = sum(1 for d in delays
                    if d >= low and (high is None or d < high))
        shares.append(count / n)
    return delays, shares


def rank_vs_delay(obs, dataset="srvip", group_size=100, top_n=None):
    """Panel (b): mean delay and hops per group of neighbouring ranks.

    Returns a list of ``(rank_start, mean_delay, mean_hops)``.
    """
    rows = accumulate_dumps(obs.dumps[dataset])
    ranked = ranked_keys(rows, by="hits")
    if top_n is not None:
        ranked = ranked[:top_n]
    groups = []
    for start in range(0, len(ranked), group_size):
        chunk = ranked[start:start + group_size]
        if not chunk:
            break
        delay = sum(rows[k].get("delay_q50", 0.0) for k in chunk) / len(chunk)
        hops = sum(rows[k].get("hops_q50", 0.0) for k in chunk) / len(chunk)
        groups.append((start + 1, delay, hops))
    return groups


def popularity_speed_correlation(groups):
    """Spearman-style sign check: do delays grow with rank?

    Returns the fraction of adjacent group pairs where the later
    (less popular) group is slower -- >0.5 means the paper's pattern.
    """
    if len(groups) < 2:
        return 0.5
    worse = sum(1 for a, b in zip(groups, groups[1:]) if b[1] >= a[1])
    return worse / (len(groups) - 1)


class LetterStats:
    """Per root/gTLD letter delay and traffic statistics."""

    __slots__ = ("letter", "ip", "delay_q25", "delay_q50", "delay_q75",
                 "hops", "hits", "nxd_share")

    def __init__(self, letter, ip, row):
        hits = row.get("hits", 0)
        self.letter = letter
        self.ip = ip
        self.delay_q25 = row.get("delay_q25", 0.0)
        self.delay_q50 = row.get("delay_q50", 0.0)
        self.delay_q75 = row.get("delay_q75", 0.0)
        self.hops = row.get("hops_q50", 0.0)
        self.hits = hits
        answered = max(hits - row.get("unans", 0), 1)
        self.nxd_share = row.get("nxd", 0) / answered


def letter_stats(obs, letter_ips, dataset="srvip"):
    """Panels (c)/(d): stats for a {letter: ip} map (root or gTLD)."""
    rows = accumulate_dumps(obs.dumps[dataset])
    stats = []
    for letter in sorted(letter_ips):
        ip = letter_ips[letter]
        row = rows.get(ip)
        if row is None:
            continue
        stats.append(LetterStats(letter, ip, row))
    return stats


def hierarchy_shares(obs, letter_ips, dataset="srvip"):
    """Traffic share and NXD rate of a server group (root or gTLD)."""
    rows = accumulate_dumps(obs.dumps[dataset])
    total = total_hits(rows)
    ips = set(letter_ips.values())
    hits = sum(rows[ip].get("hits", 0) for ip in ips if ip in rows)
    nxd = sum(rows[ip].get("nxd", 0) for ip in ips if ip in rows)
    answered = sum(
        rows[ip].get("hits", 0) - rows[ip].get("unans", 0)
        for ip in ips if ip in rows)
    return {
        "share": hits / total if total else 0.0,
        "nxd_share": nxd / answered if answered else 0.0,
    }


def render_figure3(delays_shares, groups, root_stats, gtld_stats,
                   root_shares=None, gtld_shares=None):
    delays, shares = delays_shares
    lines = ["Figure 3a: nameserver median delay regimes",
             "=" * 42]
    for (low, high), share in zip(DELAY_SECTIONS, shares):
        label = "%g-%s ms" % (low, "inf" if high is None else "%g" % high)
        lines.append("  %-12s %s" % (label, format_percent(share)))
    lines.append("")
    sample = groups[:: max(1, len(groups) // 12)]
    lines.append(format_table(
        ["rank", "delay[ms]", "hops"],
        [(r, "%.1f" % d, "%.1f" % h) for r, d, h in sample],
        title="Figure 3b: rank vs delay/hops (group means)"))
    corr = popularity_speed_correlation(groups)
    lines.append("monotonicity (later groups slower): %s"
                 % format_percent(corr))
    lines.append("")
    for title, stats, shares_info in (
            ("Figure 3c: root letters", root_stats, root_shares),
            ("Figure 3d: gTLD letters", gtld_stats, gtld_shares)):
        lines.append(format_table(
            ["letter", "q25", "median", "q75", "hops", "NXD"],
            [(s.letter.upper(), "%.1f" % s.delay_q25, "%.1f" % s.delay_q50,
              "%.1f" % s.delay_q75, "%.1f" % s.hops,
              format_percent(s.nxd_share)) for s in stats],
            title=title))
        if shares_info:
            lines.append("traffic share %s, NXDOMAIN %s" % (
                format_percent(shares_info["share"]),
                format_percent(shares_info["nxd_share"])))
        lines.append("")
    return "\n".join(lines)
