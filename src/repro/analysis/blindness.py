"""Sensor blindness: what encrypted DNS does to each paper figure.

Quantifies how the Observatory's datasets degrade as the fraction of
resolver traffic moving to DoH/DoT rises.  Input is an ordered sweep
of replay output directories -- the first is the baseline (normally
``encrypted_fraction = 0``), the rest are the same workload with more
and more resolvers blinded (``repro simulate --encrypted-fraction``).

For every dataset in every directory a *weight* is accumulated (the
primary per-row counter: ``hits`` for tracker datasets, ``queries``
for the ``_encrypted`` channel, row count as a fallback) and expressed
as a **capture ratio** against the baseline.  Content datasets
(``qname``, ``qtype``, ``srvip``, ... and everything derived from
them, including the ``_vantage_*`` indices) can only lose weight as
encryption rises, because a blinded sensor sees size and timing but no
payload; the ``_encrypted`` channel can only gain.  The report renders
the ratio matrix and gates on that monotonicity -- a violation means
the sweep directories are not a nested-blinding sweep of one workload
(wrong seed, wrong order, or a pipeline bug) and ``report
--blindness`` exits non-zero.
"""

import os

from repro.observatory.tsv import list_series, read_tsv

try:
    from repro.observatory.encrypted import ENCRYPTED_DATASET
except ImportError:  # pragma: no cover - encrypted is a sibling module
    ENCRYPTED_DATASET = "_encrypted"

#: datasets whose weight must be non-decreasing across the sweep
GROWING_DATASETS = (ENCRYPTED_DATASET,)

#: meta-datasets excluded from the monotone-degradation gate: their
#: row volume tracks pipeline health, not payload visibility
UNGATED_DATASETS = ("_platform",)

#: per-dataset primary counter candidates, in preference order
WEIGHT_COLUMNS = ("hits", "queries", "count")

#: tolerance for the monotone gate (ratios are derived from exactly
#: reproducible TSV numbers, so this only absorbs float summation)
MONOTONE_SLACK = 1e-9


def row_weight(row):
    """The primary counter of one TSV row (1.0 when none applies, so
    datasets without a counter column degrade by row count)."""
    for column in WEIGHT_COLUMNS:
        value = row.get(column)
        if value is not None:
            return float(value)
    return 1.0


class DatasetSummary:
    """One dataset's accumulated volume in one sweep directory."""

    __slots__ = ("dataset", "windows", "rows", "weight", "seen")

    def __init__(self, dataset):
        self.dataset = dataset
        self.windows = 0
        self.rows = 0
        self.weight = 0.0
        #: transactions seen by the pipeline (from the #stats trailer);
        #: invariant across a blinding sweep -- sensors still observe
        #: size/timing for every query
        self.seen = 0.0

    def absorb(self, data):
        self.windows += 1
        self.rows += len(data.rows)
        for _key, row in data.rows:
            self.weight += row_weight(row)
        self.seen += float(data.stats.get("seen", 0))

    def as_dict(self):
        return {
            "dataset": self.dataset,
            "windows": self.windows,
            "rows": self.rows,
            "weight": self.weight,
            "seen": self.seen,
        }


def summarize_directory(path, granularity="minutely"):
    """``{dataset: DatasetSummary}`` over every *granularity* file in
    *path*.  Raises :class:`FileNotFoundError` for a missing directory
    (``report --blindness`` turns that into exit 2); an existing but
    empty directory summarizes to ``{}``."""
    if not os.path.isdir(path):
        raise FileNotFoundError(
            "blindness sweep directory not found: %s" % (path,))
    summaries = {}
    for file_path, dataset, _gran, _start in list_series(
            path, granularity=granularity):
        summary = summaries.get(dataset)
        if summary is None:
            summary = summaries[dataset] = DatasetSummary(dataset)
        summary.absorb(read_tsv(file_path))
    return summaries


def capture_ratios(baseline, summaries):
    """``{dataset: ratio}`` of *summaries* against *baseline* weights.

    Datasets absent from the baseline (the ``_encrypted`` channel of
    an all-plaintext baseline) ratio against their own weight instead
    of dividing by zero; a dataset absent from *summaries* ratios 0.
    """
    ratios = {}
    for dataset in set(baseline) | set(summaries):
        base = baseline.get(dataset)
        here = summaries.get(dataset)
        base_weight = base.weight if base is not None else 0.0
        here_weight = here.weight if here is not None else 0.0
        if base_weight > 0:
            ratios[dataset] = here_weight / base_weight
        else:
            # Zero-weight baseline (e.g. _encrypted under an
            # all-plaintext baseline): the ratio carries no signal,
            # report full visibility and let the monotone gate judge.
            ratios[dataset] = 1.0
    return ratios


def evaluate_blindness(summaries_by_dir):
    """Gate an ordered sweep; returns a list of violation strings.

    *summaries_by_dir* is ``[(label, {dataset: DatasetSummary})]`` in
    sweep order (baseline first).  A content dataset whose weight
    *rises* between adjacent sweep points, or a ``_encrypted`` channel
    whose weight *falls*, is a violation.
    """
    violations = []
    if len(summaries_by_dir) < 2:
        return violations
    datasets = set()
    for _label, summaries in summaries_by_dir:
        datasets.update(summaries)
    for dataset in sorted(datasets):
        if dataset in UNGATED_DATASETS:
            continue
        growing = dataset in GROWING_DATASETS
        previous = None
        for label, summaries in summaries_by_dir:
            summary = summaries.get(dataset)
            weight = summary.weight if summary is not None else 0.0
            if previous is not None:
                prev_label, prev_weight = previous
                slack = MONOTONE_SLACK * max(abs(prev_weight),
                                             abs(weight), 1.0)
                if growing and weight < prev_weight - slack:
                    violations.append(
                        "%s: %s weight fell %g -> %g (encrypted "
                        "channel must not shrink as blinding rises)"
                        % (dataset, label, prev_weight, weight))
                elif not growing and weight > prev_weight + slack:
                    violations.append(
                        "%s: %s weight rose %g -> %g (content "
                        "datasets cannot gain under blinding)"
                        % (dataset, label, prev_weight, weight))
            previous = (label, weight)
    return violations


def blindness_report(directories, granularity="minutely"):
    """Summarize and gate a sweep of directories.

    Returns ``(summaries_by_dir, ratios_by_dir, violations)`` where
    the first directory is the baseline.  Raises FileNotFoundError
    for a missing directory.
    """
    summaries_by_dir = []
    for path in directories:
        label = os.path.basename(os.path.normpath(path)) or path
        summaries_by_dir.append((label, summarize_directory(
            path, granularity=granularity)))
    baseline = summaries_by_dir[0][1]
    ratios_by_dir = [
        (label, capture_ratios(baseline, summaries))
        for label, summaries in summaries_by_dir
    ]
    return summaries_by_dir, ratios_by_dir, \
        evaluate_blindness(summaries_by_dir)


def render_blindness(summaries_by_dir, ratios_by_dir, violations):
    """The full ``report --blindness`` text block."""
    from repro.analysis.tables import format_table

    out = []
    out.append("Sensor blindness sweep: %s  (%d directories, "
               "baseline: %s)"
               % ("PASS" if not violations else "FAIL",
                  len(summaries_by_dir),
                  summaries_by_dir[0][0] if summaries_by_dir else "-"))
    datasets = set()
    for _label, summaries in summaries_by_dir:
        datasets.update(summaries)
    if not datasets:
        out.append("")
        out.append("No time-series found -- run replay on the sweep "
                   "directories first.")
        return "\n".join(out)
    out.append("")
    headers = ["dataset", "baseline weight"] + \
        ["%s" % label for label, _ in ratios_by_dir[1:]]
    rows = []
    baseline = summaries_by_dir[0][1]
    for dataset in sorted(datasets):
        base = baseline.get(dataset)
        row = [dataset,
               "-" if base is None else "%g" % base.weight]
        for _label, ratios in ratios_by_dir[1:]:
            row.append("%.3f" % ratios.get(dataset, 0.0))
        rows.append(row)
    out.append(format_table(
        headers, rows,
        title="Capture ratio vs baseline (1.000 = fully visible)"))
    out.append("")
    detail = []
    for label, summaries in summaries_by_dir:
        for dataset in sorted(summaries):
            summary = summaries[dataset]
            detail.append([label, dataset, summary.windows,
                           summary.rows, "%g" % summary.weight,
                           "%g" % summary.seen])
    out.append(format_table(
        ["directory", "dataset", "windows", "rows", "weight", "seen"],
        detail, title="Per-directory volume"))
    if violations:
        out.append("")
        out.append("Monotonicity violations:")
        for violation in violations:
            out.append("  - %s" % violation)
    return "\n".join(out)
