"""Machine-readable export of the reproduced figures.

Each ``export_*`` function writes the underlying data series of one
paper figure as a CSV file, so the plots can be regenerated with any
plotting tool (the paper's authors used JupyterLab, §2.4).  Plain
``csv`` module, no plotting dependencies.
"""

import csv
import os


def _open_csv(directory, name):
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, name)
    return path, open(path, "w", newline="", encoding="utf-8")


def export_figure2(distributions, directory, max_rank=None):
    """CSV per dataset: rank, key, cumulative share per category."""
    paths = []
    for name, dist in distributions.items():
        path, fh = _open_csv(directory, "fig2_%s.csv" % name)
        with fh:
            writer = csv.writer(fh)
            writer.writerow(["rank", "key", "cdf_all", "cdf_nxdomain",
                             "cdf_noerror_data", "cdf_nodata"])
            cdfs = {c: dist.cdf(c) for c in dist.CATEGORIES}
            limit = len(dist.keys) if max_rank is None else \
                min(max_rank, len(dist.keys))
            for i in range(limit):
                writer.writerow([
                    i + 1, dist.keys[i],
                    "%.6f" % cdfs["all"][i],
                    "%.6f" % cdfs["nxdomain"][i],
                    "%.6f" % cdfs["noerror_data"][i],
                    "%.6f" % cdfs["nodata"][i],
                ])
        paths.append(path)
    return paths


def export_table1(org_rows, total, directory):
    path, fh = _open_csv(directory, "table1.csv")
    with fh:
        writer = csv.writer(fh)
        writer.writerow(["rank", "org", "ases", "global_share",
                         "servers", "mean_delay_ms", "mean_hops"])
        for i, org in enumerate(org_rows, start=1):
            writer.writerow([
                i, org.org, len(org.asns),
                "%.6f" % (org.hits / total if total else 0.0),
                org.servers, "%.3f" % org.mean_delay,
                "%.3f" % org.mean_hops,
            ])
    return path


def export_table2(qtype_rows, directory):
    path, fh = _open_csv(directory, "table2.csv")
    with fh:
        writer = csv.writer(fh)
        writer.writerow(["rank", "qtype", "global_share", "data",
                         "nodata", "nxd", "err", "qdots", "tlds",
                         "eslds", "fqdns", "valid", "ttl", "servers",
                         "delay_ms", "hops", "size_bytes"])
        for i, row in enumerate(qtype_rows, start=1):
            writer.writerow([
                i, row.qtype, "%.6f" % row.global_share,
                "%.6f" % row.data, "%.6f" % row.nodata,
                "%.6f" % row.nxd, "%.6f" % row.err,
                "%.3f" % row.qdots, "%.1f" % row.tlds,
                "%.1f" % row.eslds, "%.1f" % row.fqdns,
                "%.4f" % row.valid, row.ttl, "%.1f" % row.servers,
                "%.3f" % row.delay, "%.3f" % row.hops,
                "%.1f" % row.size,
            ])
    return path


def export_figure3(delays_shares, groups, root_stats, gtld_stats,
                   directory):
    paths = []
    path, fh = _open_csv(directory, "fig3a_delay_cdf.csv")
    delays, _shares = delays_shares
    with fh:
        writer = csv.writer(fh)
        writer.writerow(["nameserver_index", "median_delay_ms", "cdf"])
        n = len(delays) or 1
        for i, delay in enumerate(delays):
            writer.writerow([i + 1, "%.3f" % delay,
                             "%.6f" % ((i + 1) / n)])
    paths.append(path)
    path, fh = _open_csv(directory, "fig3b_rank_vs_delay.csv")
    with fh:
        writer = csv.writer(fh)
        writer.writerow(["rank_group_start", "mean_delay_ms", "mean_hops"])
        for start, delay, hops in groups:
            writer.writerow([start, "%.3f" % delay, "%.3f" % hops])
    paths.append(path)
    for label, stats in (("fig3c_root", root_stats),
                         ("fig3d_gtld", gtld_stats)):
        path, fh = _open_csv(directory, "%s_letters.csv" % label)
        with fh:
            writer = csv.writer(fh)
            writer.writerow(["letter", "delay_q25", "delay_q50",
                             "delay_q75", "hops", "hits", "nxd_share"])
            for s in stats:
                writer.writerow([
                    s.letter, "%.3f" % s.delay_q25, "%.3f" % s.delay_q50,
                    "%.3f" % s.delay_q75, "%.3f" % s.hops, s.hits,
                    "%.6f" % s.nxd_share,
                ])
        paths.append(path)
    return paths


def export_figure4(curves, directory):
    path, fh = _open_csv(directory, "fig4_representativeness.csv")
    with fh:
        writer = csv.writer(fh)
        writer.writerow(["vp_fraction", "nameservers", "top_coverage",
                         "tlds"])
        for c in curves:
            writer.writerow([
                "%.2f" % c["fraction"], "%.1f" % c["nameservers"],
                "%.6f" % c["top_coverage"], "%.1f" % c["tlds"],
            ])
    return path


def export_figure5(series, directory):
    path, fh = _open_csv(directory, "fig5_nameservers_time.csv")
    with fh:
        writer = csv.writer(fh)
        writer.writerow(["elapsed_seconds", "distinct_nameservers"])
        for t, n in series:
            writer.writerow(["%.0f" % t, n])
    return path


def export_figure7(result, key, directory):
    path, fh = _open_csv(directory, "fig7_ttl_drop.csv")
    with fh:
        writer = csv.writer(fh)
        writer.writerow(["window_start", "queries", "ttl_top1", "key"])
        for ts, hits, ttl in result["series"]:
            writer.writerow([ts, hits, ttl if ttl else "", key])
    return path


def export_figure8(changes, directory):
    path, fh = _open_csv(directory, "fig8_ttl_vs_traffic.csv")
    with fh:
        writer = csv.writer(fh)
        writer.writerow(["sld", "ttl_before", "ttl_after",
                         "queries_before", "queries_after",
                         "responses_before", "responses_after",
                         "query_only_growth"])
        for c in changes:
            writer.writerow([
                c.key, c.ttl_before, c.ttl_after, c.queries_before,
                c.queries_after, c.responses_before, c.responses_after,
                int(c.query_only_growth),
            ])
    return path


def export_figure9(points, directory):
    path, fh = _open_csv(directory, "fig9_happy_eyeballs.csv")
    with fh:
        writer = csv.writer(fh)
        writer.writerow(["rank", "fqdn", "empty_aaaa_share", "a_ttl",
                         "neg_ttl", "quotient", "ipv4_only"])
        for p in points:
            writer.writerow([
                p.rank, p.fqdn, "%.6f" % p.empty_aaaa_share, p.a_ttl,
                p.neg_ttl, "%.4f" % p.quotient, int(p.ipv4_only),
            ])
    return path
