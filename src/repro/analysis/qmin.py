"""Section 3.6 / Table 3: detecting QNAME minimization deployment.

The paper's method: inspect the QNAMEs each resolver sends to root and
TLD nameservers.  A resolver that ever sends >1 label to a root server
is non-qmin; >2 labels to a TLD server is non-qmin (with a whitelist
allowing 3 labels for TLD zones hosting multi-label suffixes like
co.uk).  Only negative evidence is conclusive; resolvers that never
exceed the limits are *possible* qmin deployments.  The strict
"100 % of queries" notion explains why the paper finds far less qmin
than DeVries et al.'s 97 %-threshold method.
"""

from repro.analysis.tables import format_percent, format_table
from repro.dnswire.name import count_labels


class QminDetector:
    """Stream detector of per-resolver qmin behaviour.

    Parameters
    ----------
    root_ips / tld_ips:
        Sets of root and TLD nameserver IPs (from root-zone data in
        the real system; from simulation ground truth here).
    tld_whitelist_labels:
        Optional ``{tld_server_ip: max_labels}`` overrides for
        registries hosting multi-label suffixes (default limit is 2,
        whitelisted servers allow 3).
    """

    def __init__(self, root_ips, tld_ips, whitelisted_tld_ips=()):
        self.root_ips = frozenset(root_ips)
        self.tld_ips = frozenset(tld_ips)
        self.whitelisted_tld_ips = frozenset(whitelisted_tld_ips)
        #: resolver -> max labels ever sent to a root server
        self.root_max_labels = {}
        #: resolver -> max labels ever sent to a TLD server
        self.tld_max_labels = {}
        #: per-resolver query counts to root/TLD servers
        self.root_queries = {}
        self.tld_queries = {}
        self.total_root_queries = 0
        self.total_tld_queries = 0

    def observe(self, txn):
        """Feed one transaction."""
        labels = count_labels(txn.qname)
        resolver = txn.resolver_ip
        if txn.server_ip in self.root_ips:
            self.total_root_queries += 1
            self.root_queries[resolver] = \
                self.root_queries.get(resolver, 0) + 1
            if labels > self.root_max_labels.get(resolver, 0):
                self.root_max_labels[resolver] = labels
        elif txn.server_ip in self.tld_ips:
            self.total_tld_queries += 1
            self.tld_queries[resolver] = \
                self.tld_queries.get(resolver, 0) + 1
            limit_key = (resolver, txn.server_ip)
            effective = labels
            if txn.server_ip in self.whitelisted_tld_ips:
                effective = max(labels - 1, 0)  # allow one extra label
            if effective > self.tld_max_labels.get(resolver, 0):
                self.tld_max_labels[resolver] = effective

    # -- classification ------------------------------------------------

    def non_qmin_resolvers_root(self):
        """Resolvers with conclusive non-qmin evidence at the root."""
        return sorted(r for r, labels in self.root_max_labels.items()
                      if labels > 1)

    def possible_qmin_resolvers_root(self):
        """Resolvers that only ever sent <=1 label to root servers."""
        return sorted(r for r, labels in self.root_max_labels.items()
                      if labels <= 1)

    def non_qmin_resolvers_tld(self):
        return sorted(r for r, labels in self.tld_max_labels.items()
                      if labels > 2)

    def possible_qmin_resolvers_tld(self):
        return sorted(r for r, labels in self.tld_max_labels.items()
                      if labels <= 2)

    def cross_check(self, resolvers):
        """Paper's cross-check: drop candidates that show non-qmin
        behaviour towards the *other* level."""
        non_qmin = set(self.non_qmin_resolvers_root()) | \
            set(self.non_qmin_resolvers_tld())
        return sorted(set(resolvers) - non_qmin)

    def qmin_traffic_shares(self):
        """Share of root/TLD queries sent by possible-qmin resolvers."""
        qmin_root = self.cross_check(self.possible_qmin_resolvers_root())
        qmin_tld = self.cross_check(self.possible_qmin_resolvers_tld())
        root_q = sum(self.root_queries.get(r, 0) for r in qmin_root)
        tld_q = sum(self.tld_queries.get(r, 0) for r in qmin_tld)
        return {
            "root": root_q / self.total_root_queries
            if self.total_root_queries else 0.0,
            "tld": tld_q / self.total_tld_queries
            if self.total_tld_queries else 0.0,
        }


def detect_qmin(transactions, root_ips, tld_ips, whitelisted_tld_ips=()):
    """Run the detector over a transaction iterable."""
    detector = QminDetector(root_ips, tld_ips, whitelisted_tld_ips)
    for txn in transactions:
        detector.observe(txn)
    return detector


def detect_qmin_from_srcsrv(dumps, root_ips, tld_ips,
                            whitelisted_tld_ips=()):
    """Run the detection from the *aggregated* srcsrv dataset.

    This is how the production platform works: the srcsrv rows (§3.1,
    "Top-30K pairs of resolvers and nameservers") carry the
    ``qdots_max`` feature -- the deepest QNAME the pair ever
    exchanged -- which is exactly the Table 3 evidence, without
    keeping raw transactions around.
    """
    from repro.analysis.seriesops import accumulate_dumps

    detector = QminDetector(root_ips, tld_ips, whitelisted_tld_ips)
    rows = accumulate_dumps(dumps)
    for key, row in rows.items():
        resolver_ip, _, server_ip = key.partition("|")
        labels = int(row.get("qdots_max", 0))
        hits = int(row.get("hits", 0))
        if server_ip in detector.root_ips:
            detector.total_root_queries += hits
            detector.root_queries[resolver_ip] = \
                detector.root_queries.get(resolver_ip, 0) + hits
            if labels > detector.root_max_labels.get(resolver_ip, 0):
                detector.root_max_labels[resolver_ip] = labels
        elif server_ip in detector.tld_ips:
            effective = labels
            if server_ip in detector.whitelisted_tld_ips:
                effective = max(labels - 1, 0)
            detector.total_tld_queries += hits
            detector.tld_queries[resolver_ip] = \
                detector.tld_queries.get(resolver_ip, 0) + hits
            if effective > detector.tld_max_labels.get(resolver_ip, 0):
                detector.tld_max_labels[resolver_ip] = effective
    return detector


#: The Table 3 decision matrix, rendered as data: sent QNAME depth ->
#: what each authority level lets us conclude ('?' undecidable, 'x'
#: conclusively non-qmin).
TABLE3_MATRIX = (
    ("com", "?", "?", "?"),
    ("example.com", "x", "?", "?"),
    ("www.example.com", "x", "x", "?"),
)


def render_table3(detector):
    lines = [format_table(
        ["Sent QNAME", "Root NS", "TLD NS", "Other NS"],
        TABLE3_MATRIX, title="Table 3: qmin detection matrix")]
    qmin_root = detector.cross_check(detector.possible_qmin_resolvers_root())
    qmin_tld = detector.cross_check(detector.possible_qmin_resolvers_tld())
    shares = detector.qmin_traffic_shares()
    lines.append("possible qmin resolvers (root evidence): %d"
                 % len(qmin_root))
    lines.append("possible qmin resolvers (TLD evidence):  %d"
                 % len(qmin_tld))
    lines.append("non-qmin resolvers: %d"
                 % len(set(detector.non_qmin_resolvers_root())
                       | set(detector.non_qmin_resolvers_tld())))
    lines.append("qmin share of root traffic: %s"
                 % format_percent(shares["root"], 3))
    lines.append("qmin share of TLD traffic:  %s"
                 % format_percent(shares["tld"], 3))
    return "\n".join(lines)
