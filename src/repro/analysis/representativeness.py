"""Section 3.7 / Figures 4-5: data representativeness experiments.

* Figure 4a: distinct authoritative nameservers seen as a function of
  the fraction of vantage points used (should converge to a limit);
* Figure 4b: coverage of the full-data Top-k nameserver list from VP
  subsets (a 5 % sample already sees ~95 %);
* Figure 4c: distinct TLDs seen vs VP fraction;
* Figure 5: distinct nameservers seen as a function of monitoring
  *time* with all VPs;
* the /24 density observation (48 % of observed prefixes hold exactly
  one nameserver address).
"""

import random

from repro.analysis.tables import format_percent, format_series
from repro.dnswire.psl import default_psl
from repro.netsim.addr import is_ipv6, slash24_of


def _resolvers_of(transactions):
    return sorted({t.resolver_ip for t in transactions})


def vp_sample_curves(transactions, fractions=(0.05, 0.1, 0.2, 0.4, 0.6,
                                              0.8, 1.0),
                     repetitions=20, top_k=100, seed=7, psl=None):
    """Figures 4a-c: resample VP subsets and measure coverage.

    Returns a list of dicts per fraction with keys ``fraction``,
    ``nameservers`` (mean distinct servers), ``top_coverage`` (mean
    share of the full-data top-*top_k* visible), ``tlds``.
    """
    psl = psl or default_psl()
    resolvers = _resolvers_of(transactions)
    by_resolver = {r: [] for r in resolvers}
    for txn in transactions:
        by_resolver[txn.resolver_ip].append(txn)

    # Full-data reference: top-k nameservers by hits, all TLDs.
    full_counts = {}
    for txn in transactions:
        full_counts[txn.server_ip] = full_counts.get(txn.server_ip, 0) + 1
    full_top = set(sorted(full_counts, key=full_counts.get,
                          reverse=True)[:top_k])

    rng = random.Random(seed)
    curves = []
    for fraction in fractions:
        size = max(1, int(round(fraction * len(resolvers))))
        ns_counts = []
        coverages = []
        tld_counts = []
        reps = repetitions if fraction < 1.0 else 1
        for _ in range(reps):
            sample = rng.sample(resolvers, size)
            servers = set()
            tlds = set()
            for r in sample:
                for txn in by_resolver[r]:
                    servers.add(txn.server_ip)
                    if txn.noerror:  # actively used TLDs only (§3.7)
                        etld = psl.effective_tld(txn.qname)
                        if etld:
                            tlds.add(etld)
            ns_counts.append(len(servers))
            coverages.append(len(servers & full_top) / max(len(full_top), 1))
            tld_counts.append(len(tlds))
        curves.append({
            "fraction": fraction,
            "nameservers": sum(ns_counts) / len(ns_counts),
            "top_coverage": sum(coverages) / len(coverages),
            "tlds": sum(tld_counts) / len(tld_counts),
        })
    return curves


def convergence_ratio(curves):
    """How close the half-sample is to the full sample -- near 1.0
    means the VP pool saturates (the paper's convergence argument)."""
    if len(curves) < 2:
        return 1.0
    full = curves[-1]["nameservers"] or 1.0
    half = next((c for c in curves if c["fraction"] >= 0.5), curves[-1])
    return half["nameservers"] / full


def nameservers_over_time(transactions, step_seconds=3600.0):
    """Figure 5: cumulative distinct nameserver IPs per time step.

    Returns a list of ``(elapsed_seconds, cumulative_count)``.
    """
    if not transactions:
        return []
    start = transactions[0].ts
    seen = set()
    series = []
    boundary = start + step_seconds
    for txn in transactions:
        while txn.ts >= boundary:
            series.append((boundary - start, len(seen)))
            boundary += step_seconds
        seen.add(txn.server_ip)
    series.append((boundary - start, len(seen)))
    return series


def slash24_density(transactions):
    """§3.7: how many nameserver addresses share each observed /24.

    Returns ``{addresses_per_prefix: share_of_prefixes}``.
    """
    per_prefix = {}
    for txn in transactions:
        if is_ipv6(txn.server_ip):
            continue
        prefix = slash24_of(txn.server_ip)
        per_prefix.setdefault(prefix, set()).add(txn.server_ip)
    histogram = {}
    for addresses in per_prefix.values():
        histogram[len(addresses)] = histogram.get(len(addresses), 0) + 1
    total = sum(histogram.values()) or 1
    return {count: n / total for count, n in sorted(histogram.items())}


def render_figure4(curves):
    lines = [format_series(
        [("%d%%" % round(c["fraction"] * 100), round(c["nameservers"]))
         for c in curves],
        x_label="VPs", y_label="nameservers (Fig 4a)")]
    lines.append(format_series(
        [("%d%%" % round(c["fraction"] * 100),
          format_percent(c["top_coverage"])) for c in curves],
        x_label="VPs", y_label="top-k coverage (Fig 4b)"))
    lines.append(format_series(
        [("%d%%" % round(c["fraction"] * 100), round(c["tlds"]))
         for c in curves],
        x_label="VPs", y_label="TLDs (Fig 4c)"))
    lines.append("half-sample convergence: %s"
                 % format_percent(convergence_ratio(curves)))
    return "\n".join(lines)


def render_figure5(series, density):
    lines = [format_series(
        [("%.1fh" % (t / 3600.0), n) for t, n in series],
        x_label="time", y_label="nameservers (Fig 5)")]
    top = {k: v for k, v in list(density.items())[:4]}
    lines.append("/24 density: " + ", ".join(
        "%d addr: %s" % (k, format_percent(v)) for k, v in top.items()))
    return "\n".join(lines)
