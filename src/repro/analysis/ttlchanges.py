"""Table 4 / Section 4.2: detecting and classifying TTL changes.

Methodology from the paper: hourly top lists of FQDNs in authoritative
answers (the aafqdn dataset); a *change* is flagged when at least 10 %
of an hour's responses show new TTL values; each flagged FQDN is then
classified against the DNSDB history:

* **Non-conforming** -- the server returns variable TTLs per response;
* **Renumbering** -- A/AAAA values changed around the TTL change;
* **Change NS** -- the NS set changed (often with a TTL slash);
* **TTL Decrease / Increase** -- only the TTL moved;
* **Unknown** -- not enough history to decide.
"""

from repro.analysis.tables import format_table
from repro.dnswire.constants import QTYPE

CATEGORIES = ("Non-conforming", "Renumbering", "Change NS",
              "TTL Decrease", "TTL Increase", "Unknown")


class TtlChangeEventRecord:
    """One detected TTL change, before/after classification."""

    __slots__ = ("fqdn", "rtype", "window_ts", "old_ttl", "new_ttl",
                 "category", "comment")

    def __init__(self, fqdn, rtype, window_ts, old_ttl, new_ttl):
        self.fqdn = fqdn
        self.rtype = rtype
        self.window_ts = window_ts
        self.old_ttl = old_ttl
        self.new_ttl = new_ttl
        self.category = "Unknown"
        self.comment = ""

    def __repr__(self):
        return "TtlChange(%s %s %s->%s: %s)" % (
            self.fqdn, self.rtype, self.old_ttl, self.new_ttl,
            self.category)


class TtlChangeDetector:
    """Detect per-FQDN TTL changes across consecutive windows.

    Operates on the aafqdn window dumps; a change is flagged when the
    dominant TTL of a window differs from the previous dominant TTL
    and the new value covers at least *min_share* of that window's
    responses (the paper's 10 % rule applied to the top value).
    """

    def __init__(self, min_share=0.10):
        self.min_share = float(min_share)
        self._last_ttl = {}      # (fqdn, kind) -> dominant ttl
        self._known_ttls = {}    # (fqdn, kind) -> TTLs seen in top-3
        self.events = []

    @staticmethod
    def _kinds_for(key):
        """aafqdn keys are ``qname|QTYPE``: per-type rows analyze their
        ANSWER TTLs only.  Legacy plain-qname keys fall back to the
        mixed A + authority-NS view."""
        if "|" in key:
            fqdn, qtype = key.rsplit("|", 1)
            if qtype not in ("A", "AAAA", "NS"):
                return fqdn, ()
            kind = "NS" if qtype == "NS" else "A"
            return fqdn, ((kind, ("ttl_top1", "ttl_top2", "ttl_top3"),
                           "ttl_top1_share"),)
        return key, (
            ("A", ("ttl_top1", "ttl_top2", "ttl_top3"), "ttl_top1_share"),
            ("NS", ("nsttl_top1",), "nsttl_top1_share"),
        )

    def observe_dump(self, dump):
        """Feed one aafqdn WindowDump (or TimeSeriesData)."""
        for key, row in dump.rows:
            fqdn, kind_specs = self._kinds_for(key)
            for kind, ttl_cols, share_col in kind_specs:
                ttl = row.get(ttl_cols[0], 0)
                share = row.get(share_col, 0.0)
                if not ttl or share < self.min_share:
                    continue
                state_key = (fqdn, kind)
                last = self._last_ttl.get(state_key)
                known = self._known_ttls.setdefault(state_key, set())
                # A change requires a genuinely *new* dominant TTL:
                # flipping between already-seen values (e.g. the A and
                # MX TTLs of the same name trading places in the top-3)
                # does not indicate a zone update.
                if last is not None and ttl != last and ttl not in known:
                    self.events.append(TtlChangeEventRecord(
                        fqdn, kind, dump.start_ts, last, ttl))
                self._last_ttl[state_key] = ttl
                for col in ttl_cols:
                    value = row.get(col, 0)
                    if value:
                        known.add(value)
        return self

    def changed_fqdns(self):
        return sorted({e.fqdn for e in self.events})


def classify_events(events, dnsdb, dynamic_ttl_threshold=4):
    """Classify detected changes against the DNSDB history (Table 4).

    Mutates and returns *events*.  One category per FQDN: the most
    specific evidence wins (Non-conforming > Change NS > Renumbering >
    TTL Decrease/Increase > Unknown).
    """
    for event in events:
        fqdn = event.fqdn
        a_ttls = dnsdb.distinct_ttls(fqdn, QTYPE.A)
        if a_ttls >= dynamic_ttl_threshold:
            event.category = "Non-conforming"
            event.comment = "Dynamic TTL (%d distinct values)" % a_ttls
            continue
        ns_change = dnsdb.value_change(fqdn, QTYPE.NS)
        if ns_change is not None:
            event.category = "Change NS"
            event.comment = "%s -> %s" % (
                ",".join(ns_change[0][:2]), ",".join(ns_change[1][:2]))
            continue
        a_change = dnsdb.value_change(fqdn, QTYPE.A)
        if a_change is not None:
            event.category = "Renumbering"
            event.comment = "%s -> %s" % (
                ",".join(a_change[0][:2]), ",".join(a_change[1][:2]))
            continue
        transition = dnsdb.ttl_transition(
            fqdn, QTYPE.A if event.rtype == "A" else QTYPE.NS)
        if transition is None:
            event.category = "Unknown"
            continue
        old, new = transition
        event.category = "TTL Decrease" if new < old else "TTL Increase"
    return events


def table4(events):
    """Aggregate classified events into the Table 4 category counts.

    Each FQDN counts once, under its (first) classified category.
    """
    per_fqdn = {}
    for event in events:
        per_fqdn.setdefault(event.fqdn, event)
    counts = {category: 0 for category in CATEGORIES}
    for event in per_fqdn.values():
        counts[event.category] += 1
    return counts, per_fqdn


def render_table4(counts, per_fqdn, max_examples=1):
    rows = []
    for category in CATEGORIES:
        examples = [e for e in per_fqdn.values() if e.category == category]
        example = examples[0] if examples else None
        rows.append([
            category, counts[category],
            example.fqdn if example else "-",
            "%s/%s" % (example.old_ttl, example.new_ttl) if example else "-",
            example.comment if example else "-",
        ])
    total = sum(counts.values())
    table = format_table(
        ["Category", "#", "Example", "TTL before/after", "Comment"],
        rows, title="Table 4: TTL changes detected and classified")
    return "%s\ntotal FQDNs with TTL changes: %d" % (table, total)
