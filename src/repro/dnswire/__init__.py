"""DNS protocol substrate: names, records, messages, wire format, PSL.

DNS Observatory parses "raw packets, starting at the IP header"
(Section 2.1).  This subpackage provides the DNS half of that parser --
a self-contained RFC 1035 implementation with the pieces the paper's
feature set needs:

* :mod:`~repro.dnswire.name` -- domain name handling (labels, wire
  codec with message compression, subdomain arithmetic);
* :mod:`~repro.dnswire.constants` -- QTYPE / RCODE / flag registries;
* :mod:`~repro.dnswire.rdata` -- typed RDATA for A, AAAA, NS, CNAME,
  SOA, MX, TXT, PTR, SRV, DS, RRSIG and OPT;
* :mod:`~repro.dnswire.message` -- full message model with wire
  encode/decode (header, question, answer/authority/additional);
* :mod:`~repro.dnswire.edns` -- EDNS0 OPT pseudo-record (payload size,
  DO flag) per RFC 6891;
* :mod:`~repro.dnswire.psl` -- Public Suffix List engine for
  effective-TLD / effective-SLD extraction (Section 2 terminology).
"""

from repro.dnswire.constants import CLASS_IN, FLAGS, QTYPE, RCODE
from repro.dnswire.message import Message, Question, ResourceRecord
from repro.dnswire.name import (
    count_labels,
    decode_name,
    encode_name,
    is_subdomain,
    normalize_name,
    parent_name,
    split_labels,
)
from repro.dnswire.psl import PublicSuffixList, default_psl

__all__ = [
    "CLASS_IN",
    "FLAGS",
    "QTYPE",
    "RCODE",
    "Message",
    "Question",
    "ResourceRecord",
    "count_labels",
    "decode_name",
    "encode_name",
    "is_subdomain",
    "normalize_name",
    "parent_name",
    "split_labels",
    "PublicSuffixList",
    "default_psl",
]
