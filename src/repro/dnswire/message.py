"""DNS message model with full wire encode/decode (RFC 1035 §4).

A :class:`Message` mirrors the four sections of a DNS packet.  The
encoder applies name compression across the whole message; the decoder
tolerates the things passive sensors see in the wild (unknown types
become opaque :class:`~repro.dnswire.rdata.Rdata`).
"""

import struct

from repro.dnswire.constants import CLASS_IN, FLAGS, QTYPE, RCODE
from repro.dnswire.name import decode_name, encode_name, normalize_name
from repro.dnswire.rdata import OPT, rdata_class

_HEADER = struct.Struct(">HHHHHH")
_RR_FIXED = struct.Struct(">HHIH")
_QFIXED = struct.Struct(">HH")


class Question:
    """One entry of the question section."""

    __slots__ = ("qname", "qtype", "qclass")

    def __init__(self, qname, qtype, qclass=CLASS_IN):
        self.qname = normalize_name(qname)
        self.qtype = int(qtype)
        self.qclass = int(qclass)

    def __eq__(self, other):
        return (
            isinstance(other, Question)
            and (self.qname, self.qtype, self.qclass)
            == (other.qname, other.qtype, other.qclass)
        )

    def __hash__(self):
        return hash((self.qname, self.qtype, self.qclass))

    def __repr__(self):
        return "Question(%r, %s)" % (self.qname, QTYPE.name_of(self.qtype))


class ResourceRecord:
    """A resource record in the answer/authority/additional sections."""

    __slots__ = ("name", "rtype", "rclass", "ttl", "rdata")

    def __init__(self, name, rtype, ttl, rdata, rclass=CLASS_IN):
        self.name = normalize_name(name)
        self.rtype = int(rtype)
        self.rclass = int(rclass)
        self.ttl = int(ttl)
        self.rdata = rdata

    def __eq__(self, other):
        return (
            isinstance(other, ResourceRecord)
            and (self.name, self.rtype, self.rclass, self.ttl, self.rdata)
            == (other.name, other.rtype, other.rclass, other.ttl, other.rdata)
        )

    def __repr__(self):
        return "RR(%r, %s, ttl=%d, %r)" % (
            self.name, QTYPE.name_of(self.rtype), self.ttl, self.rdata
        )


class Message:
    """A DNS message: header + question/answer/authority/additional."""

    def __init__(self, msg_id=0, flags=0, question=None, answer=None,
                 authority=None, additional=None):
        self.msg_id = int(msg_id) & 0xFFFF
        self.flags = int(flags) & 0xFFFF
        self.question = list(question or [])
        self.answer = list(answer or [])
        self.authority = list(authority or [])
        self.additional = list(additional or [])

    # -- header flag helpers ------------------------------------------

    @property
    def is_response(self):
        return bool(self.flags & FLAGS.QR)

    @property
    def authoritative(self):
        return bool(self.flags & FLAGS.AA)

    @property
    def truncated(self):
        return bool(self.flags & FLAGS.TC)

    @property
    def rcode(self):
        return self.flags & FLAGS.RCODE_MASK

    @rcode.setter
    def rcode(self, value):
        self.flags = (self.flags & ~FLAGS.RCODE_MASK) | (int(value) & 0xF)

    def set_flag(self, mask, on=True):
        """Set or clear a header flag bit (e.g. ``FLAGS.AA``)."""
        if on:
            self.flags |= mask
        else:
            self.flags &= ~mask

    # -- convenience constructors -------------------------------------

    @classmethod
    def make_query(cls, qname, qtype, msg_id=0, recursion_desired=False):
        """Build a standard query for *qname*/*qtype*."""
        flags = FLAGS.RD if recursion_desired else 0
        return cls(msg_id=msg_id, flags=flags,
                   question=[Question(qname, qtype)])

    @classmethod
    def make_response(cls, query, rcode=RCODE.NOERROR, authoritative=False):
        """Build an empty response echoing *query*'s id and question."""
        flags = FLAGS.QR | (int(rcode) & 0xF)
        if authoritative:
            flags |= FLAGS.AA
        if query.flags & FLAGS.RD:
            flags |= FLAGS.RD
        return cls(msg_id=query.msg_id, flags=flags,
                   question=list(query.question))

    # -- section inspection helpers (used by feature extraction) ------

    def records(self, section, rtype=None):
        """Iterate records of *section* ('answer'/'authority'/'additional'),
        optionally filtered by *rtype*."""
        for rr in getattr(self, section):
            if rtype is None or rr.rtype == rtype:
                yield rr

    def opt_record(self):
        """Return the EDNS0 OPT pseudo-record, or None."""
        for rr in self.additional:
            if rr.rtype == QTYPE.OPT:
                return rr
        return None

    def has_rrsig(self):
        """True if any section carries an RRSIG (the ok_sec signal)."""
        return any(
            rr.rtype == QTYPE.RRSIG
            for section in (self.answer, self.authority, self.additional)
            for rr in section
        )

    # -- wire codec ----------------------------------------------------

    def to_wire(self):
        """Encode the message with RFC 1035 name compression."""
        compression = {}
        out = bytearray(
            _HEADER.pack(
                self.msg_id, self.flags, len(self.question),
                len(self.answer), len(self.authority), len(self.additional),
            )
        )
        for q in self.question:
            out += encode_name(q.qname, compression, len(out))
            out += _QFIXED.pack(q.qtype, q.qclass)
        for section in (self.answer, self.authority, self.additional):
            for rr in section:
                out += encode_name(rr.name, compression, len(out))
                rdata = rr.rdata.to_wire(compression, len(out) + _RR_FIXED.size)
                out += _RR_FIXED.pack(rr.rtype, rr.rclass, rr.ttl, len(rdata))
                out += rdata
        return bytes(out)

    @classmethod
    def from_wire(cls, wire):
        """Decode a DNS message from *wire* bytes.

        Malformed input of any shape raises ``ValueError`` (passive
        sensors must reject garbage cleanly, never crash).
        """
        import struct as _struct

        if len(wire) < _HEADER.size:
            raise ValueError("truncated DNS header")
        # decode through a view: name labels and rdata fields slice the
        # packet buffer without copying; only the final strings and the
        # stored rdata payloads materialize
        wire = memoryview(wire)
        try:
            msg_id, flags, qd, an, ns, ar = _HEADER.unpack_from(wire, 0)
            msg = cls(msg_id=msg_id, flags=flags)
            offset = _HEADER.size
            for _ in range(qd):
                qname, offset = decode_name(wire, offset)
                qtype, qclass = _QFIXED.unpack_from(wire, offset)
                offset += _QFIXED.size
                msg.question.append(Question(qname, qtype, qclass))
            for count, section in ((an, msg.answer), (ns, msg.authority),
                                   (ar, msg.additional)):
                for _ in range(count):
                    name, offset = decode_name(wire, offset)
                    rtype, rclass, ttl, rdlength = \
                        _RR_FIXED.unpack_from(wire, offset)
                    offset += _RR_FIXED.size
                    if offset + rdlength > len(wire):
                        raise ValueError("truncated RDATA")
                    rdata = rdata_class(rtype).from_wire(
                        wire, offset, rdlength)
                    offset += rdlength
                    section.append(
                        ResourceRecord(name, rtype, ttl, rdata, rclass)
                    )
        except _struct.error as exc:
            raise ValueError("truncated DNS message: %s" % exc) from exc
        except IndexError as exc:
            raise ValueError("malformed DNS message") from exc
        return msg

    def __len__(self):
        """Wire size in bytes (the resp_size feature)."""
        return len(self.to_wire())

    def __repr__(self):
        return (
            "Message(id=%d, %s, rcode=%s, q=%r, an=%d, ns=%d, ar=%d)" % (
                self.msg_id,
                "response" if self.is_response else "query",
                RCODE.name_of(self.rcode),
                self.question[0] if self.question else None,
                len(self.answer), len(self.authority), len(self.additional),
            )
        )
