"""Public Suffix List engine: effective TLDs and effective SLDs.

Terminology from Section 2 of the paper: "effective TLDs" (eTLDs) are
the ICANN domains listed in the Public Suffix List (e.g. ``co.uk``),
and an "effective SLD" (eSLD) is a label directly under an eTLD (e.g.
``bbc.co.uk``).

This module implements the standard PSL matching algorithm
(https://publicsuffix.org/list/), including wildcard rules (``*.ck``)
and exception rules (``!www.ck``).  An embedded snapshot of common
ICANN suffixes is provided for offline use; production deployments can
load the full list via :meth:`PublicSuffixList.from_lines`.
"""

from repro.dnswire.name import normalize_name, split_labels

#: Embedded snapshot of ICANN public suffixes.  A small but realistic
#: subset: legacy gTLDs, popular new gTLDs, ccTLDs with and without
#: second-level registration trees, the .ck wildcard with its
#: historical exception, and the reverse-DNS .arpa tree.
BUILTIN_SUFFIXES = """
// legacy gTLDs
com
net
org
edu
gov
mil
int
// infrastructure
arpa
in-addr.arpa
ip6.arpa
// popular new gTLDs
info
biz
io
co
ai
me
top
xyz
online
site
club
dev
app
cloud
icu
vip
shop
work
tech
store
// ccTLDs, flat
de
fr
nl
se
ch
at
be
ca
us
it
es
pl
cn
ru
ke
by
// ccTLDs with second-level trees (the Table 3 whitelist cases)
uk
co.uk
org.uk
ac.uk
gov.uk
il
co.il
org.il
ac.il
net.me
org.me
au
com.au
net.au
org.au
jp
co.jp
ne.jp
or.jp
br
com.br
net.br
org.br
com.pl
net.pl
co.ke
or.ke
com.cn
net.cn
org.cn
// wildcard + exception (PSL reference example)
ck
*.ck
!www.ck
"""


class PublicSuffixList:
    """PSL rule matcher.

    Parameters
    ----------
    rules:
        Iterable of rule strings in PSL syntax (``co.uk``, ``*.ck``,
        ``!www.ck``).  Comments (``//``) and blanks are ignored.
    """

    #: memoization cap -- popular QNAMEs repeat millions of times in
    #: the stream; the cache is cleared wholesale when it fills
    _CACHE_LIMIT = 200_000

    def __init__(self, rules):
        self._exact = set()
        self._wildcards = set()
        self._exceptions = set()
        self._tld_cache = {}
        for raw in rules:
            rule = raw.split("//")[0].strip().lower()
            if not rule:
                continue
            if rule.startswith("!"):
                self._exceptions.add(rule[1:])
            elif rule.startswith("*."):
                self._wildcards.add(rule[2:])
            else:
                self._exact.add(rule)

    @classmethod
    def from_lines(cls, lines):
        """Build from an iterable of PSL file lines."""
        return cls(lines)

    @classmethod
    def builtin(cls):
        """Build from the embedded ICANN snapshot."""
        return cls(BUILTIN_SUFFIXES.splitlines())

    def __len__(self):
        return len(self._exact) + len(self._wildcards) + len(self._exceptions)

    def effective_tld(self, name):
        """Return the public suffix (eTLD) of *name*, or None.

        ``bbc.co.uk`` -> ``co.uk``; ``example.com`` -> ``com``.  A name
        that *is* a public suffix returns itself.  Unknown TLDs fall
        back to the last label (the implicit ``*`` default rule).
        Results are memoized (the stream repeats names heavily).
        """
        cached = self._tld_cache.get(name)
        if cached is not None:
            return cached or None  # "" encodes a cached None
        labels = split_labels(name)
        if not labels:
            return None
        result = self._effective_tld_uncached(labels)
        if len(self._tld_cache) >= self._CACHE_LIMIT:
            self._tld_cache.clear()
        self._tld_cache[name] = result or ""
        return result

    def _effective_tld_uncached(self, labels):
        best = None
        for i in range(len(labels)):
            candidate = ".".join(labels[i:])
            if candidate in self._exceptions:
                # Exception rule: the suffix is the rule minus its
                # leftmost label; it beats any wildcard match.
                return ".".join(labels[i + 1:]) or None
            if candidate in self._exact:
                if best is None:
                    best = candidate
            parent = ".".join(labels[i + 1:])
            if parent and parent in self._wildcards:
                if best is None or len(candidate) > len(best):
                    best = candidate
        if best is not None:
            return best
        return labels[-1]  # implicit default rule "*"

    def effective_sld(self, name):
        """Return the registrable domain (eSLD) of *name*, or None.

        ``www.bbc.co.uk`` -> ``bbc.co.uk``.  Returns None when *name*
        is itself a public suffix (nothing is registered under it).
        """
        name = normalize_name(name)
        etld = self.effective_tld(name)
        if etld is None or name == etld:
            return None
        remainder = name[: -(len(etld) + 1)]
        last_label = remainder.rsplit(".", 1)[-1]
        return "%s.%s" % (last_label, etld)

    def is_public_suffix(self, name):
        """True when *name* exactly matches a public suffix."""
        name = normalize_name(name)
        return bool(name) and self.effective_tld(name) == name


def tld(name):
    """Plain TLD: the last label (Section 2: "the last 1 label")."""
    labels = split_labels(name)
    return labels[-1] if labels else None


def sld(name):
    """Plain SLD: the last two labels (Section 2: "the last 2 labels")."""
    labels = split_labels(name)
    return ".".join(labels[-2:]) if len(labels) >= 2 else None


_DEFAULT = None


def default_psl():
    """Shared process-wide builtin PSL instance (lazily constructed)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = PublicSuffixList.builtin()
    return _DEFAULT
