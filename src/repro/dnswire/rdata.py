"""Typed RDATA implementations for the record types the paper handles.

Each class provides ``to_wire(compression, offset)`` and a
``from_wire(wire, offset, rdlength)`` classmethod.  Name compression is
applied only inside the RDATA of the legacy types where RFC 3597
permits it (NS, CNAME, SOA, MX, PTR, SRV targets are written
uncompressed per RFC 2782, RRSIG never compresses).
"""

import ipaddress
import struct

from repro.dnswire.constants import QTYPE
from repro.dnswire.name import decode_name, encode_name, normalize_name


class Rdata:
    """Base class: opaque RDATA (used for unknown types)."""

    rtype = None

    def __init__(self, data=b""):
        self.data = bytes(data)

    def to_wire(self, compression=None, offset=0):
        return self.data

    @classmethod
    def from_wire(cls, wire, offset, rdlength):
        return cls(wire[offset:offset + rdlength])

    def __eq__(self, other):
        return type(self) is type(other) and self.__dict__ == other.__dict__

    def __hash__(self):
        return hash((type(self).__name__, tuple(sorted(self.__dict__.items()))))

    def __repr__(self):
        fields = ", ".join("%s=%r" % kv for kv in sorted(self.__dict__.items()))
        return "%s(%s)" % (type(self).__name__, fields)


class A(Rdata):
    """IPv4 address record."""

    rtype = QTYPE.A

    def __init__(self, address):
        self.address = str(ipaddress.IPv4Address(address))

    def to_wire(self, compression=None, offset=0):
        return ipaddress.IPv4Address(self.address).packed

    @classmethod
    def from_wire(cls, wire, offset, rdlength):
        if rdlength != 4:
            raise ValueError("A rdata must be 4 bytes")
        # ipaddress only accepts real bytes as packed form, not views
        return cls(ipaddress.IPv4Address(bytes(wire[offset:offset + 4])))


class AAAA(Rdata):
    """IPv6 address record."""

    rtype = QTYPE.AAAA

    def __init__(self, address):
        self.address = str(ipaddress.IPv6Address(address))

    def to_wire(self, compression=None, offset=0):
        return ipaddress.IPv6Address(self.address).packed

    @classmethod
    def from_wire(cls, wire, offset, rdlength):
        if rdlength != 16:
            raise ValueError("AAAA rdata must be 16 bytes")
        return cls(ipaddress.IPv6Address(bytes(wire[offset:offset + 16])))


class _SingleName(Rdata):
    """Common base for record types whose RDATA is one domain name."""

    compressible = True

    def __init__(self, target):
        self.target = normalize_name(target)

    def to_wire(self, compression=None, offset=0):
        comp = compression if self.compressible else None
        return encode_name(self.target, comp, offset)

    @classmethod
    def from_wire(cls, wire, offset, rdlength):
        target, _ = decode_name(wire, offset)
        return cls(target)


class NS(_SingleName):
    rtype = QTYPE.NS


class CNAME(_SingleName):
    rtype = QTYPE.CNAME


class PTR(_SingleName):
    rtype = QTYPE.PTR


class SOA(Rdata):
    """Start of authority; its ``minimum`` field is the negative-caching
    TTL central to Section 5 of the paper (RFC 2308 semantics)."""

    rtype = QTYPE.SOA

    def __init__(self, mname, rname, serial=1, refresh=7200, retry=900,
                 expire=1209600, minimum=3600):
        self.mname = normalize_name(mname)
        self.rname = normalize_name(rname)
        self.serial = int(serial)
        self.refresh = int(refresh)
        self.retry = int(retry)
        self.expire = int(expire)
        self.minimum = int(minimum)

    def to_wire(self, compression=None, offset=0):
        out = bytearray(encode_name(self.mname, compression, offset))
        out += encode_name(self.rname, compression, offset + len(out))
        out += struct.pack(
            ">IIIII", self.serial, self.refresh, self.retry, self.expire,
            self.minimum,
        )
        return bytes(out)

    @classmethod
    def from_wire(cls, wire, offset, rdlength):
        mname, offset = decode_name(wire, offset)
        rname, offset = decode_name(wire, offset)
        serial, refresh, retry, expire, minimum = struct.unpack_from(
            ">IIIII", wire, offset
        )
        return cls(mname, rname, serial, refresh, retry, expire, minimum)


class MX(Rdata):
    rtype = QTYPE.MX

    def __init__(self, preference, exchange):
        self.preference = int(preference)
        self.exchange = normalize_name(exchange)

    def to_wire(self, compression=None, offset=0):
        return struct.pack(">H", self.preference) + encode_name(
            self.exchange, compression, offset + 2
        )

    @classmethod
    def from_wire(cls, wire, offset, rdlength):
        (preference,) = struct.unpack_from(">H", wire, offset)
        exchange, _ = decode_name(wire, offset + 2)
        return cls(preference, exchange)


class TXT(Rdata):
    """Text record; Section 3.4 finds these carrying proprietary
    protocols of anti-virus/anti-spam systems."""

    rtype = QTYPE.TXT

    def __init__(self, strings):
        if isinstance(strings, (str, bytes)):
            strings = [strings]
        self.strings = [
            s.encode("utf-8") if isinstance(s, str) else bytes(s)
            for s in strings
        ]
        for s in self.strings:
            if len(s) > 255:
                raise ValueError("TXT string longer than 255 bytes")

    def to_wire(self, compression=None, offset=0):
        out = bytearray()
        for s in self.strings:
            out.append(len(s))
            out += s
        return bytes(out)

    @classmethod
    def from_wire(cls, wire, offset, rdlength):
        end = offset + rdlength
        strings = []
        while offset < end:
            length = wire[offset]
            offset += 1
            strings.append(wire[offset:offset + length])
            offset += length
        return cls(strings)


class SRV(Rdata):
    rtype = QTYPE.SRV

    def __init__(self, priority, weight, port, target):
        self.priority = int(priority)
        self.weight = int(weight)
        self.port = int(port)
        self.target = normalize_name(target)

    def to_wire(self, compression=None, offset=0):
        return struct.pack(">HHH", self.priority, self.weight, self.port) + \
            encode_name(self.target)  # RFC 2782: target not compressed

    @classmethod
    def from_wire(cls, wire, offset, rdlength):
        priority, weight, port = struct.unpack_from(">HHH", wire, offset)
        target, _ = decode_name(wire, offset + 6)
        return cls(priority, weight, port, target)


class DS(Rdata):
    """Delegation signer (DNSSEC chain of trust)."""

    rtype = QTYPE.DS

    def __init__(self, key_tag, algorithm, digest_type, digest):
        self.key_tag = int(key_tag)
        self.algorithm = int(algorithm)
        self.digest_type = int(digest_type)
        self.digest = bytes(digest)

    def to_wire(self, compression=None, offset=0):
        return struct.pack(
            ">HBB", self.key_tag, self.algorithm, self.digest_type
        ) + self.digest

    @classmethod
    def from_wire(cls, wire, offset, rdlength):
        key_tag, algorithm, digest_type = struct.unpack_from(">HBB", wire, offset)
        digest = wire[offset + 4:offset + rdlength]
        return cls(key_tag, algorithm, digest_type, digest)


class RRSIG(Rdata):
    """DNSSEC signature.  The Observatory only checks *presence* of
    RRSIGs (the ok_sec feature), so the signature bytes are opaque."""

    rtype = QTYPE.RRSIG

    def __init__(self, type_covered, algorithm=8, labels=2,
                 original_ttl=300, expiration=0, inception=0, key_tag=0,
                 signer="", signature=b"\x00" * 64):
        self.type_covered = int(type_covered)
        self.algorithm = int(algorithm)
        self.labels = int(labels)
        self.original_ttl = int(original_ttl)
        self.expiration = int(expiration)
        self.inception = int(inception)
        self.key_tag = int(key_tag)
        self.signer = normalize_name(signer)
        self.signature = bytes(signature)

    def to_wire(self, compression=None, offset=0):
        return struct.pack(
            ">HBBIIIH", self.type_covered, self.algorithm, self.labels,
            self.original_ttl, self.expiration, self.inception, self.key_tag,
        ) + encode_name(self.signer) + self.signature

    @classmethod
    def from_wire(cls, wire, offset, rdlength):
        end = offset + rdlength
        (type_covered, algorithm, labels, original_ttl, expiration,
         inception, key_tag) = struct.unpack_from(">HBBIIIH", wire, offset)
        signer, pos = decode_name(wire, offset + 18)
        signature = wire[pos:end]
        return cls(type_covered, algorithm, labels, original_ttl,
                   expiration, inception, key_tag, signer, signature)


class OPT(Rdata):
    """EDNS0 OPT pseudo-record RDATA (options blob, usually empty).

    The interesting EDNS fields (payload size, DO flag) live in the RR
    header's class/TTL fields; see :mod:`repro.dnswire.edns`.
    """

    rtype = QTYPE.OPT

    def __init__(self, options=b""):
        self.options = bytes(options)

    def to_wire(self, compression=None, offset=0):
        return self.options

    @classmethod
    def from_wire(cls, wire, offset, rdlength):
        return cls(wire[offset:offset + rdlength])


#: QTYPE -> rdata class registry used by the message decoder.
RDATA_CLASSES = {
    QTYPE.A: A,
    QTYPE.AAAA: AAAA,
    QTYPE.NS: NS,
    QTYPE.CNAME: CNAME,
    QTYPE.PTR: PTR,
    QTYPE.SOA: SOA,
    QTYPE.MX: MX,
    QTYPE.TXT: TXT,
    QTYPE.SRV: SRV,
    QTYPE.DS: DS,
    QTYPE.RRSIG: RRSIG,
    QTYPE.OPT: OPT,
}


def rdata_class(rtype):
    """Return the rdata class for *rtype*, falling back to opaque Rdata."""
    return RDATA_CLASSES.get(rtype, Rdata)
