"""Domain name handling: normalization, label arithmetic, wire codec.

Names are represented as plain ``str`` in *canonical form*: lowercase,
no trailing dot, the root zone being the empty string ``""``.  This
keeps the analytics pipeline allocation-light (names are dict keys in
the Space-Saving caches) while the wire codec below provides full
RFC 1035 encoding including message compression pointers.
"""

MAX_LABEL_LENGTH = 63
MAX_NAME_LENGTH = 253  # presentation form, excluding the trailing dot
_POINTER_MASK = 0xC0


class NameError_(ValueError):
    """Raised for malformed domain names (presentation or wire form)."""


def normalize_name(name):
    """Canonicalize *name*: lowercase, strip the trailing dot.

    ``"WWW.Example.COM."`` -> ``"www.example.com"``; the root (``"."``
    or ``""``) normalizes to ``""``.
    """
    name = name.rstrip(".").lower()
    if len(name) > MAX_NAME_LENGTH:
        raise NameError_("name too long: %d chars" % len(name))
    return name


def split_labels(name):
    """Return the labels of a canonical name, left to right.

    The root name yields an empty list.
    """
    name = normalize_name(name)
    return name.split(".") if name else []


def count_labels(name):
    """Number of labels -- the paper's *qdots* feature counts QNAME labels."""
    return len(split_labels(name))


def parent_name(name):
    """Strip the leftmost label: ``www.example.com`` -> ``example.com``.

    The root's parent is the root itself.
    """
    name = normalize_name(name)
    if not name:
        return ""
    _, _, rest = name.partition(".")
    return rest


def is_subdomain(name, ancestor):
    """True when *name* equals or is below *ancestor* in the DNS tree."""
    name = normalize_name(name)
    ancestor = normalize_name(ancestor)
    if not ancestor:
        return True
    return name == ancestor or name.endswith("." + ancestor)


def last_labels(name, n):
    """Return the name formed by the last *n* labels of *name*.

    ``last_labels("www.bbc.co.uk", 2)`` -> ``"co.uk"``.  Returns the
    whole name when it has fewer than *n* labels.
    """
    labels = split_labels(name)
    return ".".join(labels[-n:]) if labels else ""


def encode_name(name, compression=None, offset=0):
    """Encode *name* to wire format, optionally with compression.

    Parameters
    ----------
    name:
        Canonical or presentation-form domain name.
    compression:
        Optional dict mapping canonical suffix -> wire offset.  When a
        suffix of *name* was already written, a compression pointer is
        emitted; newly written suffixes are recorded (only those within
        pointer range, offsets < 0x4000).
    offset:
        Wire offset at which this name will be placed (needed to record
        compression targets).

    Returns the encoded ``bytes``.
    """
    labels = split_labels(name)
    out = bytearray()
    for i in range(len(labels)):
        suffix = ".".join(labels[i:])
        if compression is not None and suffix in compression:
            pointer = compression[suffix]
            out += bytes([_POINTER_MASK | (pointer >> 8), pointer & 0xFF])
            return bytes(out)
        here = offset + len(out)
        if compression is not None and here < 0x4000:
            compression[suffix] = here
        label = labels[i].encode("ascii", "strict")
        if not label:
            raise NameError_("empty label in %r" % name)
        if len(label) > MAX_LABEL_LENGTH:
            raise NameError_("label too long in %r" % name)
        out.append(len(label))
        out += label
    out.append(0)
    return bytes(out)


def decode_name(wire, offset):
    """Decode a (possibly compressed) name from *wire* at *offset*.

    Returns ``(canonical_name, next_offset)`` where *next_offset* is
    the position just after the name in the original (uncompressed)
    byte stream.  Follows compression pointers with loop protection.

    *wire* may be ``bytes`` or a ``memoryview``; the message decoder
    passes a view so each label decodes straight out of the packet
    buffer (``str(view-slice)``) with no intermediate bytes copy.
    """
    labels = []
    jumps = 0
    end = None
    pos = offset
    while True:
        if pos >= len(wire):
            raise NameError_("truncated name at offset %d" % pos)
        length = wire[pos]
        if length & _POINTER_MASK == _POINTER_MASK:
            if pos + 1 >= len(wire):
                raise NameError_("truncated compression pointer")
            target = ((length & 0x3F) << 8) | wire[pos + 1]
            if end is None:
                end = pos + 2
            jumps += 1
            if jumps > 64:
                raise NameError_("compression pointer loop")
            if target >= pos:
                raise NameError_("forward compression pointer")
            pos = target
            continue
        if length & _POINTER_MASK:
            raise NameError_("reserved label type 0x%02x" % length)
        pos += 1
        if length == 0:
            break
        if pos + length > len(wire):
            raise NameError_("truncated label")
        # str() decodes from any buffer: a memoryview slice is a view,
        # so the only copy is the label string itself
        labels.append(str(wire[pos:pos + length], "ascii", "replace").lower())
        pos += length
    if end is None:
        end = pos
    return ".".join(labels), end
