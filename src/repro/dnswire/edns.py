"""EDNS0 (RFC 6891) OPT pseudo-record handling.

The OPT record abuses the RR header fields: the *class* carries the
requestor's maximum UDP payload size and the *TTL* packs the extended
RCODE, EDNS version, and the flags word whose high bit is DO
("DNSSEC OK").  Section 2.3 uses the DO flag for the ok_sec feature,
and Section 2.5 notes that other EDNS0 payload data (cookies, client
subnet) is dropped early for privacy -- our decoder therefore exposes
only size/flags, leaving options opaque.
"""

from repro.dnswire.constants import EDNS_DEFAULT_PAYLOAD, EDNS_DO, QTYPE
from repro.dnswire.message import ResourceRecord
from repro.dnswire.rdata import OPT


def make_opt(payload_size=EDNS_DEFAULT_PAYLOAD, dnssec_ok=False,
             ext_rcode=0, version=0):
    """Build an EDNS0 OPT pseudo-record for the additional section."""
    flags = EDNS_DO if dnssec_ok else 0
    ttl = ((ext_rcode & 0xFF) << 24) | ((version & 0xFF) << 16) | flags
    return ResourceRecord(
        name="", rtype=QTYPE.OPT, ttl=ttl, rdata=OPT(), rclass=payload_size
    )


class EdnsInfo:
    """Decoded view of an OPT pseudo-record."""

    __slots__ = ("payload_size", "ext_rcode", "version", "dnssec_ok")

    def __init__(self, payload_size, ext_rcode, version, dnssec_ok):
        self.payload_size = payload_size
        self.ext_rcode = ext_rcode
        self.version = version
        self.dnssec_ok = dnssec_ok

    def __repr__(self):
        return "EdnsInfo(payload=%d, version=%d, do=%s)" % (
            self.payload_size, self.version, self.dnssec_ok
        )


def parse_opt(rr):
    """Decode an OPT :class:`ResourceRecord` into an :class:`EdnsInfo`."""
    if rr is None:
        return None
    if rr.rtype != QTYPE.OPT:
        raise ValueError("not an OPT record: %r" % rr)
    ttl = rr.ttl & 0xFFFFFFFF
    return EdnsInfo(
        payload_size=rr.rclass,
        ext_rcode=(ttl >> 24) & 0xFF,
        version=(ttl >> 16) & 0xFF,
        dnssec_ok=bool(ttl & EDNS_DO),
    )


def edns_info(message):
    """Return the :class:`EdnsInfo` of *message*, or None if not EDNS."""
    return parse_opt(message.opt_record())


def dnssec_ok(message):
    """True when the message carries an OPT record with the DO bit set."""
    info = edns_info(message)
    return bool(info and info.dnssec_ok)
