"""DNS protocol constants: record types, response codes, header flags.

The registries cover every type the paper's feature extraction touches
(Table 2 lists the top-10 QTYPEs; Section 2.3 additionally needs OPT
and RRSIG for the EDNS0/DNSSEC features).
"""

from enum import IntEnum


class QTYPE(IntEnum):
    """DNS RR/query types (IANA registry subset)."""

    A = 1
    NS = 2
    CNAME = 5
    SOA = 6
    PTR = 12
    MX = 15
    TXT = 16
    AAAA = 28
    SRV = 33
    NAPTR = 35
    DS = 43
    RRSIG = 46
    NSEC = 47
    DNSKEY = 48
    OPT = 41
    SPF = 99
    CAA = 257
    ANY = 255

    @classmethod
    def name_of(cls, value):
        """Printable name for *value*; unknown types render as TYPE###."""
        try:
            return cls(value).name
        except ValueError:
            return "TYPE%d" % value


class RCODE(IntEnum):
    """DNS response codes (header RCODE field)."""

    NOERROR = 0
    FORMERR = 1
    SERVFAIL = 2
    NXDOMAIN = 3
    NOTIMP = 4
    REFUSED = 5

    @classmethod
    def name_of(cls, value):
        try:
            return cls(value).name
        except ValueError:
            return "RCODE%d" % value


class OPCODE(IntEnum):
    QUERY = 0
    IQUERY = 1
    STATUS = 2
    NOTIFY = 4
    UPDATE = 5


class FLAGS:
    """Header flag bit masks (RFC 1035 §4.1.1) for the 16-bit flags word."""

    QR = 0x8000  #: response (vs query)
    AA = 0x0400  #: authoritative answer
    TC = 0x0200  #: truncated
    RD = 0x0100  #: recursion desired
    RA = 0x0080  #: recursion available
    AD = 0x0020  #: authentic data (DNSSEC)
    CD = 0x0010  #: checking disabled (DNSSEC)

    OPCODE_SHIFT = 11
    OPCODE_MASK = 0x7800
    RCODE_MASK = 0x000F


#: DNS class IN -- the Observatory only processes Internet-class traffic.
CLASS_IN = 1

#: EDNS0 "DNSSEC OK" flag, carried in the high bit of the OPT TTL field.
EDNS_DO = 0x8000

#: Default maximum UDP payload advertised in OPT records.
EDNS_DEFAULT_PAYLOAD = 1232

#: Conventional DNS port, for the packet-level codecs.
DNS_PORT = 53
