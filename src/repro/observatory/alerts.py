"""Threshold alerting over the ``_platform`` telemetry series.

The telemetry subsystem (DESIGN.md §9) turned platform health into an
ordinary time series: one ``_platform`` row per component per window
(``tracker.srvip``, ``window``, ``coordinator``, ``shard0.link``,
...).  This module closes the loop: a small rule engine evaluates
configurable thresholds against those rows, so a sagging capture
ratio, a saturating Bloom gate, a dead shard worker or a flush-latency
spike becomes a machine-readable *verdict* -- served by
``/platform/health`` (:mod:`repro.server`) and rendered by
``repro report --platform``.

Rule syntax (one rule per line, ``#`` comments allowed)::

    <name>: <component>.<column> <op> <threshold> [for <n> windows]

* ``component`` matches ``_platform`` row keys; a trailing ``*``
  matches a prefix (``tracker.*`` covers every dataset's tracker,
  ``*`` covers every component).
* ``op`` is one of ``<  <=  >  >=`` -- the rule states the *healthy*
  condition (``capture_ratio >= 0.5``); a window where it does not
  hold is a failure.
* ``for <n> windows`` requires the condition to fail in each of the
  *n* most recent windows where the component reported the column
  before the verdict trips (default 1) -- the standard debounce
  against one-window blips.

A column missing from a matched component's row is *not* a failure
(gate columns only appear once the Bloom gate engages); a rule whose
component matches nothing yields a ``no_data`` verdict so a silent
telemetry outage is visible rather than vacuously healthy.
"""

OPS = {
    "<": lambda value, threshold: value < threshold,
    "<=": lambda value, threshold: value <= threshold,
    ">": lambda value, threshold: value > threshold,
    ">=": lambda value, threshold: value >= threshold,
}

#: verdict statuses
OK, FAIL, NO_DATA = "ok", "fail", "no_data"


class Rule:
    """One healthy-condition threshold on a ``_platform`` column."""

    __slots__ = ("name", "component", "column", "op", "threshold",
                 "windows")

    def __init__(self, name, component, column, op, threshold,
                 windows=1):
        if op not in OPS:
            raise ValueError("unknown operator %r" % (op,))
        if windows < 1:
            raise ValueError("windows must be >= 1")
        self.name = name
        self.component = component
        self.column = column
        self.op = op
        self.threshold = float(threshold)
        self.windows = int(windows)

    def matches(self, component):
        if self.component.endswith("*"):
            return component.startswith(self.component[:-1])
        return component == self.component

    def healthy(self, value):
        return OPS[self.op](value, self.threshold)

    def spec(self):
        """Canonical one-line form (inverse of :func:`parse_rule`)."""
        text = "%s: %s.%s %s %g" % (self.name, self.component,
                                    self.column, self.op, self.threshold)
        if self.windows > 1:
            text += " for %d windows" % self.windows
        return text

    def __repr__(self):
        return "Rule(%s)" % self.spec()


def parse_rule(text):
    """Parse one rule line; see the module docstring for the syntax."""
    line = text.strip()
    name, sep, rest = line.partition(":")
    if not sep or not name.strip():
        raise ValueError("rule %r: missing '<name>:' prefix" % (text,))
    fields = rest.split()
    windows = 1
    if len(fields) >= 3 and fields[-1] == "windows" and fields[-3] == "for":
        try:
            windows = int(fields[-2])
        except ValueError:
            raise ValueError("rule %r: bad window count %r"
                             % (text, fields[-2]))
        fields = fields[:-3]
    if len(fields) != 3:
        raise ValueError(
            "rule %r: expected '<component>.<column> <op> <threshold>'"
            % (text,))
    target, op, threshold_text = fields
    component, sep, column = target.rpartition(".")
    if not sep:
        raise ValueError("rule %r: target must be <component>.<column>"
                         % (text,))
    # "tracker.*.capture_ratio" → component "tracker.*", column last part
    if op not in OPS:
        raise ValueError("rule %r: unknown operator %r" % (text, op))
    try:
        threshold = float(threshold_text)
    except ValueError:
        raise ValueError("rule %r: bad threshold %r"
                         % (text, threshold_text))
    return Rule(name.strip(), component, column, op, threshold, windows)


def parse_rules(text):
    """Parse a rule file / multi-line string, skipping blanks and
    ``#`` comments."""
    rules = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        rules.append(parse_rule(line))
    return rules


#: The ROADMAP's alert-thresholds item, as shipped defaults: capture
#: floor (§3.1 coverage collapsing is the primary quality signal),
#: Bloom-gate FPR ceiling (a saturated gate silently drops new heavy
#: hitters), worker liveness (a dead shard bleeds its partition), and
#: a flush-latency p95 ceiling (flushes stealing the ingest budget).
DEFAULT_RULES = tuple(parse_rules("""
capture-floor:   tracker.*.capture_ratio >= 0.5 for 2 windows
gate-fpr:        tracker.*.gate_fpr <= 0.05
worker-liveness: shard*.alive >= 1
flush-latency:   window.flush_ms_p95 < 250
"""))

#: Extra rules the live ``run`` daemon appends to its rule set: the
#: ingest thread must be healthy (``ingest_ok`` drops to 0 when the
#: source loop dies) and a paced stream must not slip more than a
#: window's worth of wall clock behind schedule.  Kept out of
#: :data:`DEFAULT_RULES` so a plain ``serve`` deployment does not
#: report perpetual ``no_data`` verdicts for a daemon it is not.
DAEMON_RULES = tuple(parse_rules("""
daemon-ingest: daemon.ingest_ok >= 1
daemon-lag:    daemon.ingest_lag_s < 5 for 2 windows
"""))

#: Abuse-detection rules over the ``_detector`` meta-dataset's summary
#: rows (one row per detector per window, keyed by the bare detector
#: name; see :mod:`repro.detect`).  The healthy condition is "nothing
#: flagged": the moment a detector flags any eSLD, its rule FAILs and
#: ``/platform/health`` reports the incident.  Appended to the rule
#: set only when detectors run, so detector-less deployments do not
#: report perpetual ``no_data``.
DETECTOR_RULES = tuple(parse_rules("""
detect-exfil: exfil.flagged < 1
detect-ddos:  ddos.flagged < 1
detect-noh:   noh.flagged < 1
"""))


class Verdict:
    """Outcome of one rule against one component's recent windows."""

    __slots__ = ("rule", "component", "status", "value", "window_ts",
                 "failing_windows")

    def __init__(self, rule, component, status, value=None,
                 window_ts=None, failing_windows=0):
        self.rule = rule
        self.component = component
        self.status = status
        #: most recent observed value (None for no_data)
        self.value = value
        #: start_ts of the most recent window carrying the column
        self.window_ts = window_ts
        #: consecutive most-recent windows violating the condition
        self.failing_windows = failing_windows

    @property
    def failed(self):
        return self.status == FAIL

    def as_dict(self):
        return {
            "rule": self.rule.name,
            "spec": self.rule.spec(),
            "component": self.component,
            "status": self.status,
            "value": self.value,
            "threshold": self.rule.threshold,
            "window_ts": self.window_ts,
            "failing_windows": self.failing_windows,
        }

    def __repr__(self):
        return "Verdict(%s, %s, %s=%r)" % (
            self.rule.name, self.component, self.status, self.value)


def evaluate(platform_series, rules=DEFAULT_RULES):
    """Evaluate *rules* against a time-ordered ``_platform`` series.

    Parameters
    ----------
    platform_series:
        Iterable of per-window objects with ``rows`` / ``start_ts``
        (``TimeSeriesData`` from the store, or ``WindowDump`` straight
        from a live pipeline).
    rules:
        Iterable of :class:`Rule`.

    Returns a list of :class:`Verdict`, one per (rule, matched
    component) -- plus one ``no_data`` verdict for a rule matching no
    component at all.
    """
    windows = sorted(platform_series, key=lambda d: d.start_ts)
    # component -> [(window_ts, row)] in time order
    history = {}
    for data in windows:
        for component, row in data.rows:
            history.setdefault(component, []).append((data.start_ts, row))
    verdicts = []
    for rule in rules:
        matched = False
        for component in sorted(history):
            if not rule.matches(component):
                continue
            matched = True
            verdicts.append(_evaluate_one(rule, component,
                                          history[component]))
        if not matched:
            verdicts.append(Verdict(rule, rule.component, NO_DATA))
    return verdicts


def _evaluate_one(rule, component, windows):
    # Most-recent-first windows where the component reported the column.
    observed = [(ts, row[rule.column])
                for ts, row in reversed(windows) if rule.column in row]
    if not observed:
        return Verdict(rule, component, NO_DATA)
    failing = 0
    for _, value in observed:
        if rule.healthy(value):
            break
        failing += 1
    ts, value = observed[0]
    status = FAIL if failing >= rule.windows else OK
    return Verdict(rule, component, status, value=value, window_ts=ts,
                   failing_windows=failing)


def summarize(verdicts):
    """Overall status + counts: the ``/platform/health`` envelope."""
    counts = {OK: 0, FAIL: 0, NO_DATA: 0}
    for verdict in verdicts:
        counts[verdict.status] += 1
    if counts[FAIL]:
        status = FAIL
    elif counts[OK]:
        status = OK
    else:
        status = NO_DATA
    return {"status": status, "rules_ok": counts[OK],
            "rules_failed": counts[FAIL],
            "rules_no_data": counts[NO_DATA]}
