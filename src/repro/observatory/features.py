"""Per-object traffic features (the full Section 2.3 feature set).

Every tracked Top-k object carries one :class:`FeatureSet`, updated on
each transaction that maps to its key and reset at every 60-second
window boundary.  The underlying structure per feature follows the
paper: "either a simple counter (e.g., hits), an average (e.g.,
qdots), a histogram (e.g., resp_delays), or a cardinality estimate
(e.g., ip4s)".
"""

from pickle import PickleBuffer

from repro.dnswire.constants import QTYPE
from repro.dnswire.psl import default_psl
from repro.netsim.addr import is_ipv6
from repro.netsim.hops import infer_hops
from repro.sketches._hashing import derive64, hash64
from repro.sketches.histogram import LogHistogram, RunningMean
from repro.sketches.hyperloglog import HyperLogLog
from repro.sketches.topvalues import TopValues

#: Counter feature columns.  Aggregated over time with missing -> 0
#: (Section 2.4: "If the object is missing in some of the files being
#: aggregated, we use a value of 0 for counters").
COUNTER_COLUMNS = (
    "hits", "unans", "ok", "nxd", "rfs", "fail",
    "ok_ans", "ok_ns", "ok_add", "ok_nil",
    "ok6", "ok6nil", "ok_sec",
)

#: Non-counter (gauge) columns.  Aggregated with the mean of *present*
#: data points (missing points are skipped, §2.4).
GAUGE_COLUMNS = (
    "srvips", "srcips", "sources",
    "qnamesa", "qnames", "tlds", "eslds", "qtypes",
    "qdots", "qdots_max", "lvl", "nslvl",
    "ip4s", "ip6s",
    "ttl_top1", "ttl_top2", "ttl_top3", "ttl_top1_share",
    "nsttl_top1", "nsttl_top1_share",
    "delay_q25", "delay_q50", "delay_q75",
    "hops_q25", "hops_q50", "hops_q75",
    "size_q25", "size_q50", "size_q75",
)

#: All feature columns, in canonical TSV order.
ALL_COLUMNS = COUNTER_COLUMNS + GAUGE_COLUMNS

_MAX_SOURCES = 1024  # contributor count is small; cap defensively


class TxnHashes:
    """Per-transaction base hashes, shared across all trackers.

    The Observatory runs several trackers per transaction and each
    tracker's :class:`FeatureSet` needs hashes of the same strings
    (server IP, resolver IP, QNAME, ...).  Computing each base hash
    once per *transaction* instead of once per *tracker* removes the
    dominant blake2b cost from the ingest hot path; the per-feature
    independence comes from :func:`~repro.sketches._hashing.derive64`.

    Every field is computed on first attribute access only: an unset
    slot falls through to :meth:`__getattr__`, which computes the
    value and stores it in the slot, so later accesses are plain slot
    reads.  Construction itself stores a single reference -- a
    transaction that all trackers filter out (or a dataset that never
    touches e.g. ``qdots``) pays for no hashing at all.
    """

    __slots__ = ("txn", "server", "resolver", "qname", "qdots")

    def __init__(self, txn):
        self.txn = txn

    def __getattr__(self, name):
        # Reached only while the slot is still unset (slot reads that
        # succeed never get here).
        txn = self.txn
        if name == "server":
            value = hash64(txn.server_ip)
        elif name == "resolver":
            value = hash64(txn.resolver_ip)
        elif name == "qname":
            value = hash64(txn.qname)
        elif name == "qdots":
            value = txn.qdots
        else:
            raise AttributeError(name)
        setattr(self, name, value)
        return value


class FeatureSet:
    """Traffic statistics of one Top-k DNS object.

    Parameters
    ----------
    hll_precision:
        Register exponent for the HyperLogLog cardinality features.
        The default (8, ~6.5 % error) keeps per-object memory near
        2 KiB; raise for tighter qname counts.
    psl:
        Public Suffix List used for the tlds/eslds features; defaults
        to the builtin snapshot.
    """

    __slots__ = (
        "hits", "unans", "ok", "nxd", "rfs", "fail",
        "ok_ans", "ok_ns", "ok_add", "ok_nil", "ok6", "ok6nil", "ok_sec",
        "srvips", "srcips", "_sources",
        "qnamesa", "qnames", "tlds", "eslds", "_qtypes",
        "qdots", "qdots_max", "lvl", "nslvl", "ip4s", "ip6s",
        "ttl", "nsttl", "resp_delays", "network_hops", "resp_size",
        "_psl", "_hll_precision",
    )

    def __init__(self, hll_precision=8, psl=None):
        self._psl = psl if psl is not None else default_psl()
        self._hll_precision = hll_precision
        # counters
        self.hits = 0          #: total transactions
        self.unans = 0         #: unanswered queries
        self.ok = 0            #: NoError responses
        self.nxd = 0           #: NXDOMAIN responses
        self.rfs = 0           #: Refused responses
        self.fail = 0          #: ServFail responses
        self.ok_ans = 0        #: NoError with non-empty ANSWER
        self.ok_ns = 0         #: NoError with NS records in AUTHORITY
        self.ok_add = 0        #: NoError with non-empty ADDITIONAL (no OPT)
        self.ok_nil = 0        #: NoError with neither (NoData)
        self.ok6 = 0           #: AAAA queries answered NoError
        self.ok6nil = 0        #: AAAA queries answered NoData
        self.ok_sec = 0        #: DNSSEC-signed responses (DO + RRSIG)
        # cardinality estimates
        self.srvips = HyperLogLog(hll_precision, seed=1)
        self.srcips = HyperLogLog(hll_precision, seed=2)
        self._sources = set()
        self.qnamesa = HyperLogLog(hll_precision, seed=3)
        self.qnames = HyperLogLog(hll_precision, seed=4)
        self.tlds = HyperLogLog(hll_precision, seed=5)
        self.eslds = HyperLogLog(hll_precision, seed=6)
        self._qtypes = set()
        self.ip4s = HyperLogLog(hll_precision, seed=7)
        self.ip6s = HyperLogLog(hll_precision, seed=8)
        # averages
        self.qdots = RunningMean()
        #: deepest QNAME seen -- the per-pair qmin evidence of §3.6
        #: (one full-depth query conclusively marks a non-qmin pair)
        self.qdots_max = 0
        self.lvl = RunningMean()
        self.nslvl = RunningMean()
        # top values
        self.ttl = TopValues()
        self.nsttl = TopValues()
        # histograms
        self.resp_delays = LogHistogram(min_value=0.05)
        self.network_hops = LogHistogram(min_value=0.5)
        self.resp_size = LogHistogram(min_value=1.0)

    # ------------------------------------------------------------------

    def update(self, txn, hashes=None):
        """Fold one :class:`Transaction` into the statistics.

        *hashes* is an optional shared :class:`TxnHashes` -- when the
        Observatory runs several trackers, each transaction's base
        hashes are computed once and derived per feature.
        """
        if hashes is None:
            hashes = TxnHashes(txn)
        self.hits += 1
        self.srvips.add_hash(derive64(hashes.server, 1))
        self.srcips.add_hash(derive64(hashes.resolver, 2))
        if len(self._sources) < _MAX_SOURCES:
            self._sources.add(txn.source)
        self.qnamesa.add_hash(derive64(hashes.qname, 3))
        if len(self._qtypes) < 256:
            self._qtypes.add(txn.qtype)
        qdots = hashes.qdots
        self.qdots.add(qdots)
        if qdots > self.qdots_max:
            self.qdots_max = qdots

        if not txn.answered:
            self.unans += 1
            return

        if txn.noerror:
            self.ok += 1
            self.qnames.add_hash(derive64(hashes.qname, 4))
            psl_tld = self._psl.effective_tld(txn.qname)
            if psl_tld:
                self.tlds.add(psl_tld)
            esld = self._psl.effective_sld(txn.qname)
            if esld:
                self.eslds.add(esld)
            if txn.answer_count > 0:
                self.ok_ans += 1
            if txn.authority_ns_count > 0:
                self.ok_ns += 1
            if txn.additional_count > 0:
                self.ok_add += 1
            if txn.nodata:
                self.ok_nil += 1
            if txn.qtype == QTYPE.AAAA:
                self.ok6 += 1
                if txn.nodata:
                    self.ok6nil += 1
            if txn.edns_do and txn.has_rrsig and \
                    (txn.answer_count > 0 or txn.authority_ns_count > 0):
                self.ok_sec += 1
            if txn.qtype in (QTYPE.A, QTYPE.AAAA, QTYPE.ANY):
                for address in txn.answer_ips:
                    if is_ipv6(address):
                        self.ip6s.add(address)
                    else:
                        self.ip4s.add(address)
        elif txn.nxdomain:
            self.nxd += 1
        elif txn.refused:
            self.rfs += 1
        elif txn.servfail:
            self.fail += 1

        self.lvl.add(txn.answer_count)
        self.nslvl.add(txn.authority_ns_count)
        for ttl in txn.answer_ttls:
            self.ttl.add(ttl)
        for ttl in txn.ns_ttls:
            self.nsttl.add(ttl)
        self.resp_delays.add(txn.delay_ms)
        self.network_hops.add(infer_hops(txn.observed_ttl))
        self.resp_size.add(txn.response_size)

    # ------------------------------------------------------------------

    def merge(self, other):
        """Fold another object's statistics into this one (§2.4 merge).

        This is what makes per-shard feature state combinable into the
        global per-window rows: counters add exactly, the HLL sketches
        merge register-wise (yielding byte-identical registers to a
        single-pass sketch over the combined stream), the bounded sets
        union (subject to their caps), running means and histograms
        add exactly, and the top-TTL counters merge with the usual
        Space-Saving-style overestimate.

        Both sides must use the same HLL precision (seeds are fixed
        per feature).  Returns self.
        """
        if not isinstance(other, FeatureSet):
            raise TypeError("can only merge FeatureSet instances")
        if self._hll_precision != other._hll_precision:
            raise ValueError("cannot merge FeatureSets with different "
                             "HLL precision")
        for name in COUNTER_COLUMNS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.srvips.merge(other.srvips)
        self.srcips.merge(other.srcips)
        self.qnamesa.merge(other.qnamesa)
        self.qnames.merge(other.qnames)
        self.tlds.merge(other.tlds)
        self.eslds.merge(other.eslds)
        self.ip4s.merge(other.ip4s)
        self.ip6s.merge(other.ip6s)
        for source in other._sources:
            if len(self._sources) >= _MAX_SOURCES:
                break
            self._sources.add(source)
        for qtype in other._qtypes:
            if len(self._qtypes) >= 256:
                break
            self._qtypes.add(qtype)
        self.qdots.merge(other.qdots)
        self.lvl.merge(other.lvl)
        self.nslvl.merge(other.nslvl)
        if other.qdots_max > self.qdots_max:
            self.qdots_max = other.qdots_max
        self.ttl.merge(other.ttl)
        self.nsttl.merge(other.nsttl)
        self.resp_delays.merge(other.resp_delays)
        self.network_hops.merge(other.network_hops)
        self.resp_size.merge(other.resp_size)
        return self

    # -- flat-buffer codec (zero-copy shard transport) -----------------

    #: sketch-valued fields, in canonical buffer order
    _SKETCH_FIELDS = (
        "srvips", "srcips", "qnamesa", "qnames", "tlds", "eslds",
        "ip4s", "ip6s", "qdots", "lvl", "nslvl", "ttl", "nsttl",
        "resp_delays", "network_hops", "resp_size",
    )

    def to_buffers(self):
        """Serialize to ``(meta, buffers)``: counters and bounded sets
        in *meta*, every child sketch contributing its own
        ``(child_meta, buffer_count)`` pair plus contiguous buffers.
        Like the sketches' codecs, buffers may alias live state --
        serialize them before mutating this FeatureSet again."""
        buffers = []
        children = []
        for name in self._SKETCH_FIELDS:
            child_meta, child_buffers = getattr(self, name).to_buffers()
            children.append((child_meta, len(child_buffers)))
            buffers.extend(child_buffers)
        meta = (
            self._hll_precision,
            tuple(getattr(self, name) for name in COUNTER_COLUMNS),
            tuple(self._sources), tuple(self._qtypes), self.qdots_max,
            tuple(children),
        )
        return meta, buffers

    @classmethod
    def from_buffers(cls, meta, buffers):
        """Rebuild a FeatureSet from :meth:`to_buffers` output.  The
        process-default PSL is reattached (see :meth:`__getstate__`)."""
        precision, counters, sources, qtypes, qdots_max, children = meta
        if len(children) != len(cls._SKETCH_FIELDS):
            raise ValueError("FeatureSet buffer meta has %d sketches, "
                             "expected %d" % (len(children),
                                              len(cls._SKETCH_FIELDS)))
        features = cls.__new__(cls)
        features._psl = default_psl()
        features._hll_precision = precision
        for name, value in zip(COUNTER_COLUMNS, counters):
            setattr(features, name, value)
        features._sources = set(sources)
        features._qtypes = set(qtypes)
        features.qdots_max = qdots_max
        offset = 0
        for name, (child_meta, count) in zip(cls._SKETCH_FIELDS, children):
            sketch_cls = _SKETCH_CODECS[child_meta[0]]
            setattr(features, name, sketch_cls.from_buffers(
                child_meta, buffers[offset:offset + count]))
            offset += count
        return features

    def __reduce_ex__(self, protocol):
        if protocol >= 5:
            meta, buffers = self.to_buffers()
            return (self.from_buffers,
                    (meta, [PickleBuffer(b) for b in buffers]))
        return super().__reduce_ex__(protocol)

    # -- pickling (sharded ingest ships FeatureSets between processes) --

    def __getstate__(self):
        # The PSL is a large shared object and is only consulted by
        # update(); merged/dumped state never calls update() again, so
        # the unpickled copy reattaches the process-default PSL.
        return {name: getattr(self, name)
                for name in self.__slots__ if name != "_psl"}

    def __setstate__(self, state):
        self._psl = default_psl()
        for name, value in state.items():
            setattr(self, name, value)

    # ------------------------------------------------------------------

    @property
    def sources(self):
        """Number of distinct SIE contributors that saw this object."""
        return len(self._sources)

    @property
    def qtypes(self):
        """Number of distinct QTYPEs in all queries."""
        return len(self._qtypes)

    def as_row(self):
        """Flatten into ``{column: numeric value}`` for the TSV writer."""
        row = {
            "hits": self.hits, "unans": self.unans, "ok": self.ok,
            "nxd": self.nxd, "rfs": self.rfs, "fail": self.fail,
            "ok_ans": self.ok_ans, "ok_ns": self.ok_ns,
            "ok_add": self.ok_add, "ok_nil": self.ok_nil,
            "ok6": self.ok6, "ok6nil": self.ok6nil, "ok_sec": self.ok_sec,
            "srvips": round(self.srvips.cardinality(), 1),
            "srcips": round(self.srcips.cardinality(), 1),
            "sources": self.sources,
            "qnamesa": round(self.qnamesa.cardinality(), 1),
            "qnames": round(self.qnames.cardinality(), 1),
            "tlds": round(self.tlds.cardinality(), 1),
            "eslds": round(self.eslds.cardinality(), 1),
            "qtypes": self.qtypes,
            "qdots": round(self.qdots.mean, 3),
            "qdots_max": self.qdots_max,
            "lvl": round(self.lvl.mean, 3),
            "nslvl": round(self.nslvl.mean, 3),
            "ip4s": round(self.ip4s.cardinality(), 1),
            "ip6s": round(self.ip6s.cardinality(), 1),
        }
        ttl_top = self.ttl.top(3)
        ttl_dist = self.ttl.distribution()
        for i in range(3):
            row["ttl_top%d" % (i + 1)] = ttl_top[i][0] if i < len(ttl_top) else 0
        row["ttl_top1_share"] = round(
            ttl_dist.get(ttl_top[0][0], 0.0), 4) if ttl_top else 0.0
        nsttl_top = self.nsttl.top(1)
        nsttl_dist = self.nsttl.distribution()
        row["nsttl_top1"] = nsttl_top[0][0] if nsttl_top else 0
        row["nsttl_top1_share"] = round(
            nsttl_dist.get(nsttl_top[0][0], 0.0), 4) if nsttl_top else 0.0
        for prefix, hist in (("delay", self.resp_delays),
                             ("hops", self.network_hops),
                             ("size", self.resp_size)):
            q25, q50, q75 = hist.quartiles()
            row["%s_q25" % prefix] = round(q25, 3)
            row["%s_q50" % prefix] = round(q50, 3)
            row["%s_q75" % prefix] = round(q75, 3)
        return row

    def clear(self):
        """Reset all statistics (window boundary, §2.4) in place."""
        for name in COUNTER_COLUMNS:
            setattr(self, name, 0)
        for sketch in (self.srvips, self.srcips, self.qnamesa, self.qnames,
                       self.tlds, self.eslds, self.ip4s, self.ip6s):
            sketch.clear()
        self._sources.clear()
        self._qtypes.clear()
        for mean in (self.qdots, self.lvl, self.nslvl):
            mean.clear()
        self.qdots_max = 0
        self.ttl.clear()
        self.nsttl.clear()
        self.resp_delays.clear()
        self.network_hops.clear()
        self.resp_size.clear()


#: buffer-meta tag -> sketch class, for :meth:`FeatureSet.from_buffers`
_SKETCH_CODECS = {
    "hll-dense": HyperLogLog,
    "hll-sparse": HyperLogLog,
    "loghist": LogHistogram,
    "rmean": RunningMean,
    "topv-int": TopValues,
    "topv-obj": TopValues,
}
