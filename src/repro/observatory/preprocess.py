"""Preprocessing: raw IP/UDP/DNS packets -> transaction summaries (§2.1).

"Each transaction includes raw packets, starting at the IP header, and
detailed timestamps. ... we read the stream, deserialize the data,
parse IP headers and DNS payloads, and summarize each transaction with
a line of text."

:func:`summarize_transaction` is that parser: it takes the raw query
packet, the raw response packet (or None for unanswered queries), and
their capture timestamps, and produces a compact
:class:`~repro.observatory.transaction.Transaction`.  Per Section 2.5,
the detailed timestamps are collapsed into a response delay and all
EDNS0 option payload (cookies, client-subnet) is dropped -- only the
DO flag survives, as the ok_sec feature needs it.
"""

from repro.dnswire.constants import QTYPE
from repro.dnswire.edns import dnssec_ok
from repro.dnswire.message import Message
from repro.netsim.packet import parse_ip_packet


class PreprocessError(ValueError):
    """Raised when a raw transaction cannot be summarized."""


def summarize_batch(records, source="src0", on_error=None):
    """Summarize raw transaction *records* in bulk (the feeder path).

    Each record is a ``(query_packet, response_packet, query_ts[,
    response_ts])`` tuple, as taken by :func:`summarize_transaction`.
    Malformed records are skipped (the platform drops what it cannot
    parse rather than stalling the stream); pass *on_error* --
    ``on_error(record, exc)`` -- to count or log them.  Returns the
    list of parsed :class:`~repro.observatory.transaction.Transaction`
    summaries, in input order.
    """
    out = []
    append = out.append
    for record in records:
        try:
            append(summarize_transaction(*record, source=source))
        except PreprocessError as exc:
            if on_error is not None:
                on_error(record, exc)
    return out


def summarize_transaction(query_packet, response_packet, query_ts,
                          response_ts=None, source="src0"):
    """Parse raw packets into a :class:`Transaction`.

    Parameters
    ----------
    query_packet:
        Raw bytes of the resolver's query, starting at the IP header.
    response_packet:
        Raw bytes of the nameserver's response, or None when the query
        went unanswered (the *unans* feature).
    query_ts / response_ts:
        Capture timestamps in seconds.  Only their difference (the
        response delay) is retained.
    source:
        Identifier of the contributing sensor (SIE channel member).
    """
    from repro.observatory.transaction import Transaction

    query_dg = parse_ip_packet(query_packet)
    try:
        query_msg = Message.from_wire(query_dg.payload)
    except ValueError as exc:
        raise PreprocessError("bad DNS query payload: %s" % exc) from exc
    if not query_msg.question:
        raise PreprocessError("query without question section")
    question = query_msg.question[0]

    if response_packet is None:
        return Transaction(
            ts=query_ts,
            resolver_ip=query_dg.src_ip,
            server_ip=query_dg.dst_ip,
            source=source,
            qname=question.qname,
            qtype=question.qtype,
            rcode=None,
            answered=False,
            edns_do=dnssec_ok(query_msg),
        )

    response_dg = parse_ip_packet(response_packet)
    try:
        response_msg = Message.from_wire(response_dg.payload)
    except ValueError as exc:
        raise PreprocessError("bad DNS response payload: %s" % exc) from exc
    if response_msg.msg_id != query_msg.msg_id:
        raise PreprocessError(
            "response id %d does not match query id %d"
            % (response_msg.msg_id, query_msg.msg_id)
        )

    delay_ms = 0.0
    if response_ts is not None:
        delay_ms = max(0.0, (response_ts - query_ts) * 1000.0)

    answer_ttls = []
    answer_ips = []
    cname_targets = []
    ns_names = []
    for rr in response_msg.answer:
        if rr.rtype == QTYPE.RRSIG:
            continue
        answer_ttls.append(rr.ttl)
        if rr.rtype in (QTYPE.A, QTYPE.AAAA):
            answer_ips.append(rr.rdata.address)
        elif rr.rtype == QTYPE.CNAME:
            cname_targets.append(rr.rdata.target)
        elif rr.rtype == QTYPE.NS:
            ns_names.append(rr.rdata.target)
    ns_ttls = []
    for rr in response_msg.records("authority", QTYPE.NS):
        ns_ttls.append(rr.ttl)
        ns_names.append(rr.rdata.target)
    answer_count = sum(
        1 for rr in response_msg.answer if rr.rtype != QTYPE.RRSIG
    )
    additional_count = sum(
        1 for rr in response_msg.additional
        if rr.rtype not in (QTYPE.OPT, QTYPE.RRSIG)
    )

    return Transaction(
        ts=query_ts,
        resolver_ip=query_dg.src_ip,
        server_ip=query_dg.dst_ip,
        source=source,
        qname=question.qname,
        qtype=question.qtype,
        rcode=response_msg.rcode,
        answered=True,
        aa=response_msg.authoritative,
        tc=response_msg.truncated,
        edns_do=dnssec_ok(query_msg) or dnssec_ok(response_msg),
        has_rrsig=response_msg.has_rrsig(),
        delay_ms=delay_ms,
        observed_ttl=response_dg.ttl,
        response_size=len(response_dg.payload),
        answer_count=answer_count,
        authority_ns_count=len(ns_ttls),
        additional_count=additional_count,
        answer_ttls=answer_ttls,
        ns_ttls=ns_ttls,
        answer_ips=answer_ips,
        cname_targets=cname_targets,
        ns_names=ns_names,
    )
