"""Time aggregation of TSV files with retention (Section 2.4).

"A separate process aggregates minutely files into new, decaminutely
files that represent 10-minute time windows.  These in turn get
aggregated into hourly files, then into daily files ... In general, we
aggregate time series of a particular feature using the arithmetic
mean. ... If the object is missing in some of the files being
aggregated, we use a value of 0 for counters.  For features that are
not counters (e.g., cardinality estimates), we just skip the missing
data point."
"""

import os

from repro.observatory import segments as segmentfmt
from repro.observatory.features import COUNTER_COLUMNS
from repro.observatory.tsv import (
    GRANULARITIES,
    GRANULARITY_CHAIN,
    TimeSeriesData,
    list_series,
    parse_filename,
    read_tsv,
    write_tsv,
)

_COUNTERS = frozenset(COUNTER_COLUMNS)


def aggregate_series(series_list, dataset, granularity, start_ts,
                     expected_points=None):
    """Aggregate finer-grained :class:`TimeSeriesData` into one coarser
    record, applying the paper's counter vs non-counter rules.

    Parameters
    ----------
    series_list:
        The finer files covering the coarser window (e.g. 10 minutely
        files for one decaminutely file).  Missing files are allowed.
    expected_points:
        Number of finer windows the coarse window spans.  Counters are
        averaged over this denominator (absent object -> 0); defaults
        to ``len(series_list)``.
    """
    if expected_points is None:
        expected_points = len(series_list)
    if expected_points <= 0:
        raise ValueError("expected_points must be positive")
    keys = []
    seen_keys = set()
    # Union of the input column sets, preserving first-seen order.
    # Taking the first file's header verbatim silently dropped columns
    # introduced mid-window (schema drift -- e.g. a ``_platform`` file
    # gaining gate columns once the Bloom gate engages).
    columns = []
    seen_columns = set()
    last_header = None
    for series in series_list:
        header = series.columns
        if header is not last_header:  # shared list fast path
            last_header = header
            for col in header:
                if col not in seen_columns:
                    seen_columns.add(col)
                    columns.append(col)
        for key, _ in series.rows:
            if key not in seen_keys:
                seen_keys.add(key)
                keys.append(key)
    sums = {key: {} for key in keys}
    presence = {key: {} for key in keys}
    for series in series_list:
        rmap = series.row_map()
        for key in keys:
            row = rmap.get(key)
            if row is None:
                continue
            key_sums = sums[key]
            key_presence = presence[key]
            for col, value in row.items():
                key_sums[col] = key_sums.get(col, 0.0) + value
                key_presence[col] = key_presence.get(col, 0) + 1
    rows = []
    for key in keys:
        row = {}
        for col in (columns or []):
            total = sums[key].get(col, 0.0)
            if col in _COUNTERS:
                row[col] = total / expected_points
            else:
                count = presence[key].get(col, 0)
                row[col] = total / count if count else 0.0
        rows.append((key, row))
    # Order by aggregated hits, heaviest first (rank order of the file).
    rows.sort(key=lambda kv: -kv[1].get("hits", 0.0))
    stats = {
        "seen": sum(s.stats.get("seen", 0) for s in series_list),
        "kept": sum(s.stats.get("kept", 0) for s in series_list),
        "points": len(series_list),
    }
    return TimeSeriesData(dataset, granularity, start_ts,
                          columns=columns, rows=rows, stats=stats)


class TimeAggregator:
    """Directory-level aggregation driver with retention policy.

    :meth:`aggregate_directory` walks the granularity chain and writes
    every complete coarser window that is not on disk yet;
    :meth:`apply_retention` deletes fine-grained files past their
    configured age, mirroring the paper's disk-usage policy.
    """

    #: default retention: how many seconds of each granularity to keep
    DEFAULT_RETENTION = {
        "minutely": 2 * 3600,
        "decaminutely": 24 * 3600,
        "hourly": 7 * 86400,
        "daily": 90 * 86400,
        "monthly": 2 * 365 * 86400,
        "yearly": None,  # keep forever
    }

    def __init__(self, directory, retention=None, store=None,
                 segments=False):
        self.directory = directory
        self.retention = dict(self.DEFAULT_RETENTION)
        if retention:
            self.retention.update(retention)
        #: optional :class:`~repro.observatory.store.SeriesStore` over
        #: the same directory: fine windows are then read through its
        #: LRU (hot when a server shares the store), and files written
        #: or deleted here are reconciled into its index immediately.
        self.store = store
        #: write a columnar sidecar segment
        #: (:mod:`~repro.observatory.segments`) next to every coarse
        #: window this aggregator writes, so cold reads of rolled-up
        #: history never pay a text re-parse
        self.segments = bool(segments)

    def aggregate_directory(self, dataset):
        """Aggregate *dataset* up the whole granularity chain.

        Returns the list of file paths written.
        """
        written = []
        for finer, coarser in zip(GRANULARITY_CHAIN, GRANULARITY_CHAIN[1:]):
            written.extend(self._aggregate_step(dataset, finer, coarser))
        return written

    def _aggregate_step(self, dataset, finer, coarser):
        finer_len = GRANULARITIES[finer]
        coarser_len = GRANULARITIES[coarser]
        points = coarser_len // finer_len
        existing = {
            start for _, _, _, start in
            list_series(self.directory, dataset, coarser)
        }
        finer_files = list_series(self.directory, dataset, finer)
        if not finer_files:
            return []
        by_window = {}
        for path, _, _, start in finer_files:
            window_start = (start // coarser_len) * coarser_len
            by_window.setdefault(window_start, []).append((start, path))
        latest_fine = max(start for _, _, _, start in finer_files)
        written = []
        for window_start, members in sorted(by_window.items()):
            if window_start in existing:
                continue
            # Only aggregate complete windows: the coarse window must
            # have fully elapsed relative to the newest fine file.
            if window_start + coarser_len > latest_fine + finer_len:
                continue
            series = [self._read(path) for _, path in sorted(members)]
            data = aggregate_series(series, dataset, coarser, window_start,
                                    expected_points=points)
            written.append(write_tsv(self.directory, data))
        for path in written:
            if self.segments:
                try:
                    segmentfmt.build_segment(path)
                except OSError:
                    pass  # sidecar is an optimization, never a failure
            if self.store is not None:
                # O(1) per-file reconcile, not an O(windows) directory
                # re-scan per aggregation step
                self.store.notify_flush(path)
        return written

    def _read(self, path):
        if self.store is not None:
            return self.store.read_path(path)
        return read_tsv(path)

    def apply_retention(self, now_ts, force=False):
        """Delete expired fine-grained files; returns deleted paths.

        A file past its retention age is only deleted when a coarser
        file covering its window already exists on disk -- i.e. the
        data has been rolled up.  Retention running ahead of
        aggregation (a stalled aggregator, a crash between the two
        passes) used to silently destroy data that had never made it
        into any coarser granularity.  ``force=True`` restores the
        unconditional age-based behavior.
        """
        entries = list_series(self.directory)
        on_disk = {(dataset, gran, start)
                   for _, dataset, gran, start in entries}
        coarser_of = dict(zip(GRANULARITY_CHAIN, GRANULARITY_CHAIN[1:]))
        deleted = []
        for path, dataset, gran, start in entries:
            max_age = self.retention.get(gran)
            if max_age is None:
                continue
            window_end = start + GRANULARITIES[gran]
            if now_ts - window_end <= max_age:
                continue
            if not force:
                coarser = coarser_of.get(gran)
                if coarser is None:
                    continue  # top of the chain: nothing can cover it
                coarser_len = GRANULARITIES[coarser]
                covering = (start // coarser_len) * coarser_len
                if (dataset, coarser, covering) not in on_disk:
                    continue  # not rolled up yet: deleting would lose data
            try:
                os.remove(path)
            except OSError:
                # already gone -- a concurrent retention pass or an
                # operator cleanup beat us to it.  The sweep must keep
                # going (aborting mid-pass left every later expired
                # file undeleted), and the index reconcile below still
                # needs to drop the vanished entry.
                pass
            segmentfmt.remove_segment_for(path)
            deleted.append(path)
            if self.store is not None:
                # per-file reconcile: notify_flush on a vanished path
                # drops its index entry without a full refresh() scan
                self.store.notify_flush(path)
        return deleted

    def compact(self, dataset=None, granularity=None):
        """Build missing or stale sidecar segments; drop orphans.

        The background compactor pass of storage engine v2: walks
        every TSV window in the directory (optionally narrowed to
        *dataset* / *granularity*), builds a columnar sidecar for each
        window whose segment is absent or whose recorded source
        identity no longer matches the file (the window was
        rewritten), and removes orphan sidecars whose source TSV
        vanished under retention.  Idempotent -- a second pass over an
        unchanged directory builds nothing.

        Returns ``{"built": [paths], "fresh": n, "removed": [paths]}``.
        """
        built = []
        removed = []
        fresh = 0
        live = set()
        for path, _ds, _gran, _start in list_series(
                self.directory, dataset, granularity):
            live.add(os.path.basename(path))
            try:
                st = os.stat(path)
            except OSError:
                continue  # vanished mid-walk
            reader = segmentfmt.open_if_fresh(
                path, (st.st_mtime_ns, st.st_size, st.st_ino))
            if reader is not None:
                reader.close()
                fresh += 1
                continue
            try:
                built.append(segmentfmt.build_segment(path))
            except OSError:
                continue  # unreadable window: skip, never abort
        for stem, name in sorted(
                segmentfmt.scan_segments(self.directory).items()):
            if stem in live:
                continue
            try:
                sds, sgran, _ = parse_filename(stem)
            except ValueError:
                continue
            if dataset is not None and sds != dataset:
                continue
            if granularity is not None and sgran != granularity:
                continue
            orphan = os.path.join(self.directory, name)
            try:
                os.remove(orphan)
                removed.append(orphan)
            except OSError:
                pass
        return {"built": built, "fresh": fresh, "removed": removed}
