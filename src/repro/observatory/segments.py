"""Binary columnar segments behind the TSV facade (storage engine v2).

TSV is the Observatory's *interchange* format -- human-readable,
diffable, the thing ``replay`` writes and external tooling reads
(§2.4).  It is also a terrible thing to answer queries from: every
cold read re-parses text, and the expensive cells are the float
gauges, where :func:`~repro.observatory.tsv._parse` pays a raised
``ValueError`` per value.  This module adds the query-side twin: a
compact binary **segment** sitting next to each TSV window
(``srvip.minutely.0000000000.tsv`` -> ``....tsv.seg``) holding the
same parsed values as typed column blocks:

* **column blocks** -- each feature column is one contiguous block,
  struct-packed ``<q`` (all-int) or ``<d`` (all-float), with a JSON
  block as the fallback for mixed/string/bignum columns, so a cold
  read is a handful of C-speed bulk unpacks instead of a per-cell
  ``int()``/``float()`` try/except ladder;
* **dict-encoded keys** -- the key column is a string table (offsets
  + UTF-8 blob); when keys repeat, rows carry ``<I`` indexes into the
  table instead of repeated strings (optional: all-unique windows
  skip the index array);
* **footer index** -- one JSON footer at the tail (length + magic in
  the last 8 bytes) naming every block's offset/length/kind, the
  column order, row count, stats, and the **source TSV identity**
  (mtime + size + inode) the segment was built from;
* **mmap-able layout** -- the reader maps the file and unpacks blocks
  straight out of the mapping; nothing is materialized until a block
  is asked for, so a columnar consumer (the store's accumulate fast
  path) never builds per-row dicts at all.

Segments are *derived data*: always built **from the parsed TSV**
(:func:`build_segment` goes through :func:`~repro.observatory.tsv.read_tsv`),
so the values a segment yields are bit-identical to what a text parse
would have produced -- the store can swap one for the other under the
same query surface, and the PR 5 differential harness can hold it to
byte-identical HTTP responses.  A segment whose recorded source
identity no longer matches the TSV on disk (the window was rewritten)
is *stale* and ignored; the compactor
(:meth:`~repro.observatory.aggregate.TimeAggregator.compact`) rebuilds
it and removes orphans whose TSV vanished under retention.
"""

import json
import mmap
import os
import struct

from repro.observatory.tsv import (
    TimeSeriesData,
    parse_filename,
    read_tsv,
)

#: sidecar suffix: ``<window>.tsv`` -> ``<window>.tsv.seg``.  The
#: suffix keeps the TSV stem intact (``parse_filename`` ignores the
#: sidecar because the extension is not ``.tsv``), so segments are
#: invisible to ``list_series`` / the manifest scan by construction.
SEGMENT_SUFFIX = ".seg"

#: leading magic + format version (bump on incompatible layout change)
MAGIC = b"OSEG"
VERSION = 1

#: trailing magic, after the u32 footer length
TAIL_MAGIC = b"GSEO"

#: column block kinds
KIND_I64 = 0   #: all-int column, struct ``<q`` packed
KIND_F64 = 1   #: all-float column, struct ``<d`` packed
KIND_JSON = 2  #: mixed / string / out-of-range column, JSON array

_TAIL = struct.Struct("<I4s")
_I64_MAX = 2 ** 63


def segment_path(tsv_path):
    """Sidecar segment path for a TSV window file."""
    return tsv_path + SEGMENT_SUFFIX


def _pack_column(values):
    """(kind, payload bytes) for one column's value list."""
    kind = KIND_I64
    for value in values:
        if type(value) is int:
            if not -_I64_MAX <= value < _I64_MAX:
                kind = KIND_JSON
                break
        elif type(value) is float:
            if kind == KIND_I64:
                kind = KIND_F64
        else:  # str (or anything _parse may grow): JSON fallback
            kind = KIND_JSON
            break
    if kind == KIND_F64 and any(type(v) is int for v in values):
        # mixed int/float must not collapse ints into floats -- the
        # TSV parse distinguishes ``3`` from ``3.0`` and so must we
        kind = KIND_JSON
    if kind == KIND_I64:
        return kind, struct.pack("<%dq" % len(values), *values)
    if kind == KIND_F64:
        return kind, struct.pack("<%dd" % len(values), *values)
    return KIND_JSON, json.dumps(values, separators=(",", ":")).encode(
        "utf-8")


def _pack_strings(strings):
    """Offsets (``<I``, n+1 entries) + concatenated UTF-8 blob."""
    blobs = [s.encode("utf-8") for s in strings]
    offsets = [0]
    for blob in blobs:
        offsets.append(offsets[-1] + len(blob))
    return (struct.pack("<%dI" % len(offsets), *offsets), b"".join(blobs))


def write_segment(data, path, source=None):
    """Write *data* (a :class:`TimeSeriesData`) as a segment at *path*.

    *source* is the ``(mtime_ns, size, ino)`` identity of the TSV file
    the values came from; a reader compares it against the live file
    to detect staleness.  The write is atomic (tmp + ``os.replace``),
    matching the TSV write contract.  Returns *path*.
    """
    keys = [key for key, _ in data.rows]
    columns = list(data.columns)
    blocks = []  # (name, kind, payload)
    unique = list(dict.fromkeys(keys))
    if len(unique) < len(keys):
        # dict encoding pays: store each distinct key once + indexes
        table = {key: i for i, key in enumerate(unique)}
        offsets, blob = _pack_strings(unique)
        indexes = struct.pack("<%dI" % len(keys),
                              *(table[key] for key in keys))
        key_block = {"encoding": "dict", "unique": len(unique)}
        key_payloads = (offsets, blob, indexes)
    else:
        offsets, blob = _pack_strings(keys)
        key_block = {"encoding": "raw", "unique": len(keys)}
        key_payloads = (offsets, blob)
    for col in columns:
        values = [row.get(col, 0) for _, row in data.rows]
        kind, payload = _pack_column(values)
        blocks.append((col, kind, payload))
    footer = {
        "dataset": data.dataset,
        "granularity": data.granularity,
        "start_ts": data.start_ts,
        "rows": len(data.rows),
        "columns": columns,
        "stats": data.stats,
        "key": key_block,
        "blocks": {},
    }
    if source is not None:
        footer["source"] = {"mtime_ns": source[0], "size": source[1],
                            "ino": source[2]}
    tmp = "%s.tmp.%d" % (path, os.getpid())
    try:
        with open(tmp, "wb") as fh:
            fh.write(MAGIC + struct.pack("<HH", VERSION, 0))
            offset = fh.tell()
            for name, payload in zip(("offsets", "blob", "indexes"),
                                     key_payloads):
                key_block[name] = [offset, len(payload)]
                fh.write(payload)
                offset += len(payload)
            for col, kind, payload in blocks:
                footer["blocks"][col] = [kind, offset, len(payload)]
                fh.write(payload)
                offset += len(payload)
            encoded = json.dumps(footer, separators=(",", ":")).encode(
                "utf-8")
            fh.write(encoded)
            fh.write(_TAIL.pack(len(encoded), TAIL_MAGIC))
        os.replace(tmp, path)
    except BaseException:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise
    return path


def build_segment(tsv_path, path=None):
    """Build (or rebuild) the sidecar segment for one TSV window.

    The values are taken from a fresh :func:`read_tsv` of the file --
    *not* from any in-memory window state -- so what the segment
    yields is exactly what a text parse yields, down to float
    formatting round-trips.  Returns the segment path.
    """
    st = os.stat(tsv_path)
    data = read_tsv(tsv_path)
    return write_segment(
        data, segment_path(tsv_path) if path is None else path,
        source=(st.st_mtime_ns, st.st_size, st.st_ino))


def remove_segment_for(tsv_path):
    """Best-effort removal of a TSV's sidecar (retention cleanup).

    Returns True when a sidecar was removed."""
    try:
        os.remove(segment_path(tsv_path))
        return True
    except OSError:
        return False


class SegmentReader:
    """Zero-copy view over one segment file (context manager).

    Parses only the 8-byte tail plus the JSON footer on open; column
    blocks are unpacked lazily from the mmap when asked for.  Raises
    ``ValueError`` on a malformed or truncated file and ``OSError``
    when the file cannot be opened -- callers treat both as "no
    segment" and fall back to the TSV.
    """

    def __init__(self, path):
        self.path = path
        self._fh = open(path, "rb")
        try:
            self._map = mmap.mmap(self._fh.fileno(), 0,
                                  access=mmap.ACCESS_READ)
        except (ValueError, OSError):  # empty or unmappable file
            self._fh.close()
            raise ValueError("not a segment file: %r" % (path,))
        try:
            self._parse_footer()
        except (ValueError, KeyError, TypeError, struct.error,
                json.JSONDecodeError, IndexError):
            self.close()
            raise ValueError("corrupt segment file: %r" % (path,))

    def _parse_footer(self):
        view = self._map
        if len(view) < 8 + _TAIL.size or view[:4] != MAGIC:
            raise ValueError("bad magic")
        version, = struct.unpack_from("<H", view, 4)
        if version != VERSION:
            raise ValueError("unsupported segment version %d" % version)
        footer_len, tail = _TAIL.unpack_from(view, len(view) - _TAIL.size)
        if tail != TAIL_MAGIC:
            raise ValueError("bad tail magic")
        start = len(view) - _TAIL.size - footer_len
        if start < 8:
            raise ValueError("footer overruns header")
        footer = json.loads(view[start:start + footer_len].decode("utf-8"))
        self.dataset = footer["dataset"]
        self.granularity = footer["granularity"]
        self.start_ts = footer["start_ts"]
        self.n_rows = int(footer["rows"])
        self.columns = list(footer["columns"])
        self.stats = footer["stats"]
        self._key_block = footer["key"]
        self._blocks = footer["blocks"]
        src = footer.get("source")
        #: (mtime_ns, size, ino) of the TSV this was built from, or None
        self.source = None if src is None else (
            src["mtime_ns"], src["size"], src["ino"])

    # -- lifecycle -----------------------------------------------------

    def close(self):
        try:
            self._map.close()
        finally:
            self._fh.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    # -- block decoding ------------------------------------------------

    def _strings(self, offsets_span, blob_span, count):
        off = offsets_span[0]
        offsets = struct.unpack_from("<%dI" % (count + 1), self._map, off)
        blob_off = blob_span[0]
        view = self._map
        return [
            view[blob_off + offsets[i]:blob_off + offsets[i + 1]].decode(
                "utf-8")
            for i in range(count)
        ]

    def key_signature(self):
        """Cheap identity of the ordered key tuple: the encoding name
        plus the raw encoded key payload bytes, compared without
        decoding a single string.  Two windows with equal signatures
        hold the exact same ordered keys (the encoding is a pure
        function of the key tuple), which is what lets the store
        batch consecutive windows into one clustered accumulate run.
        """
        block = self._key_block
        first = block["offsets"][0]
        last = block["indexes"] if block["encoding"] == "dict" \
            else block["blob"]
        return (block["encoding"],
                bytes(self._map[first:last[0] + last[1]]))

    def keys(self):
        """The key column, decoded (dict encoding resolved)."""
        block = self._key_block
        unique = self._strings(block["offsets"], block["blob"],
                               block["unique"])
        if block["encoding"] == "raw":
            return unique
        off, length = block["indexes"]
        indexes = struct.unpack_from("<%dI" % self.n_rows, self._map, off)
        return [unique[i] for i in indexes]

    def column(self, name):
        """One feature column as a list of values (parsed types)."""
        kind, off, length = self._blocks[name]
        if kind == KIND_I64:
            return list(struct.unpack_from("<%dq" % self.n_rows,
                                           self._map, off))
        if kind == KIND_F64:
            return list(struct.unpack_from("<%dd" % self.n_rows,
                                           self._map, off))
        return json.loads(self._map[off:off + length].decode("utf-8"))

    def columns_values(self):
        """Every column's value list, in column order."""
        return [self.column(name) for name in self.columns]

    def to_data(self):
        """Materialize the full :class:`TimeSeriesData` (row dicts),
        exactly as :func:`read_tsv` of the source file would."""
        keys = self.keys()
        columns = self.columns
        if columns:
            rows = [
                (key, dict(zip(columns, values)))
                for key, values in zip(keys,
                                       zip(*self.columns_values()))
            ]
        else:
            rows = [(key, {}) for key in keys]
        return TimeSeriesData(self.dataset, self.granularity,
                              self.start_ts, columns=columns,
                              rows=rows, stats=dict(self.stats))


def open_if_fresh(tsv_path, identity):
    """Open the sidecar for *tsv_path* iff it matches *identity*.

    *identity* is the live TSV's ``(mtime_ns, size, ino)``.  Returns a
    :class:`SegmentReader` (caller closes it) or ``None`` when the
    sidecar is absent, unreadable, or stale -- every case where the
    caller must fall back to parsing the text.
    """
    try:
        reader = SegmentReader(segment_path(tsv_path))
    except (OSError, ValueError):
        return None
    if reader.source != tuple(identity):
        reader.close()
        return None
    return reader


def read_segment(path):
    """Read a whole segment into a :class:`TimeSeriesData`."""
    with SegmentReader(path) as reader:
        return reader.to_data()


def scan_segments(directory):
    """``{tsv_basename: segment_basename}`` for every sidecar found."""
    out = {}
    try:
        names = os.listdir(directory)
    except OSError:
        return out
    for name in names:
        if not name.endswith(SEGMENT_SUFFIX):
            continue
        stem = name[:-len(SEGMENT_SUFFIX)]
        try:
            parse_filename(stem)
        except ValueError:
            continue
        out[stem] = name
    return out
