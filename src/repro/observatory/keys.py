"""Dataset key definitions (the Section 3.1 collected datasets).

"A DNS object is any entity within the DNS, identified with a textual
key: the value of any transaction detail, or a combination thereof."
(Section 2.2.)  Each :class:`DatasetSpec` names a dataset, gives its
key extractor (transaction -> key string, or None to skip the
transaction), an optional pre-filter, and the default Top-k size.

The registry :data:`DATASETS` mirrors the paper's list:

* ``srvip``  -- Top nameserver IPs (the primary objects);
* ``etld``   -- Top effective TLDs, *including* NXDOMAIN traffic;
* ``esld``   -- Top effective SLDs;
* ``qname``  -- Top FQDNs;
* ``qtype``  -- all QTYPE aggregations;
* ``rcode``  -- all RCODE aggregations;
* ``aafqdn`` -- Top FQDNs in authoritative answers (AA flag set, used
  for the TTL-change detection of Section 4.2);
* ``srcsrv`` -- Top (resolver, nameserver) pairs (used for the QNAME
  minimization study of Section 3.6).

Paper-scale k values (100K/10K/...) are scaled down by default; every
spec's ``k`` can be overridden when instantiating the Observatory.
"""

from repro.dnswire.constants import RCODE
from repro.dnswire.psl import default_psl


class DatasetSpec:
    """Specification of one Top-k aggregation dataset."""

    def __init__(self, name, key_fn, k, description="", filter_fn=None):
        #: dataset identifier (also the TSV file prefix)
        self.name = name
        #: transaction -> key string (None skips the transaction)
        self.key_fn = key_fn
        #: default Top-k cache size
        self.k = int(k)
        #: human-readable description
        self.description = description
        #: optional pre-filter, transaction -> bool
        self.filter_fn = filter_fn

    def extract(self, txn):
        """Return the key for *txn*, or None when filtered out."""
        if self.filter_fn is not None and not self.filter_fn(txn):
            return None
        return self.key_fn(txn)

    def __repr__(self):
        return "DatasetSpec(%r, k=%d)" % (self.name, self.k)


# -- key extractors ----------------------------------------------------

def key_srvip(txn):
    """Authoritative nameserver IP address."""
    return txn.server_ip


def key_qname(txn):
    """Full QNAME."""
    return txn.qname or "."


def key_etld(txn, _psl=None):
    """Effective TLD of the QNAME (NXDOMAIN traffic included)."""
    psl = _psl if _psl is not None else default_psl()
    return psl.effective_tld(txn.qname)


def key_esld(txn, _psl=None):
    """Effective SLD of the QNAME; falls back to the eTLD for names
    that are themselves public suffixes (so the traffic is not lost)."""
    psl = _psl if _psl is not None else default_psl()
    esld = psl.effective_sld(txn.qname)
    return esld if esld is not None else psl.effective_tld(txn.qname)


def key_qtype(txn):
    """QTYPE mnemonic (A, AAAA, PTR, ...)."""
    return txn.qtype_name()


def key_rcode(txn):
    """RCODE mnemonic, or UNANSWERED."""
    if not txn.answered:
        return "UNANSWERED"
    return RCODE.name_of(txn.rcode)


def key_aafqdn(txn):
    """QNAME + QTYPE of authoritative answers (AA set, NoError with
    data or delegation) -- the Section 4.2 aafqdn dataset.

    The qtype is part of the key so that each object's TTL
    distribution is homogeneous ("we analyze the TTL distribution of
    its A and NS records", §4.2): mixing the A and MX TTLs of one name
    in one top-TTL feature would fabricate TTL 'changes' whenever the
    traffic mix shifts.
    """
    return "%s|%s" % (txn.qname or ".", txn.qtype_name())


def filter_aafqdn(txn):
    return txn.aa and txn.noerror and (
        txn.answer_count > 0 or txn.authority_ns_count > 0
    )


def key_srcsrv(txn):
    """Combined resolver|nameserver pair key."""
    return "%s|%s" % (txn.resolver_ip, txn.server_ip)


#: The §3.1 dataset registry.  k values follow DESIGN.md's scale map.
DATASETS = {
    "srvip": DatasetSpec(
        "srvip", key_srvip, k=2000,
        description="Top authoritative nameserver IPs"),
    "etld": DatasetSpec(
        "etld", key_etld, k=500,
        description="Top effective TLDs (incl. NXDOMAIN)"),
    "esld": DatasetSpec(
        "esld", key_esld, k=3000,
        description="Top effective SLDs"),
    "qname": DatasetSpec(
        "qname", key_qname, k=5000,
        description="Top FQDNs"),
    "qtype": DatasetSpec(
        "qtype", key_qtype, k=64,
        description="All QTYPE aggregations"),
    "rcode": DatasetSpec(
        "rcode", key_rcode, k=16,
        description="All RCODE aggregations"),
    "aafqdn": DatasetSpec(
        "aafqdn", key_aafqdn, k=2000, filter_fn=filter_aafqdn,
        description="Top FQDNs in authoritative answers"),
    "srcsrv": DatasetSpec(
        "srcsrv", key_srcsrv, k=3000,
        description="Top resolver-nameserver pairs"),
}


def make_dataset(name, k=None):
    """Return a copy of the registered spec, optionally resized."""
    base = DATASETS[name]
    return DatasetSpec(base.name, base.key_fn, k if k is not None else base.k,
                       base.description, base.filter_fn)
