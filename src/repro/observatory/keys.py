"""Dataset key definitions (the Section 3.1 collected datasets).

"A DNS object is any entity within the DNS, identified with a textual
key: the value of any transaction detail, or a combination thereof."
(Section 2.2.)  Each :class:`DatasetSpec` names a dataset, gives its
key extractor (transaction -> key string, or None to skip the
transaction), an optional pre-filter, and the default Top-k size.

The registry :data:`DATASETS` mirrors the paper's list:

* ``srvip``  -- Top nameserver IPs (the primary objects);
* ``etld``   -- Top effective TLDs, *including* NXDOMAIN traffic;
* ``esld``   -- Top effective SLDs;
* ``qname``  -- Top FQDNs;
* ``qtype``  -- all QTYPE aggregations;
* ``rcode``  -- all RCODE aggregations;
* ``aafqdn`` -- Top FQDNs in authoritative answers (AA flag set, used
  for the TTL-change detection of Section 4.2);
* ``srcsrv`` -- Top (resolver, nameserver) pairs (used for the QNAME
  minimization study of Section 3.6).

Paper-scale k values (100K/10K/...) are scaled down by default; every
spec's ``k`` can be overridden when instantiating the Observatory.
"""

import sys

from repro.dnswire.constants import RCODE
from repro.dnswire.psl import default_psl

#: memo-miss sentinel (None is a valid memoized result: "filtered out")
_MISSING = object()


class DatasetSpec:
    """Specification of one Top-k aggregation dataset.

    Beyond the basic ``key_fn`` contract, two optional fields let the
    hot path specialize extraction per dataset:

    ``key_factory``
        ``psl -> key_fn``: builds an extractor with the Public Suffix
        List pre-bound, so PSL-based datasets skip the per-transaction
        ``default_psl()`` resolution.
    ``cache_key_attr``
        Name of the single transaction attribute that fully determines
        the key (e.g. ``"qname"`` for eTLD extraction).  When set, the
        tracker memoizes ``attr value -> key`` -- the stream repeats
        popular names millions of times, so suffix matching runs once
        per distinct name instead of once per transaction.
    """

    def __init__(self, name, key_fn, k, description="", filter_fn=None,
                 key_factory=None, cache_key_attr=None):
        #: dataset identifier (also the TSV file prefix)
        self.name = name
        #: transaction -> key string (None skips the transaction)
        self.key_fn = key_fn
        #: default Top-k cache size
        self.k = int(k)
        #: human-readable description
        self.description = description
        #: optional pre-filter, transaction -> bool
        self.filter_fn = filter_fn
        #: optional psl -> key_fn specialization
        self.key_factory = key_factory
        #: optional txn attribute name that determines the key
        self.cache_key_attr = cache_key_attr

    def extract(self, txn):
        """Return the key for *txn*, or None when filtered out."""
        if self.filter_fn is not None and not self.filter_fn(txn):
            return None
        return self.key_fn(txn)

    def make_extractor(self, psl=None, cache_limit=100_000):
        """Build the fastest extractor available for this dataset.

        Returns a ``txn -> key-or-None`` callable with the PSL bound
        (when the dataset uses one) and, when ``cache_key_attr`` is
        set and no pre-filter interferes, a bounded memo of
        ``attr value -> key`` in front (cleared wholesale when full,
        like the PSL's own cache).
        """
        if self.key_factory is not None:
            key_fn = self.key_factory(
                psl if psl is not None else default_psl())
        else:
            key_fn = self.key_fn
        filter_fn = self.filter_fn
        if self.cache_key_attr is not None and filter_fn is None:
            attr = self.cache_key_attr
            cache = {}
            intern = sys.intern

            def extract(txn):
                value = getattr(txn, attr)
                try:
                    return cache[value]
                except KeyError:
                    pass
                if len(cache) >= cache_limit:
                    cache.clear()
                key = key_fn(txn)
                if key is not None:
                    # memoized keys are served many times over; intern
                    # so every cache hit returns the singleton and the
                    # Space-Saving dict compares by pointer first
                    key = intern(key)
                cache[value] = key
                return key

            return extract
        if filter_fn is not None:
            def extract(txn):
                if not filter_fn(txn):
                    return None
                return key_fn(txn)

            return extract
        return key_fn

    def make_batch_extractor(self, psl=None, cache_limit=100_000):
        """Build a batch extractor: ``txns -> [key-or-None, ...]``.

        The batch form of :meth:`make_extractor`: one call per batch
        instead of one per transaction.  For memoizable datasets
        (``cache_key_attr`` set, no pre-filter) the loop runs against
        a local binding of the shared memo with interned keys, so the
        steady-state per-transaction cost is one attribute read and
        one dict hit -- no Python-level function call at all.
        """
        if self.key_factory is not None:
            key_fn = self.key_factory(
                psl if psl is not None else default_psl())
        else:
            key_fn = self.key_fn
        filter_fn = self.filter_fn
        if self.cache_key_attr is not None and filter_fn is None:
            attr = self.cache_key_attr
            cache = {}
            intern = sys.intern

            def extract_batch(txns):
                cache_get = cache.get
                keys = []
                append = keys.append
                for txn in txns:
                    value = getattr(txn, attr)
                    key = cache_get(value, _MISSING)
                    if key is _MISSING:
                        if len(cache) >= cache_limit:
                            cache.clear()
                        key = key_fn(txn)
                        if key is not None:
                            key = intern(key)
                        cache[value] = key
                    append(key)
                return keys

            return extract_batch
        if filter_fn is not None:
            def extract_batch(txns):
                return [key_fn(txn) if filter_fn(txn) else None
                        for txn in txns]

            return extract_batch

        def extract_batch(txns):
            return [key_fn(txn) for txn in txns]

        return extract_batch

    def __repr__(self):
        return "DatasetSpec(%r, k=%d)" % (self.name, self.k)


# -- key extractors ----------------------------------------------------

def key_srvip(txn):
    """Authoritative nameserver IP address."""
    return txn.server_ip


def key_qname(txn):
    """Full QNAME."""
    return txn.qname or "."


def key_etld(txn, _psl=None):
    """Effective TLD of the QNAME (NXDOMAIN traffic included)."""
    psl = _psl if _psl is not None else default_psl()
    return psl.effective_tld(txn.qname)


def key_etld_factory(psl):
    """PSL-bound eTLD extractor (hot-path specialization)."""
    effective_tld = psl.effective_tld

    def key(txn):
        return effective_tld(txn.qname)

    return key


def key_esld(txn, _psl=None):
    """Effective SLD of the QNAME; falls back to the eTLD for names
    that are themselves public suffixes (so the traffic is not lost)."""
    psl = _psl if _psl is not None else default_psl()
    esld = psl.effective_sld(txn.qname)
    return esld if esld is not None else psl.effective_tld(txn.qname)


def key_esld_factory(psl):
    """PSL-bound eSLD extractor (hot-path specialization)."""
    effective_sld = psl.effective_sld
    effective_tld = psl.effective_tld

    def key(txn):
        esld = effective_sld(txn.qname)
        return esld if esld is not None else effective_tld(txn.qname)

    return key


def key_qtype(txn):
    """QTYPE mnemonic (A, AAAA, PTR, ...)."""
    return txn.qtype_name()


def key_rcode(txn):
    """RCODE mnemonic, or UNANSWERED."""
    if not txn.answered:
        return "UNANSWERED"
    return RCODE.name_of(txn.rcode)


def key_aafqdn(txn):
    """QNAME + QTYPE of authoritative answers (AA set, NoError with
    data or delegation) -- the Section 4.2 aafqdn dataset.

    The qtype is part of the key so that each object's TTL
    distribution is homogeneous ("we analyze the TTL distribution of
    its A and NS records", §4.2): mixing the A and MX TTLs of one name
    in one top-TTL feature would fabricate TTL 'changes' whenever the
    traffic mix shifts.
    """
    return "%s|%s" % (txn.qname or ".", txn.qtype_name())


def filter_aafqdn(txn):
    return txn.aa and txn.noerror and (
        txn.answer_count > 0 or txn.authority_ns_count > 0
    )


def key_srcsrv(txn):
    """Combined resolver|nameserver pair key."""
    return "%s|%s" % (txn.resolver_ip, txn.server_ip)


#: The §3.1 dataset registry.  k values follow DESIGN.md's scale map.
DATASETS = {
    "srvip": DatasetSpec(
        "srvip", key_srvip, k=2000,
        description="Top authoritative nameserver IPs"),
    "etld": DatasetSpec(
        "etld", key_etld, k=500,
        description="Top effective TLDs (incl. NXDOMAIN)",
        key_factory=key_etld_factory, cache_key_attr="qname"),
    "esld": DatasetSpec(
        "esld", key_esld, k=3000,
        description="Top effective SLDs",
        key_factory=key_esld_factory, cache_key_attr="qname"),
    "qname": DatasetSpec(
        "qname", key_qname, k=5000,
        description="Top FQDNs"),
    "qtype": DatasetSpec(
        "qtype", key_qtype, k=64,
        description="All QTYPE aggregations",
        cache_key_attr="qtype"),
    "rcode": DatasetSpec(
        "rcode", key_rcode, k=16,
        description="All RCODE aggregations"),
    "aafqdn": DatasetSpec(
        "aafqdn", key_aafqdn, k=2000, filter_fn=filter_aafqdn,
        description="Top FQDNs in authoritative answers"),
    "srcsrv": DatasetSpec(
        "srcsrv", key_srcsrv, k=3000,
        description="Top resolver-nameserver pairs"),
}


def make_dataset(name, k=None):
    """Return a copy of the registered spec, optionally resized."""
    base = DATASETS[name]
    return DatasetSpec(base.name, base.key_fn, k if k is not None else base.k,
                       base.description, base.filter_fn,
                       key_factory=base.key_factory,
                       cache_key_attr=base.cache_key_attr)
