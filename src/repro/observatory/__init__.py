"""DNS Observatory core: the paper's primary contribution (Section 2).

The processing pipeline mirrors Figure 1 of the paper:

A) recursive resolvers submit cache-miss traffic -- in this repo,
   produced by :mod:`repro.simulation` (the SIE substitute);
B) each query-response pair is summarized into a compact
   :class:`~repro.observatory.transaction.Transaction`
   (:mod:`~repro.observatory.preprocess` parses raw IP/UDP/DNS bytes);
C) Top-k objects are tracked per dataset with Space-Saving
   (:mod:`~repro.observatory.tracker`, key definitions in
   :mod:`~repro.observatory.keys`);
D) per-object traffic features are collected in 60-second windows
   (:mod:`~repro.observatory.features`,
   :mod:`~repro.observatory.window`);
E) time series are written to TSV files
   (:mod:`~repro.observatory.tsv`);
F) files are aggregated in time -- minutely to 10-minutely to hourly
   to daily -- with retention (:mod:`~repro.observatory.aggregate`);
G) the read path serves them back: an indexed, cached
   :class:`~repro.observatory.store.SeriesStore` with time-range /
   key / top-k query primitives, and threshold alerting over the
   ``_platform`` telemetry series (:mod:`~repro.observatory.alerts`)
   -- the foundation of the :mod:`repro.server` HTTP API.

The :class:`~repro.observatory.pipeline.Observatory` facade wires all
of this together; :class:`~repro.observatory.sharded.ShardedObservatory`
scales the same pipeline across worker processes with mergeable
sketches.
"""

from repro.observatory.features import FeatureSet
from repro.observatory.keys import DATASETS, DatasetSpec
from repro.observatory.pipeline import Observatory
from repro.observatory.sharded import ShardedObservatory
from repro.observatory.store import SeriesStore
from repro.observatory.tracker import TopKTracker
from repro.observatory.transaction import Transaction
from repro.observatory.transport import BinaryTransport, PickleTransport
from repro.observatory.window import WindowManager

__all__ = [
    "FeatureSet",
    "DATASETS",
    "DatasetSpec",
    "Observatory",
    "SeriesStore",
    "ShardedObservatory",
    "TopKTracker",
    "Transaction",
    "BinaryTransport",
    "PickleTransport",
    "WindowManager",
]
