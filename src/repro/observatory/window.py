"""60-second window management: dump-and-reset semantics (Section 2.4).

"Every 60 seconds, we dump all data to disk and reset all statistics,
but without affecting the SS cache. ... Because the popularity of
objects may change at arbitrary points in time, we skip the data from
objects recently inserted in the SS cache.  That is, if we included an
object in the data dump, this means it survived the SS cache eviction
for 60 seconds."
"""

import math
import time
from pickle import PickleBuffer

from repro.observatory.features import FeatureSet, TxnHashes
from repro.observatory.telemetry import (
    PLATFORM_DATASET,
    resolve_telemetry,
    union_columns,
)
from repro.observatory.tsv import TimeSeriesData


def align_window(ts, window_seconds):
    """Align *ts* down to its window's start on the global grid.

    Works for fractional window lengths (the integer-division variant
    raised ``ZeroDivisionError`` for ``window_seconds < 1``).  Integral
    results are returned as ints so TSV filenames and existing
    comparisons keep their exact integer timestamps.
    """
    start = math.floor(ts / window_seconds) * window_seconds
    return _as_int_if_integral(start)


def _as_int_if_integral(value):
    i = int(value)
    return i if i == value else value


class WindowDump:
    """One dataset's dump for one completed window."""

    __slots__ = ("dataset", "start_ts", "rows", "stats", "columns")

    def __init__(self, dataset, start_ts, rows, stats, columns=None):
        self.dataset = dataset
        #: window start (virtual seconds)
        self.start_ts = start_ts
        #: list of (key, feature_row_dict) in rank order
        self.rows = rows
        #: {"seen": transactions seen, "kept": after filtering/capture}
        self.stats = stats
        #: TSV column order; None means the canonical feature columns.
        #: Meta-datasets (``_platform`` telemetry) carry their own.
        self.columns = columns

    def row_map(self):
        return dict(self.rows)

    def to_timeseries(self, granularity="minutely"):
        """Convert to :class:`TimeSeriesData` for the TSV writer."""
        return TimeSeriesData(
            self.dataset, granularity, self.start_ts,
            columns=self.columns, rows=self.rows, stats=self.stats,
        )

    def __len__(self):
        return len(self.rows)


class ShardWindowState:
    """One dataset's *mergeable* window state from one ingest shard.

    Where :class:`WindowDump` carries flattened feature rows, this
    carries the raw per-object state a shard accumulated during one
    window -- everything the parent process needs to combine
    independently built shard summaries into the exact-enough global
    Top-k: the decayed rate estimate and its Space-Saving error bound
    (both converted to events/second at the window end, so values from
    shards with different decay landmarks are directly comparable),
    the insertion time (for the §2.4 survived-one-window rule, applied
    only after taking the minimum across shards), the exact hit count,
    and the live :class:`FeatureSet`, detached so it can be shipped
    over a process boundary without copying.
    """

    __slots__ = ("dataset", "start_ts", "entries", "inserted", "stats")

    def __init__(self, dataset, start_ts, entries, inserted, stats):
        self.dataset = dataset
        #: window start (virtual seconds), same grid as WindowDump
        self.start_ts = start_ts
        #: list of (key, rate, error_rate, inserted_at, hits, FeatureSet)
        self.entries = entries
        #: live-but-idle cache entries, as ``(key, inserted_at, rate)``
        #: triples.  A key can be long-tracked (and heavy) in one shard
        #: yet see traffic only in another during this window; without
        #: these, the merged minimum insertion time would misapply the
        #: survived-one-window rule, and the merged rank would drop the
        #: idle shard's accumulated weight (the single cache ranks by
        #: *lifetime* decayed weight, so the merge must too).
        self.inserted = inserted
        #: {"seen": ..., "kept": ...} -- this shard's share
        self.stats = stats

    def __len__(self):
        return len(self.entries)

    # -- flat-buffer codec (zero-copy shard transport) -----------------

    def to_buffers(self):
        """Serialize to ``(meta, buffers)``: per-entry scalars and the
        idle-entry triples in *meta*, every entry's FeatureSet
        contributing its contiguous buffers to one flat list."""
        buffers = []
        packed = []
        for key, rate, error, inserted_at, hits, features in self.entries:
            child_meta, child_buffers = features.to_buffers()
            packed.append((key, rate, error, inserted_at, hits,
                           child_meta, len(child_buffers)))
            buffers.extend(child_buffers)
        meta = (self.dataset, self.start_ts, tuple(packed),
                tuple(self.inserted), dict(self.stats))
        return meta, buffers

    @classmethod
    def from_buffers(cls, meta, buffers):
        dataset, start_ts, packed, inserted, stats = meta
        entries = []
        offset = 0
        for key, rate, error, inserted_at, hits, child_meta, count in packed:
            features = FeatureSet.from_buffers(
                child_meta, buffers[offset:offset + count])
            offset += count
            entries.append((key, rate, error, inserted_at, hits, features))
        return cls(dataset, start_ts, entries, list(inserted), stats)

    def __reduce_ex__(self, protocol):
        if protocol >= 5:
            meta, buffers = self.to_buffers()
            return (self.from_buffers,
                    (meta, [PickleBuffer(b) for b in buffers]))
        return super().__reduce_ex__(protocol)


class WindowManager:
    """Drive a set of trackers through fixed time windows.

    Transactions must arrive in non-decreasing timestamp order (the
    SIE stream is time-ordered).  When a transaction crosses the
    current window's end, every tracker is dumped and its per-object
    statistics reset; the dumps are handed to *sink* (a callable
    ``sink(window_dump)``) and also returned from :meth:`observe`.

    Parameters
    ----------
    trackers:
        Iterable of :class:`~repro.observatory.tracker.TopKTracker`.
    window_seconds:
        Window length; the paper uses 60 s.  Fractional lengths are
        supported (sub-second windows are used in tests).
    skip_recent_inserts:
        Enforce the survived-one-window rule.  Disabling it is the
        ablation knob discussed in DESIGN.md.
    state_sink:
        When set, window boundaries produce mergeable
        :class:`ShardWindowState` objects (one per tracker, passed to
        this callable) *instead of* row dumps -- the shard-worker mode
        of :mod:`repro.observatory.sharded`.  The survived-one-window
        rule is **not** applied in this mode; the merging side applies
        it after combining insertion times across shards.
    telemetry:
        ``True`` / a :class:`~repro.observatory.telemetry.Telemetry`
        registry to enable platform self-telemetry: flush latency,
        rows dumped, skipped-recent counts, gap fast-forwards, plus
        each tracker's sketch-health sample.  In dump mode (no
        *state_sink*) every window boundary additionally emits a
        ``_platform`` :class:`WindowDump` with one row per component.
        Falsy (the default) wires the shared no-op registry: nothing
        is recorded and the hot path is untouched.
    detectors:
        A :class:`~repro.detect.DetectorSet` (or None).  Detectors
        observe every transaction; in dump mode each boundary scores
        and emits a ``_detector`` :class:`WindowDump`, in shard-worker
        mode each boundary ships the detectors' mergeable window
        accumulators as :class:`~repro.detect.DetectorWindowState`
        through *state_sink* (scoring happens on the merging side).
    encrypted:
        An :class:`~repro.observatory.encrypted.
        EncryptedChannelAggregator` (or None).  When set, blinded
        transactions (``source`` starting ``"!"`` -- ciphertext-only
        DoH/DoT observations) are *diverted*: they count toward
        ``seen`` but never reach the trackers or detectors, whose
        datasets would otherwise be polluted by payload-free records;
        the aggregator folds them into the ``_encrypted``
        size/timing dataset instead.  In dump mode each boundary emits
        an ``_encrypted`` :class:`WindowDump` (empty windows write no
        file), in shard-worker mode each boundary ships an
        :class:`~repro.observatory.encrypted.EncryptedWindowState`.
    """

    def __init__(self, trackers, window_seconds=60.0, sink=None,
                 skip_recent_inserts=True, state_sink=None,
                 telemetry=None, detectors=None, encrypted=None):
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        self.trackers = list(trackers)
        self.window_seconds = float(window_seconds)
        self.sink = sink
        self.state_sink = state_sink
        self.detectors = detectors
        self.encrypted = encrypted
        self.skip_recent_inserts = skip_recent_inserts
        self._window_start = None
        self._seen_in_window = 0
        self._kept_in_window = {t.spec.name: 0 for t in self.trackers}
        #: total transactions observed over the manager's lifetime
        self.total_seen = 0
        #: completed windows (gap windows fast-forwarded over included)
        self.windows_completed = 0
        self.telemetry = telemetry = resolve_telemetry(telemetry)
        self._flush_timer = telemetry.timing("window", "flush")
        self._rows_counter = telemetry.counter("window", "rows")
        self._skipped_counter = telemetry.counter("window",
                                                  "skipped_recent")
        self._gap_counter = telemetry.counter("window", "windows_skipped")
        if telemetry.enabled:
            telemetry.register("window", self._telemetry_row,
                               deltas=("txns",))
            for tracker in self.trackers:
                row_fn = getattr(tracker, "telemetry_row", None)
                if row_fn is not None:
                    telemetry.register(
                        "tracker.%s" % tracker.spec.name, row_fn,
                        deltas=getattr(tracker, "telemetry_deltas", ()))

    def _telemetry_row(self, now):
        return {"txns": self.total_seen, "windows": self.windows_completed}

    @property
    def window_start(self):
        return self._window_start

    def observe(self, txn):
        """Feed one transaction.  Returns the list of WindowDumps
        produced by any window boundary this transaction crossed
        (usually empty)."""
        if self._window_start is None:
            self._window_start = self._align(txn.ts)
            dumps = []
        else:
            dumps = self._catch_up(txn.ts)
        self.total_seen += 1
        self._seen_in_window += 1
        if self.encrypted is not None and txn.source[:1] == "!":
            self.encrypted.observe(txn)
            return dumps
        hashes = TxnHashes(txn)  # base hashes shared by all trackers
        for tracker in self.trackers:
            entry = tracker.observe(txn, hashes)
            if entry is not None:
                self._kept_in_window[tracker.spec.name] += 1
        if self.detectors is not None:
            self.detectors.observe(txn)
        return dumps

    def consume_batch(self, txns):
        """Feed a time-ordered batch of transactions (the fast path).

        Equivalent to calling :meth:`observe` per transaction, but the
        window-boundary check is hoisted out of the inner loop: the
        batch is split into window-aligned segments up front, and each
        segment runs tracker-major -- every tracker processes the whole
        segment in one :meth:`~repro.observatory.tracker.TopKTracker.
        observe_batch` call over a shared per-segment
        :class:`~repro.observatory.features.TxnHashes` list, so key
        extraction is batched (one memo hit per transaction for the
        eSLD/eTLD datasets) and per-transaction Python call overhead
        drops to the hash construction.  Trackers are independent, so
        tracker-major order over a segment produces byte-identical
        state to the transaction-major order of :meth:`observe`.
        Returns the WindowDumps of all boundaries crossed.
        """
        dumps = []
        n = len(txns)
        if not n:
            return dumps
        if self._window_start is None:
            self._window_start = self._align(txns[0].ts)
        trackers = self.trackers
        observe_batches = [t.observe_batch for t in trackers]
        names = [t.spec.name for t in trackers]
        tracker_range = range(len(trackers))
        window_seconds = self.window_seconds
        kept_map = self._kept_in_window
        i = 0
        while i < n:
            end = self._window_start + window_seconds
            # Longest run [i, j) entirely inside the current window.
            j = i
            while j < n and txns[j].ts < end:
                j += 1
            segment = txns[i:j]
            count = j - i
            if self.encrypted is not None:
                blinded = [t for t in segment if t.source[:1] == "!"]
                if blinded:
                    self.encrypted.observe_batch(blinded)
                    segment = [t for t in segment
                               if t.source[:1] != "!"]
            hashes_list = [TxnHashes(txn) for txn in segment]
            for t in tracker_range:
                kept = observe_batches[t](segment, hashes_list)
                if kept:
                    kept_map[names[t]] += kept
            if self.detectors is not None:
                self.detectors.observe_batch(segment)
            self.total_seen += count
            self._seen_in_window += count
            i = j
            if i < n:
                dumps.extend(self._catch_up(txns[i].ts))
        return dumps

    def advance_to(self, ts):
        """Flush every window that ends at or before *ts*.

        Used by shard workers when the coordinator announces that the
        global stream has crossed a boundary this shard's own subset
        has not reached (or never will, for an idle shard).  A manager
        that has seen no transactions yet stays unstarted.
        """
        if self._window_start is None:
            return []
        return self._catch_up(ts)

    def flush(self):
        """Force a dump of the current (possibly partial) window.

        Call at end of stream so the tail window is not lost.
        """
        if self._window_start is None:
            return []
        return self._flush()

    # ------------------------------------------------------------------

    def _align(self, ts):
        return align_window(ts, self.window_seconds)

    def _catch_up(self, ts):
        """Flush the current window if *ts* crossed its end, then
        fast-forward over the rest of a stream gap in one realign.

        The stream is time-ordered, so once the current window has
        been flushed every further window before *ts* is necessarily
        empty: dumping each one would only write a header-only TSV per
        dataset (a 1-day sensor outage with 60 s windows used to write
        1440 empty files per dataset).  The skipped windows still
        count toward :attr:`windows_completed`.
        """
        dumps = []
        window_seconds = self.window_seconds
        if ts < self._window_start + window_seconds:
            return dumps
        dumps.extend(self._flush())  # advances exactly one window
        start = self._window_start
        if ts >= start + window_seconds:
            target = self._align(ts)
            skipped = int(round((target - start) / window_seconds))
            self._window_start = target
            self.windows_completed += skipped
            self._gap_counter.inc(skipped)
        return dumps

    def _flush(self):
        if self.state_sink is not None:
            return self._flush_state()
        telemetry = self.telemetry
        started = time.perf_counter() if telemetry.enabled else 0.0
        start = self._window_start
        dumps = []
        total_rows = 0
        skipped_recent = 0
        for tracker in self.trackers:
            rows = []
            for entry in tracker.top():
                if entry.state is None or entry.state.hits == 0:
                    continue
                if self.skip_recent_inserts and entry.inserted_at > start:
                    skipped_recent += 1
                    continue  # did not survive a full window yet
                rows.append((entry.key, entry.state.as_row()))
            total_rows += len(rows)
            stats = {
                "seen": self._seen_in_window,
                "kept": self._kept_in_window[tracker.spec.name],
            }
            dump = WindowDump(tracker.spec.name, start, rows, stats)
            dumps.append(dump)
            if self.sink is not None:
                self.sink(dump)
            tracker.reset_window_stats()
            self._kept_in_window[tracker.spec.name] = 0
        if self.detectors is not None:
            detector = self._detector_dump(start)
            dumps.append(detector)
            if self.sink is not None:
                self.sink(detector)
        if self.encrypted is not None:
            blinded = self._encrypted_dump(start)
            dumps.append(blinded)
            if self.sink is not None:
                self.sink(blinded)
        if telemetry.enabled:
            self._flush_timer.observe(time.perf_counter() - started)
            self._rows_counter.inc(total_rows)
            self._skipped_counter.inc(skipped_recent)
            platform = self._platform_dump(start)
            dumps.append(platform)
            if self.sink is not None:
                self.sink(platform)
        self._advance_window(start)
        return dumps

    def _detector_dump(self, start):
        """Score the completed window across all detectors and wrap
        the rows into a ``_detector`` WindowDump (the ``_platform``
        pattern: one meta-dataset through the normal TSV chain)."""
        from repro.detect import DETECTOR_DATASET

        rows = self.detectors.cut(start, start + self.window_seconds)
        return WindowDump(
            DETECTOR_DATASET, start, rows,
            {"seen": self._seen_in_window, "kept": len(rows)},
            columns=union_columns(rows))

    def _encrypted_dump(self, start):
        """Emit the completed window's ``_encrypted`` channel features
        (same meta-dataset pattern as ``_detector``).  ``seen`` counts
        the blinded transactions only, computed *from the merged
        accumulators*, so sharded and single-process trailers agree."""
        from repro.observatory.encrypted import ENCRYPTED_DATASET

        seen = self.encrypted.seen()
        rows = self.encrypted.cut(start, start + self.window_seconds)
        return WindowDump(
            ENCRYPTED_DATASET, start, rows,
            {"seen": seen, "kept": len(rows)},
            columns=union_columns(rows))

    def _platform_dump(self, start):
        """Wrap the registry snapshot into a ``_platform`` WindowDump
        so platform health flows through the exact TSV/aggregation
        path as paper data."""
        rows = self.telemetry.snapshot(start + self.window_seconds)
        return WindowDump(
            PLATFORM_DATASET, start, rows,
            {"seen": self._seen_in_window, "kept": len(rows)},
            columns=union_columns(rows))

    def _flush_state(self):
        """Shard-worker flush: emit mergeable per-tracker state.

        Active FeatureSets are detached (``entry.state = None``)
        rather than cleared in place, so the emitted objects can cross
        a process boundary while the tracker keeps running.
        """
        telemetry = self.telemetry
        started = time.perf_counter() if telemetry.enabled else 0.0
        start = self._window_start
        end = start + self.window_seconds
        for tracker in self.trackers:
            cache = tracker.cache
            entries = []
            inserted = []
            for entry in cache:
                state = entry.state
                if state is None or state.hits == 0:
                    inserted.append((entry.key, entry.inserted_at,
                                     cache.rate(entry, end)))
                    continue
                entries.append((
                    entry.key,
                    cache.rate(entry, end),
                    cache.decay.rate(entry.error, end),
                    entry.inserted_at,
                    entry.hits,
                    state,
                ))
                entry.state = None  # detach; fresh stats next window
            stats = {
                "seen": self._seen_in_window,
                "kept": self._kept_in_window[tracker.spec.name],
            }
            self.state_sink(ShardWindowState(
                tracker.spec.name, start, entries, inserted, stats))
            self._kept_in_window[tracker.spec.name] = 0
        if self.detectors is not None:
            for state in self.detectors.take_states(start):
                self.state_sink(state)
        if self.encrypted is not None:
            self.state_sink(self.encrypted.take_state(start))
        if telemetry.enabled:
            self._flush_timer.observe(time.perf_counter() - started)
        self._advance_window(start)
        return []

    def _advance_window(self, start):
        self._window_start = _as_int_if_integral(start + self.window_seconds)
        self._seen_in_window = 0
        self.windows_completed += 1
