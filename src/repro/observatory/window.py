"""60-second window management: dump-and-reset semantics (Section 2.4).

"Every 60 seconds, we dump all data to disk and reset all statistics,
but without affecting the SS cache. ... Because the popularity of
objects may change at arbitrary points in time, we skip the data from
objects recently inserted in the SS cache.  That is, if we included an
object in the data dump, this means it survived the SS cache eviction
for 60 seconds."
"""

from repro.observatory.features import TxnHashes
from repro.observatory.tsv import TimeSeriesData


class WindowDump:
    """One dataset's dump for one completed window."""

    __slots__ = ("dataset", "start_ts", "rows", "stats")

    def __init__(self, dataset, start_ts, rows, stats):
        self.dataset = dataset
        #: window start (virtual seconds)
        self.start_ts = start_ts
        #: list of (key, feature_row_dict) in rank order
        self.rows = rows
        #: {"seen": transactions seen, "kept": after filtering/capture}
        self.stats = stats

    def row_map(self):
        return dict(self.rows)

    def to_timeseries(self, granularity="minutely"):
        """Convert to :class:`TimeSeriesData` for the TSV writer."""
        return TimeSeriesData(
            self.dataset, granularity, self.start_ts,
            rows=self.rows, stats=self.stats,
        )

    def __len__(self):
        return len(self.rows)


class WindowManager:
    """Drive a set of trackers through fixed time windows.

    Transactions must arrive in non-decreasing timestamp order (the
    SIE stream is time-ordered).  When a transaction crosses the
    current window's end, every tracker is dumped and its per-object
    statistics reset; the dumps are handed to *sink* (a callable
    ``sink(window_dump)``) and also returned from :meth:`observe`.

    Parameters
    ----------
    trackers:
        Iterable of :class:`~repro.observatory.tracker.TopKTracker`.
    window_seconds:
        Window length; the paper uses 60 s.
    skip_recent_inserts:
        Enforce the survived-one-window rule.  Disabling it is the
        ablation knob discussed in DESIGN.md.
    """

    def __init__(self, trackers, window_seconds=60.0, sink=None,
                 skip_recent_inserts=True):
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        self.trackers = list(trackers)
        self.window_seconds = float(window_seconds)
        self.sink = sink
        self.skip_recent_inserts = skip_recent_inserts
        self._window_start = None
        self._seen_in_window = 0
        self._kept_in_window = {t.spec.name: 0 for t in self.trackers}
        #: total transactions observed over the manager's lifetime
        self.total_seen = 0
        #: completed windows
        self.windows_completed = 0

    @property
    def window_start(self):
        return self._window_start

    def observe(self, txn):
        """Feed one transaction.  Returns the list of WindowDumps
        produced by any window boundary this transaction crossed
        (usually empty)."""
        dumps = []
        if self._window_start is None:
            self._window_start = self._align(txn.ts)
        while txn.ts >= self._window_start + self.window_seconds:
            dumps.extend(self._flush())
        self.total_seen += 1
        self._seen_in_window += 1
        hashes = TxnHashes(txn)  # base hashes shared by all trackers
        for tracker in self.trackers:
            entry = tracker.observe(txn, hashes)
            if entry is not None:
                self._kept_in_window[tracker.spec.name] += 1
        return dumps

    def flush(self):
        """Force a dump of the current (possibly partial) window.

        Call at end of stream so the tail window is not lost.
        """
        if self._window_start is None:
            return []
        return self._flush()

    # ------------------------------------------------------------------

    def _align(self, ts):
        return (int(ts) // int(self.window_seconds)) * int(self.window_seconds)

    def _flush(self):
        start = self._window_start
        dumps = []
        for tracker in self.trackers:
            rows = []
            for entry in tracker.top():
                if entry.state is None or entry.state.hits == 0:
                    continue
                if self.skip_recent_inserts and entry.inserted_at > start:
                    continue  # did not survive a full window yet
                rows.append((entry.key, entry.state.as_row()))
            stats = {
                "seen": self._seen_in_window,
                "kept": self._kept_in_window[tracker.spec.name],
            }
            dump = WindowDump(tracker.spec.name, start, rows, stats)
            dumps.append(dump)
            if self.sink is not None:
                self.sink(dump)
            tracker.reset_window_stats()
            self._kept_in_window[tracker.spec.name] = 0
        self._seen_in_window = 0
        self._window_start = start + int(self.window_seconds)
        self.windows_completed += 1
        return dumps
