"""Shard transport codecs: what actually crosses the process boundary.

The sharded ingest engine of :mod:`repro.observatory.sharded` ships two
payload kinds between the coordinator and its workers:

* **upstream** -- batches of transactions routed to a shard;
* **downstream** -- merged-window state (:class:`ShardWindowState`
  lists, whose entries carry live sketch registers and histograms).

The original transport let the multiprocessing queues pickle both with
the default protocol, so coordinator time grew with the feature payload
size: every ``Transaction`` pickled as a 23-slot object graph, and
every ``FeatureSet`` as a slot dict holding eight 2 KiB HyperLogLog
register blobs -- dense even when nearly empty.

This module provides the explicit **binary** codec:

* :func:`encode_batch` / :func:`decode_batch` turn a transaction batch
  into one pre-serialized line block (the §2.1 "line of text" format
  with exact float round-tripping) -- one flat ``bytes`` per queue
  message instead of a pickled object list;
* :func:`pack_states` / :func:`unpack_states` pickle shard state with
  **protocol 5 out-of-band buffers** (PEP 574).  Every sketch exposes
  its contiguous payload via ``to_buffers()`` (HLL register blocks,
  packed histogram buckets); ``__reduce_ex__`` wraps those in
  :class:`pickle.PickleBuffer`, and the buffer callback collects them
  *without copying into the pickle stream*.  The payload shrinks
  further because mostly-empty register blocks encode sparsely.

Both codecs are exposed behind a tiny transport interface so the
coordinator and workers can A/B them (``--transport {pickle,binary}``
on the CLI); :class:`PickleTransport` is the original behavior.
"""

import pickle

from repro.observatory.transaction import Transaction

_LINE_SEP = b"\n"


def encode_batch(txns):
    """Encode a transaction batch as one newline-joined line block.

    Floats are serialized exactly (``repr``), so a decoded transaction
    is indistinguishable from the original to the window/decay logic.
    """
    return _LINE_SEP.join(
        txn.to_line(exact=True).encode("utf-8") for txn in txns)


def decode_batch(data):
    """Decode a line block produced by :func:`encode_batch`."""
    if not data:
        return []
    if not isinstance(data, bytes):  # memoryview from out-of-band paths
        data = bytes(data)
    from_line = Transaction.from_line
    return [from_line(line) for line in data.decode("utf-8").split("\n")]


def pack_states(states):
    """Pickle shard state with protocol-5 out-of-band buffers.

    Returns ``(payload, buffers)``: *payload* is the pickle stream with
    every sketch's contiguous data excised, *buffers* the list of raw
    bytes-like objects (HLL register bytearrays are passed through
    as-is -- zero copies on the sending side).
    """
    buffers = []

    def grab(pickle_buffer):
        view = pickle_buffer.raw()
        # to_buffers() always hands over whole bytes/bytearray objects,
        # so the view's .obj is the original buffer; fall back to a
        # copy for anything more exotic.
        obj = view.obj
        buffers.append(obj if isinstance(obj, (bytes, bytearray))
                       else view.tobytes())

    payload = pickle.dumps(states, protocol=5, buffer_callback=grab)
    return payload, buffers


def unpack_states(payload, buffers):
    """Inverse of :func:`pack_states`."""
    return pickle.loads(payload, buffers=buffers)


class PickleTransport:
    """The original transport: queues pickle live object graphs."""

    name = "pickle"

    @staticmethod
    def pack_batch(txns):
        return list(txns)

    @staticmethod
    def unpack_batch(payload):
        return payload

    @staticmethod
    def pack_states(states):
        return states

    @staticmethod
    def unpack_states(payload):
        return payload


class BinaryTransport:
    """Line-block batches + protocol-5 out-of-band state buffers."""

    name = "binary"

    @staticmethod
    def pack_batch(txns):
        return encode_batch(txns)

    @staticmethod
    def unpack_batch(payload):
        return decode_batch(payload)

    @staticmethod
    def pack_states(states):
        return pack_states(states)

    @staticmethod
    def unpack_states(payload):
        return unpack_states(*payload)


TRANSPORTS = {
    PickleTransport.name: PickleTransport,
    BinaryTransport.name: BinaryTransport,
}


def get_transport(transport):
    """Resolve a transport name (or pass an instance through)."""
    if isinstance(transport, str):
        try:
            return TRANSPORTS[transport]()
        except KeyError:
            raise ValueError("unknown transport %r (choose from %s)"
                             % (transport, sorted(TRANSPORTS)))
    return transport
