"""Shard transport codecs: what actually crosses the process boundary.

The sharded ingest engine of :mod:`repro.observatory.sharded` ships two
payload kinds between the coordinator and its workers:

* **upstream** -- batches of transactions routed to a shard;
* **downstream** -- merged-window state (:class:`ShardWindowState`
  lists, whose entries carry live sketch registers and histograms).

The original transport let the multiprocessing queues pickle both with
the default protocol, so coordinator time grew with the feature payload
size: every ``Transaction`` pickled as a 23-slot object graph, and
every ``FeatureSet`` as a slot dict holding eight 2 KiB HyperLogLog
register blobs -- dense even when nearly empty.

This module provides the explicit **binary** codec:

* :func:`encode_batch` / :func:`decode_batch` turn a transaction batch
  into one pre-serialized line block (the §2.1 "line of text" format
  with exact float round-tripping) -- one flat ``bytes`` per queue
  message instead of a pickled object list;
* :func:`pack_states` / :func:`unpack_states` pickle shard state with
  **protocol 5 out-of-band buffers** (PEP 574).  Every sketch exposes
  its contiguous payload via ``to_buffers()`` (HLL register blocks,
  packed histogram buckets); ``__reduce_ex__`` wraps those in
  :class:`pickle.PickleBuffer`, and the buffer callback collects them
  *without copying into the pickle stream*.  The payload shrinks
  further because mostly-empty register blocks encode sparsely.

Both codecs are exposed behind a tiny transport interface so the
coordinator and workers can A/B them (``--transport {pickle,binary}``
on the CLI); :class:`PickleTransport` is the original behavior.
"""

import pickle

from repro.observatory.transaction import Transaction

_LINE_SEP = b"\n"


def encode_batch(txns):
    """Encode a transaction batch as one newline-joined line block.

    Floats are serialized exactly (``repr``), so a decoded transaction
    is indistinguishable from the original to the window/decay logic.
    """
    return bytes(encode_batch_into(txns, bytearray()))


def encode_batch_into(txns, buf):
    """Encode a batch into the reusable bytearray *buf* and return it.

    The join-based encoder allocated one bytes object per transaction
    plus the joined block per batch; profiles showed that churn as the
    feeder's top allocator.  Growing a single persistent buffer in
    place keeps the batch encode at one amortized allocation: the
    bytearray retains its capacity across batches, so steady-state
    encoding allocates nothing but the line strings themselves.
    """
    del buf[:]
    for txn in txns:
        buf += txn.to_line(exact=True).encode("utf-8")
        buf += _LINE_SEP
    if buf:
        del buf[-1:]  # no trailing separator, same framing as join
    return buf


def decode_batch(data):
    """Decode a line block produced by :func:`encode_batch`."""
    if not data:
        return []
    if not isinstance(data, bytes):  # memoryview from out-of-band paths
        data = bytes(data)
    from_line = Transaction.from_line
    return [from_line(line) for line in data.decode("utf-8").split("\n")]


def pack_states(states):
    """Pickle shard state with protocol-5 out-of-band buffers.

    Returns ``(payload, buffers)``: *payload* is the pickle stream with
    every sketch's contiguous data excised, *buffers* the list of raw
    bytes-like objects (HLL register bytearrays are passed through
    as-is -- zero copies on the sending side).
    """
    buffers = []

    def grab(pickle_buffer):
        view = pickle_buffer.raw()
        # to_buffers() always hands over whole bytes/bytearray objects,
        # so the view's .obj is the original buffer; fall back to a
        # copy for anything more exotic.
        obj = view.obj
        buffers.append(obj if isinstance(obj, (bytes, bytearray))
                       else view.tobytes())

    payload = pickle.dumps(states, protocol=5, buffer_callback=grab)
    return payload, buffers


def unpack_states(payload, buffers):
    """Inverse of :func:`pack_states`."""
    return pickle.loads(payload, buffers=buffers)


class PickleTransport:
    """The original transport: queues pickle live object graphs."""

    name = "pickle"
    #: upstream direction runs over multiprocessing queues
    is_ring = False

    @staticmethod
    def pack_batch(txns):
        return list(txns)

    @staticmethod
    def unpack_batch(payload):
        return payload

    @staticmethod
    def pack_states(states):
        return states

    @staticmethod
    def unpack_states(payload):
        return payload


class BinaryTransport:
    """Line-block batches + protocol-5 out-of-band state buffers."""

    name = "binary"
    is_ring = False

    def __init__(self):
        #: persistent encode buffer, reused across batches
        self._buf = bytearray()

    def pack_batch(self, txns):
        # the queue copies the payload asynchronously (feeder thread),
        # so it gets an immutable snapshot of the reused buffer
        return bytes(encode_batch_into(txns, self._buf))

    @staticmethod
    def unpack_batch(payload):
        return decode_batch(payload)

    @staticmethod
    def pack_states(states):
        return pack_states(states)

    @staticmethod
    def unpack_states(payload):
        return unpack_states(*payload)


class RingTransport(BinaryTransport):
    """Binary codec over the shared-memory ring of
    :mod:`repro.observatory.ringbuf`.

    Same line-block batches and protocol-5 state buffers as
    ``binary``, but the upstream direction bypasses the
    multiprocessing queues entirely: ``pack_batch`` hands back the
    reused encode buffer *itself* (no bytes snapshot), because the
    ring sender copies it into the shared segment synchronously before
    the next batch is encoded.
    """

    name = "ring"
    is_ring = True

    def pack_batch(self, txns):
        return encode_batch_into(txns, self._buf)


TRANSPORTS = {
    PickleTransport.name: PickleTransport,
    BinaryTransport.name: BinaryTransport,
    RingTransport.name: RingTransport,
}


def get_transport(transport):
    """Resolve a transport name (or pass an instance through)."""
    if isinstance(transport, str):
        try:
            return TRANSPORTS[transport]()
        except KeyError:
            raise ValueError("unknown transport %r (choose from %s)"
                             % (transport, sorted(TRANSPORTS)))
    return transport
