"""Top-k tracker: Space-Saving cache + per-object feature statistics.

One :class:`TopKTracker` implements steps C and D of the Figure 1
pipeline for a single dataset: extract the key, run the Space-Saving
update, and fold the transaction into the live entry's
:class:`~repro.observatory.features.FeatureSet`.

"Each transaction ends up either being aggregated in statistics of a
particular DNS object from the SS cache, or being dropped in case the
corresponding object is not in the cache." (Section 2.3.)
"""

from repro.dnswire.psl import default_psl
from repro.observatory.features import FeatureSet
from repro.sketches.bloom import RotatingBloomFilter
from repro.sketches.spacesaving import SpaceSaving


class TopKTracker:
    """Track one dataset's Top-k objects and their traffic features.

    Parameters
    ----------
    spec:
        A :class:`~repro.observatory.keys.DatasetSpec`.
    tau:
        Space-Saving rate decay constant (seconds).
    use_bloom_gate:
        Enable the Section 2.2 Bloom-filter eviction gate.
    hll_precision / psl:
        Passed through to each object's :class:`FeatureSet`.
    """

    def __init__(self, spec, tau=300.0, use_bloom_gate=True,
                 hll_precision=8, psl=None, bloom_capacity=200_000,
                 bloom_rotate_interval=600.0):
        self.spec = spec
        gate = None
        if use_bloom_gate:
            gate = RotatingBloomFilter(
                capacity=bloom_capacity,
                rotate_interval=bloom_rotate_interval,
            )
        self.cache = SpaceSaving(capacity=spec.k, tau=tau, gate=gate)
        self._hll_precision = hll_precision
        self._psl = psl if psl is not None else default_psl()
        #: the specialized key extractor (PSL bound, memoized where
        #: the spec declares the key a function of one txn attribute)
        self._extract = spec.make_extractor(self._psl)
        #: batch form of the same extractor (txns -> key list)
        self._extract_batch = spec.make_batch_extractor(self._psl)
        #: transactions skipped by the dataset pre-filter
        self.filtered = 0
        #: transactions processed (offered to the SS cache)
        self.processed = 0

    def observe(self, txn, hashes=None):
        """Process one transaction; returns the live entry or None.

        *hashes* is an optional shared
        :class:`~repro.observatory.features.TxnHashes` (see there).
        """
        key = self._extract(txn)
        if key is None:
            self.filtered += 1
            return None
        self.processed += 1
        entry = self.cache.offer(key, txn.ts)
        if entry is None:
            return None
        if entry.state is None:
            entry.state = FeatureSet(self._hll_precision, self._psl)
        entry.state.update(txn, hashes)
        return entry

    def observe_batch(self, txns, hashes_list):
        """Process a window-aligned batch; returns transactions kept.

        Equivalent to :meth:`observe` per transaction (the Space-
        Saving updates happen in the same stream order), but key
        extraction runs as one batch call -- the memoized datasets
        amortize suffix matching to one dict hit per transaction --
        and the offer/update loop is tight with everything pre-bound.
        *hashes_list* aligns with *txns* (one shared
        :class:`~repro.observatory.features.TxnHashes` each).
        """
        keys = self._extract_batch(txns)
        offer = self.cache.offer
        hll_precision = self._hll_precision
        psl = self._psl
        kept = 0
        filtered = 0
        index = 0
        for key in keys:
            if key is None:
                filtered += 1
                index += 1
                continue
            txn = txns[index]
            entry = offer(key, txn.ts)
            if entry is not None:
                state = entry.state
                if state is None:
                    state = entry.state = FeatureSet(hll_precision, psl)
                state.update(txn, hashes_list[index])
                kept += 1
            index += 1
        self.filtered += filtered
        self.processed += index - filtered
        return kept

    def top(self, n=None):
        """Current top entries, heaviest first."""
        return self.cache.top(n)

    def reset_window_stats(self):
        """Clear per-object features, keeping the Top-k list (§2.4:
        'we keep the list of the most popular objects, but we clear
        their internal state used for traffic features')."""
        for entry in self.cache:
            if entry.state is not None:
                entry.state.clear()

    def capture_ratio(self):
        """Share of processed transactions landing on tracked objects."""
        return self.cache.capture_ratio()

    #: cumulative telemetry columns, differenced per window snapshot
    telemetry_deltas = (
        "filtered", "processed", "offered", "tracked_hits", "gated",
        "evictions", "gate_rotations", "gate_overflow_rotations",
    )

    def telemetry_row(self, now):
        """Platform-health sample for the ``_platform`` dataset: cache
        occupancy and churn, the eviction threshold, and -- when the
        Bloom gate is on -- its saturation signals.  Pure pull: the
        underlying counters are maintained by the sketches anyway, so
        sampling costs nothing on the per-transaction path."""
        cache = self.cache
        row = {
            "tracked": len(cache),
            "capacity": cache.capacity,
            "filtered": self.filtered,
            "processed": self.processed,
            "offered": cache.offered,
            "tracked_hits": cache.tracked_hits,
            "gated": cache.gated,
            "evictions": cache.evictions,
            "capture_ratio": round(cache.capture_ratio(), 4),
            "min_rate": round(cache.min_rate(now), 4)
            if now is not None else 0.0,
        }
        gate = cache.gate
        if gate is not None:
            row["gate_fill"] = round(gate.fill_ratio(), 4)
            row["gate_fpr"] = round(gate.approximate_fpr(), 6)
            row["gate_rotations"] = gate.rotations
            row["gate_overflow_rotations"] = gate.overflow_rotations
        return row

    def __len__(self):
        return len(self.cache)

    def __repr__(self):
        return "TopKTracker(%s, k=%d, tracked=%d)" % (
            self.spec.name, self.spec.k, len(self.cache)
        )
