"""Shared-memory SPSC ring: the zero-pickle shard ingest transport.

The sharded engine's upstream direction (coordinator -> worker) is a
classic single-producer/single-consumer stream: one feeder routes
batches to one worker, strictly in order.  The multiprocessing
``Queue`` that carried it pays, per message, a pickle of the payload,
a copy into the queue's internal buffer, a feeder-thread handoff and a
pipe write -- and the same again in reverse on the worker side.  For
pre-serialized line blocks (the binary codec already produces one flat
``bytes`` per batch) all of that is pure overhead.

This module replaces the queue with a byte ring over one
``multiprocessing.shared_memory`` segment per shard:

* the producer copies each frame **once**, straight into the shared
  segment (`memoryview` slice assignment -- no pickling, no feeder
  thread, no pipe);
* the consumer copies it once out of the segment and hands it to the
  batch decoder;
* head/tail are free-running 64-bit byte counters on their own cache
  lines, so the two sides never write the same line (no false
  sharing), and each side only ever *writes* its own counter.

Segment layout (all offsets fixed, see :data:`_HEADER_SIZE`)::

    offset   0  head  (u64 LE)   consumer cursor, bytes consumed
    offset  64  tail  (u64 LE)   producer cursor, bytes produced
    offset 128  flags (u8)       bit 0: producer closed (clean EOF)
    offset 192  data[capacity]   length-prefixed frames, byte-wrapped

    frame := length (u32 LE) | payload bytes
    occupancy := tail - head         (monotonic counters, never wrap)
    free      := capacity - occupancy

Frames wrap byte-wise: a frame whose end passes the segment boundary
is simply split across it (both the length prefix and the payload may
straddle), which keeps the arithmetic branch-free and means capacity
is usable to the last byte.

**Watermark blocking.**  A producer with ``free < frame size`` and a
consumer with ``occupancy == 0`` wait by spinning a few times and then
sleeping in sub-millisecond steps, re-checking three exits every
iteration: progress (the peer moved its counter), a deadline
(*timeout* -> :class:`RingTimeout`), and peer death (the *peer_alive*
callback -> :class:`RingPeerDead`).  A SIGKILLed peer therefore
surfaces as a named ``RuntimeError`` within one poll interval -- the
same fault contract the queue transport's reply timeout provides,
never a hang.

CPython's GIL orders each side's own operations; cross-process
visibility relies on the platform's store ordering (x86-TSO: the
payload store precedes the counter store in program order and is
observed in that order).  The consumer only reads bytes below ``tail``
and the producer only overwrites bytes below ``head``, so each cell
has exactly one writer at any time.
"""

import struct
import time
from multiprocessing import resource_tracker, shared_memory

_U64 = struct.Struct("<Q")
_U32 = struct.Struct("<I")

#: fixed header offsets -- one cache line per counter
_HEAD_OFF = 0
_TAIL_OFF = 64
_FLAGS_OFF = 128
_HEADER_SIZE = 192

_CLOSED_BIT = 0x01

#: blocking-wait tuning: spin a little, then sleep with gentle
#: exponential backoff.  The backoff matters most on core-starved
#: hosts: a consumer polling an empty ring at a fixed fine interval
#: steals timeslices from the very producer it is waiting on, while
#: capping the backoff keeps the worst-case wakeup latency bounded.
_SPIN_ROUNDS = 64
_SLEEP_S = 0.0002
_SLEEP_MAX_S = 0.002
_SLEEP_GROWTH = 1.5
#: peer liveness is polled at most this often while blocked (seconds)
_PEER_CHECK_S = 0.01


class RingError(RuntimeError):
    """Base class for ring transport failures."""


class RingTimeout(RingError):
    """A blocking ring operation exceeded its timeout."""


class RingPeerDead(RingError):
    """The process on the other side of the ring died mid-stream."""


class RingHandle:
    """Picklable descriptor a worker uses to attach to an existing ring."""

    __slots__ = ("name", "capacity")

    def __init__(self, name, capacity):
        self.name = name
        self.capacity = capacity

    def __repr__(self):
        return "RingHandle(%r, capacity=%d)" % (self.name, self.capacity)


class SpscRing:
    """Single-producer/single-consumer byte ring over shared memory.

    Create with :meth:`create` on the producing side, attach with
    :meth:`attach` (via the :attr:`handle`) on the consuming side.
    Either side may call :meth:`close`; only the creator should
    :meth:`unlink` (idempotent, and implied by the creator's
    ``close``).
    """

    def __init__(self, shm, capacity, owner):
        self._shm = shm
        self.capacity = capacity
        self._owner = owner
        self._buf = shm.buf
        self._data = shm.buf[_HEADER_SIZE:_HEADER_SIZE + capacity]
        self._closed = False

    # -- lifecycle -----------------------------------------------------

    @classmethod
    def create(cls, capacity):
        """Allocate a fresh ring of *capacity* data bytes."""
        capacity = int(capacity)
        if capacity < 8:
            raise ValueError("ring capacity must be >= 8 bytes")
        shm = shared_memory.SharedMemory(
            create=True, size=_HEADER_SIZE + capacity)
        shm.buf[:_HEADER_SIZE] = bytes(_HEADER_SIZE)
        return cls(shm, capacity, owner=True)

    @classmethod
    def attach(cls, handle):
        """Attach to the ring described by *handle* (consumer side).

        Registration with the resource tracker is suppressed for the
        attaching process: the creator owns cleanup, and a tracker
        that believes it owns an attached segment would unlink it
        early or log spurious leak warnings when this process exits
        (``SharedMemory(name=...)`` registers unconditionally before
        Python 3.13's ``track=False``).
        """
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            shm = shared_memory.SharedMemory(name=handle.name)
        finally:
            resource_tracker.register = original_register
        return cls(shm, handle.capacity, owner=False)

    @property
    def handle(self):
        return RingHandle(self._shm.name, self.capacity)

    def close(self):
        """Release this side's mapping; the creator also unlinks."""
        if self._closed:
            return
        self._closed = True
        # memoryview slices keep the mmap alive; drop them first
        self._data.release()
        self._buf = None
        self._data = None
        self._shm.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    # -- counters ------------------------------------------------------

    def _head(self):
        return _U64.unpack_from(self._buf, _HEAD_OFF)[0]

    def _tail(self):
        return _U64.unpack_from(self._buf, _TAIL_OFF)[0]

    def occupancy(self):
        """Bytes currently buffered (frames + their length prefixes)."""
        return self._tail() - self._head()

    def fill(self):
        """Occupancy as a fraction of capacity, for telemetry gauges."""
        return self.occupancy() / self.capacity

    def close_write(self):
        """Producer-side clean EOF: consumers drain, then read None."""
        self._buf[_FLAGS_OFF] |= _CLOSED_BIT

    @property
    def write_closed(self):
        return bool(self._buf[_FLAGS_OFF] & _CLOSED_BIT)

    # -- producer side -------------------------------------------------

    def max_payload(self):
        """Largest payload a single frame can carry."""
        return self.capacity - _U32.size

    def try_write(self, payload):
        """Write one frame if space permits; False when it would block."""
        return self.try_write_parts((payload,))

    def try_write_parts(self, parts):
        """Write one frame whose payload is the concatenation of
        *parts* (each bytes-like), copied straight into the segment --
        the caller never has to join them first."""
        total = 0
        for part in parts:
            total += len(part)
        need = _U32.size + total
        if need > self.capacity:
            raise ValueError(
                "payload of %d bytes exceeds ring capacity %d "
                "(raise ring_bytes)" % (total, self.capacity))
        head = self._head()
        tail = self._tail()
        if self.capacity - (tail - head) < need:
            return False
        self._put_bytes(tail, _U32.pack(total))
        position = tail + _U32.size
        for part in parts:
            self._put_bytes(position, part)
            position += len(part)
        _U64.pack_into(self._buf, _TAIL_OFF, tail + need)
        return True

    def write(self, payload, timeout=None, peer_alive=None):
        """Write one frame, blocking while the ring is too full.

        Raises :class:`RingTimeout` after *timeout* seconds without
        enough free space, or :class:`RingPeerDead` as soon as
        *peer_alive()* (checked while blocked) returns falsy.
        """
        self.write_parts((payload,), timeout, peer_alive)

    def write_parts(self, parts, timeout=None, peer_alive=None):
        """Blocking multi-part variant of :meth:`write`."""
        if self.try_write_parts(parts):
            return
        self._block(lambda: self.try_write_parts(parts), timeout,
                    peer_alive, "write (ring full)")

    def _put_bytes(self, position, data):
        """Copy *data* into the data region at free-running *position*,
        wrapping byte-wise at the segment boundary."""
        start = position % self.capacity
        end = start + len(data)
        if end <= self.capacity:
            self._data[start:end] = data
        else:
            cut = self.capacity - start
            self._data[start:] = data[:cut]
            self._data[:end - self.capacity] = data[cut:]

    # -- consumer side -------------------------------------------------

    def try_read(self):
        """Read one frame if available.

        Returns the payload ``bytes``, ``None`` when the ring is empty
        and the producer closed it, or ``False`` when empty but still
        open (would block).
        """
        head = self._head()
        tail = self._tail()
        if tail == head:
            return None if self.write_closed else False
        length = _U32.unpack(self._get_bytes(head, _U32.size))[0]
        payload = self._get_bytes(head + _U32.size, length)
        _U64.pack_into(self._buf, _HEAD_OFF, head + _U32.size + length)
        return payload

    def read(self, timeout=None, peer_alive=None):
        """Read one frame, blocking while the ring is empty.

        Returns the payload, or ``None`` on clean producer EOF.
        Raises :class:`RingTimeout` / :class:`RingPeerDead` like
        :meth:`write`.
        """
        result = self.try_read()
        if result is not False:
            return result
        out = []

        def ready():
            got = self.try_read()
            if got is False:
                return False
            out.append(got)
            return True

        self._block(ready, timeout, peer_alive, "read (ring empty)")
        return out[0]

    def _get_bytes(self, position, length):
        start = position % self.capacity
        end = start + length
        if end <= self.capacity:
            return bytes(self._data[start:end])
        cut = self.capacity - start
        return bytes(self._data[start:]) + \
            bytes(self._data[:end - self.capacity])

    # -- blocking core -------------------------------------------------

    def _block(self, attempt, timeout, peer_alive, what):
        """Spin-then-sleep until *attempt()* succeeds, with deadline
        and peer-death exits.  The watermark protocol in one place."""
        for _ in range(_SPIN_ROUNDS):
            if attempt():
                return
        deadline = None if timeout is None else time.monotonic() + timeout
        next_peer_check = 0.0
        sleep_s = _SLEEP_S
        while True:
            if attempt():
                return
            now = time.monotonic()
            if peer_alive is not None and now >= next_peer_check:
                if not peer_alive():
                    raise RingPeerDead(
                        "ring peer died during %s" % what)
                next_peer_check = now + _PEER_CHECK_S
            if deadline is not None and now >= deadline:
                raise RingTimeout(
                    "ring %s timed out after %ss" % (what, timeout))
            time.sleep(sleep_s)
            if sleep_s < _SLEEP_MAX_S:
                sleep_s = min(sleep_s * _SLEEP_GROWTH, _SLEEP_MAX_S)


# -- shard-protocol endpoints ------------------------------------------
#
# The coordinator/worker protocol of repro.observatory.sharded speaks
# tagged tuples: ("batch", payload), ("cut", ts), ("finish",).  These
# two wrappers frame that protocol over a ring while keeping the
# queue-shaped .put()/.get() surface, so the coordinator's dispatch
# loop and the worker's receive loop are transport-agnostic.

_TAG_BATCH = 0x01
_TAG_CUT = 0x02
_TAG_FINISH = 0x03

_CUT_TS = struct.Struct("<d")


class RingSender:
    """Producer endpoint with the upstream queue's ``put`` surface.

    Counts frames, bytes and watermark stalls for the ``_platform``
    telemetry (ring occupancy and stall time are the ingest-backpressure
    signal the queue transport could only expose as ``qsize``).
    """

    def __init__(self, ring, name="ring", timeout=None, peer_alive=None):
        self.ring = ring
        self.name = name
        self.timeout = timeout
        self.peer_alive = peer_alive
        #: telemetry counters (cumulative; snapshot as deltas)
        self.frames = 0
        self.bytes_written = 0
        self.stalls = 0
        self.stall_seconds = 0.0

    def put(self, message):
        tag = message[0]
        if tag == "batch":
            # the tag byte and the (reusable) encode buffer go down as
            # separate parts: the payload is copied exactly once, from
            # the encoder's buffer straight into the shared segment
            parts = (b"\x01", message[1])
        elif tag == "cut":
            parts = (bytes((_TAG_CUT,)) + _CUT_TS.pack(message[1]),)
        elif tag == "finish":
            parts = (bytes((_TAG_FINISH,)),)
        else:
            raise ValueError("unknown ring message tag %r" % (tag,))
        ring = self.ring
        if not ring.try_write_parts(parts):
            started = time.monotonic()
            self.stalls += 1
            try:
                ring.write_parts(parts, timeout=self.timeout,
                                 peer_alive=self.peer_alive)
            except RingError as exc:
                raise RingError("%s: %s" % (self.name, exc)) from None
            finally:
                self.stall_seconds += time.monotonic() - started
        self.frames += 1
        for part in parts:
            self.bytes_written += len(part)

    def telemetry_row(self):
        """Cumulative link sample; the registry differences the
        counter columns per window (``deltas=RING_LINK_DELTAS``)."""
        return {
            "ring_fill": round(self.ring.fill(), 4),
            "frames": self.frames,
            "bytes": self.bytes_written,
            "stalls": self.stalls,
            "stall_ms": round(self.stall_seconds * 1000.0, 3),
        }

    # queue-surface compatibility: the coordinator tears every
    # upstream channel down the same way
    def cancel_join_thread(self):
        pass

    def close(self):
        self.ring.close()


#: cumulative columns in RingSender.telemetry_row, differenced per window
RING_LINK_DELTAS = ("frames", "bytes", "stalls", "stall_ms")


class RingReceiver:
    """Consumer endpoint with the worker queue's ``get`` surface."""

    def __init__(self, ring, peer_alive=None):
        self.ring = ring
        self.peer_alive = peer_alive

    @classmethod
    def attach(cls, handle, peer_alive=None):
        return cls(SpscRing.attach(handle), peer_alive=peer_alive)

    def get(self):
        frame = self.ring.read(peer_alive=self.peer_alive)
        if frame is None:
            # clean producer EOF without a protocol finish -- surface
            # as end-of-stream so the worker flushes and exits
            return ("finish",)
        tag = frame[0]
        if tag == _TAG_BATCH:
            return ("batch", frame[1:])
        if tag == _TAG_CUT:
            return ("cut", _as_window_ts(_CUT_TS.unpack_from(frame, 1)[0]))
        if tag == _TAG_FINISH:
            return ("finish",)
        raise ValueError("unknown ring frame tag 0x%02x" % tag)

    def close(self):
        self.ring.close()


def _as_window_ts(value):
    """Window timestamps travel as doubles; integral ones come back as
    ints so worker-side window starts stay on the exact integer grid
    the queue transports preserve."""
    i = int(value)
    return i if i == value else value
