"""The ``_encrypted`` channel-feature dataset: what a blind sensor sees.

As resolvers move their upstream traffic to DoH/DoT, a passive sensor
on the encrypted path loses the DNS payload -- qname, qtype, rcode,
record data -- and keeps only what the channel itself leaks: message
sizes (after RFC 8467-style block padding plus TLS framing overhead)
and timing.  "Encrypted DNS => Privacy?  A Traffic Analysis
Perspective" (Siby et al.) shows those size/timing features still
carry signal; this module is the Observatory-side half of that story.

Two pieces:

* :func:`encrypt_observation` -- the sensor-side blinding transform.
  It maps a full :class:`~repro.observatory.transaction.Transaction`
  to the ciphertext-only view: payload fields zeroed, ``response_size``
  replaced by the padded on-wire size, and the ``source`` field tagged
  ``!doh:``/``!dot:`` so the pipeline can divert the record without
  changing the frozen 18-field line format (blinded lines replay from
  disk like any other).

* :class:`EncryptedChannelAggregator` -- the pipeline-side consumer.
  It folds blinded transactions into per-window, per-(transport,
  resolver) size/timing accumulators built from integers only, so a
  sharded run merges worker states exactly and the ``_encrypted``
  series -- ``#stats`` trailer included -- is byte-identical to a
  single process (the same accumulator/scorer promise
  :mod:`repro.detect` makes for ``_detector``).

The dataset rides the normal TSV/segments/serving chain under the
reserved name :data:`ENCRYPTED_DATASET`.
"""

ENCRYPTED_DATASET = "_encrypted"

#: per-message framing + TLS record overhead added on the wire, by
#: transport: DoT is TLS framing over the padded DNS message; DoH adds
#: HTTP/2 frame and header-block bytes on top
TRANSPORT_OVERHEAD = {"dot": 29, "doh": 92}

#: transports :func:`encrypt_observation` accepts (plain never blinds)
ENCRYPTED_TRANSPORTS = tuple(sorted(TRANSPORT_OVERHEAD))

#: marker prefix on a blinded transaction's ``source`` field; the hot
#: path tests ``txn.source[:1] == "!"`` to divert without parsing
BLIND_MARK = "!"


def padded_size(size, block):
    """Pad *size* up to the next multiple of *block* (RFC 8467-style)."""
    block = int(block)
    if block <= 1:
        return int(size)
    return -(-int(size) // block) * block


def is_blinded(txn):
    """True when *txn* is a ciphertext-only observation."""
    return txn.source[:1] == BLIND_MARK


def blind_transport(txn):
    """Transport tag of a blinded transaction (``"doh"``/``"dot"``)."""
    return txn.source[1:].partition(":")[0]


def encrypt_observation(txn, transport, padding_block=128):
    """Return the ciphertext-only view of *txn* on *transport*.

    Keeps the channel-visible facts -- timestamp, endpoint addresses,
    whether a response came back, its delay, the IP TTL on the
    response packet -- and blinds everything the encryption hides:
    qname, qtype, rcode, header flags, section counts and record data
    all reset to their empty values.  ``response_size`` becomes the
    padded on-wire size (0 for unanswered queries, where no response
    record crossed the channel at all).

    The result round-trips :meth:`Transaction.to_line`, so a blinded
    stream replays from disk exactly like a plaintext one.
    """
    from repro.observatory.transaction import Transaction

    try:
        overhead = TRANSPORT_OVERHEAD[transport]
    except KeyError:
        raise ValueError("unknown encrypted transport %r" % (transport,))
    wire = 0
    if txn.answered:
        wire = padded_size(txn.response_size, padding_block) + overhead
    return Transaction(
        ts=txn.ts,
        resolver_ip=txn.resolver_ip,
        server_ip=txn.server_ip,
        source="%s%s:%s" % (BLIND_MARK, transport, txn.source),
        qname="",
        qtype=0,
        rcode=None,
        answered=txn.answered,
        delay_ms=txn.delay_ms,
        observed_ttl=txn.observed_ttl,
        response_size=wire,
    )


class EncryptedWindowState:
    """One shard's ``_encrypted`` accumulators for one window.

    Shipped from shard workers to the coordinator over the normal
    state transport (pickle/binary/ring), so the payload is a plain
    dict of integer lists -- nothing transport-specific.
    """

    __slots__ = ("start_ts", "payload")

    dataset = ENCRYPTED_DATASET

    def __init__(self, start_ts, payload):
        self.start_ts = start_ts
        #: ``{"<transport>|<resolver_ip>": [queries, answered, bytes,
        #: size_min, size_max, delay_us_sum, delay_us_min,
        #: delay_us_max]}``
        self.payload = payload

    def __repr__(self):  # pragma: no cover - debug aid
        return "EncryptedWindowState(%s, %d keys)" % (
            self.start_ts, len(self.payload))


# accumulator slot indices (integer-only, order-invariant merges)
_QUERIES, _ANSWERED, _BYTES = 0, 1, 2
_SIZE_MIN, _SIZE_MAX = 3, 4
_DELAY_SUM, _DELAY_MIN, _DELAY_MAX = 5, 6, 7

_EMPTY = (0, 0, 0, None, None, 0, None, None)


def _merge_slot(acc, other):
    acc[_QUERIES] += other[_QUERIES]
    acc[_ANSWERED] += other[_ANSWERED]
    acc[_BYTES] += other[_BYTES]
    for idx in (_SIZE_MIN, _DELAY_MIN):
        if other[idx] is not None:
            acc[idx] = other[idx] if acc[idx] is None \
                else min(acc[idx], other[idx])
    for idx in (_SIZE_MAX, _DELAY_MAX):
        if other[idx] is not None:
            acc[idx] = other[idx] if acc[idx] is None \
                else max(acc[idx], other[idx])
    acc[_DELAY_SUM] += other[_DELAY_SUM]


#: ``_encrypted`` row schema (shared by per-resolver and summary rows)
ENCRYPTED_COLUMNS = [
    "queries", "answered", "unans", "bytes", "size_min", "size_max",
    "size_mean", "delay_ms_mean", "delay_ms_min", "delay_ms_max",
    "resolvers",
]


class EncryptedChannelAggregator:
    """Fold blinded transactions into per-window channel features.

    One instance per pipeline (or per shard worker); the window
    manager calls :meth:`observe`/:meth:`observe_batch` with blinded
    transactions only, then either :meth:`cut` (single process:
    emit rows) or :meth:`take_state` (shard worker: ship the raw
    accumulators).  The coordinator :meth:`absorb`-s worker states
    and cuts once -- because every accumulator field is an integer
    sum/min/max, the merged emit is byte-identical to a
    single-process run over the same stream.
    """

    def __init__(self):
        self._slots = {}

    # -- ingest ---------------------------------------------------------

    def observe(self, txn):
        key = "%s|%s" % (blind_transport(txn), txn.resolver_ip)
        acc = self._slots.get(key)
        if acc is None:
            acc = list(_EMPTY)
            self._slots[key] = acc
        acc[_QUERIES] += 1
        if txn.answered:
            acc[_ANSWERED] += 1
            size = txn.response_size
            acc[_BYTES] += size
            if acc[_SIZE_MIN] is None or size < acc[_SIZE_MIN]:
                acc[_SIZE_MIN] = size
            if acc[_SIZE_MAX] is None or size > acc[_SIZE_MAX]:
                acc[_SIZE_MAX] = size
            delay_us = int(round(txn.delay_ms * 1000.0))
            acc[_DELAY_SUM] += delay_us
            if acc[_DELAY_MIN] is None or delay_us < acc[_DELAY_MIN]:
                acc[_DELAY_MIN] = delay_us
            if acc[_DELAY_MAX] is None or delay_us > acc[_DELAY_MAX]:
                acc[_DELAY_MAX] = delay_us

    def observe_batch(self, txns):
        observe = self.observe
        for txn in txns:
            observe(txn)

    # -- shard protocol -------------------------------------------------

    def take_state(self, start_ts):
        """Detach this window's accumulators as a shippable state."""
        payload = self._slots
        self._slots = {}
        return EncryptedWindowState(start_ts, payload)

    def absorb(self, state):
        """Merge a worker's :class:`EncryptedWindowState` (exact)."""
        for key, other in state.payload.items():
            acc = self._slots.get(key)
            if acc is None:
                self._slots[key] = list(other)
            else:
                _merge_slot(acc, other)

    # -- emit -----------------------------------------------------------

    def cut(self, start_ts, end_ts):
        """Emit this window's rows and reset for the next window.

        Row order is deterministic regardless of observation order:
        per-transport summary rows (``doh``, ``dot``) first, then
        ``<transport>.<resolver_ip>`` rows sorted by key -- so sharded
        and single-process output agree byte for byte.
        """
        slots = self._slots
        self._slots = {}
        if not slots:
            return []
        summaries = {}
        for key, acc in slots.items():
            transport = key.partition("|")[0]
            summary, resolvers = summaries.get(transport, (None, 0))
            if summary is None:
                summary = list(_EMPTY)
            _merge_slot(summary, acc)
            summaries[transport] = (summary, resolvers + 1)
        rows = []
        for transport in sorted(summaries):
            summary, resolvers = summaries[transport]
            rows.append((transport, self._row(summary, resolvers)))
        for key in sorted(slots):
            transport, _, resolver_ip = key.partition("|")
            rows.append(("%s.%s" % (transport, resolver_ip),
                         self._row(slots[key], 1)))
        return rows

    def seen(self):
        """Blinded transactions accumulated so far this window."""
        return sum(acc[_QUERIES] for acc in self._slots.values())

    @staticmethod
    def _row(acc, resolvers):
        answered = acc[_ANSWERED]
        row = {
            "queries": acc[_QUERIES],
            "answered": answered,
            "unans": acc[_QUERIES] - answered,
            "bytes": acc[_BYTES],
            "size_min": acc[_SIZE_MIN] or 0,
            "size_max": acc[_SIZE_MAX] or 0,
            "size_mean": (acc[_BYTES] / answered) if answered else 0,
            "delay_ms_mean": (acc[_DELAY_SUM] / answered / 1000.0)
            if answered else 0,
            "delay_ms_min": (acc[_DELAY_MIN] or 0) / 1000.0,
            "delay_ms_max": (acc[_DELAY_MAX] or 0) / 1000.0,
            "resolvers": resolvers,
        }
        return row
