"""Platform self-telemetry: instrument registry + per-window snapshots.

The paper sells DNS Observatory as an *operated platform* (§2:
sustained 200 k qps, months of uptime), which means the platform's own
health -- sketch saturation, Bloom-gate churn, shard queue depth,
flush latency -- is itself a first-class time series.  The
heavy-hitter DDoS-detection literature (Afek et al., *Efficient
Distinct Heavy Hitters for DNS DDoS Attack Detection*; Ozery et al.,
*Information-Based Heavy Hitters for Real-Time DNS Data Exfiltration
Detection*) goes further: sketch-health signals such as fill-ratio
spikes, eviction churn and capture-ratio collapse *are* the
attack-detection signal.  So telemetry snapshots are emitted once per
window as a ``_platform`` meta-dataset through the ordinary
``WindowDump -> write_tsv`` path, flowing through the same minutely ->
decaminutely -> ... aggregation chain and report tooling as paper
data.

Design constraints:

* **Zero cost when disabled.**  The ingest hot paths never branch on
  telemetry per transaction.  Instruments are only touched at window
  boundaries (once per flush), and a disabled registry
  (:data:`NULL`) hands out shared no-op instruments, so call sites
  need no ``if`` guards of their own.
* **Pull over push.**  The sketches already keep their own stream
  accounting (``SpaceSaving.offered/gated/evictions``, Bloom fill
  ratios); the registry *samples* them via registered callbacks at
  snapshot time instead of instrumenting every update.  Cumulative
  sources are differenced per snapshot (``deltas=``) so every
  ``_platform`` row reads as per-window activity and aggregates
  cleanly up the granularity chain.
"""

from repro.sketches.histogram import LogHistogram

#: the reserved meta-dataset name platform snapshots are written under
PLATFORM_DATASET = "_platform"


class Counter:
    """Monotonic event counter; snapshots emit the delta since the
    previous snapshot, so ``_platform`` rows carry per-window counts."""

    __slots__ = ("value", "_last")

    def __init__(self):
        self.value = 0
        self._last = 0

    def inc(self, n=1):
        self.value += n

    def delta(self):
        """Per-snapshot increment; advances the snapshot watermark."""
        d = self.value - self._last
        self._last = self.value
        return d


class Gauge:
    """Last-value-wins instrument (queue depth, fill ratio, ...)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value):
        self.value = value


class Timing:
    """Duration histogram (milliseconds), drained at each snapshot.

    Reuses :class:`~repro.sketches.histogram.LogHistogram` so a window
    with thousands of flushes still snapshots in O(buckets).
    """

    __slots__ = ("_hist",)

    def __init__(self):
        self._hist = LogHistogram(min_value=1e-3)

    def observe(self, seconds):
        """Record one duration (wall-clock seconds)."""
        self._hist.add(seconds * 1000.0)

    def drain(self, name):
        """Flatten into ``{column: value}`` and reset for the next
        window: sample count, mean, p95 and max in milliseconds."""
        hist = self._hist
        row = {
            name + "_n": hist.count,
            name + "_ms_mean": round(hist.mean, 3),
            name + "_ms_p95": round(hist.quantile(0.95), 3),
            name + "_ms_max": round(hist.max, 3),
        }
        hist.clear()
        return row


class Ratio:
    """Hit/total ratio instrument, emitted per snapshot window.

    Serves the query layer's hit-ratio columns (store LRU hits, HTTP
    conditional-request 304s): callers mark every event and the hits
    among them; each snapshot emits the ratio over the window and
    resets, so the ``_platform`` row reads as per-window behaviour
    rather than a lifetime average that stops moving.
    """

    __slots__ = ("hits", "total", "_last_hits", "_last_total")

    def __init__(self):
        self.hits = 0
        self.total = 0
        self._last_hits = 0
        self._last_total = 0

    def mark(self, hit):
        """Record one event; *hit* says whether it counts as a hit."""
        self.total += 1
        if hit:
            self.hits += 1

    def drain(self, name):
        """Per-snapshot ``{name: ratio, name_n: events}`` row slice."""
        hits = self.hits - self._last_hits
        total = self.total - self._last_total
        self._last_hits = self.hits
        self._last_total = self.total
        return {name: round(hits / total, 4) if total else 0.0,
                name + "_n": total}


class _NullInstrument:
    """Shared do-nothing instrument handed out by :class:`NullTelemetry`."""

    __slots__ = ()

    def inc(self, n=1):
        pass

    def set(self, value):
        pass

    def observe(self, seconds):
        pass

    def mark(self, hit):
        pass


NULL_INSTRUMENT = _NullInstrument()


class Telemetry:
    """Instrument registry grouped by *component* (one TSV row each).

    Components are free-form dotted keys (``tracker.srvip``,
    ``shard0.window``, ``coordinator``); the per-window snapshot
    yields one ``(component, {column: value})`` row per component,
    which :class:`~repro.observatory.window.WindowManager` wraps into
    a ``_platform`` :class:`WindowDump`.
    """

    enabled = True

    def __init__(self):
        #: component -> {name: instrument}, insertion-ordered
        self._components = {}
        #: [component, sampler(now) -> dict, delta column set, last dict]
        self._samplers = []

    # -- instrument factories (idempotent per (component, name)) -------

    def counter(self, component, name):
        return self._instrument(component, name, Counter)

    def gauge(self, component, name):
        return self._instrument(component, name, Gauge)

    def timing(self, component, name):
        return self._instrument(component, name, Timing)

    def ratio(self, component, name):
        return self._instrument(component, name, Ratio)

    def _instrument(self, component, name, cls):
        row = self._components.setdefault(component, {})
        instrument = row.get(name)
        if instrument is None:
            instrument = row[name] = cls()
        elif not isinstance(instrument, cls):
            raise TypeError("instrument %s.%s already registered as %s"
                            % (component, name,
                               type(instrument).__name__))
        return instrument

    def register(self, component, sampler, deltas=()):
        """Register a pull-sampler: ``sampler(now) -> {column: value}``
        called at every snapshot.  Columns named in *deltas* are
        cumulative at the source and differenced per snapshot."""
        self._samplers.append([component, sampler, frozenset(deltas), {}])

    def snapshot(self, now=None):
        """Collect one row per component: counters as per-window
        deltas, gauges as current values, timings drained, samplers
        invoked with *now* (the window end, virtual seconds)."""
        rows = {}
        for component, instruments in self._components.items():
            out = rows.setdefault(component, {})
            for name, instrument in instruments.items():
                if isinstance(instrument, Counter):
                    out[name] = instrument.delta()
                elif isinstance(instrument, Gauge):
                    out[name] = instrument.value
                else:
                    out.update(instrument.drain(name))
        for entry in self._samplers:
            component, sampler, deltas, last = entry
            out = rows.setdefault(component, {})
            for column, value in sampler(now).items():
                if column in deltas:
                    out[column] = value - last.get(column, 0)
                    last[column] = value
                else:
                    out[column] = value
        return list(rows.items())


class NullTelemetry:
    """Disabled registry: every factory returns the shared no-op
    instrument, sampler registration is dropped, snapshots are empty.
    Hot paths hold references obtained at construction time, so the
    disabled configuration costs nothing per transaction and one dead
    attribute check per window flush."""

    enabled = False

    __slots__ = ()

    def counter(self, component, name):
        return NULL_INSTRUMENT

    def gauge(self, component, name):
        return NULL_INSTRUMENT

    def timing(self, component, name):
        return NULL_INSTRUMENT

    def ratio(self, component, name):
        return NULL_INSTRUMENT

    def register(self, component, sampler, deltas=()):
        pass

    def snapshot(self, now=None):
        return []


#: process-wide disabled registry (stateless, safe to share)
NULL = NullTelemetry()


def resolve_telemetry(value):
    """Normalize a ``telemetry=`` argument: falsy -> the shared no-op
    registry, ``True`` -> a fresh :class:`Telemetry`, and an existing
    registry instance passes through (shared-registry wiring)."""
    if not value:
        return NULL
    if value is True:
        return Telemetry()
    return value


def union_columns(rows):
    """Ordered union of the column names of ``(key, row_dict)`` pairs,
    preserving first-seen order -- the ``_platform`` TSV header."""
    columns = []
    seen = set()
    for _, row in rows:
        for column in row:
            if column not in seen:
                seen.add(column)
                columns.append(column)
    return columns
