"""The transaction summary record (output of preprocessing, §2.1).

"We retain only the relevant pieces of information, e.g., resolver and
nameserver IP address, response delay, DNS header contents, queried
name, and select DNS record data.  Our goal is to make the data easier
to process in the next steps, given the data volume."

A :class:`Transaction` is exactly that: one UDP/53 query-response pair
(or an unanswered query) reduced to the fields the Section 2.3 feature
set needs.  Privacy-sensitive EDNS0 payload (cookies, client subnet)
is already gone at this point (§2.5), and the raw packet timestamps
have been collapsed into a single response delay.

The paper "summarize[s] each transaction with a line of text";
:meth:`Transaction.to_line` / :meth:`Transaction.from_line` implement
that serialization, so streams can be replayed from disk.
"""

from repro.dnswire.constants import QTYPE, RCODE
from repro.dnswire.name import count_labels, normalize_name

_FIELD_SEP = "\t"
_LIST_SEP = ","
_NONE = "-"


class Transaction:
    """One summarized DNS transaction between a resolver and a nameserver.

    Attributes mirror the information DNS Observatory retains after
    preprocessing; everything else from the raw packets is dropped.
    """

    __slots__ = (
        "ts", "resolver_ip", "server_ip", "source", "qname", "qtype",
        "rcode", "answered", "aa", "tc", "edns_do", "has_rrsig",
        "delay_ms", "observed_ttl", "response_size",
        "answer_count", "authority_ns_count", "additional_count",
        "answer_ttls", "ns_ttls", "answer_ips", "cname_targets",
        "ns_names",
    )

    def __init__(self, ts, resolver_ip, server_ip, qname, qtype,
                 rcode=None, answered=True, aa=False, tc=False,
                 edns_do=False, has_rrsig=False, delay_ms=0.0,
                 observed_ttl=64, response_size=0, answer_count=0,
                 authority_ns_count=0, additional_count=0,
                 answer_ttls=(), ns_ttls=(), answer_ips=(),
                 cname_targets=(), ns_names=(), source="src0"):
        #: virtual timestamp of the query (seconds)
        self.ts = float(ts)
        #: recursive resolver IP address (the sensor's vantage point)
        self.resolver_ip = resolver_ip
        #: authoritative nameserver IP address
        self.server_ip = server_ip
        #: SIE contributor/channel identifier (the *sources* feature)
        self.source = source
        #: queried name, canonical form
        self.qname = normalize_name(qname)
        #: query type (int, compare with :class:`QTYPE`)
        self.qtype = int(qtype)
        #: response code, or None when unanswered
        self.rcode = None if rcode is None else int(rcode)
        #: False when no response packet was observed
        self.answered = bool(answered)
        #: Authoritative Answer flag of the response
        self.aa = bool(aa)
        #: Truncated flag of the response
        self.tc = bool(tc)
        #: EDNS0 DO flag (query/response pair requested DNSSEC)
        self.edns_do = bool(edns_do)
        #: response carries RRSIG records in any section
        self.has_rrsig = bool(has_rrsig)
        #: server response delay in milliseconds
        self.delay_ms = float(delay_ms)
        #: IP TTL observed on the response packet (hop inference input)
        self.observed_ttl = int(observed_ttl)
        #: response packet size in bytes
        self.response_size = int(response_size)
        #: records in the ANSWER section
        self.answer_count = int(answer_count)
        #: NS records in the AUTHORITY section
        self.authority_ns_count = int(authority_ns_count)
        #: records in ADDITIONAL, excluding the EDNS0 OPT
        self.additional_count = int(additional_count)
        #: DNS TTL values of ANSWER records
        self.answer_ttls = tuple(answer_ttls)
        #: DNS TTL values of AUTHORITY NS records
        self.ns_ttls = tuple(ns_ttls)
        #: IPv4/IPv6 address strings returned in A/AAAA answers
        self.answer_ips = tuple(answer_ips)
        #: CNAME targets in the answer chain (select record data)
        self.cname_targets = tuple(cname_targets)
        #: NS hostnames from the AUTHORITY section (select record data;
        #: the Section 4.2 NS-change detection relies on these)
        self.ns_names = tuple(ns_names)

    # -- derived views used by feature extraction ----------------------

    @property
    def noerror(self):
        return self.answered and self.rcode == RCODE.NOERROR

    @property
    def nxdomain(self):
        return self.answered and self.rcode == RCODE.NXDOMAIN

    @property
    def refused(self):
        return self.answered and self.rcode == RCODE.REFUSED

    @property
    def servfail(self):
        return self.answered and self.rcode == RCODE.SERVFAIL

    @property
    def has_answer_data(self):
        """NoError with a non-empty ANSWER section (ok_ans)."""
        return self.noerror and self.answer_count > 0

    @property
    def has_delegation(self):
        """NoError with NS records in AUTHORITY (ok_ns)."""
        return self.noerror and self.authority_ns_count > 0

    @property
    def nodata(self):
        """NoError with neither answer nor delegation (ok_nil / NoData)."""
        return self.noerror and self.answer_count == 0 \
            and self.authority_ns_count == 0

    @property
    def qdots(self):
        """Number of QNAME labels (the *qdots* feature)."""
        return count_labels(self.qname)

    def qtype_name(self):
        return QTYPE.name_of(self.qtype)

    # -- line serialization (§2.1 "summarize each transaction with a
    #    line of text") ------------------------------------------------

    def to_line(self, exact=False):
        """Serialize to a single TSV line.

        With ``exact=True`` the two float fields (timestamp, delay) use
        ``repr`` -- the shortest string that round-trips the exact
        float -- instead of the human-friendly fixed precision.  The
        sharded binary transport needs this: a worker re-parses the
        line, and a microsecond-truncated timestamp would perturb the
        forward-decay rates the merge compares across shards.
        """
        fields = [
            repr(self.ts) if exact else "%.6f" % self.ts,
            self.resolver_ip,
            self.server_ip,
            self.source,
            self.qname or ".",
            str(self.qtype),
            _NONE if self.rcode is None else str(self.rcode),
            "1" if self.answered else "0",
            "%d%d%d%d" % (self.aa, self.tc, self.edns_do, self.has_rrsig),
            repr(self.delay_ms) if exact else "%.3f" % self.delay_ms,
            str(self.observed_ttl),
            str(self.response_size),
            "%d/%d/%d" % (self.answer_count, self.authority_ns_count,
                          self.additional_count),
            _LIST_SEP.join(map(str, self.answer_ttls)) or _NONE,
            _LIST_SEP.join(map(str, self.ns_ttls)) or _NONE,
            _LIST_SEP.join(self.answer_ips) or _NONE,
            _LIST_SEP.join(self.cname_targets) or _NONE,
            _LIST_SEP.join(self.ns_names) or _NONE,
        ]
        return _FIELD_SEP.join(fields)

    @classmethod
    def from_line(cls, line):
        """Parse a line produced by :meth:`to_line`."""
        fields = line.rstrip("\n").split(_FIELD_SEP)
        if len(fields) != 18:
            raise ValueError("transaction line has %d fields" % len(fields))
        (ts, resolver_ip, server_ip, source, qname, qtype, rcode, answered,
         flags, delay_ms, observed_ttl, response_size, counts, answer_ttls,
         ns_ttls, answer_ips, cname_targets, ns_names) = fields
        if len(flags) != 4 or any(c not in "01" for c in flags):
            raise ValueError("malformed flags field %r" % (flags,))
        counts_parts = counts.split("/")
        if len(counts_parts) != 3:
            raise ValueError("malformed counts field %r" % (counts,))
        an, ns, ad = counts_parts
        return cls(
            ts=float(ts),
            resolver_ip=resolver_ip,
            server_ip=server_ip,
            source=source,
            qname="" if qname == "." else qname,
            qtype=int(qtype),
            rcode=None if rcode == _NONE else int(rcode),
            answered=answered == "1",
            aa=flags[0] == "1",
            tc=flags[1] == "1",
            edns_do=flags[2] == "1",
            has_rrsig=flags[3] == "1",
            delay_ms=float(delay_ms),
            observed_ttl=int(observed_ttl),
            response_size=int(response_size),
            answer_count=int(an),
            authority_ns_count=int(ns),
            additional_count=int(ad),
            answer_ttls=() if answer_ttls == _NONE
            else tuple(int(x) for x in answer_ttls.split(_LIST_SEP)),
            ns_ttls=() if ns_ttls == _NONE
            else tuple(int(x) for x in ns_ttls.split(_LIST_SEP)),
            answer_ips=() if answer_ips == _NONE
            else tuple(answer_ips.split(_LIST_SEP)),
            cname_targets=() if cname_targets == _NONE
            else tuple(cname_targets.split(_LIST_SEP)),
            ns_names=() if ns_names == _NONE
            else tuple(ns_names.split(_LIST_SEP)),
        )

    def __repr__(self):
        status = RCODE.name_of(self.rcode) if self.answered else "UNANSWERED"
        return "Transaction(%.3f, %s -> %s, %s %s, %s)" % (
            self.ts, self.resolver_ip, self.server_ip,
            self.qname, self.qtype_name(), status,
        )
