"""TSV time-series file format (Section 2.4).

"The data is stored on disk in the TSV file format, where the file
name encodes both the time granularity, and the moment of time when we
started collecting the data.  The first TSV row contains column names,
and the last row contains data collection statistics, which include
the total number of DNS transactions seen before and after filtering."
"""

import os

from repro.observatory.features import ALL_COLUMNS

#: granularity name -> window length in seconds (§2.4 aggregation chain)
GRANULARITIES = {
    "minutely": 60,
    "decaminutely": 600,
    "hourly": 3600,
    "daily": 86400,
    "monthly": 30 * 86400,
    "yearly": 365 * 86400,
}

#: aggregation chain order, finest first
GRANULARITY_CHAIN = (
    "minutely", "decaminutely", "hourly", "daily", "monthly", "yearly"
)

_STATS_PREFIX = "#stats"

#: key-column escapes: tab/newline are legal in DNS wire-format names
#: (and attacker-controlled via qname datasets), so they must never
#: reach the file raw -- one hostile key would corrupt every later row.
_KEY_ESCAPES = {"\\": "\\\\", "\t": "\\t", "\n": "\\n", "\r": "\\r"}
_KEY_UNESCAPES = {"\\": "\\", "t": "\t", "n": "\n", "r": "\r"}


def escape_key(key):
    """Escape ``\\t``/``\\n``/``\\r``/``\\\\`` in a row key for writing."""
    if "\\" in key or "\t" in key or "\n" in key or "\r" in key:
        return "".join(_KEY_ESCAPES.get(ch, ch) for ch in key)
    return key


def unescape_key(text):
    """Inverse of :func:`escape_key` (unknown escapes pass through)."""
    if "\\" not in text:
        return text
    out = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\\" and i + 1 < n and text[i + 1] in _KEY_UNESCAPES:
            out.append(_KEY_UNESCAPES[text[i + 1]])
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def filename_for(dataset, granularity, start_ts):
    """``srvip.minutely.0000086400.tsv`` -- name encodes granularity
    and collection start time."""
    if granularity not in GRANULARITIES:
        raise ValueError("unknown granularity %r" % (granularity,))
    return "%s.%s.%010d.tsv" % (dataset, granularity, int(start_ts))


def parse_filename(filename):
    """Inverse of :func:`filename_for`: returns (dataset, granularity,
    start_ts) or raises ValueError."""
    base = os.path.basename(filename)
    stem, ext = os.path.splitext(base)
    if ext != ".tsv":
        raise ValueError("not a TSV file: %r" % (filename,))
    parts = stem.split(".")
    if len(parts) < 3 or parts[-2] not in GRANULARITIES:
        raise ValueError("unparseable time-series filename: %r" % (filename,))
    dataset = ".".join(parts[:-2])
    return dataset, parts[-2], int(parts[-1])


class TimeSeriesData:
    """In-memory representation of one time-series file."""

    def __init__(self, dataset, granularity, start_ts, columns=None,
                 rows=None, stats=None):
        self.dataset = dataset
        self.granularity = granularity
        self.start_ts = int(start_ts)
        #: feature column names, in file order (without the key column)
        self.columns = list(columns if columns is not None else ALL_COLUMNS)
        #: list of (key, {column: value}) pairs, rank order preserved
        self.rows = list(rows or [])
        #: collection stats: transactions seen before/after filtering
        self.stats = dict(stats or {"seen": 0, "kept": 0})

    def row_map(self):
        """Return ``{key: row_dict}`` (last occurrence wins)."""
        return dict(self.rows)

    def __len__(self):
        return len(self.rows)


def write_tsv(directory, data):
    """Write *data* to ``directory`` using the canonical filename.

    The write is atomic: rows go to a ``.tmp`` sibling which is then
    :func:`os.replace`-d onto the final name, so a concurrent reader
    (``aggregate`` racing ``replay``, or a follow-mode
    :class:`~repro.observatory.store.SeriesStore` behind the HTTP
    server) either sees the complete file or no file at all -- never a
    torn window.  The ``.tmp`` sibling has no ``.tsv`` extension, so
    :func:`list_series` cannot pick it up even if a crash strands it.

    Returns the full file path.
    """
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(
        directory, filename_for(data.dataset, data.granularity, data.start_ts)
    )
    tmp_path = "%s.tmp.%d" % (path, os.getpid())
    try:
        with open(tmp_path, "w", encoding="utf-8") as fh:
            fh.write("key\t" + "\t".join(data.columns) + "\n")
            for key, row in data.rows:
                values = "\t".join(
                    _format(row.get(col, 0)) for col in data.columns)
                fh.write("%s\t%s\n" % (escape_key(key), values))
            stats = "\t".join(
                "%s=%s" % (name, _format(value))
                for name, value in sorted(data.stats.items())
            )
            fh.write("%s\t%s\n" % (_STATS_PREFIX, stats))
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.remove(tmp_path)
        except OSError:
            pass
        raise
    return path


def read_tsv(path):
    """Read a file written by :func:`write_tsv`."""
    dataset, granularity, start_ts = parse_filename(path)
    with open(path, "r", encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    if not lines:
        raise ValueError("empty time-series file: %r" % (path,))
    header = lines[0].split("\t")
    if header[0] != "key":
        raise ValueError("missing key column in %r" % (path,))
    columns = header[1:]
    rows = []
    stats = {}
    for lineno, line in enumerate(lines[1:], start=2):
        fields = line.split("\t")
        if fields[0] == _STATS_PREFIX:
            for pair in fields[1:]:
                name, _, value = pair.partition("=")
                stats[name] = _parse(value)
            continue
        if len(fields) != len(columns) + 1:
            # zip() would silently drop the trailing columns of a
            # short row (or the extra fields of a long one)
            raise ValueError(
                "%s line %d: expected %d columns, got %d"
                % (path, lineno, len(columns) + 1, len(fields)))
        key = unescape_key(fields[0])
        row = {
            col: _parse(value) for col, value in zip(columns, fields[1:])
        }
        rows.append((key, row))
    return TimeSeriesData(dataset, granularity, start_ts, columns, rows, stats)


def window_overlaps(granularity, window_start, start_ts=None, end_ts=None):
    """Does the window starting at *window_start* overlap
    ``[start_ts, end_ts)``?  ``None`` bounds are open."""
    if end_ts is not None and window_start >= end_ts:
        return False
    if start_ts is not None and \
            window_start + GRANULARITIES[granularity] <= start_ts:
        return False
    return True


def list_series(directory, dataset=None, granularity=None,
                start_ts=None, end_ts=None):
    """List time-series files in *directory*, sorted by start time.

    Returns (path, dataset, granularity, start_ts) tuples, optionally
    filtered.  *start_ts*/*end_ts* restrict the listing to windows
    overlapping the half-open range ``[start_ts, end_ts)``; the filter
    is purely filename-based (granularity gives the window length), so
    a range query never opens files outside its range.
    """
    results = []
    if not os.path.isdir(directory):
        return results
    for name in os.listdir(directory):
        try:
            ds, gran, start = parse_filename(name)
        except ValueError:
            continue
        if dataset is not None and ds != dataset:
            continue
        if granularity is not None and gran != granularity:
            continue
        if not window_overlaps(gran, start, start_ts, end_ts):
            continue
        results.append((os.path.join(directory, name), ds, gran, start))
    results.sort(key=lambda item: (item[1], item[3]))
    return results


def read_series(directory, dataset, granularity="minutely",
                start_ts=None, end_ts=None):
    """Load *dataset*'s files at *granularity*, time-ordered.

    The returned :class:`TimeSeriesData` list plugs directly into the
    analysis modules (they accept anything with ``rows`` and
    ``start_ts``), so a full study can run from a directory of TSVs
    produced by ``dns-observatory replay``.  When *start_ts*/*end_ts*
    are given only the overlapping windows are parsed (the default
    keeps the historical load-everything behaviour).
    """
    return [read_tsv(path)
            for path, _, _, _ in list_series(directory, dataset,
                                             granularity, start_ts,
                                             end_ts)]


def _format(value):
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return "%.4f" % value
    return str(value)


def _parse(text):
    if text == "":
        return 0
    try:
        return int(text)
    except ValueError:
        try:
            return float(text)
        except ValueError:
            return text
