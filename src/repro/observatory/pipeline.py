"""The Observatory facade: end-to-end Figure 1 pipeline.

Wires preprocessing, Top-k tracking, windowing, TSV output and time
aggregation into a single object:

>>> from repro.observatory import Observatory
>>> obs = Observatory(datasets=["srvip", "qname"])
>>> for txn in transactions:          # doctest: +SKIP
...     obs.ingest(txn)
>>> obs.finish()                      # doctest: +SKIP
>>> top = obs.tracker("srvip").top(10)

Transactions can be supplied as :class:`Transaction` objects (the
simulator's fast path) or as raw packets via :meth:`ingest_packets`
(the full parsing path used in integration tests).
"""

import logging

from repro.observatory.keys import DATASETS, DatasetSpec, make_dataset
from repro.observatory.preprocess import summarize_transaction
from repro.observatory.telemetry import resolve_telemetry
from repro.observatory.tracker import TopKTracker
from repro.observatory.tsv import write_tsv
from repro.observatory.window import WindowManager

logger = logging.getLogger(__name__)


class Observatory:
    """Stream analytics over passive DNS transactions.

    Parameters
    ----------
    datasets:
        Dataset names from :data:`~repro.observatory.keys.DATASETS`,
        ``DatasetSpec`` instances, or ``(name, k)`` tuples to resize.
    window_seconds:
        Statistics window length (the paper dumps every 60 s).
    output_dir:
        When given, every completed window is written as a minutely
        TSV file there (step E of Figure 1).
    keep_dumps:
        Keep completed :class:`WindowDump` objects in memory, grouped
        per dataset -- the analysis modules consume these.
    tau / use_bloom_gate / hll_precision / psl:
        Tracker tuning knobs, see :class:`TopKTracker`.
    telemetry:
        ``True`` (or a :class:`~repro.observatory.telemetry.Telemetry`
        registry) enables platform self-telemetry: every window also
        emits a ``_platform`` meta-dataset dump (sketch saturation,
        gate churn, flush latency) through the same sink/TSV path.
        Disabled by default at zero hot-path cost.
    flush_hook:
        Optional callable invoked with the full file path of every TSV
        window the moment it lands on disk (after the atomic
        ``os.replace``).  The live daemon uses it to reconcile the
        serving store and wake push subscribers without a directory
        re-scan; it runs on the ingest thread, so it must be cheap and
        must not raise.
    detectors:
        ``True`` (all registered detectors), a list of detector names
        or :class:`~repro.detect.Detector` instances, or a ready
        :class:`~repro.detect.DetectorSet`.  Every window boundary
        then also emits a ``_detector`` meta-dataset dump through the
        same sink/TSV path (see :mod:`repro.detect`).  Off by default.
    encrypted:
        ``True`` enables the ``_encrypted`` channel-feature dataset:
        blinded DoH/DoT observations (``source`` starting ``"!"``)
        are diverted from the trackers into an
        :class:`~repro.observatory.encrypted.
        EncryptedChannelAggregator`, and every window with encrypted
        traffic also emits an ``_encrypted`` dump through the same
        sink/TSV path.  All-plaintext streams emit nothing (zero-row
        dumps are never written), so enabling it is free until the
        first blinded record arrives.  Off by default.
    vantage:
        A :class:`~repro.analysis.vantage.VantageEmitter` (or None).
        Each flushed window of the emitter's source dataset
        (``srvip`` by default) additionally derives per-ASN and
        per-country ``_vantage_*`` index dumps through the same
        sink/TSV path.  Off by default.
    """

    def __init__(self, datasets=("srvip",), window_seconds=60.0,
                 output_dir=None, keep_dumps=True, tau=300.0,
                 use_bloom_gate=True, hll_precision=8, psl=None,
                 skip_recent_inserts=True, telemetry=False,
                 flush_hook=None, detectors=None, encrypted=None,
                 vantage=None):
        self._trackers = {}
        for item in datasets:
            spec = self._resolve(item)
            if spec.name in self._trackers:
                raise ValueError("duplicate dataset %r" % spec.name)
            self._trackers[spec.name] = TopKTracker(
                spec, tau=tau, use_bloom_gate=use_bloom_gate,
                hll_precision=hll_precision, psl=psl,
            )
        self.output_dir = output_dir
        self.keep_dumps = keep_dumps
        self.flush_hook = flush_hook
        self.dumps = {name: [] for name in self._trackers}
        self.telemetry = resolve_telemetry(telemetry)
        from repro.detect import DetectorSet, build_detectors

        if detectors is not None and not isinstance(detectors,
                                                    DetectorSet):
            detectors = build_detectors(detectors, psl=psl)
        self.detectors = detectors
        if encrypted:
            from repro.observatory.encrypted import \
                EncryptedChannelAggregator
            encrypted = EncryptedChannelAggregator()
        else:
            encrypted = None
        self.encrypted = encrypted
        self.vantage = vantage
        self.windows = WindowManager(
            self._trackers.values(), window_seconds=window_seconds,
            sink=self._sink, skip_recent_inserts=skip_recent_inserts,
            telemetry=self.telemetry, detectors=detectors,
            encrypted=encrypted,
        )

    @staticmethod
    def _resolve(item):
        if isinstance(item, DatasetSpec):
            return item
        if isinstance(item, tuple):
            name, k = item
            return make_dataset(name, k)
        if isinstance(item, str):
            if item not in DATASETS:
                raise ValueError("unknown dataset %r" % (item,))
            return make_dataset(item)
        raise TypeError("cannot resolve dataset from %r" % (item,))

    # ------------------------------------------------------------------

    def ingest(self, txn):
        """Process one summarized transaction."""
        return self.windows.observe(txn)

    def consume(self, transactions, batch_size=1024):
        """Process an iterable of transactions; returns self.

        Internally chunks the iterable and runs the
        :meth:`WindowManager.consume_batch` fast path, which hoists
        window-boundary checks out of the per-transaction loop.
        """
        consume_batch = self.windows.consume_batch
        if isinstance(transactions, list):
            consume_batch(transactions)
            return self
        buffer = []
        append = buffer.append
        for txn in transactions:
            append(txn)
            if len(buffer) >= batch_size:
                consume_batch(buffer)
                buffer.clear()
        if buffer:
            consume_batch(buffer)
        return self

    def consume_batch(self, txns):
        """Process a time-ordered list of transactions (fast path)."""
        return self.windows.consume_batch(txns)

    def ingest_packets(self, query_packet, response_packet, query_ts,
                       response_ts=None, source="src0"):
        """Full-path ingestion: parse raw packets, then process."""
        txn = summarize_transaction(
            query_packet, response_packet, query_ts, response_ts, source
        )
        self.ingest(txn)
        return txn

    def finish(self):
        """Flush the trailing partial window."""
        dumps = self.windows.flush()
        logger.info(
            "Observatory finished: %d transactions over %d windows; "
            "capture ratios %s",
            self.total_seen, self.windows.windows_completed,
            {name: round(ratio, 3)
             for name, ratio in self.capture_ratios().items()})
        return dumps

    # ------------------------------------------------------------------

    def tracker(self, name):
        """The :class:`TopKTracker` for dataset *name*."""
        return self._trackers[name]

    @property
    def datasets(self):
        return list(self._trackers)

    @property
    def total_seen(self):
        """Transactions ingested so far."""
        return self.windows.total_seen

    def capture_ratios(self):
        """Per-dataset capture ratios (the §3.1 coverage numbers)."""
        return {
            name: tracker.capture_ratio()
            for name, tracker in self._trackers.items()
        }

    # ------------------------------------------------------------------

    def _sink(self, dump):
        if self.keep_dumps:
            self.dumps.setdefault(dump.dataset, []).append(dump)
        if self.output_dir is not None and dump.rows:
            # Zero-row dumps (a window every tracker sat out) are not
            # written: a gap must not litter the directory with
            # header-only files, and aggregation treats a missing
            # minutely file exactly like an all-zero one.
            path = write_tsv(self.output_dir,
                             dump.to_timeseries("minutely"))
            if self.flush_hook is not None:
                self.flush_hook(path)
        if self.vantage is not None and \
                dump.dataset == self.vantage.source:
            # Derived dumps carry their own dataset names, so the
            # recursion terminates after one level.
            for derived in self.vantage.derive(dump):
                self._sink(derived)
