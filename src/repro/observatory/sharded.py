"""Sharded batch ingest engine: scale-out of the Figure 1 pipeline.

The paper's deployment sustains a peak of 200 k transactions/second by
running compiled code across machines (§2.1).  A single pure-Python
:class:`~repro.observatory.pipeline.Observatory` floors well below
that, so this module partitions the transaction stream by key-hash
across N worker processes, each running a full Observatory over its
shard, and merges the per-shard window state back into the exact same
:class:`~repro.observatory.window.WindowDump` / TSV output the
single-process path produces.

Architecture::

    stream ──► ShardedObservatory (coordinator)
                 │  crc32(resolver|server) % N, batches of ~512 txns
                 ├────────► worker 0: Observatory over shard 0
                 ├────────► worker 1: Observatory over shard 1
                 │              ...
                 │  at every 60 s boundary: broadcast ("cut", ts),
                 │  collect one ShardWindowState per dataset per shard
                 └──◄─────  merge sketches ──► WindowDump ──► TSV

    Workers never see a transaction from the next window before the
    cut for the previous one: the coordinator detects boundaries in
    the time-ordered stream, flushes all pending batches, and only
    then dispatches newer transactions.  Every worker window is
    therefore aligned to the same global grid.

What crosses the queues is pluggable (``transport=``): the default
pickles live object graphs, while the binary codec of
:mod:`repro.observatory.transport` ships batches as pre-serialized
line blocks and shard state as protocol-5 out-of-band sketch buffers,
so coordinator time stops scaling with the feature payload size.

Merge semantics (why the output matches the single-process path):

* **Space-Saving rank.**  Each shard ships its entries' decayed rate
  estimates evaluated at the window end, so values from caches with
  different forward-decay landmarks are directly comparable.  Rates
  of the same key add across shards (the mergeable-summaries union of
  Agarwal et al., PODS 2012); the error bounds add the same way, so
  the merged overestimate is at most the sum of the per-shard errors.
  A key hot enough for the global Top-k is hot enough for at least
  one shard's cache, so true heavy hitters are never lost.
* **Features.**  Counters, running means and histograms add exactly;
  HyperLogLog registers merge by maximum, yielding byte-identical
  registers to a single-pass sketch (cardinalities agree within the
  estimator's standard error); top-TTL counters merge with the usual
  Space-Saving overestimate.
* **Survived-one-window rule (§2.4).**  Insertion times take the
  minimum across shards before the rule is applied, matching the
  single cache's notion of "first seen".

With the default partition key ``resolver|server`` every dataset's
keys are spread over all shards and recombined by the merge; datasets
keyed by the partition key itself (``srcsrv``) are trivially exact.

What *can* differ from the single-process path:

* **Capture ratios and the ``kept`` stat.**  Every shard pays its own
  first-sighting miss per key, and each shard's cache holds ``k``
  entries (``N * k`` total), so per-shard caches saturate later and
  the Bloom eviction gates fire less often than one global cache's.
  Both effects only make the sharded path track *more*, never less.
* **Deep tail under heavy saturation.**  Once per-shard caches evict,
  per-shard gate/eviction decisions are taken on disjoint stream
  subsets, so ranks far below the Top-k head may reorder.  The head
  itself is stable: a globally heavy key is heavy in some shard.
"""

import logging
import multiprocessing
import os
import time
import zlib
from queue import Empty

from repro.detect import DETECTOR_DATASET, DetectorWindowState
from repro.observatory.encrypted import (
    ENCRYPTED_DATASET,
    EncryptedChannelAggregator,
    EncryptedWindowState,
)
from repro.observatory.pipeline import Observatory
from repro.observatory.ringbuf import (
    RING_LINK_DELTAS,
    RingError,
    RingHandle,
    RingReceiver,
    RingSender,
    SpscRing,
)
from repro.observatory.telemetry import (
    PLATFORM_DATASET,
    resolve_telemetry,
    union_columns,
)
from repro.observatory.transport import get_transport
from repro.observatory.tsv import write_tsv
from repro.observatory.window import WindowDump, align_window

logger = logging.getLogger(__name__)

#: transactions per queue message; amortizes pickling + queue overhead
DEFAULT_BATCH_SIZE = 512

#: default shared-memory ring capacity per shard (--transport ring)
DEFAULT_RING_BYTES = 1 << 20

#: bound on the feeder's partition-key -> shard memo (cleared when full)
_SHARD_MEMO_LIMIT = 200_000


def partition_srcsrv(txn):
    """Default partition key: the (resolver, nameserver) pair.

    Finer than either IP alone, so hot servers do not pin a whole
    shard; the mergeable sketches recombine the split datasets.
    """
    return txn.resolver_ip + "|" + txn.server_ip


def partition_srvip(txn):
    """Partition by nameserver IP (makes the srvip dataset exact)."""
    return txn.server_ip


def partition_qname(txn):
    """Partition by QNAME (makes the qname dataset exact)."""
    return txn.qname


PARTITIONS = {
    "srcsrv": partition_srcsrv,
    "srvip": partition_srvip,
    "qname": partition_qname,
}


def _shard_worker(shard_id, in_q, out_q, specs, window_seconds, obs_kw,
                  transport="pickle"):
    """Worker main loop: a full Observatory over one stream shard.

    Speaks a tiny message protocol on *in_q*, with batch and state
    payloads encoded by the configured transport (see
    :mod:`repro.observatory.transport`):

    * ``("batch", payload)`` -- ingest a window-aligned batch (a
      transaction list under the pickle transport, a pre-serialized
      line block under the binary one);
    * ``("cut", ts)`` -- the global stream crossed *ts*; flush every
      window ending at or before it and ship the collected
      :class:`ShardWindowState` list back on *out_q*, along with this
      shard's telemetry snapshot rows (empty when telemetry is off);
    * ``("finish",)`` -- flush the partial tail window, ship the
      remaining states plus final per-dataset statistics and telemetry
      rows, and exit.

    Under ``--transport ring`` *in_q* is a
    :class:`~repro.observatory.ringbuf.RingHandle` instead of a queue:
    the worker attaches to the coordinator's shared-memory ring and
    reads the same tagged messages as length-prefixed frames.  Replies
    always travel on *out_q* (per-window volume, not per-transaction).
    """
    receiver = None
    try:
        if isinstance(in_q, RingHandle):
            parent = os.getppid()
            receiver = RingReceiver.attach(
                in_q, peer_alive=lambda: os.getppid() == parent)
            get_message = receiver.get
        else:
            get_message = in_q.get
        codec = get_transport(transport)
        unpack_batch = codec.unpack_batch
        pack_states = codec.pack_states
        states = []
        obs = Observatory(datasets=specs, window_seconds=window_seconds,
                          keep_dumps=False, **obs_kw)
        obs.windows.state_sink = states.append
        consume_batch = obs.windows.consume_batch
        telemetry = obs.telemetry
        while True:
            message = get_message()
            tag = message[0]
            if tag == "batch":
                consume_batch(unpack_batch(message[1]))
            elif tag == "cut":
                obs.windows.advance_to(message[1])
                out_q.put(("states", shard_id, pack_states(list(states)),
                           telemetry.snapshot(message[1])))
                del states[:]  # state_sink stays bound to this list
            elif tag == "finish":
                obs.windows.flush()
                stats = {
                    "total_seen": obs.total_seen,
                    "datasets": {
                        name: {
                            "filtered": tracker.filtered,
                            "processed": tracker.processed,
                            "offered": tracker.cache.offered,
                            "tracked_hits": tracker.cache.tracked_hits,
                            "gated": tracker.cache.gated,
                            "evictions": tracker.cache.evictions,
                        }
                        for name, tracker in
                        ((n, obs.tracker(n)) for n in obs.datasets)
                    },
                }
                out_q.put(("final", shard_id, pack_states(list(states)),
                           stats,
                           telemetry.snapshot(obs.windows.window_start)))
                return
            else:  # pragma: no cover - protocol misuse
                raise ValueError("unknown message tag %r" % (tag,))
    except Exception:  # pragma: no cover - exercised via parent raise
        import traceback
        out_q.put(("error", shard_id, traceback.format_exc()))
    finally:
        if receiver is not None:
            receiver.close()


class ShardedObservatory:
    """Scale-out Observatory: N worker processes + sketch merging.

    Drop-in for :class:`Observatory` on the ingest side: ``ingest``,
    ``consume`` / ``consume_batch``, ``finish``, ``dumps``,
    ``capture_ratios`` (after ``finish``) all behave the same; the
    merged window dumps and TSV files match the single-process output
    (exactly for counters, within standard error for cardinalities).

    Parameters
    ----------
    shards:
        Number of worker processes.
    datasets / window_seconds / output_dir / keep_dumps:
        As for :class:`Observatory`.
    tau / use_bloom_gate / hll_precision / skip_recent_inserts:
        Tracker knobs, forwarded to every worker.
    batch_size:
        Transactions per queue message.
    partition:
        Partition key: a name from :data:`PARTITIONS` or a callable
        ``txn -> str``.
    transport:
        Shard transport codec: ``"pickle"`` (default; queues pickle
        live object graphs), ``"binary"`` (pre-serialized line
        blocks upstream, protocol-5 out-of-band sketch buffers
        downstream -- see :mod:`repro.observatory.transport`), or
        ``"ring"`` (the binary codec's line blocks carried over one
        shared-memory SPSC ring per shard -- no upstream pickling or
        queue feeder threads at all, see
        :mod:`repro.observatory.ringbuf`).
    ring_bytes:
        Per-shard ring capacity in bytes (``--transport ring`` only).
    mp_context:
        ``multiprocessing`` context or start-method name; defaults to
        ``fork`` where available (cheap worker startup).
    timeout:
        Seconds to wait for any single worker reply before declaring
        the run dead.
    telemetry:
        ``True`` (or a registry) enables platform self-telemetry on
        the coordinator *and* every worker: each cut also emits one
        merged ``_platform`` dump combining coordinator rows (queue
        depth, batch codec bytes, merge latency, worker liveness)
        with every shard's own rows under a ``shardN.`` key prefix.
    detectors:
        ``True`` / detector names / instances (see
        :class:`~repro.observatory.pipeline.Observatory`).  Workers
        run the detectors' mergeable window accumulators and ship
        them at every cut; the coordinator absorbs the shard states
        and runs the scorer (EWMA baselines, Bloom generations), so
        the emitted ``_detector`` series is bit-identical to a
        single-process run over the same stream.
    encrypted:
        ``True`` enables the ``_encrypted`` channel-feature dataset
        (see :class:`~repro.observatory.pipeline.Observatory`).
        Workers divert blinded DoH/DoT observations into per-shard
        integer accumulators and ship them at every cut as
        :class:`~repro.observatory.encrypted.EncryptedWindowState`;
        the coordinator absorbs and emits, so the ``_encrypted``
        series is bit-identical to a single-process run.
    vantage:
        A :class:`~repro.analysis.vantage.VantageEmitter` (or None):
        every emitted window of the emitter's source dataset also
        derives ``_vantage_*`` index dumps (coordinator-side only --
        derivation is a pure function of the merged dump).
    """

    def __init__(self, shards=2, datasets=("srvip",), window_seconds=60.0,
                 output_dir=None, keep_dumps=True, sink=None, tau=300.0,
                 use_bloom_gate=True, hll_precision=8,
                 skip_recent_inserts=True, batch_size=DEFAULT_BATCH_SIZE,
                 partition="srcsrv", transport="pickle",
                 ring_bytes=DEFAULT_RING_BYTES, mp_context=None,
                 timeout=300.0, telemetry=False, flush_hook=None,
                 detectors=None, encrypted=None, vantage=None):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.shards = int(shards)
        self.window_seconds = float(window_seconds)
        if self.window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        self.output_dir = output_dir
        self.keep_dumps = keep_dumps
        self.sink = sink
        #: called with the TSV path of every flushed window (see
        #: :class:`~repro.observatory.pipeline.Observatory`)
        self.flush_hook = flush_hook
        self.skip_recent_inserts = skip_recent_inserts
        self.batch_size = int(batch_size)
        self.timeout = timeout
        if callable(partition):
            self._partition = partition
        else:
            self._partition = PARTITIONS[partition]
        self._transport = get_transport(transport)
        self.ring_bytes = int(ring_bytes)
        self._shard_memo = {}
        self._specs = [Observatory._resolve(item) for item in datasets]
        names = [spec.name for spec in self._specs]
        if len(set(names)) != len(names):
            raise ValueError("duplicate dataset in %r" % (names,))
        self._dataset_order = names
        self._k = {spec.name: spec.k for spec in self._specs}
        self.dumps = {name: [] for name in names}
        self._window_start = None
        self._buffers = [[] for _ in range(self.shards)]
        #: transactions ingested so far
        self.total_seen = 0
        #: completed (merged and emitted) windows
        self.windows_completed = 0
        self._final_stats = None
        self._closed = False
        self.telemetry = resolve_telemetry(telemetry)
        self._batch_counter = self.telemetry.counter("coordinator", "batches")
        self._batch_txns = self.telemetry.counter("coordinator", "batch_txns")
        self._batch_bytes = self.telemetry.counter("coordinator", "batch_bytes")
        self._merge_timer = self.telemetry.timing("coordinator", "merge")
        self._gap_counter = self.telemetry.counter(
            "coordinator", "windows_skipped")
        obs_kw = dict(tau=tau, use_bloom_gate=use_bloom_gate,
                      hll_precision=hll_precision,
                      skip_recent_inserts=skip_recent_inserts,
                      telemetry=self.telemetry.enabled)
        #: coordinator-side scorer detectors (EWMA baselines, Bloom
        #: generations); workers get accumulator-only twins via obs_kw
        self._detectors = None
        if detectors:
            from repro.detect import DetectorSet, build_detectors

            if isinstance(detectors, DetectorSet):
                self._detectors = detectors
                obs_kw["detectors"] = list(detectors.names)
            else:
                self._detectors = build_detectors(detectors)
                obs_kw["detectors"] = detectors
        #: coordinator-side merge target for shard ``_encrypted``
        #: accumulators; workers get their own via obs_kw
        self._encrypted = None
        if encrypted:
            self._encrypted = EncryptedChannelAggregator()
            obs_kw["encrypted"] = True
        self.vantage = vantage
        context = self._resolve_context(mp_context)
        use_ring = self._transport.is_ring
        self._out_q = context.Queue()
        self._in_qs = []
        self._workers = []
        try:
            for shard_id in range(self.shards):
                if use_ring:
                    ring = SpscRing.create(self.ring_bytes)
                    in_q = RingSender(ring, name="shard %d ring" % shard_id,
                                      timeout=self.timeout)
                    worker_arg = ring.handle
                else:
                    in_q = context.Queue()
                    worker_arg = in_q
                worker = context.Process(
                    target=_shard_worker,
                    args=(shard_id, worker_arg, self._out_q, self._specs,
                          self.window_seconds, obs_kw, self._transport),
                    daemon=True,
                    name="observatory-shard-%d" % shard_id,
                )
                worker.start()
                if use_ring:
                    # a stalled put now exits as soon as the worker dies
                    in_q.peer_alive = worker.is_alive
                self._in_qs.append(in_q)
                self._workers.append(worker)
        except Exception:
            self.close()
            raise
        if self.telemetry.enabled:
            self.telemetry.register(
                "coordinator", self._telemetry_row, deltas=("txns",))
            link_deltas = RING_LINK_DELTAS if use_ring else ()
            for shard_id in range(self.shards):
                self.telemetry.register(
                    "shard%d.link" % shard_id,
                    self._make_link_sampler(shard_id),
                    deltas=link_deltas)

    def _telemetry_row(self, now):
        return {
            "txns": self.total_seen,
            "windows": self.windows_completed,
            "workers_alive": sum(
                1 for worker in self._workers if worker.is_alive()),
        }

    def _make_link_sampler(self, shard_id):
        in_q = self._in_qs[shard_id]
        worker = self._workers[shard_id]

        if isinstance(in_q, RingSender):
            def sample(now):
                row = in_q.telemetry_row()
                row["alive"] = 1 if worker.is_alive() else 0
                return row
        else:
            def sample(now):
                try:
                    depth = in_q.qsize()
                except NotImplementedError:  # pragma: no cover - macOS
                    depth = 0
                return {"queue_depth": depth,
                        "alive": 1 if worker.is_alive() else 0}

        return sample

    @staticmethod
    def _resolve_context(mp_context):
        if mp_context is not None:
            if isinstance(mp_context, str):
                return multiprocessing.get_context(mp_context)
            return mp_context
        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            return multiprocessing.get_context()

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def ingest(self, txn):
        """Route one transaction to its shard.  Returns the merged
        WindowDumps of any boundary this transaction crossed."""
        return self.consume_batch((txn,))

    def consume_batch(self, txns):
        """Route a time-ordered batch of transactions to the shards.

        Window boundaries inside the batch trigger a cut-and-merge
        barrier, exactly like the single-process path flushing
        mid-batch.  Returns the merged WindowDumps produced.
        """
        dumps = []
        if self._closed:
            raise RuntimeError("ShardedObservatory is closed")
        window_seconds = self.window_seconds
        shards = self.shards
        partition = self._partition
        buffers = self._buffers
        batch_size = self.batch_size
        crc32 = zlib.crc32
        # Partition keys repeat heavily (resolver/server pairs follow a
        # Zipf law, §3), so memoize key -> shard: the steady-state cost
        # per transaction is one dict hit instead of encode + crc32.
        memo = self._shard_memo
        memo_get = memo.get
        start = self._window_start
        end = None if start is None else start + window_seconds
        for txn in txns:
            ts = txn.ts
            if end is None:
                start = align_window(ts, window_seconds)
                end = start + window_seconds
                self._window_start = start
            elif ts >= end:
                dumps.extend(self._cut(align_window(ts, window_seconds)))
                start = self._window_start
                end = start + window_seconds
            key = partition(txn)
            shard = memo_get(key)
            if shard is None:
                if len(memo) >= _SHARD_MEMO_LIMIT:
                    memo.clear()
                shard = crc32(key.encode()) % shards
                memo[key] = shard
            buffer = buffers[shard]
            buffer.append(txn)
            if len(buffer) >= batch_size:
                self._dispatch_all()
            self.total_seen += 1
        return dumps

    def consume(self, transactions, batch_size=4096):
        """Process an iterable of transactions; returns self."""
        buffer = []
        append = buffer.append
        for txn in transactions:
            append(txn)
            if len(buffer) >= batch_size:
                self.consume_batch(buffer)
                buffer.clear()
        if buffer:
            self.consume_batch(buffer)
        return self

    def finish(self):
        """Flush the tail window, collect and merge final worker
        state, and shut the workers down.  Returns the merged dumps of
        the remaining windows (like :meth:`Observatory.finish`)."""
        if self._closed:
            return []
        self._dispatch_all(force=True)
        for shard_id in range(self.shards):
            self._put(shard_id, ("finish",))
        states = []
        final_stats = {}
        worker_rows = []
        for _ in range(self.shards):
            reply = self._next_reply(expect="final")
            _, shard_id, packed, stats = reply[:4]
            states.extend(self._transport.unpack_states(packed))
            final_stats[shard_id] = stats
            worker_rows.append((shard_id, reply[4]))
        self._final_stats = final_stats
        dumps = self._merge_and_emit(states)
        if self.telemetry.enabled and self._window_start is not None:
            dumps.append(self._emit_platform(
                self._window_start,
                self._window_start + self.window_seconds, worker_rows))
        self.close()
        logger.info(
            "ShardedObservatory finished: %d transactions over %d windows "
            "across %d shards; capture ratios %s",
            self.total_seen, self.windows_completed, self.shards,
            {name: round(ratio, 3)
             for name, ratio in self.capture_ratios().items()})
        return dumps

    def close(self):
        """Terminate workers and release queues (idempotent).

        Order matters: first detach our queue feeder threads
        (``cancel_join_thread``) and drain pending replies so neither
        side is blocked on a full pipe, *then* terminate -- otherwise
        a feeder thread flushing into a dead worker's pipe can
        deadlock interpreter shutdown.
        """
        if self._closed:
            return
        self._closed = True
        for queue in self._in_qs + [self._out_q]:
            queue.cancel_join_thread()
        while True:
            try:
                self._out_q.get_nowait()
            except Empty:
                break
            except (OSError, ValueError):  # pragma: no cover - racing close
                break
        for worker in self._workers:
            if worker.is_alive():
                worker.terminate()
        for worker in self._workers:
            worker.join(timeout=5.0)
        for queue in self._in_qs + [self._out_q]:
            queue.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()

    # ------------------------------------------------------------------
    # Coordinator internals
    # ------------------------------------------------------------------

    def _put(self, shard_id, message):
        """Send one upstream message, mapping ring faults (peer death,
        watermark timeout) to the same named-RuntimeError teardown the
        queue transport's reply timeout provides."""
        try:
            self._in_qs[shard_id].put(message)
        except RingError as exc:
            self.close()
            raise RuntimeError(
                "shard %d ring send failed: %s (%d shards)"
                % (shard_id, exc, self.shards)) from None

    def _dispatch_all(self, force=False):
        """Ship every non-empty shard buffer (all of them when a cut
        or finish needs the workers fully caught up)."""
        pack_batch = self._transport.pack_batch
        telemetry_on = self.telemetry.enabled
        for shard_id, buffer in enumerate(self._buffers):
            if buffer and (force or len(buffer) >= self.batch_size):
                payload = pack_batch(buffer)
                self._put(shard_id, ("batch", payload))
                if telemetry_on:
                    self._batch_counter.inc()
                    self._batch_txns.inc(len(buffer))
                    if isinstance(payload, (bytes, bytearray, str)):
                        self._batch_bytes.inc(len(payload))
                self._buffers[shard_id] = []

    def _cut(self, new_start):
        """Barrier at a window boundary: flush batches, have every
        worker advance to *new_start*, merge the returned states."""
        flushed_start = self._window_start
        self._dispatch_all(force=True)
        for shard_id in range(self.shards):
            self._put(shard_id, ("cut", new_start))
        states = []
        worker_rows = []
        for _ in range(self.shards):
            reply = self._next_reply(expect="states")
            states.extend(self._transport.unpack_states(reply[2]))
            worker_rows.append((reply[1], reply[3]))
        self._window_start = new_start
        before = self.windows_completed
        dumps = self._merge_and_emit(states)
        # Every window between the flushed one and new_start is part
        # of this cut, emitted or not: with the gap fast-forward (see
        # WindowManager._catch_up) workers ship at most one non-empty
        # window per cut, so credit the skipped empties here to keep
        # windows_completed in lockstep with the single-process path.
        emitted = self.windows_completed - before
        elapsed = int(round((new_start - flushed_start) / self.window_seconds))
        skipped = elapsed - emitted
        if skipped > 0:
            self.windows_completed += skipped
            self._gap_counter.inc(skipped)
        if self.telemetry.enabled:
            dumps.append(
                self._emit_platform(flushed_start, new_start, worker_rows))
        return dumps

    def _next_reply(self, expect):
        try:
            reply = self._out_q.get(timeout=self.timeout)
        except Empty:
            # A worker died (OOM-killed, SIGKILL) or wedged without
            # managing an "error" reply.  Tear the run down first so
            # no worker processes leak, then surface the context a
            # bare queue.Empty would have hidden.
            self.close()
            raise RuntimeError(
                "shard reply timed out after %ss waiting for %r "
                "(worker died or hung; %d shards)"
                % (self.timeout, expect, self.shards)) from None
        if reply[0] == "error":
            tb = reply[2]
            self.close()
            raise RuntimeError("shard %d failed:\n%s" % (reply[1], tb))
        if reply[0] != expect:  # pragma: no cover - protocol bug guard
            raise RuntimeError("expected %r reply, got %r" % (expect, reply[0]))
        return reply

    def _merge_and_emit(self, states):
        """Group shard states by (window, dataset), merge each group
        into a WindowDump, and emit in stream order.

        Detector states ride the same transport but take a different
        merge: per window, every shard's accumulator is absorbed into
        the coordinator's detectors (order-invariant exact merges) and
        the scorer cut emits one ``_detector`` dump -- the sharded
        twin of ``WindowManager._detector_dump``.
        """
        started = time.perf_counter() if self.telemetry.enabled else 0.0
        grouped = {}
        detector_states = {}
        encrypted_states = {}
        for state in states:
            if isinstance(state, DetectorWindowState):
                detector_states.setdefault(state.start_ts, []).append(state)
                continue
            if isinstance(state, EncryptedWindowState):
                encrypted_states.setdefault(state.start_ts, []).append(state)
                continue
            grouped.setdefault((state.start_ts, state.dataset), []).append(state)
        dumps = []
        starts = sorted({start for start, _ in grouped}
                        | set(detector_states) | set(encrypted_states))
        for start in starts:
            for dataset in self._dataset_order:
                group = grouped.get((start, dataset))
                if group is None:
                    continue
                dumps.append(self._merge_window(dataset, start, group))
            if self._detectors is not None:
                dumps.append(self._merge_detectors(
                    start, detector_states.get(start, ()), grouped))
            if self._encrypted is not None:
                dumps.append(self._merge_encrypted(
                    start, encrypted_states.get(start, ())))
            self.windows_completed += 1
        if self.telemetry.enabled:
            self._merge_timer.observe(time.perf_counter() - started)
        for dump in dumps:
            self._emit(dump)
        return dumps

    def _merge_detectors(self, start, window_states, grouped):
        """Absorb one window's shard accumulators, score, and wrap
        the rows into a ``_detector`` dump identical to the one a
        single process would emit for this window."""
        for state in window_states:
            self._detectors.absorb(state)
        rows = self._detectors.cut(start, start + self.window_seconds)
        # Mirror the single-process stats: "seen" is every transaction
        # the window saw, which each tracker state reports per shard.
        first = self._dataset_order[0]
        seen = sum(s.stats["seen"]
                   for s in grouped.get((start, first), ()))
        return WindowDump(DETECTOR_DATASET, start, rows,
                          {"seen": seen, "kept": len(rows)},
                          columns=union_columns(rows))

    def _merge_encrypted(self, start, window_states):
        """Absorb one window's shard ``_encrypted`` accumulators and
        emit -- the sharded twin of ``WindowManager._encrypted_dump``.
        Every field is an integer sum/min/max, so the merged rows (and
        the ``seen`` trailer, computed from the merged accumulators)
        are byte-identical to a single process."""
        for state in window_states:
            self._encrypted.absorb(state)
        seen = self._encrypted.seen()
        rows = self._encrypted.cut(start, start + self.window_seconds)
        return WindowDump(ENCRYPTED_DATASET, start, rows,
                          {"seen": seen, "kept": len(rows)},
                          columns=union_columns(rows))

    def _emit(self, dump):
        if self.keep_dumps:
            self.dumps.setdefault(dump.dataset, []).append(dump)
        if self.output_dir is not None and dump.rows:
            # Same rule as Observatory._sink: gaps must not litter the
            # directory with header-only files.
            path = write_tsv(self.output_dir,
                             dump.to_timeseries("minutely"))
            if self.flush_hook is not None:
                self.flush_hook(path)
        if self.sink is not None:
            self.sink(dump)
        if self.vantage is not None and \
                dump.dataset == self.vantage.source:
            # One level of recursion: derived dumps have their own
            # dataset names, never the emitter's source.
            for derived in self.vantage.derive(dump):
                self._emit(derived)

    def _emit_platform(self, start, now, worker_rows):
        """Combine the coordinator's snapshot with every shard's rows
        (re-keyed ``shardN.component``) into one ``_platform`` dump
        for the window starting at *start*."""
        rows = self.telemetry.snapshot(now)
        for shard_id, shard_rows in worker_rows:
            rows.extend(
                ("shard%d.%s" % (shard_id, component), row)
                for component, row in shard_rows)
        dump = WindowDump(PLATFORM_DATASET, start, rows,
                          {"seen": 0, "kept": len(rows)},
                          columns=union_columns(rows))
        self._emit(dump)
        return dump

    def _merge_window(self, dataset, start, shard_states):
        """The mergeable-summaries union of one dataset's window."""
        merged = {}
        seen = 0
        kept = 0
        for state in shard_states:
            seen += state.stats["seen"]
            kept += state.stats["kept"]
            for key, rate, error, inserted_at, hits, features in state.entries:
                current = merged.get(key)
                if current is None:
                    merged[key] = [rate, error, inserted_at, hits, features]
                else:
                    current[0] += rate
                    current[1] += error
                    if inserted_at < current[2]:
                        current[2] = inserted_at
                    current[3] += hits
                    current[4].merge(features)
        # A key may be long-tracked in a shard that happened to be
        # idle for it this window.  Honor that shard's insertion time
        # (survived-one-window rule) and fold its accumulated weight
        # into the rank: the single cache orders by lifetime decayed
        # weight, so the merged rate must include idle shards too.
        for state in shard_states:
            for key, inserted_at, rate in state.inserted:
                current = merged.get(key)
                if current is None:
                    continue
                current[0] += rate
                if inserted_at < current[2]:
                    current[2] = inserted_at
        candidates = []
        skip_recent = self.skip_recent_inserts
        for key, (rate, _error, inserted_at, _hits, features) in merged.items():
            if skip_recent and inserted_at > start:
                continue  # did not survive a full window yet (§2.4)
            candidates.append((key, rate, features))
        candidates.sort(key=lambda item: (-item[1], item[0]))
        rows = [(key, features.as_row())
                for key, _rate, features in candidates[:self._k[dataset]]]
        return WindowDump(dataset, start, rows,
                          {"seen": seen, "kept": kept})

    # ------------------------------------------------------------------
    # Introspection (mirrors Observatory)
    # ------------------------------------------------------------------

    @property
    def datasets(self):
        return list(self._dataset_order)

    def capture_ratios(self):
        """Per-dataset capture ratios summed over all shards.

        Available once :meth:`finish` has collected worker statistics.
        """
        if self._final_stats is None:
            raise RuntimeError("capture_ratios() requires finish() first")
        ratios = {}
        for name in self._dataset_order:
            offered = 0
            tracked = 0
            for stats in self._final_stats.values():
                dataset_stats = stats["datasets"][name]
                offered += dataset_stats["offered"]
                tracked += dataset_stats["tracked_hits"]
            ratios[name] = tracked / offered if offered else 0.0
        return ratios

    def shard_stats(self):
        """Raw per-shard tracker statistics (after :meth:`finish`)."""
        if self._final_stats is None:
            raise RuntimeError("shard_stats() requires finish() first")
        return dict(self._final_stats)

    def __repr__(self):
        return "ShardedObservatory(shards=%d, datasets=%r)" % (
            self.shards, self._dataset_order)
