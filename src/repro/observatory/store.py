"""Indexed read path over a directory of TSV time series.

The write pipeline (``replay`` / ``aggregate``) produces one TSV file
per dataset per window; every consumer so far re-listed and re-parsed
the whole directory per question (:func:`~repro.observatory.tsv.read_series`).
That is fine for a one-shot study and hopeless for a query service:
the paper's Observatory is an *operated platform* whose operators ask
"top-k FQDNs now" and "this nameserver's TTL series" (§3--§5) against
a store that a collector is appending to live.

:class:`SeriesStore` is the missing read path:

* a **manifest index** -- dataset -> granularity -> window offsets,
  sorted by start time, with per-file identity (mtime + size).  The
  manifest is persisted next to the data (``.observatory-manifest.json``)
  so a fresh process -- or the HTTP server restarting -- reopens a
  million-window directory without re-learning per-window metadata
  (row counts, stats) that required parsing the files once;
* **mtime/size invalidation** -- a changed or replaced file drops its
  cache entry and manifest metadata, so the store can ``follow`` a
  live writer (``replay`` appending windows, ``aggregate`` rolling
  them up) and never serve stale or torn state.  Writes are atomic
  (:func:`~repro.observatory.tsv.write_tsv` goes through
  ``os.replace``), so a file visible in the listing is complete;
* a **bounded LRU** of parsed windows -- the hot working set (recent
  windows, popular ranges) is served from memory; everything else
  falls back to one bounded parse, not a directory scan;
* a **bisected range index** -- each series' refs stay sorted by
  ``start_ts``, so a range query is two :func:`bisect.bisect` calls
  and a slice, O(log n + answer) instead of a linear scan of every
  indexed window (a year of minutely windows is ~525k refs;
  ``benchmarks/bench_serve.py --check`` gates the speedup);
* **query primitives** -- :meth:`datasets`, :meth:`select`,
  :meth:`read`, :meth:`accumulate`, :meth:`topk`, :meth:`key_series`
  -- the vocabulary the analysis modules, ``repro report`` and
  :mod:`repro.server` share instead of each re-implementing loops
  over ``read_series``; plus the **streaming iterators**
  :meth:`iter_windows` / :meth:`iter_range` /
  :meth:`iter_topk_windows`, which yield parsed windows one at a
  time through the LRU so a long-range consumer (the chunked
  ``/series`` response, a whole-range accumulation) never holds more
  than one window plus the LRU in memory.
"""

import bisect
import heapq
import json
import os
import threading
import time
from collections import OrderedDict

from repro.observatory import segments as segmentfmt
from repro.observatory.tsv import (
    GRANULARITIES,
    parse_filename,
    read_tsv,
)

#: manifest filename, stored inside the series directory
MANIFEST_NAME = ".observatory-manifest.json"

#: manifest schema version (bump on incompatible layout changes);
#: v2 added the inode to the per-file identity token
MANIFEST_VERSION = 2

#: distinct range-accumulations memoized per store (see ``accumulate``)
ACCUMULATE_CACHE = 16

#: max consecutive same-key-tuple segment windows folded as one
#: clustered run in :meth:`SeriesStore.accumulate` -- bounds the
#: buffered column values so a year-long range still accumulates in
#: O(run) memory, not O(span)
ACCUMULATE_RUN = 256

#: minimum seconds between automatic manifest rewrites triggered by
#: :meth:`SeriesStore.refresh`.  A follow-mode store re-scans before
#: every query; without the debounce a live writer made every query
#: rewrite the whole O(windows) manifest JSON.  ``flush_manifest``
#: (shutdown) always persists regardless.
MANIFEST_SAVE_INTERVAL = 5.0


class WindowRef:
    """One indexed window file: identity plus lazily-learned metadata."""

    __slots__ = ("path", "dataset", "granularity", "start_ts",
                 "mtime_ns", "size", "ino", "rows", "stats")

    def __init__(self, path, dataset, granularity, start_ts,
                 mtime_ns, size, ino=0, rows=None, stats=None):
        self.path = path
        self.dataset = dataset
        self.granularity = granularity
        self.start_ts = start_ts
        #: file identity: changed mtime/size/inode invalidates cache +
        #: metadata.  The inode matters because the atomic write path
        #: (``os.replace``) produces a *new* file every flush: on
        #: filesystems with coarse mtime granularity a same-size
        #: rewrite inside one mtime tick would otherwise be invisible.
        self.mtime_ns = mtime_ns
        self.size = size
        self.ino = ino
        #: row count, learned on first parse (None = not parsed yet)
        self.rows = rows
        #: collection stats from the ``#stats`` line, learned on parse
        self.stats = stats

    @property
    def end_ts(self):
        return self.start_ts + GRANULARITIES[self.granularity]

    def same_file(self, mtime_ns, size, ino):
        return (self.mtime_ns == mtime_ns and self.size == size
                and self.ino == ino)

    def etag_token(self):
        """Identity token for HTTP ETags: name + mtime + size + inode
        pins the exact immutable file revision this response was built
        from (the inode distinguishes a same-size ``os.replace``
        rewrite landing inside one coarse mtime tick)."""
        return "%s:%d:%d:%d" % (os.path.basename(self.path),
                                self.mtime_ns, self.size, self.ino)


class _SeriesIndex:
    """One (dataset, granularity) series: refs sorted by ``start_ts``.

    Appends are O(1) and only mark the order dirty; the sort happens
    once per batch of changes (a refresh over a big directory, a
    manifest load) instead of once per inserted ref, and every query
    then answers with :func:`bisect.bisect` over the parallel
    ``starts`` list -- no linear scan of the ref list.
    """

    __slots__ = ("refs", "starts", "_dirty")

    def __init__(self):
        self.refs = []
        self.starts = []
        self._dirty = False

    def append(self, ref):
        self.refs.append(ref)
        self._dirty = True

    def remove(self, ref):
        self._ensure_sorted()
        i = bisect.bisect_left(self.starts, ref.start_ts)
        while i < len(self.refs) and \
                self.refs[i].start_ts == ref.start_ts:
            if self.refs[i].path == ref.path:
                del self.refs[i]
                del self.starts[i]
                return
            i += 1

    def _ensure_sorted(self):
        if self._dirty:
            self.refs.sort(key=lambda r: r.start_ts)
            self.starts = [r.start_ts for r in self.refs]
            self._dirty = False

    def sorted_refs(self):
        self._ensure_sorted()
        return self.refs

    def range(self, window_seconds, start_ts=None, end_ts=None):
        """Refs overlapping ``[start_ts, end_ts)`` -- the same
        half-open contract as
        :func:`~repro.observatory.tsv.window_overlaps`, answered with
        two bisections and a slice.  Windows of one granularity all
        have length *window_seconds*, so a window overlaps iff
        ``start_ts - window_seconds < ref.start_ts < end_ts``.
        """
        self._ensure_sorted()
        lo = 0
        hi = len(self.refs)
        if start_ts is not None:
            lo = bisect.bisect_right(self.starts,
                                     start_ts - window_seconds)
        if end_ts is not None:
            hi = bisect.bisect_left(self.starts, end_ts, lo)
        return self.refs[lo:hi]

    def __len__(self):
        return len(self.refs)


class _Flight:
    """One in-progress cold read, shared by every thread that wants
    the same path: the first arrival (the *leader*) parses; the rest
    wait on :attr:`done` and take the shared result, so N concurrent
    misses cost one parse instead of N."""

    __slots__ = ("done", "data", "error")

    def __init__(self):
        self.done = threading.Event()
        self.data = None
        self.error = None


class SeriesStore:
    """Query layer over one output directory of TSV time series.

    Parameters
    ----------
    directory:
        The ``replay``/``aggregate`` output directory.
    cache_windows:
        Maximum parsed windows held in the LRU (0 disables caching).
    follow:
        Re-scan the directory before every query so windows flushed by
        a live writer become visible.  When off (the default), the
        index is built once at construction and refreshed only via
        :meth:`refresh`.
    manifest:
        Persist the index to ``.observatory-manifest.json`` inside the
        directory (and load it on open).  Disable for read-only
        directories.
    use_segments:
        Prefer a fresh binary columnar sidecar
        (:mod:`~repro.observatory.segments`) over re-parsing the TSV
        on cold reads.  A sidecar whose recorded source identity does
        not match the live TSV is ignored, so this never changes an
        answer -- only how fast it is computed.
    telemetry:
        Optional :class:`~repro.observatory.telemetry.Telemetry`
        registry; the store registers a ``store`` component sampler
        (cache hit ratio, parses, window count).
    """

    def __init__(self, directory, cache_windows=256, follow=False,
                 manifest=True, use_segments=True, telemetry=None):
        self.directory = directory
        self.follow = bool(follow)
        self.cache_windows = int(cache_windows)
        self._use_manifest = bool(manifest)
        self.use_segments = bool(use_segments)
        #: path -> WindowRef, the live index
        self._index = {}
        #: dataset -> granularity -> [WindowRef sorted by start_ts]
        self._by_series = {}
        #: path -> TimeSeriesData, LRU order (oldest first)
        self._cache = OrderedDict()
        #: selection signature -> accumulated rows (see :meth:`accumulate`)
        self._accumulated = OrderedDict()
        #: path -> _Flight: cold reads in progress (single-flight)
        self._inflight = {}
        self._lock = threading.RLock()
        self._dirty = False
        #: monotonic time of the last on-disk manifest write (None =
        #: never written by this store)
        self._manifest_saved_at = None
        #: cache statistics (exposed via telemetry + bench_serve)
        self.cache_hits = 0
        self.cache_misses = 0
        self.parses = 0
        #: cold reads answered from a columnar segment (no text parse)
        self.segment_reads = 0
        self.refreshes = 0
        #: manifest files actually written to disk
        self.manifest_saves = 0
        #: cold reads that piggybacked on another thread's in-progress
        #: parse of the same path instead of duplicating it
        self.flight_waits = 0
        #: single-file reconciliations via :meth:`notify_flush`
        self.notifications = 0
        if self._use_manifest:
            self._load_manifest()
        self.refresh()
        if telemetry is not None and getattr(telemetry, "enabled", False):
            telemetry.register("store", self.telemetry_row,
                               deltas=("hits", "misses", "parses",
                                       "segment_reads", "refreshes",
                                       "notifications"))

    # -- index maintenance ---------------------------------------------

    def refresh(self):
        """Re-scan the directory and reconcile the index.

        New files are added, vanished files dropped, and files whose
        (mtime, size) changed -- a rewritten window -- are invalidated:
        their parsed cache entry and learned metadata are discarded.
        Returns the number of index entries that changed.
        """
        with self._lock:
            self.refreshes += 1
            seen = set()
            changed = 0
            try:
                entries = list(os.scandir(self.directory))
            except FileNotFoundError:
                entries = []
            for entry in entries:
                try:
                    dataset, gran, start = parse_filename(entry.name)
                except ValueError:
                    continue
                try:
                    st = entry.stat()
                except OSError:
                    continue  # vanished between scandir and stat
                path = entry.path
                seen.add(path)
                ref = self._index.get(path)
                if ref is not None and ref.same_file(st.st_mtime_ns,
                                                     st.st_size,
                                                     st.st_ino):
                    continue
                changed += 1
                self._cache.pop(path, None)
                self._set_ref(WindowRef(path, dataset, gran, start,
                                        st.st_mtime_ns, st.st_size,
                                        st.st_ino))
            for path in list(self._index):
                if path not in seen:
                    changed += 1
                    self._drop_ref(path)
            if changed:
                self._dirty = True
                self._maybe_save_manifest()
            return changed

    def notify_flush(self, path):
        """Reconcile exactly one flushed file into the index.

        The live-daemon hook: a writer that knows which window it just
        flushed calls this instead of forcing a full :meth:`refresh`
        directory scan per flush, so index maintenance is O(1) per
        window rather than O(indexed windows).  Stats the file, drops
        any stale cache entry, and returns the fresh
        :class:`WindowRef` (``None`` when the path does not parse as a
        series file or has vanished).  The manifest is marked dirty
        but not rewritten -- call :meth:`flush_manifest` at shutdown.
        """
        name = os.path.basename(path)
        try:
            dataset, gran, start = parse_filename(name)
        except ValueError:
            return None
        path = os.path.join(self.directory, name)
        try:
            st = os.stat(path)
        except OSError:
            with self._lock:
                if path in self._index:
                    self._drop_ref(path)
                    self._dirty = True
            return None
        with self._lock:
            self.notifications += 1
            ref = self._index.get(path)
            if ref is not None and ref.same_file(st.st_mtime_ns,
                                                 st.st_size, st.st_ino):
                return ref
            self._cache.pop(path, None)
            ref = WindowRef(path, dataset, gran, start,
                            st.st_mtime_ns, st.st_size, st.st_ino)
            self._set_ref(ref)
            self._dirty = True
            return ref

    def _set_ref(self, ref):
        old = self._index.get(ref.path)
        if old is not None:
            self._remove_from_series(old)
        self._index[ref.path] = ref
        self._by_series.setdefault(ref.dataset, {}).setdefault(
            ref.granularity, _SeriesIndex()).append(ref)

    def _drop_ref(self, path):
        ref = self._index.pop(path, None)
        self._cache.pop(path, None)
        if ref is not None:
            self._remove_from_series(ref)

    def _remove_from_series(self, ref):
        grans = self._by_series.get(ref.dataset)
        if not grans:
            return
        series = grans.get(ref.granularity)
        if series is None:
            return
        series.remove(ref)
        if not series:
            del grans[ref.granularity]
            if not grans:
                del self._by_series[ref.dataset]

    # -- manifest persistence ------------------------------------------

    @property
    def manifest_path(self):
        return os.path.join(self.directory, MANIFEST_NAME)

    def _load_manifest(self):
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as fh:
                blob = json.load(fh)
        except (OSError, ValueError):
            return
        if not isinstance(blob, dict) or \
                blob.get("version") != MANIFEST_VERSION:
            return
        for name, meta in blob.get("windows", {}).items():
            try:
                dataset, gran, start = parse_filename(name)
                ref = WindowRef(
                    os.path.join(self.directory, name), dataset, gran,
                    start, int(meta["mtime_ns"]), int(meta["size"]),
                    ino=int(meta["ino"]),
                    rows=meta.get("rows"), stats=meta.get("stats"))
            except (KeyError, TypeError, ValueError):
                continue
            self._set_ref(ref)

    def _save_manifest(self):
        """Persist the index atomically (best effort: a read-only
        directory downgrades to an in-memory index, not an error)."""
        if not self._use_manifest or not self._dirty:
            return
        windows = {
            os.path.basename(ref.path): {
                "mtime_ns": ref.mtime_ns,
                "size": ref.size,
                "ino": ref.ino,
                "rows": ref.rows,
                "stats": ref.stats,
            }
            for ref in self._index.values()
        }
        blob = {"version": MANIFEST_VERSION, "windows": windows}
        tmp = "%s.tmp.%d" % (self.manifest_path, os.getpid())
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(blob, fh, separators=(",", ":"))
            os.replace(tmp, self.manifest_path)
            self._dirty = False
            self.manifest_saves += 1
            self._manifest_saved_at = time.monotonic()
        except OSError:
            try:
                os.remove(tmp)
            except OSError:
                pass

    def _maybe_save_manifest(self):
        """Debounced manifest write for :meth:`refresh`.

        A follow-mode store re-scans before every query; while a live
        writer keeps appending windows, every scan finds changes.
        Rewriting the whole O(windows) manifest JSON per query is pure
        write amplification, so refresh-triggered saves are rate
        limited to one per :data:`MANIFEST_SAVE_INTERVAL` seconds; the
        index stays dirty in between and :meth:`flush_manifest`
        (shutdown) always persists the final state.
        """
        if self._manifest_saved_at is not None and \
                time.monotonic() - self._manifest_saved_at < \
                MANIFEST_SAVE_INTERVAL:
            return
        self._save_manifest()

    def flush_manifest(self):
        """Write learned metadata (row counts, stats) back to disk."""
        with self._lock:
            self._save_manifest()

    # -- query primitives ----------------------------------------------

    def datasets(self):
        """Summary of everything indexed, without opening any file:
        ``{dataset: {granularity: {windows, first_ts, last_ts}}}``."""
        self._maybe_refresh()
        with self._lock:
            out = {}
            for dataset, grans in sorted(self._by_series.items()):
                out[dataset] = {}
                for gran, series in grans.items():
                    refs = series.sorted_refs()
                    out[dataset][gran] = {
                        "windows": len(refs),
                        "first_ts": refs[0].start_ts,
                        "last_ts": refs[-1].start_ts,
                    }
            return out

    def select(self, dataset, granularity="minutely",
               start_ts=None, end_ts=None):
        """Index entries (:class:`WindowRef`) overlapping the range,
        sorted by start time.  No file is opened; the range is
        answered by bisection on ``start_ts``, not a scan."""
        self._maybe_refresh()
        with self._lock:
            series = self._by_series.get(dataset, {}).get(granularity)
            if series is None:
                return []
            if start_ts is None and end_ts is None:
                return list(series.sorted_refs())
            return series.range(GRANULARITIES[granularity],
                                start_ts, end_ts)

    def read(self, dataset, granularity="minutely",
             start_ts=None, end_ts=None):
        """Parsed windows for the range, served through the LRU.

        Drop-in replacement for
        :func:`~repro.observatory.tsv.read_series` -- returns the same
        time-ordered :class:`~repro.observatory.tsv.TimeSeriesData`
        list the analysis modules already consume.
        """
        return [self._read_ref(ref)
                for ref in self.select(dataset, granularity,
                                       start_ts, end_ts)]

    def read_window(self, ref):
        """Parse (or fetch from cache) one indexed window."""
        return self._read_ref(ref)

    # -- streaming iterators -------------------------------------------

    def iter_windows(self, refs):
        """Yield parsed windows for *refs* one at a time through the
        LRU.

        The incremental read path: a consumer (the chunked ``/series``
        encoder) holds one parsed window at a time instead of the
        whole range, so memory stays O(LRU), not O(span).  Cold reads
        run *outside* the store lock -- a slow parse must not block
        unrelated queries -- with per-path single-flight, so N
        concurrent consumers missing on the same window share one
        parse instead of duplicating it.  Abandoning the generator
        mid-range (an HTTP client disconnecting mid-stream) leaves the
        LRU with only complete entries: a window is inserted only
        after its read finished.
        """
        for ref in refs:
            yield self._read_ref(ref)

    def iter_range(self, dataset, granularity="minutely",
                   start_ts=None, end_ts=None):
        """Streaming counterpart of :meth:`read`: a generator of
        parsed windows over the range, in time order."""
        return self.iter_windows(self.select(dataset, granularity,
                                             start_ts, end_ts))

    def iter_topk_windows(self, dataset, n=10, by="hits",
                          granularity="minutely", start_ts=None,
                          end_ts=None):
        """Per-window top-*n* stream: yields ``(start_ts, top)`` per
        window in the range, where *top* is the window's *n* heaviest
        ``(key, row)`` pairs by column *by*.  One window is ranked at
        a time (``heapq.nlargest``), so a long span never materializes
        beyond the current window."""
        n = max(int(n), 0)
        for data in self.iter_range(dataset, granularity,
                                    start_ts, end_ts):
            top = heapq.nlargest(
                n, data.rows, key=lambda kv: kv[1].get(by, 0))
            yield data.start_ts, top

    def read_path(self, path):
        """Read one window by file path through the LRU.

        A path the index has not met yet triggers one reconciliation
        scan; a path outside the directory entirely falls back to a
        plain uncached parse (the :class:`TimeAggregator` contract).
        """
        with self._lock:
            ref = self._index.get(path)
        if ref is None:
            self.refresh()
            with self._lock:
                ref = self._index.get(path)
        if ref is None:
            return read_tsv(path)
        return self._read_ref(ref)

    def _read_ref(self, ref):
        path = ref.path
        with self._lock:
            data = self._cache.get(path)
            if data is not None:
                self.cache_hits += 1
                self._cache.move_to_end(path)
                return data
            flight = self._inflight.get(path)
            if flight is None:
                flight = _Flight()
                self._inflight[path] = flight
                leader = True
                self.cache_misses += 1
            else:
                leader = False
        if not leader:
            # another thread is already reading this exact path: wait
            # for its result instead of duplicating the parse
            flight.done.wait()
            if flight.error is not None:
                raise flight.error
            with self._lock:
                self.cache_hits += 1
                self.flight_waits += 1
            return flight.data
        try:
            data = self._segment_data(ref)
            from_segment = data is not None
            if data is None:
                data = read_tsv(path)
        except BaseException as exc:
            with self._lock:
                self._inflight.pop(path, None)
            flight.error = exc
            flight.done.set()
            raise
        with self._lock:
            if from_segment:
                self.segment_reads += 1
            else:
                self.parses += 1
            if ref.rows != len(data.rows) or ref.stats != data.stats:
                ref.rows = len(data.rows)
                ref.stats = dict(data.stats)
                self._dirty = True
            if self.cache_windows > 0:
                self._cache[path] = data
                self._cache.move_to_end(path)
                while len(self._cache) > self.cache_windows:
                    self._cache.popitem(last=False)
            self._inflight.pop(path, None)
        flight.data = data
        flight.done.set()
        return data

    def _segment_data(self, ref):
        """Cold-read fast path: materialize *ref* from a fresh sidecar
        segment (no text parse), or ``None`` to fall back to TSV."""
        if not self.use_segments:
            return None
        reader = segmentfmt.open_if_fresh(
            ref.path, (ref.mtime_ns, ref.size, ref.ino))
        if reader is None:
            return None
        with reader:
            return reader.to_data()

    def accumulate(self, dataset, granularity="minutely",
                   start_ts=None, end_ts=None):
        """Whole-range per-key rows (counters summed, gauges
        hits-weighted) -- the accumulation every ranking and
        distribution analysis starts from.

        Accumulations are memoized by the exact file revisions they
        were computed from (the same ``mtime + size`` identity that
        backs the window LRU and HTTP ETags), so a repeated ``/topk``
        over unchanged windows is a dictionary lookup, not an
        O(windows x keys) re-merge.  Treat the returned mapping as
        read-only -- it is shared between callers.

        Windows already in the LRU fold row-major from the parsed
        cache; cold windows with a fresh sidecar segment fold
        column-major straight off the mmap (no per-row dicts are ever
        built), and consecutive segment windows carrying the identical
        ordered key tuple -- recognized by comparing the raw encoded
        key bytes, no string decode -- batch into one clustered run of
        up to :data:`ACCUMULATE_RUN` windows so counters collapse to
        C-level sums; everything else takes one bounded text parse.
        All fold orders apply identical operations per ``(key,
        column)`` cell (:class:`~repro.analysis.seriesops.Accumulator`),
        so the mix is bit-identical to a pure row-major pass.
        """
        from repro.analysis.seriesops import Accumulator

        refs = self.select(dataset, granularity, start_ts, end_ts)
        signature = (dataset, granularity,
                     tuple(ref.etag_token() for ref in refs))
        with self._lock:
            rows = self._accumulated.get(signature)
            if rows is not None:
                self._accumulated.move_to_end(signature)
                return rows
        # stream one window (or one bounded clustered run) at a time:
        # accumulating a year-long range must not hold every parsed
        # window at once
        acc = Accumulator()
        run_sig = None
        run_keys = None
        run_cols = None
        run_vals = []
        segment_reads = 0

        def flush_run():
            nonlocal run_sig, run_keys, run_cols, run_vals
            if not run_vals:
                return
            if len(run_vals) == 1:
                acc.fold_columns(run_keys, run_cols, run_vals[0])
            else:
                acc.fold_columns_run(run_keys, run_cols, run_vals)
            run_sig = None
            run_keys = None
            run_cols = None
            run_vals = []

        for ref in refs:
            with self._lock:
                data = self._cache.get(ref.path)
                if data is not None:
                    self.cache_hits += 1
                    self._cache.move_to_end(ref.path)
            if data is not None:
                flush_run()  # window order is the fold order
                acc.fold_rows(data.rows)
                continue
            if self.use_segments:
                reader = segmentfmt.open_if_fresh(
                    ref.path, (ref.mtime_ns, ref.size, ref.ino))
                if reader is not None:
                    with reader:
                        sig = reader.key_signature()
                        cols = reader.columns
                        if run_vals and (sig != run_sig
                                         or cols != run_cols
                                         or len(run_vals) >=
                                         ACCUMULATE_RUN):
                            flush_run()
                        if not run_vals:
                            run_sig = sig
                            run_cols = cols
                            run_keys = reader.keys()
                        run_vals.append(reader.columns_values())
                        n_rows = reader.n_rows
                        stats = reader.stats
                    segment_reads += 1
                    if ref.rows != n_rows or ref.stats != stats:
                        with self._lock:
                            ref.rows = n_rows
                            ref.stats = dict(stats)
                            self._dirty = True
                    continue
            flush_run()
            acc.fold_rows(self._read_ref(ref).rows)
        flush_run()
        if segment_reads:
            with self._lock:
                self.cache_misses += segment_reads
                self.segment_reads += segment_reads
        rows = acc.finish()
        with self._lock:
            self._accumulated[signature] = rows
            self._accumulated.move_to_end(signature)
            while len(self._accumulated) > ACCUMULATE_CACHE:
                self._accumulated.popitem(last=False)
        return rows

    def topk(self, dataset, n=10, by="hits", granularity="minutely",
             start_ts=None, end_ts=None):
        """Top-*n* keys of *dataset* over the range, ranked by column
        *by*: list of ``(key, row_dict)`` heaviest first."""
        from repro.analysis.seriesops import ranked_keys

        rows = self.accumulate(dataset, granularity, start_ts, end_ts)
        return [(key, rows[key])
                for key in ranked_keys(rows, by=by)[:max(int(n), 0)]]

    def key_series(self, dataset, key, column="hits",
                   granularity="minutely", start_ts=None, end_ts=None):
        """One key's per-window time series: ``[(start_ts, value)]``
        over every window in the range (0 where the key is absent)."""
        series = []
        for data in self.iter_range(dataset, granularity,
                                    start_ts, end_ts):
            row = data.row_map().get(key)
            series.append((data.start_ts,
                           row.get(column, 0) if row is not None else 0))
        return series

    def has_key(self, dataset, key, granularity="minutely",
                start_ts=None, end_ts=None):
        """Does *key* appear in any window of the range?"""
        for data in self.iter_range(dataset, granularity,
                                    start_ts, end_ts):
            if key in data.row_map():
                return True
        return False

    # -- bookkeeping ---------------------------------------------------

    def _maybe_refresh(self):
        if self.follow:
            self.refresh()

    def cache_info(self):
        with self._lock:
            total = self.cache_hits + self.cache_misses
            return {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "hit_ratio": self.cache_hits / total if total else 0.0,
                "cached_windows": len(self._cache),
                "capacity": self.cache_windows,
                "indexed_windows": len(self._index),
                "notifications": self.notifications,
                "segment_reads": self.segment_reads,
                "flight_waits": self.flight_waits,
                "manifest_saves": self.manifest_saves,
            }

    def telemetry_row(self, now):
        """Pull-sampler for the telemetry registry (``store`` row)."""
        info = self.cache_info()
        return {
            "hits": info["hits"],
            "misses": info["misses"],
            "hit_ratio": round(info["hit_ratio"], 4),
            "cached_windows": info["cached_windows"],
            "indexed_windows": info["indexed_windows"],
            "parses": self.parses,
            "segment_reads": self.segment_reads,
            "refreshes": self.refreshes,
            "notifications": self.notifications,
        }

    def __len__(self):
        with self._lock:
            return len(self._index)

    def __repr__(self):
        return "SeriesStore(%r, windows=%d, follow=%r)" % (
            self.directory, len(self), self.follow)
