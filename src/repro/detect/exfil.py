"""Information-based heavy hitters for DNS exfiltration.

Ozery, Hendler and Shabtai (arXiv:2307.02614) observe that
exfiltration-over-DNS is bounded by the *information content* a domain
receives, not its query count: a tunnel moving data must push
high-entropy qnames at volume, while high-volume legitimate domains
repeat low-entropy names.  The detector therefore scores each eSLD by
``sum over qnames of (character entropy x subdomain length)`` per
window and flags keys whose information intake jumps over their own
EWMA baseline.

The accumulator is a plain dict ``esld -> [queries, milli_bits]``;
per-qname information is quantized to integer milli-bits *before*
summing so shard merges are exact integer additions (order-invariant,
hence bit-identical to a single-process pass).  Memory is bounded by
the number of distinct eSLDs per window, and emitted rows are capped
at ``topn``.
"""

from repro.detect.base import Detector, qname_info_millibits


class ExfilDetector(Detector):
    """Per-eSLD information-content scoring (bits per window)."""

    name = "exfil"

    def __init__(self, psl=None, min_bits=5000.0, ratio=4.0, alpha=0.3,
                 warmup=2, topn=20):
        super().__init__(psl=psl, min_value=min_bits, ratio=ratio,
                         alpha=alpha, warmup=warmup, topn=topn)
        self._acc = {}
        #: normalized qname -> quantized information content; benign
        #: names repeat every window, tunnel payloads never do
        self._info_memo = {}

    def observe(self, txn):
        esld = self.esld(txn.qname)
        if esld is None:
            return
        norm = txn.qname.lower().rstrip(".")
        self.observe_prepared(txn, esld, norm, 0)

    def observe_prepared(self, txn, esld, norm, qname_hash):
        cell = self._acc.get(esld)
        if cell is None:
            cell = self._acc[esld] = [0, 0]
        cell[0] += 1
        millibits = self._info_memo.get(norm)
        if millibits is None:
            if len(norm) > len(esld) and norm.endswith(esld):
                sub = norm[: -(len(esld) + 1)]
            else:
                sub = ""
            millibits = qname_info_millibits(sub)
            if len(self._info_memo) >= 1 << 16:
                self._info_memo.clear()
            self._info_memo[norm] = millibits
        cell[1] += millibits

    def take_state(self):
        acc, self._acc = self._acc, {}
        return ("exfil-v1", acc)

    def absorb(self, state):
        tag, acc = state
        if tag != "exfil-v1":
            raise ValueError("unknown exfil state %r" % (tag,))
        mine = self._acc
        for esld, (queries, millibits) in acc.items():
            cell = mine.get(esld)
            if cell is None:
                mine[esld] = [queries, millibits]
            else:
                cell[0] += queries
                cell[1] += millibits

    def cut(self, start_ts, end_ts):
        acc, self._acc = self._acc, {}
        queries = {esld: cell[0] for esld, cell in acc.items()}
        bits = {esld: cell[1] / 1000.0 for esld, cell in acc.items()}
        ranked, flagged = self.score_keys(bits)
        rows = []
        for key, value, prior, flag in ranked:
            esld = key[len(self.name) + 1:]
            rows.append((key, {
                "queries": queries[esld],
                "bits": round(value, 2),
                "baseline": round(prior, 2),
                "flagged": flag,
            }))
        max_bits = max(bits.values()) if bits else 0.0
        rows.append((self.name, {
            "keys": len(acc),
            "flagged": flagged,
            "max_bits": round(max_bits, 2),
        }))
        return rows
