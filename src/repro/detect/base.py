"""Detector protocol and the accumulator/scorer split.

A :class:`Detector` watches the transaction stream and, at every
window cut, emits rows into the ``_detector`` meta-dataset (the same
TSV/segments/aggregation/serving chain the ``_platform`` telemetry
rides).  Three concrete detectors live in this package:

* ``exfil`` -- information-based heavy hitters for DNS exfiltration
  (Ozery et al., arXiv:2307.02614): per-eSLD information content
  (qname entropy x query volume) against a per-key EWMA baseline.
* ``ddos`` -- distinct heavy hitters for random-subdomain DDoS (Afek
  et al., arXiv:1612.02636) on a
  :class:`~repro.sketches.distinct.DistinctSpaceSaving` sketch.
* ``noh`` -- newly-observed-hostname tracking for tunneling, backed
  by rotating Bloom generations.

Sharding and bit-identity
-------------------------
Every detector is split into a per-window **accumulator** and a
cross-window **scorer**.  The accumulator ingests transactions and is
*mergeable with order-invariant exact operations only* -- integer
sums (per-qname entropy is quantized to integer milli-bits before
summing), HLL register max, set union.  Shard workers run accumulators
and ship them at every cut as :class:`DetectorWindowState` through the
same transport as the tracker states; the coordinator absorbs them in
shard order and scores.  The scorer (EWMA baselines, Bloom
generations, flag logic) runs only where windows are emitted -- the
single-process :class:`~repro.observatory.pipeline.Observatory` or the
sharded coordinator -- so its floating-point path is single-threaded
and the ``_detector`` series is bit-identical between a sharded run
and a single process.
"""

import math

from repro.dnswire.psl import default_psl

#: the detector meta-dataset, stored/served like any other dataset
DETECTOR_DATASET = "_detector"

#: canonical detector order (also the registry iteration order)
DEFAULT_DETECTORS = ("exfil", "ddos", "noh")


class DetectorWindowState:
    """One detector's accumulator for one window, shipped shard ->
    coordinator next to the tracker's ShardWindowState."""

    __slots__ = ("name", "start_ts", "payload")

    dataset = DETECTOR_DATASET

    def __init__(self, name, start_ts, payload):
        self.name = name
        self.start_ts = start_ts
        self.payload = payload

    def __repr__(self):
        return "DetectorWindowState(%s, %d)" % (self.name, self.start_ts)


def qname_info_millibits(subdomain):
    """Information content of one qname's subdomain part, in integer
    milli-bits: Shannon character entropy times the subdomain length.

    The quantization matters: shards sum these per eSLD, and integer
    addition is order-invariant where float addition is not -- the
    foundation of the sharded/single bit-identity guarantee."""
    n = len(subdomain)
    if n == 0:
        return 0
    counts = {}
    for ch in subdomain:
        counts[ch] = counts.get(ch, 0) + 1
    entropy = 0.0
    for c in counts.values():
        p = c / n
        entropy -= p * math.log2(p)
    return int(round(entropy * n * 1000.0))


class Detector:
    """Base class: eSLD extraction plus the shared EWMA flag logic.

    Subclasses implement ``observe`` (feed the accumulator),
    ``take_state``/``absorb`` (ship/merge accumulators across shards)
    and ``cut`` (score the window and emit rows).  Emitted row keys
    are ``<name>.<esld>`` plus one summary row keyed by the bare
    detector name -- the component the ``DETECTOR_RULES`` alert rules
    match on.
    """

    name = "detector"

    def __init__(self, psl=None, min_value=0.0, ratio=4.0, alpha=0.3,
                 warmup=2, topn=20):
        psl = psl if psl is not None else default_psl()
        self._effective_sld = psl.effective_sld
        self._effective_tld = psl.effective_tld
        #: absolute floor a window value must reach to flag
        self.min_value = float(min_value)
        #: multiple of the EWMA baseline a window value must reach
        self.ratio = float(ratio)
        #: EWMA smoothing factor for the per-key baseline
        self.alpha = float(alpha)
        #: windows to observe before flagging (baseline warm-up)
        self.warmup = int(warmup)
        #: per-key rows emitted per window (summary row always emitted)
        self.topn = int(topn)
        self._baseline = {}
        self._windows = 0

    # -- stream side (accumulator) -------------------------------------

    def esld(self, qname):
        """Registrable domain of *qname* (eTLD fallback, like the
        qname dataset's key function), or None."""
        esld = self._effective_sld(qname)
        if esld is None:
            esld = self._effective_tld(qname)
        return esld

    def subdomain(self, qname, esld):
        """The part of *qname* below *esld* (empty at the apex)."""
        qname = qname.lower().rstrip(".")
        if len(qname) > len(esld) and qname.endswith(esld):
            return qname[: -(len(esld) + 1)]
        return ""

    def observe(self, txn):
        raise NotImplementedError

    def observe_batch(self, txns):
        observe = self.observe
        for txn in txns:
            observe(txn)

    def observe_prepared(self, txn, esld, norm, qname_hash):
        """Observe with the per-transaction prep already done: a
        non-None *esld*, the normalized qname and its 64-bit hash
        (what :class:`~repro.detect.DetectorSet` computes once and
        shares).  Must emit exactly what :meth:`observe` would; the
        default falls back to it."""
        self.observe(txn)

    # -- shard transport ------------------------------------------------

    def take_state(self):
        """Export and reset the window accumulator (shard flush)."""
        raise NotImplementedError

    def absorb(self, state):
        """Merge a shipped accumulator into ours (coordinator)."""
        raise NotImplementedError

    # -- scorer ---------------------------------------------------------

    def cut(self, start_ts, end_ts):
        """Score the window, update baselines, reset; return rows."""
        raise NotImplementedError

    def score_keys(self, values):
        """Shared flag logic over ``{esld: value}``; returns
        ``(rows, flagged)`` with rows sorted by (-value, esld) and
        truncated to ``topn``.

        A key flags when its window value reaches both the absolute
        ``min_value`` floor and ``ratio`` times its EWMA baseline.
        Baselines update only from *unflagged* windows, so a sustained
        attack cannot launder itself into its own baseline; the first
        ``warmup`` windows never flag (every baseline starts cold).
        """
        baseline = self._baseline
        warm = self._windows >= self.warmup
        rows = []
        flagged = 0
        for esld in sorted(values):
            value = values[esld]
            base = baseline.get(esld)
            prior = 0.0 if base is None else base
            flag = 1 if (warm and value >= self.min_value
                         and value >= self.ratio * prior) else 0
            if flag:
                flagged += 1
            else:
                baseline[esld] = value if base is None else \
                    self.alpha * value + (1.0 - self.alpha) * base
            rows.append(("%s.%s" % (self.name, esld), value, prior, flag))
        self._windows += 1
        rows.sort(key=lambda r: (-r[1], r[0]))
        return rows[: self.topn], flagged
