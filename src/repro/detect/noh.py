"""Newly-observed-hostname tracking for DNS tunneling.

A tunnel encodes its channel in fresh hostnames: every query carries a
name the resolver population has never asked before.  The detector
remembers the recently-seen hostname universe in rotating Bloom
generations and, per window, counts each eSLD's *newly observed*
hostnames; an eSLD whose NOH count jumps over its own EWMA baseline is
flagged.

Shards cannot share a Bloom filter mid-window, so novelty is *not*
decided at observe time.  The accumulator only collects per-eSLD sets
of 64-bit hostname hashes (exact, union-mergeable); the scorer -- the
single place windows are emitted -- owns the Bloom generations and
replays each window's hashes against them in sorted order at cut
time.  Sorted replay plus set-union accumulators make the sharded
``_detector`` output bit-identical to a single process.
"""

from repro.detect.base import Detector
from repro.sketches._hashing import hash64
from repro.sketches.bloom import RotatingBloomFilter


class NohDetector(Detector):
    """Per-eSLD newly-observed-hostname counting (tunneling)."""

    name = "noh"

    def __init__(self, psl=None, min_noh=120.0, ratio=4.0, alpha=0.3,
                 warmup=2, topn=20, capacity=1 << 17, error_rate=0.01,
                 generation_windows=10):
        super().__init__(psl=psl, min_value=min_noh, ratio=ratio,
                         alpha=alpha, warmup=warmup, topn=topn)
        self._acc = {}
        #: hostname memory: each generation holds *generation_windows*
        #: windows, membership spans one-to-two generations
        self.generation_windows = int(generation_windows)
        self._bloom = RotatingBloomFilter(capacity=capacity,
                                          error_rate=error_rate,
                                          rotate_interval=float("inf"))
        self._cuts = 0

    def observe(self, txn):
        esld = self.esld(txn.qname)
        if esld is None:
            return
        h = hash64(txn.qname.lower().rstrip("."))
        self.observe_prepared(txn, esld, None, h)

    def observe_prepared(self, txn, esld, norm, qname_hash):
        hashes = self._acc.get(esld)
        if hashes is None:
            self._acc[esld] = {qname_hash}
        else:
            hashes.add(qname_hash)

    def take_state(self):
        acc, self._acc = self._acc, {}
        return ("noh-v1", acc)

    def absorb(self, state):
        tag, acc = state
        if tag != "noh-v1":
            raise ValueError("unknown noh state %r" % (tag,))
        mine = self._acc
        for esld, hashes in acc.items():
            seen = mine.get(esld)
            if seen is None:
                mine[esld] = set(hashes)
            else:
                seen |= hashes
        return self

    def cut(self, start_ts, end_ts):
        acc, self._acc = self._acc, {}
        bloom = self._bloom
        noh = {}
        distinct = {}
        # Sorted replay: iteration order must not depend on how the
        # stream was sharded, or Bloom insert order (and with it the
        # rare false-positive pattern) would differ between runs.
        for esld in sorted(acc):
            hashes = acc[esld]
            fresh = 0
            for h in sorted(hashes):
                if not bloom.add(b"%016x" % h):
                    fresh += 1
            noh[esld] = fresh
            distinct[esld] = len(hashes)
        self._cuts += 1
        if self._cuts % self.generation_windows == 0:
            bloom._rotate(start_ts)
        ranked, flagged = self.score_keys(noh)
        rows = []
        for key, value, prior, flag in ranked:
            esld = key[len(self.name) + 1:]
            rows.append((key, {
                "noh": int(value),
                "distinct": distinct[esld],
                "baseline": round(prior, 1),
                "flagged": flag,
            }))
        max_noh = max(noh.values()) if noh else 0
        rows.append((self.name, {
            "keys": len(acc),
            "flagged": flagged,
            "max_noh": int(max_noh),
            "generations": bloom.rotations,
        }))
        return rows
