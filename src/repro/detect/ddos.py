"""Distinct heavy hitters for random-subdomain (water-torture) DDoS.

Afek et al. (arXiv:1612.02636): a water-torture attack floods the
victim's authoritative servers with queries for random nonexistent
subdomains, so per-eSLD *query volume* may look unremarkable at a
vantage point while the number of *distinct* subdomains explodes.
The detector ranks eSLDs by distinct-FQDN count per window on a
:class:`~repro.sketches.distinct.DistinctSpaceSaving` sketch
(Space-Saving slots carrying a small HyperLogLog each) and flags keys
whose distinct count jumps over their own EWMA baseline.

The sketch is the accumulator: shards ship theirs at every cut and
the coordinator merges them (HLL register max + error-base addition),
which is exact -- and therefore bit-identical to single-process --
while the slot capacity does not bind.
"""

from repro.detect.base import Detector
from repro.sketches._hashing import hash64
from repro.sketches.distinct import DistinctSpaceSaving


class DdosDetector(Detector):
    """Per-eSLD distinct-subdomain counting (water-torture DDoS)."""

    name = "ddos"

    def __init__(self, psl=None, min_distinct=400.0, ratio=4.0,
                 alpha=0.3, warmup=2, topn=20, capacity=2048,
                 precision=11):
        super().__init__(psl=psl, min_value=min_distinct, ratio=ratio,
                         alpha=alpha, warmup=warmup, topn=topn)
        self.capacity = int(capacity)
        self.precision = int(precision)
        self._sketch = DistinctSpaceSaving(self.capacity, self.precision)

    def observe(self, txn):
        esld = self.esld(txn.qname)
        if esld is None:
            return
        self._sketch.offer(esld, hash64(txn.qname.lower().rstrip(".")))

    def observe_prepared(self, txn, esld, norm, qname_hash):
        self._sketch.offer(esld, qname_hash)

    def take_state(self):
        sketch = self._sketch
        self._sketch = DistinctSpaceSaving(self.capacity, self.precision)
        return ("ddos-v1", sketch)

    def absorb(self, state):
        tag, sketch = state
        if tag != "ddos-v1":
            raise ValueError("unknown ddos state %r" % (tag,))
        self._sketch.merge(sketch)

    def cut(self, start_ts, end_ts):
        sketch = self._sketch
        self._sketch = DistinctSpaceSaving(self.capacity, self.precision)
        distinct = dict(sketch.top())
        ranked, flagged = self.score_keys(distinct)
        rows = []
        for key, value, prior, flag in ranked:
            rows.append((key, {
                "distinct": int(value),
                "baseline": round(prior, 1),
                "flagged": flag,
            }))
        max_distinct = max(distinct.values()) if distinct else 0
        rows.append((self.name, {
            "keys": len(distinct),
            "flagged": flagged,
            "max_distinct": int(max_distinct),
            "evictions": sketch.evictions,
        }))
        return rows
