"""Streaming abuse detection on the sketch layer.

See :mod:`repro.detect.base` for the detector protocol and the
accumulator/scorer split that keeps sharded runs bit-identical to a
single process.  The package exposes a small registry so CLI flags
(``--detectors``) and the daemon can build detectors by name::

    detectors = build_detectors(True)          # all defaults
    detectors = build_detectors(["ddos"])      # a subset

Detector output rides the ``_detector`` meta-dataset;
``DETECTOR_RULES`` in :mod:`repro.observatory.alerts` turn its summary
rows into ``/platform/health`` verdicts.
"""

from repro.detect.base import (DEFAULT_DETECTORS, DETECTOR_DATASET,
                               Detector, DetectorWindowState,
                               qname_info_millibits)
from repro.detect.ddos import DdosDetector
from repro.detect.exfil import ExfilDetector
from repro.detect.noh import NohDetector
from repro.sketches._hashing import hash64

#: shared qname-prep memo bound (raw qname -> (esld, norm, hash));
#: benign traffic repeats names heavily, attack floods churn it
_MEMO_MAX = 1 << 16

#: name -> class registry; iteration order is the canonical emit order
REGISTRY = {
    "exfil": ExfilDetector,
    "ddos": DdosDetector,
    "noh": NohDetector,
}


def build_detectors(spec, psl=None):
    """Build a :class:`DetectorSet` from *spec*.

    *spec* may be True (all registered detectors), an iterable of
    registry names and/or ready :class:`Detector` instances, or a
    falsy value (returns None).  Names are instantiated with their
    default thresholds; pass instances to customize.
    """
    if not spec:
        return None
    if spec is True:
        spec = DEFAULT_DETECTORS
    detectors = []
    for item in spec:
        if isinstance(item, Detector):
            detectors.append(item)
            continue
        try:
            cls = REGISTRY[item]
        except KeyError:
            raise ValueError("unknown detector %r (have: %s)"
                             % (item, ", ".join(sorted(REGISTRY))))
        detectors.append(cls(psl=psl))
    return DetectorSet(detectors)


class DetectorSet:
    """A fixed-order group of detectors sharing the window lifecycle."""

    def __init__(self, detectors):
        self.detectors = list(detectors)
        by_name = {}
        for det in self.detectors:
            if det.name in by_name:
                raise ValueError("duplicate detector %r" % det.name)
            by_name[det.name] = det
        self._by_name = by_name
        #: the hot-path prep (one PSL walk + one qname hash per
        #: transaction, shared by every detector) is only sound when
        #: all members resolve eSLDs identically
        self._shared_psl = bool(self.detectors) and all(
            det._effective_sld is self.detectors[0]._effective_sld
            for det in self.detectors)
        self._memo = {}

    def __iter__(self):
        return iter(self.detectors)

    def __len__(self):
        return len(self.detectors)

    @property
    def names(self):
        return [det.name for det in self.detectors]

    def observe(self, txn):
        self.observe_batch((txn,))

    def observe_batch(self, txns):
        """Feed transactions to every detector.

        When all detectors share one PSL, the eSLD split, the
        normalized qname and its 64-bit hash are computed once per
        transaction (memoized across repeats) and handed to each
        detector's ``observe_prepared`` -- the same values the plain
        ``observe`` path derives per detector, so both paths emit
        identical windows."""
        if not self._shared_psl:
            for det in self.detectors:
                det.observe_batch(txns)
            return
        detectors = self.detectors
        esld_of = detectors[0].esld
        memo = self._memo
        for txn in txns:
            qname = txn.qname
            prep = memo.get(qname)
            if prep is None:
                norm = qname.lower().rstrip(".")
                if len(memo) >= _MEMO_MAX:
                    memo.clear()
                prep = memo[qname] = (esld_of(norm), norm, hash64(norm))
            esld = prep[0]
            if esld is None:
                continue
            for det in detectors:
                det.observe_prepared(txn, esld, prep[1], prep[2])

    def take_states(self, start_ts):
        """Window states for the shard transport, one per detector."""
        return [DetectorWindowState(det.name, start_ts, det.take_state())
                for det in self.detectors]

    def absorb(self, state):
        det = self._by_name.get(state.name)
        if det is None:
            raise ValueError("state for unknown detector %r" % state.name)
        det.absorb(state.payload)

    def cut(self, start_ts, end_ts):
        """Score the window across all detectors; concatenated rows."""
        rows = []
        for det in self.detectors:
            rows.extend(det.cut(start_ts, end_ts))
        return rows


__all__ = [
    "DEFAULT_DETECTORS",
    "DETECTOR_DATASET",
    "Detector",
    "DetectorSet",
    "DetectorWindowState",
    "DdosDetector",
    "ExfilDetector",
    "NohDetector",
    "REGISTRY",
    "build_detectors",
    "qname_info_millibits",
]
