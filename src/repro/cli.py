"""Command-line interface: ``dns-observatory`` / ``python -m repro``.

Subcommands:

* ``simulate`` -- run a scenario and dump the transaction stream as
  one summary line per transaction (§2.1's text format), replayable
  with ``replay``;
* ``replay``   -- feed a transaction-line file through the Observatory
  and write TSV time series to an output directory;
* ``report``   -- run a scenario end-to-end and print the Big Picture
  report (the paper's headline tables and figures); with
  ``--platform DIR`` instead render the platform-health summary from
  a directory's ``_platform`` telemetry series; with ``--detect DIR
  --labels FILE`` score a directory's ``_detector`` series against
  simulator ground truth (precision / recall / time-to-detection);
* ``aggregate`` -- roll minutely TSV files up the granularity chain
  and apply retention;
* ``compact``  -- build binary columnar sidecar segments
  (``<window>.tsv.seg``) for the TSV windows in a directory and drop
  orphans, so cold queries scan columns instead of re-parsing text;
* ``serve``    -- run the asyncio HTTP query API over an output
  directory (top-k, per-key series, platform-health alerting);
* ``run``      -- live daemon: drive the simulator (or a transaction
  stream on stdin) through the ingest pipeline while serving HTTP
  from the same process, each window pushed to ``/series?follow=``
  long-polls and ``/stream`` SSE subscribers the moment it flushes.
"""

import argparse
import os
import sys

from repro.observatory.pipeline import Observatory
from repro.observatory.transaction import Transaction
from repro.simulation.scenario import Scenario
from repro.simulation.sie import SieChannel

_PRESETS = {
    "tiny": Scenario.tiny,
    "small": Scenario.small,
    "medium": Scenario.medium,
}


def _add_scenario_args(parser):
    parser.add_argument("--preset", choices=sorted(_PRESETS),
                        default="tiny", help="scenario size preset")
    parser.add_argument("--seed", type=int, default=2019)
    parser.add_argument("--duration", type=float, default=None,
                        help="simulated seconds (overrides preset)")
    parser.add_argument("--qps", type=float, default=None,
                        help="client queries/second (overrides preset)")
    parser.add_argument("--attack", action="append", default=[],
                        metavar="KIND:AT:QPS[:UNTIL]",
                        help="add a labeled attack to the scenario: "
                             "KIND is 'tunnel' or 'watertorture', AT "
                             "the start second, QPS the attack rate, "
                             "UNTIL an optional end second; the victim "
                             "zone is picked deterministically "
                             "(repeatable)")
    parser.add_argument("--encrypted-fraction", type=float, default=None,
                        metavar="F",
                        help="fraction of recursive resolvers on "
                             "encrypted transports (DoH/DoT) in [0, 1]; "
                             "sensors on those paths emit blinded "
                             "size/timing-only observations (default 0: "
                             "all plaintext, byte-identical to a run "
                             "without this flag)")
    parser.add_argument("--doh-share", type=float, default=None,
                        metavar="F",
                        help="among encrypted resolvers, the DoH share "
                             "(rest use DoT; default 0.5)")
    parser.add_argument("--padding-block", type=int, default=None,
                        metavar="BYTES",
                        help="EDNS(0)-padding block size applied to "
                             "blinded response sizes (RFC 8467 "
                             "recommends 468; default 128)")


def _parse_attack(spec):
    from repro.simulation.scenario import TunnelAttack, WaterTorture

    kinds = {"tunnel": TunnelAttack, "watertorture": WaterTorture}
    fields = spec.split(":")
    if not 3 <= len(fields) <= 4 or fields[0] not in kinds:
        raise SystemExit(
            "error: --attack expects KIND:AT:QPS[:UNTIL] with KIND "
            "tunnel|watertorture, got %r" % spec)
    try:
        at, qps = float(fields[1]), float(fields[2])
        until = float(fields[3]) if len(fields) == 4 else None
    except ValueError:
        raise SystemExit("error: bad number in --attack %r" % spec)
    return kinds[fields[0]](at=at, qps=qps, until=until)


def _build_scenario(args):
    overrides = {"seed": args.seed}
    if args.duration is not None:
        overrides["duration"] = args.duration
    if args.qps is not None:
        overrides["client_qps"] = args.qps
    if getattr(args, "attack", None):
        overrides["scripted_events"] = [
            _parse_attack(spec) for spec in args.attack]
    if getattr(args, "encrypted_fraction", None) is not None:
        overrides["encrypted_fraction"] = args.encrypted_fraction
    if getattr(args, "doh_share", None) is not None:
        overrides["doh_share"] = args.doh_share
    if getattr(args, "padding_block", None) is not None:
        overrides["padding_block"] = args.padding_block
    return _PRESETS[args.preset](**overrides)


def _add_auth_args(parser):
    parser.add_argument("--token", action="append", default=None,
                        metavar="TOKEN",
                        help="require 'Authorization: Bearer TOKEN' on "
                             "every request; repeatable -- any listed "
                             "token is accepted, anything else gets "
                             "401 (default: no auth, loopback trust)")
    parser.add_argument("--rate-limit", type=float, default=None,
                        metavar="RPS",
                        help="per-client token-bucket rate limit in "
                             "requests/second; a client above it gets "
                             "429 + Retry-After (default: unlimited)")
    parser.add_argument("--rate-burst", type=int, default=None,
                        metavar="N",
                        help="token-bucket burst capacity (default: "
                             "2 x RPS, at least 1)")


def _detector_spec(args):
    """``--detectors`` argparse value -> pipeline spec: absent ->
    ``None``, bare flag (empty list) -> ``True`` (all registered
    detectors), names -> the list."""
    names = getattr(args, "detectors_on", None)
    if names is None:
        return None
    return True if names == [] else names


def cmd_simulate(args):
    scenario = _build_scenario(args)
    channel = SieChannel(scenario)
    if args.vantage_db is not None:
        from repro.analysis.vantage import VantageDb

        db = VantageDb.from_topology(channel.dns.topology)
        db.to_tsv(args.vantage_db)
        print("wrote vantage db (%d ASNs) to %s"
              % (len(db), args.vantage_db), file=sys.stderr)
    if args.labels is not None:
        import json

        with open(args.labels, "w", encoding="utf-8") as fh:
            json.dump(channel.attack_labels(), fh, indent=2)
            fh.write("\n")
        print("wrote %d attack label(s) to %s"
              % (len(channel.workload.attacks), args.labels),
              file=sys.stderr)
    out = open(args.output, "w") if args.output != "-" else sys.stdout
    count = 0
    try:
        for txn in channel.run():
            out.write(txn.to_line() + "\n")
            count += 1
    finally:
        if out is not sys.stdout:
            out.close()
    print("simulated %d client queries -> %d transactions "
          "(cache hit ratio %.1f%%)" % (
              channel.client_queries, count,
              100 * channel.cache_hit_ratio()), file=sys.stderr)
    return 0


def _vantage_emitter(path):
    """``--vantage FILE`` -> a :class:`VantageEmitter` (or None)."""
    if path is None:
        return None
    from repro.analysis.vantage import VantageDb, VantageEmitter

    return VantageEmitter(VantageDb.from_tsv(path))


def cmd_replay(args):
    if args.shards < 1:
        raise SystemExit("error: --shards must be >= 1, got %d" % args.shards)
    if args.input != "-" and not os.path.isfile(args.input):
        return _missing_input("input stream", args.input)
    if args.vantage is not None and not os.path.isfile(args.vantage):
        return _missing_input("vantage db", args.vantage)
    datasets = [(name, args.k) for name in args.datasets]
    vantage = _vantage_emitter(args.vantage)
    # The _encrypted channel is always armed: it costs nothing until
    # the first blinded record arrives, and a replay of an encrypted-
    # mix capture must never silently drop the blinded traffic.
    if args.shards > 1:
        from repro.observatory.sharded import ShardedObservatory
        extra = {}
        if getattr(args, "ring_bytes", None):
            extra["ring_bytes"] = args.ring_bytes
        obs = ShardedObservatory(
            shards=args.shards,
            datasets=datasets,
            output_dir=args.output_dir,
            window_seconds=args.window,
            transport=args.transport,
            telemetry=args.telemetry,
            detectors=_detector_spec(args),
            encrypted=True,
            vantage=vantage,
            **extra,
        )
    else:
        obs = Observatory(
            datasets=datasets,
            output_dir=args.output_dir,
            window_seconds=args.window,
            telemetry=args.telemetry,
            detectors=_detector_spec(args),
            encrypted=True,
            vantage=vantage,
        )
    with open(args.input) if args.input != "-" else sys.stdin as fh:
        obs.consume(
            Transaction.from_line(line)
            for line in fh if line.strip()
        )
    obs.finish()
    print("replayed %d transactions into %s%s" % (
        obs.total_seen, args.output_dir,
        " (%d shards, %s transport)" % (args.shards, args.transport)
        if args.shards > 1 else ""))
    for name, ratio in sorted(obs.capture_ratios().items()):
        print("  %-8s capture %.1f%%" % (name, ratio * 100))
    if args.segments:
        from repro.observatory.aggregate import TimeAggregator

        result = TimeAggregator(args.output_dir).compact()
        print("  built %d columnar segment(s)" % len(result["built"]))
    return 0


def _load_rules(path):
    from repro.observatory.alerts import DEFAULT_RULES, parse_rules

    if path is None:
        return list(DEFAULT_RULES)
    with open(path, "r", encoding="utf-8") as fh:
        return parse_rules(fh.read())


def cmd_report(args):
    if args.platform:
        return _report_platform(args)
    if args.detect:
        return _report_detect(args)
    if args.blindness:
        return _report_blindness(args)
    from repro.analysis import export as csv_export
    from repro.analysis.asattribution import render_table1, table1
    from repro.analysis.delays import (
        delay_cdf, hierarchy_shares, letter_stats, rank_vs_delay,
        render_figure3)
    from repro.analysis.distributions import figure2, render_figure2
    from repro.analysis.happyeyeballs import figure9, render_figure9
    from repro.analysis.qtypes import render_table2, table2

    scenario = _build_scenario(args)
    channel = SieChannel(scenario)
    obs = Observatory(datasets=[
        ("srvip", 2000), ("qname", 4000), ("esld", 2000), "qtype",
    ])
    obs.consume(channel.run())
    obs.finish()

    distributions = figure2(obs, datasets=("srvip", "qname", "esld"))
    print(render_figure2(distributions))
    topo = channel.dns.topology
    rows, total, _ = table1(obs, topo.asdb, topo.asnames)
    print(render_table1(rows, total))
    print()
    qrows, _ = table2(obs)
    print(render_table2(qrows))
    print()
    root_ips = {ns.hostname.split(".")[0]: ns.ip
                for ns in channel.dns.root.nameservers}
    gtld_ips = {ns.hostname.split(".")[0]: ns.ip
                for ns in channel.dns.root.tlds["com"].nameservers}
    cdf = delay_cdf(obs)
    groups = rank_vs_delay(obs)
    root_stats = letter_stats(obs, root_ips)
    gtld_stats = letter_stats(obs, gtld_ips)
    print(render_figure3(
        cdf, groups, root_stats, gtld_stats,
        hierarchy_shares(obs, root_ips), hierarchy_shares(obs, gtld_ips)))

    def negttl(fqdn):
        zone = channel.dns.find_sld_zone(fqdn)
        return zone.soa_negttl if zone else None

    points = figure9(obs, negttl, top_n=200, horizon=scenario.duration)
    print(render_figure9(points))

    if args.csv_dir:
        csv_export.export_figure2(distributions, args.csv_dir,
                                  max_rank=2000)
        csv_export.export_table1(rows, total, args.csv_dir)
        csv_export.export_table2(qrows, args.csv_dir)
        csv_export.export_figure3(cdf, groups, root_stats, gtld_stats,
                                  args.csv_dir)
        csv_export.export_figure9(points, args.csv_dir)
        print("\nCSV data series written to %s" % args.csv_dir)
    return 0


def _missing_input(what, path):
    """Uniform missing-input contract for the report sub-modes: a
    one-line stderr message and exit code 2 (argparse's own usage-
    error code), never a traceback.  An *existing* but empty input
    still renders its 'nothing found' report with exit 0."""
    print("error: %s not found: %s" % (what, path), file=sys.stderr)
    return 2


def _report_platform(args):
    import os

    from repro.analysis.platformhealth import (
        platform_health, render_platform_health)
    from repro.observatory.store import SeriesStore

    if not os.path.isdir(args.platform):
        return _missing_input("--platform directory", args.platform)
    store = SeriesStore(args.platform)
    series, verdicts, summary = platform_health(
        store, rules=_load_rules(args.rules))
    print(render_platform_health(series, verdicts, summary))
    # scripting contract: nonzero exit when an alert rule is tripping
    return 3 if summary["status"] == "fail" else 0


def _report_detect(args):
    import os

    from repro.analysis.detectquality import (
        detect_quality, load_labels, meets_floors, render_detect_quality)
    from repro.observatory.store import SeriesStore

    if args.labels is None:
        raise SystemExit("error: --detect requires --labels FILE "
                         "(ground truth from 'simulate --labels')")
    if not os.path.isdir(args.detect):
        return _missing_input("--detect directory", args.detect)
    if not os.path.isfile(args.labels):
        return _missing_input("--labels file", args.labels)
    labels = load_labels(args.labels)
    series, scores = detect_quality(SeriesStore(args.detect), labels)
    print(render_detect_quality(series, scores))
    # scripting contract: nonzero exit when a quality floor is missed
    return 3 if not meets_floors(scores) else 0


def _report_blindness(args):
    from repro.analysis.blindness import blindness_report, render_blindness

    try:
        summaries, ratios, violations = blindness_report(args.blindness)
    except FileNotFoundError as exc:
        print("error: %s" % (exc,), file=sys.stderr)
        return 2
    print(render_blindness(summaries, ratios, violations))
    # scripting contract: nonzero exit when the sweep is not a
    # monotone blinding of one workload
    return 3 if violations else 0


def cmd_aggregate(args):
    from repro.observatory.aggregate import TimeAggregator
    from repro.observatory.store import SeriesStore

    store = SeriesStore(args.directory)
    aggregator = TimeAggregator(args.directory, store=store,
                                segments=args.segments)
    datasets = sorted(store.datasets())
    written = []
    for dataset in datasets:
        written.extend(aggregator.aggregate_directory(dataset))
    print("aggregated %d dataset(s), wrote %d file(s)"
          % (len(datasets), len(written)))
    if args.retention_now is not None:
        deleted = aggregator.apply_retention(args.retention_now,
                                             force=args.retention_force)
        print("retention deleted %d file(s)" % len(deleted))
    store.flush_manifest()
    return 0


def cmd_compact(args):
    from repro.observatory.aggregate import TimeAggregator

    aggregator = TimeAggregator(args.directory)
    result = aggregator.compact(dataset=args.dataset,
                                granularity=args.granularity)
    print("compacted %s: built %d segment(s), %d already fresh, "
          "removed %d orphan(s)"
          % (args.directory, len(result["built"]), result["fresh"],
             len(result["removed"])))
    return 0


def cmd_serve(args):
    from repro import server as serving

    if args.max_connections < 1:
        raise SystemExit("error: --max-connections must be >= 1")

    def ready(srv):
        print("serving %s on http://%s:%d  "
              "(follow=%s, cache=%d windows, max %d connections)"
              % (args.directory, srv.host, srv.port, args.follow,
                 args.cache_windows, args.max_connections))
        sys.stdout.flush()

    return serving.run(
        args.directory, host=args.host, port=args.port,
        follow=args.follow, cache_windows=args.cache_windows,
        rules=_load_rules(args.rules),
        max_connections=args.max_connections, ready_callback=ready,
        stream_threshold=args.stream_threshold,
        auth_tokens=args.token, rate_limit=args.rate_limit,
        rate_burst=args.rate_burst)


def cmd_run(args):
    from repro.daemon import LiveDaemon, stdin_transactions

    if args.shards < 1:
        raise SystemExit("error: --shards must be >= 1, got %d"
                         % args.shards)
    if args.max_connections < 1:
        raise SystemExit("error: --max-connections must be >= 1")
    scenario = None if args.input is not None else _build_scenario(args)

    def source(stop):
        if args.input is None:
            return SieChannel(scenario).run()
        if args.input == "-":
            return stdin_transactions(stop)

        def lines():
            with open(args.input) as fh:
                for line in fh:
                    if stop.is_set():
                        return
                    if line.strip():
                        yield Transaction.from_line(line)

        return lines()

    def ready(srv):
        what = "stdin" if args.input == "-" else (
            args.input or "%s scenario" % args.preset)
        print("live daemon: %s -> %s on http://%s:%d  "
              "(window=%gs, pace=%g, shards=%d)"
              % (what, args.output_dir, srv.host, srv.port,
                 args.window, args.pace, args.shards))
        sys.stdout.flush()

    daemon = LiveDaemon(
        source, args.output_dir, datasets=args.datasets, k=args.k,
        window_seconds=args.window, shards=args.shards,
        transport=args.transport, ring_bytes=args.ring_bytes,
        detectors=_detector_spec(args),
        vantage=_vantage_emitter(args.vantage),
        pace=args.pace, host=args.host, port=args.port,
        cache_windows=args.cache_windows,
        max_connections=args.max_connections,
        stream_threshold=args.stream_threshold,
        rules=None if args.rules is None else _load_rules(args.rules),
        segments=args.segments,
        auth_tokens=args.token, rate_limit=args.rate_limit,
        rate_burst=args.rate_burst,
        exit_when_done=args.exit_when_done, ready_callback=ready)
    return daemon.run()


def build_parser():
    parser = argparse.ArgumentParser(
        prog="dns-observatory",
        description="DNS Observatory: stream analytics for passive DNS "
                    "(IMC 2019 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("simulate", help="run a scenario, dump transactions")
    _add_scenario_args(p)
    p.add_argument("-o", "--output", default="-",
                   help="output file ('-' = stdout)")
    p.add_argument("--labels", metavar="FILE", default=None,
                   help="write attack ground-truth labels (JSON) for "
                        "'report --detect'")
    p.add_argument("--vantage-db", metavar="FILE", default=None,
                   help="write the scenario's prefix->ASN/country/org "
                        "attribution TSV, consumed by 'replay/run "
                        "--vantage' for the per-ASN and per-country "
                        "vantage indices")
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("replay", help="replay transactions into TSVs")
    p.add_argument("input", help="transaction-line file ('-' = stdin)")
    p.add_argument("output_dir", help="directory for TSV time series")
    p.add_argument("--datasets", nargs="+",
                   default=["srvip", "qname", "esld", "qtype"])
    p.add_argument("--k", type=int, default=2000, help="Top-k size")
    p.add_argument("--window", type=float, default=60.0)
    p.add_argument("--shards", type=int, default=1, metavar="N",
                   help="ingest with N sharded worker processes "
                        "(1 = single-process)")
    p.add_argument("--transport", choices=["pickle", "binary", "ring"],
                   default="pickle",
                   help="shard transport codec (with --shards > 1): "
                        "default-pickle object graphs, 'binary' "
                        "line-block batches + protocol-5 out-of-band "
                        "sketch buffers, or 'ring' carrying the binary "
                        "line blocks over one shared-memory SPSC ring "
                        "per shard (no upstream pickling or queue "
                        "feeder threads)")
    p.add_argument("--ring-bytes", type=int, default=None, metavar="BYTES",
                   help="per-shard ring capacity for --transport ring "
                        "(default 1 MiB)")
    p.add_argument("--telemetry", action="store_true",
                   help="emit platform self-telemetry: one _platform "
                        "TSV row per component per window (sketch "
                        "saturation, gate churn, flush latency, shard "
                        "queue depth)")
    p.add_argument("--segments", action="store_true",
                   help="after the replay, build a columnar sidecar "
                        "segment next to every TSV window written, so "
                        "cold queries scan binary columns instead of "
                        "re-parsing text")
    p.add_argument("--detectors", dest="detectors_on", nargs="*",
                   default=None, metavar="NAME",
                   help="run streaming abuse detectors and write a "
                        "_detector TSV per window (bare flag = all: "
                        "exfil ddos noh)")
    p.add_argument("--vantage", metavar="FILE", default=None,
                   help="derive per-ASN (_vantage_asn) and per-country "
                        "(_vantage_cc) reachability / time-to-answer "
                        "index TSVs from every srvip window, using the "
                        "attribution db written by 'simulate "
                        "--vantage-db'")
    p.set_defaults(func=cmd_replay)

    p = sub.add_parser("report", help="simulate and print the Big Picture")
    _add_scenario_args(p)
    p.add_argument("--csv-dir", default=None,
                   help="also export the figure data series as CSV")
    p.add_argument("--platform", metavar="DIR", default=None,
                   help="instead of simulating, render the platform-"
                        "health summary (latest vitals, trends, alert "
                        "verdicts) from DIR's _platform series; exits 3 "
                        "when a rule is failing")
    p.add_argument("--rules", metavar="FILE", default=None,
                   help="alert-rule file for --platform (default: "
                        "built-in capture/gate/liveness/latency rules)")
    p.add_argument("--detect", metavar="DIR", default=None,
                   help="instead of simulating, score DIR's _detector "
                        "series against --labels ground truth "
                        "(precision / recall / time-to-detection); "
                        "exits 3 when a quality floor is missed")
    p.add_argument("--labels", metavar="FILE", default=None,
                   help="attack ground-truth JSON for --detect "
                        "(from 'simulate --labels')")
    p.add_argument("--blindness", metavar="DIR", nargs="+",
                   default=None,
                   help="instead of simulating, quantify sensor "
                        "blindness across an encrypted-fraction sweep "
                        "of replay directories (first DIR = baseline): "
                        "per-dataset capture ratios vs baseline, gated "
                        "on monotone degradation; exits 3 on a "
                        "monotonicity violation")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("aggregate", help="roll up TSV files + retention")
    p.add_argument("directory")
    p.add_argument("--retention-now", type=float, default=None,
                   help="apply retention as of this timestamp")
    p.add_argument("--retention-force", action="store_true",
                   help="delete expired files even when no coarser "
                        "file covers them yet (default: only delete "
                        "rolled-up data)")
    p.add_argument("--segments", action="store_true",
                   help="write a columnar sidecar segment next to "
                        "every coarse window this pass writes")
    p.set_defaults(func=cmd_aggregate)

    p = sub.add_parser("compact",
                       help="build columnar sidecar segments for a "
                            "TSV directory")
    p.add_argument("directory", help="replay/aggregate output directory")
    p.add_argument("--dataset", default=None,
                   help="only compact this dataset")
    p.add_argument("--granularity", default=None,
                   help="only compact this granularity "
                        "(minutely, decaminutely, hourly, ...)")
    p.set_defaults(func=cmd_compact)

    p = sub.add_parser("serve", help="HTTP query API over TSV series")
    p.add_argument("directory", help="replay/aggregate output directory")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default loopback only: the API "
                        "has no auth, so exposing it beyond the host "
                        "is an explicit decision -- front 0.0.0.0 "
                        "with a real proxy)")
    p.add_argument("--port", type=int, default=8053,
                   help="listen port (0 = pick a free port)")
    p.add_argument("--stream-threshold", type=int, default=None,
                   metavar="BYTES",
                   help="stream (chunked) /series and /key answers "
                        "whose backing files exceed BYTES (default "
                        "256 KiB); 0 streams everything with a body")
    p.add_argument("--follow", action="store_true",
                   help="re-scan the directory per query so windows "
                        "flushed by a live replay/aggregate writer "
                        "become visible immediately")
    p.add_argument("--cache-windows", type=int, default=256,
                   help="parsed windows held in the LRU cache")
    p.add_argument("--max-connections", type=int, default=64,
                   help="connection cap; past it requests get "
                        "503 + Retry-After")
    p.add_argument("--rules", metavar="FILE", default=None,
                   help="alert-rule file for /platform/health "
                        "(default: built-in rules)")
    _add_auth_args(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("run", help="live daemon: ingest + HTTP API in "
                                   "one process")
    _add_scenario_args(p)
    p.add_argument("output_dir", help="directory for TSV time series "
                                      "(also the serving root)")
    p.add_argument("--input", default=None, metavar="FILE",
                   help="ingest a transaction-line file ('-' = stdin, "
                        "an SIE-style pipe) instead of the simulator")
    p.add_argument("--datasets", nargs="+",
                   default=["srvip", "qname", "esld", "qtype"])
    p.add_argument("--k", type=int, default=2000, help="Top-k size")
    p.add_argument("--window", type=float, default=60.0,
                   help="statistics window seconds (the paper dumps "
                        "every 60 s)")
    p.add_argument("--pace", type=float, default=1.0, metavar="SPEED",
                   help="map stream time onto wall time at SPEED x "
                        "(1 = real time, 10 = 10x compressed; 0 = "
                        "ingest as fast as possible)")
    p.add_argument("--shards", type=int, default=1, metavar="N",
                   help="ingest with N sharded worker processes")
    p.add_argument("--transport", choices=["pickle", "binary", "ring"],
                   default="pickle",
                   help="shard transport codec (with --shards > 1)")
    p.add_argument("--ring-bytes", type=int, default=None,
                   metavar="BYTES",
                   help="per-shard ring capacity for --transport ring")
    p.add_argument("--exit-when-done", action="store_true",
                   help="exit once the input stream is exhausted "
                        "instead of continuing to serve")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default loopback only)")
    p.add_argument("--port", type=int, default=8053,
                   help="listen port (0 = pick a free port)")
    p.add_argument("--cache-windows", type=int, default=256,
                   help="parsed windows held in the store LRU cache")
    p.add_argument("--max-connections", type=int, default=64,
                   help="connection cap; past it requests get "
                        "503 + Retry-After")
    p.add_argument("--stream-threshold", type=int, default=None,
                   metavar="BYTES",
                   help="stream (chunked) /series and /key answers "
                        "whose backing files exceed BYTES")
    p.add_argument("--rules", metavar="FILE", default=None,
                   help="alert-rule file for /platform/health (daemon "
                        "heartbeat rules are appended either way)")
    p.add_argument("--segments", action="store_true",
                   help="build a columnar sidecar segment for every "
                        "flushed window, so windows evicted from the "
                        "LRU cold-read as binary column scans")
    p.add_argument("--detectors", dest="detectors_on", nargs="*",
                   default=None, metavar="NAME",
                   help="run streaming abuse detectors: a _detector "
                        "TSV per window, detect-* rules added to "
                        "/platform/health (bare flag = all: exfil "
                        "ddos noh)")
    p.add_argument("--vantage", metavar="FILE", default=None,
                   help="derive _vantage_asn/_vantage_cc index TSVs "
                        "from every srvip window (attribution db from "
                        "'simulate --vantage-db'), served at /vantage")
    _add_auth_args(p)
    p.set_defaults(func=cmd_run)
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
