"""Flush broker: the ingest-to-subscriber push channel.

The live daemon (:mod:`repro.daemon`) runs ingest in a worker thread
while the asyncio server loop serves queries; when a window flushes,
subscribers waiting on ``/series?follow=`` long-polls or ``/stream``
SSE connections must wake *now*, not on their next poll.  The broker
is that wake-up line:

* the ingest side calls :meth:`publish_threadsafe` after every TSV
  flush (from any thread -- it trampolines onto the loop);
* the serving side awaits :meth:`wait`, which resolves on the next
  publish, on :meth:`close`, or on its timeout.

The broker deliberately carries **no payload routing**: a publish is
just "something flushed".  Woken subscribers re-query the
:class:`~repro.observatory.store.SeriesStore` for windows beyond
their cursor, so the store stays the single source of truth and a
subscriber can never see an event for a window the index does not
serve yet.

:meth:`close` is the drain signal: every waiter wakes immediately,
sees :attr:`closed`, and terminates its response cleanly (the SSE
generators emit a final ``eof`` event) -- how SIGTERM empties the
subscriber population before the server stops.
"""

import asyncio


class FlushBroker:
    """One-to-many edge-triggered flush notifications."""

    def __init__(self, loop=None):
        self._loop = loop if loop is not None \
            else asyncio.get_event_loop()
        self._future = self._loop.create_future()
        self.closed = False
        #: total publishes (a cheap generation counter for health rows)
        self.flushes = 0
        #: currently waiting/streaming subscribers
        self.subscribers = 0

    # -- ingest side ----------------------------------------------------

    def publish(self, token=None):
        """Wake every waiter (call from the loop thread)."""
        if self.closed:
            return
        self.flushes += 1
        future, self._future = self._future, self._loop.create_future()
        if not future.done():
            future.set_result(token)

    def publish_threadsafe(self, token=None):
        """Wake every waiter from any thread (the ingest worker)."""
        try:
            self._loop.call_soon_threadsafe(self.publish, token)
        except RuntimeError:
            pass  # loop already closed during shutdown

    def close(self):
        """Drain: wake every waiter with ``closed`` set (idempotent)."""
        if self.closed:
            return
        self.closed = True
        if not self._future.done():
            self._future.set_result(None)

    def close_threadsafe(self):
        try:
            self._loop.call_soon_threadsafe(self.close)
        except RuntimeError:
            pass

    # -- subscriber side ------------------------------------------------

    async def wait(self, timeout):
        """Await the next publish (or close).

        Returns ``True`` when woken by a publish/close, ``False`` on
        timeout.  Callers must re-check :attr:`closed` and re-query
        their store cursor either way -- the broker is edge-triggered
        and says nothing about *what* flushed.
        """
        if self.closed:
            return True
        future = self._future
        if timeout is not None and timeout <= 0:
            return future.done()
        try:
            await asyncio.wait_for(asyncio.shield(future), timeout)
        except asyncio.TimeoutError:
            return False
        return True

    def subscribe(self):
        """Context manager tracking the live subscriber count."""
        return _Subscription(self)

    def telemetry_row(self):
        return {"flushes": self.flushes,
                "subscribers": self.subscribers,
                "closed": 1 if self.closed else 0}


class _Subscription:
    __slots__ = ("_broker",)

    def __init__(self, broker):
        self._broker = broker

    def __enter__(self):
        self._broker.subscribers += 1
        return self._broker

    def __exit__(self, exc_type, exc, tb):
        self._broker.subscribers -= 1
