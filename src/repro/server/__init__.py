"""Query & serving layer: asyncio HTTP API over a TSV series store.

The write side (``replay`` / ``aggregate``) turns a transaction stream
into TSV time series; this package is the read side the paper's
operators actually use -- an HTTP JSON API over an indexed
:class:`~repro.observatory.store.SeriesStore` with platform-health
alerting (:mod:`repro.observatory.alerts`).

>>> from repro.server import build_server          # doctest: +SKIP
>>> server, app = await build_server("out/")       # doctest: +SKIP
>>> await server.serve_forever()                   # doctest: +SKIP

or from the command line::

    dns-observatory serve out/ --port 8053 --follow
"""

import asyncio

from repro.observatory.alerts import DEFAULT_RULES
from repro.observatory.store import SeriesStore
from repro.observatory.telemetry import Telemetry
from repro.server.app import ObservatoryApp
from repro.server.http import HttpError, ObservatoryServer, Request, Response

__all__ = [
    "HttpError",
    "ObservatoryApp",
    "ObservatoryServer",
    "Request",
    "Response",
    "build_server",
    "run",
]


async def build_server(directory, host="127.0.0.1", port=8053,
                       follow=False, cache_windows=256, rules=None,
                       max_connections=64, store=None, telemetry=None,
                       stream_threshold=None, broker=None,
                       daemon_status=None, auth_tokens=None,
                       rate_limit=None, rate_burst=None):
    """Wire store + app + server and start listening.

    The default bind is loopback with no authentication (the
    historical trust model); *auth_tokens* puts a bearer-token
    allowlist in front of every route (401 otherwise) and
    *rate_limit* / *rate_burst* a per-client token bucket (429 +
    ``Retry-After`` past it), which is what exposing the API beyond
    the host should pair with.

    *broker* (a :class:`~repro.server.push.FlushBroker`) and
    *daemon_status* are the live-daemon hooks: with a broker wired,
    ``/series?follow=`` and ``/stream`` subscribers wake on flush
    notifications instead of polling, and *daemon_status* is merged
    into ``/platform/health``.

    Returns ``(server, app)``; the caller drives
    ``server.serve_forever()`` (or ``wait_closed`` after
    ``begin_shutdown`` in tests).
    """
    from repro.server.app import STREAM_THRESHOLD_BYTES

    registry = telemetry if telemetry is not None else Telemetry()
    if store is None:
        store = SeriesStore(directory, cache_windows=cache_windows,
                            follow=follow, telemetry=registry)
    app = ObservatoryApp(store,
                         rules=DEFAULT_RULES if rules is None else rules,
                         telemetry=registry,
                         stream_threshold=STREAM_THRESHOLD_BYTES
                         if stream_threshold is None
                         else stream_threshold,
                         broker=broker, daemon_status=daemon_status,
                         auth_tokens=auth_tokens, rate_limit=rate_limit,
                         rate_burst=rate_burst)
    server = ObservatoryServer(app, host=host, port=port,
                               max_connections=max_connections)
    app.server = server
    await server.start()
    return server, app


def run(directory, host="127.0.0.1", port=8053, follow=False,
        cache_windows=256, rules=None, max_connections=64,
        ready_callback=None, stream_threshold=None, auth_tokens=None,
        rate_limit=None, rate_burst=None):
    """Blocking entry point for ``dns-observatory serve``."""

    async def _main():
        server, app = await build_server(
            directory, host=host, port=port, follow=follow,
            cache_windows=cache_windows, rules=rules,
            max_connections=max_connections,
            stream_threshold=stream_threshold,
            auth_tokens=auth_tokens, rate_limit=rate_limit,
            rate_burst=rate_burst)
        if ready_callback is not None:
            ready_callback(server)
        try:
            await server.serve_forever()
        finally:
            app.store.flush_manifest()
        return 0

    return asyncio.run(_main())
