"""Route handlers: the JSON query API over a :class:`SeriesStore`.

Endpoints (all GET):

* ``/datasets`` -- index summary: every dataset, granularity, window
  count and covered time span (no file opens);
* ``/series/<dataset>`` -- per-window rows over a time range
  (``granularity=``, ``start=``, ``end=``, ``limit=`` newest windows;
  ``cursor=`` pages forward from a start timestamp -- exclusive of
  windows already returned -- the response's ``next_cursor`` feeding
  the next page; ``follow=<cursor>`` long-polls until a window past
  the cursor exists, an empty ``follow=`` tailing from "now");
* ``/stream/<dataset>`` -- Server-Sent Events: one ``event: window``
  per flushed window the moment it lands, with ``id:``/
  ``Last-Event-ID`` lossless resume, comment heartbeats while idle,
  and a final ``event: eof`` when the daemon drains on SIGTERM;
* ``/topk/<dataset>`` -- top-``n`` keys ranked ``by=`` a column over a
  range (the paper's "top-k FQDNs now" question);
* ``/topk/windows/<dataset>`` -- per-window top-``n``: one ranked
  entry per window over the range, streamed one window at a time
  (rank evolution, where ``/topk`` collapses the range);
* ``/key/<dataset>/<key>`` -- one key's ``column=`` time series
  (``limit=`` newest windows; ``cursor=`` pages oldest-first exactly
  like ``/series``, the answer's ``next_cursor`` feeding the next
  page);
* ``/vantage`` (or ``/vantage/asn`` / ``/vantage/cc``) -- the latest
  per-ASN / per-country vantage indices (reachability score,
  time-to-answer index) from the ``_vantage_*`` series a
  ``replay/run --vantage`` derivation writes, ranked by traffic;
* ``/platform/health`` -- alert-rule verdicts over the ``_platform``
  telemetry series -- joined by the ``_detector`` series when abuse
  detectors run, so ``detect-*`` rules trip on flagged eSLDs -- plus
  server/store self-stats.

When *auth_tokens* is configured every request must carry a matching
``Authorization: Bearer`` credential (anything else is 401 +
``WWW-Authenticate``), and *rate_limit* puts a per-client-IP token
bucket in front of routing (over-budget requests get 429 +
``Retry-After``).  Both gates run before any route work -- an
unauthorized or throttled request never touches the store.

Responses over closed windows are immutable, so every store-backed
endpoint carries a strong ETag derived from the exact file revisions
(name + mtime + size) the answer was computed from; ``If-None-Match``
turns a repeat poll into a 304 with no body and no window parses, and
rendered 200 bodies are memoized by (route, ETag) so an unconditional
repeat query over unchanged windows skips the re-accumulation and
re-encoding too.

``/series`` and ``/key`` answers whose backing files exceed
``stream_threshold`` bytes bypass the rendered-body cache and go out
as a :class:`~repro.server.http.StreamingResponse` instead: the JSON
document is encoded from the store's window iterator one fragment at
a time (ETag still computed -- and 304s still short-circuit -- before
the first chunk), so server memory for a yearly span is bounded by
the store LRU, not the span.  Both paths render from the same
fragment generator, so a streamed body is byte-identical to a
buffered one.
Per-endpoint latency, conditional-hit, streamed-bytes and
first-byte-latency instruments live in the shared
:mod:`repro.observatory.telemetry` registry, so a served store is
monitorable with the same machinery as the ingest pipeline.
"""

import asyncio
import hashlib
import json
import time
from collections import OrderedDict

from repro.detect import DETECTOR_DATASET
from repro.observatory import alerts
from repro.observatory.telemetry import PLATFORM_DATASET, resolve_telemetry
from repro.observatory.tsv import GRANULARITIES

from repro.server.http import HttpError, Response, StreamingResponse

#: hard ceiling on /topk n= (a typo must not serialize a million rows)
MAX_TOPK = 10000

#: hard ceiling on /series limit=
MAX_WINDOWS = 5000

#: rendered 200 bodies kept per app, keyed by (route, ETag) -- the
#: windows behind an ETag are immutable, so the JSON encoding is too
RESPONSE_CACHE = 128

#: answers computed from more than this many bytes of backing TSV are
#: streamed (chunked transfer-encoding) and bypass the body cache
STREAM_THRESHOLD_BYTES = 256 * 1024

#: default / ceiling for the ``timeout=`` of a ``follow=`` long-poll
FOLLOW_TIMEOUT_DEFAULT = 25.0
FOLLOW_TIMEOUT_MAX = 120.0

#: idle SSE connections get a comment-line heartbeat this often, so a
#: dead client is detected within one interval (the write fails) and
#: proxies do not reap the connection as idle
SSE_HEARTBEAT_SECONDS = 15.0

#: fallback poll interval for follow/stream when no broker is wired
#: (plain ``serve --follow`` deployments: the store re-scans per query)
FOLLOW_POLL_SECONDS = 1.0

#: rate-limit buckets tracked at once; past this the stalest clients
#: are evicted (an evicted client restarts with a full burst, so the
#: cap bounds memory without ever locking anyone out)
MAX_RATE_CLIENTS = 1024

#: the serving names of the vantage groupings (datasets from
#: :mod:`repro.analysis.vantage`, inlined to keep the server layer
#: import-independent of the analysis package)
VANTAGE_GROUPS = {"asn": "_vantage_asn", "cc": "_vantage_cc"}


class ObservatoryApp:
    """Async request handler bound to one store + rule set.

    Parameters
    ----------
    store:
        A :class:`~repro.observatory.store.SeriesStore` (typically
        follow-mode when a writer is live).
    rules:
        Alert rules for ``/platform/health``
        (default :data:`repro.observatory.alerts.DEFAULT_RULES`).
    telemetry:
        ``True`` / registry for per-endpoint latency + 304-hit-ratio
        instruments and a ``server`` pull-sampler; the *store* should
        be registered on the same registry for one unified health row.
    server:
        Optional :class:`~repro.server.http.ObservatoryServer`, used
        to include connection stats in health output.
    stream_threshold:
        Byte size of the backing files above which ``/series`` and
        ``/key`` answers stream (chunked) instead of materializing;
        0 streams everything with a body.
    auth_tokens:
        Iterable of accepted bearer tokens.  When non-empty, every
        request must carry ``Authorization: Bearer <token>`` with one
        of them; anything else is answered 401 before routing.
        Default: no authentication (the historical loopback trust).
    rate_limit / rate_burst:
        Per-client-IP token bucket: *rate_limit* requests/second
        sustained with bursts up to *rate_burst* (default 2 x rate,
        at least 1).  Over-budget requests get 429 + ``Retry-After``.
        Default: unlimited.
    """

    ROUTES = ("datasets", "series", "topk", "topk_windows", "key",
              "vantage", "platform", "stream")

    def __init__(self, store, rules=alerts.DEFAULT_RULES, telemetry=None,
                 server=None, stream_threshold=STREAM_THRESHOLD_BYTES,
                 broker=None, daemon_status=None, auth_tokens=None,
                 rate_limit=None, rate_burst=None):
        self.store = store
        self.rules = list(rules)
        self.server = server
        self.stream_threshold = int(stream_threshold)
        self.auth_tokens = frozenset(
            token for token in (auth_tokens or ()) if token)
        if rate_limit is not None:
            rate_limit = float(rate_limit)
            if rate_limit <= 0:
                raise ValueError("rate_limit must be > 0")
        self.rate_limit = rate_limit
        if rate_burst is None:
            rate_burst = max(1.0, 2.0 * rate_limit) \
                if rate_limit is not None else 1.0
        self.rate_burst = max(1.0, float(rate_burst))
        #: client IP -> [tokens, last refill (monotonic)]
        self._buckets = {}
        self.telemetry = resolve_telemetry(telemetry)
        #: optional :class:`~repro.server.push.FlushBroker`; when wired
        #: (the live daemon), follow/stream subscribers wake on flush
        #: instead of polling the store on an interval
        self.broker = broker
        #: optional callable returning the daemon's health row, merged
        #: into ``/platform/health`` so the serving surface reports on
        #: the process that feeds it
        self.daemon_status = daemon_status
        #: wall-clock start, for display only -- uptime math must not
        #: use it (NTP steps would make uptime jump or go negative)
        self.started_at_unix = time.time()
        self._started_monotonic = time.monotonic()
        self._latency = {
            route: self.telemetry.timing("server.%s" % route, "latency")
            for route in self.ROUTES
        }
        self._requests = {
            route: self.telemetry.counter("server.%s" % route, "requests")
            for route in self.ROUTES
        }
        self._etag_hits = {
            route: self.telemetry.ratio("server.%s" % route, "etag_hit")
            for route in self.ROUTES
        }
        self._streamed = {
            route: self.telemetry.counter("server.%s" % route,
                                          "streamed_bytes")
            for route in self.ROUTES
        }
        self._first_byte = {
            route: self.telemetry.timing("server.%s" % route, "first_byte")
            for route in self.ROUTES
        }
        self._errors = self.telemetry.counter("server", "errors")
        self._unauthorized = self.telemetry.counter("server",
                                                    "unauthorized")
        self._throttled = self.telemetry.counter("server", "throttled")
        #: (route, etag) -> encoded 200 body, LRU order (oldest first)
        self._body_cache = OrderedDict()
        if self.telemetry.enabled:
            self.telemetry.register("server", self._telemetry_row,
                                    deltas=("connections", "rejected"))

    def _telemetry_row(self, now):
        row = {
            "uptime_s": round(
                time.monotonic() - self._started_monotonic, 1),
            "started_at_unix": round(self.started_at_unix, 1),
        }
        if self.server is not None:
            row["active_connections"] = self.server.active_connections
            row["connections"] = self.server.connections_total
            row["rejected"] = self.server.rejected_total
        if self.broker is not None:
            row["subscribers"] = self.broker.subscribers
        return row

    # ------------------------------------------------------------------

    # -- admission: auth, then rate limit ------------------------------

    def _gate(self, request):
        """401 / 429 response, or ``None`` to admit the request.

        Auth is checked first: an unauthenticated client learns
        nothing about rate limits (and cannot consume another
        client's budget knowledge), while an authenticated one is
        still subject to its per-IP bucket.
        """
        if self.auth_tokens:
            token = request.bearer_token()
            if token is None or token not in self.auth_tokens:
                self._unauthorized.inc()
                response = Response.error(
                    401, "missing or invalid bearer token")
                response.headers["WWW-Authenticate"] = \
                    'Bearer realm="dns-observatory"'
                return response
        if self.rate_limit is not None:
            retry_after = self._take_rate_token(request.client)
            if retry_after is not None:
                self._throttled.inc()
                response = Response.error(
                    429, "rate limit exceeded")
                response.headers["Retry-After"] = \
                    "%d" % max(1, int(retry_after + 0.999))
                return response
        return None

    def _take_rate_token(self, client):
        """Debit one request from *client*'s bucket; ``None`` when
        admitted, else seconds until a token is available."""
        now = time.monotonic()
        bucket = self._buckets.get(client)
        if bucket is None:
            if len(self._buckets) >= MAX_RATE_CLIENTS:
                stalest = min(self._buckets,
                              key=lambda c: self._buckets[c][1])
                del self._buckets[stalest]
            bucket = self._buckets[client] = [self.rate_burst, now]
        else:
            bucket[0] = min(self.rate_burst,
                            bucket[0] + (now - bucket[1]) *
                            self.rate_limit)
            bucket[1] = now
        if bucket[0] >= 1.0:
            bucket[0] -= 1.0
            return None
        return (1.0 - bucket[0]) / self.rate_limit

    async def __call__(self, request):
        gated = self._gate(request)
        if gated is not None:
            return gated
        route, handler, args = self._route(request.path)
        self._requests[route].inc()
        started = time.perf_counter()
        try:
            response = handler(request, *args)
            if asyncio.iscoroutine(response):
                # follow long-polls and SSE setup run on the loop
                response = await response
        except HttpError as exc:
            if exc.status >= 500:
                self._errors.inc()
            raise
        finally:
            self._latency[route].observe(time.perf_counter() - started)
        self._etag_hits[route].mark(response.status == 304)
        return response

    def _route(self, path):
        parts = [p for p in path.split("/") if p]
        if parts == ["datasets"]:
            return "datasets", self.handle_datasets, ()
        if len(parts) == 2 and parts[0] == "series":
            return "series", self.handle_series, (parts[1],)
        if len(parts) == 3 and parts[0] == "topk" \
                and parts[1] == "windows":
            return "topk_windows", self.handle_topk_windows, (parts[2],)
        if len(parts) == 2 and parts[0] == "topk":
            return "topk", self.handle_topk, (parts[1],)
        if len(parts) == 3 and parts[0] == "key":
            return "key", self.handle_key, (parts[1], parts[2])
        if len(parts) == 2 and parts[0] == "stream":
            return "stream", self.handle_stream, (parts[1],)
        if parts == ["vantage"]:
            return "vantage", self.handle_vantage, (None,)
        if len(parts) == 2 and parts[0] == "vantage":
            return "vantage", self.handle_vantage, (parts[1],)
        if parts == ["platform", "health"]:
            return "platform", self.handle_health, ()
        raise HttpError(404, "no such endpoint: %s" % path)

    # -- parameter parsing ---------------------------------------------

    @staticmethod
    def _float_param(request, name):
        raw = request.params.get(name)
        if raw is None or raw == "":
            return None
        try:
            return float(raw)
        except ValueError:
            raise HttpError(400, "parameter %r must be a number, got %r"
                            % (name, raw))

    @staticmethod
    def _int_param(request, name, default, lo, hi):
        raw = request.params.get(name)
        if raw is None or raw == "":
            return default
        try:
            value = int(raw)
        except ValueError:
            raise HttpError(400, "parameter %r must be an integer, got %r"
                            % (name, raw))
        if not lo <= value <= hi:
            raise HttpError(400, "parameter %r must be in [%d, %d]"
                            % (name, lo, hi))
        return value

    def _granularity(self, request):
        gran = request.params.get("granularity", "minutely")
        if gran not in GRANULARITIES:
            raise HttpError(400, "unknown granularity %r (one of %s)"
                            % (gran, ", ".join(sorted(GRANULARITIES))))
        return gran

    def _range(self, request):
        start = self._float_param(request, "start")
        end = self._float_param(request, "end")
        if start is not None and end is not None and end <= start:
            raise HttpError(400, "empty range: end <= start")
        return start, end

    def _select_known(self, dataset, granularity, start, end):
        """Range-select with a 404 contract: unknown dataset (at this
        granularity) is an error, an empty range of a known one is an
        empty answer."""
        refs = self.store.select(dataset, granularity, start, end)
        if not refs and granularity not in \
                self.store.datasets().get(dataset, {}):
            raise HttpError(404, "unknown dataset %r at granularity %r"
                            % (dataset, granularity))
        return refs

    # -- conditional responses -----------------------------------------

    @staticmethod
    def _etag(refs, *extra):
        digest = hashlib.sha1()
        for ref in refs:
            digest.update(ref.etag_token().encode("utf-8"))
            digest.update(b"|")
        for item in extra:
            digest.update(str(item).encode("utf-8"))
            digest.update(b"|")
        return '"%s"' % digest.hexdigest()

    def _conditional_json(self, route, request, etag, build):
        """304, cached rendered body, or build-encode-and-cache.

        An ETag names the exact file revisions (plus query) an answer
        was computed from, so a matching cached body is byte-for-byte
        what a rebuild would produce; *build* only runs on the first
        request for a given revision set.  The cache key includes the
        route because different endpoints over the same windows and
        query string legitimately share an ETag.
        """
        if etag in request.if_none_match():
            return Response.not_modified(etag)
        key = (route, etag)
        body = self._body_cache.get(key)
        if body is None:
            body = Response.json(build()).body
            self._body_cache[key] = body
            while len(self._body_cache) > RESPONSE_CACHE:
                self._body_cache.popitem(last=False)
        else:
            self._body_cache.move_to_end(key)
        return Response(200, body, {"ETag": etag})

    # -- incremental JSON encoding -------------------------------------

    @staticmethod
    def _json_fragments(meta, tail_key, entries):
        """Incrementally encode ``{**meta, tail_key: [*entries]}``.

        Yields text fragments whose concatenation is byte-identical to
        ``Response.json`` over the materialized payload (compact
        separators, sorted keys, trailing newline) -- required because
        the buffered path, the body cache and the streamed path must
        all produce the same entity for one ETag.  *tail_key* must
        sort after every key in *meta* so the entry array can go last.
        """
        head = json.dumps(meta, separators=(",", ":"), sort_keys=True)
        yield "%s%s%s:[" % (head[:-1], "," if len(head) > 2 else "",
                            json.dumps(tail_key))
        first = True
        for entry in entries:
            fragment = json.dumps(entry, separators=(",", ":"),
                                  sort_keys=True)
            yield fragment if first else "," + fragment
            first = False
        yield "]}\n"

    def _window_entries(self, refs):
        """One ``/series`` window object per ref, parsed lazily
        through the store LRU (one window in flight at a time)."""
        for ref in refs:
            data = self.store.read_window(ref)
            yield {
                "start_ts": data.start_ts,
                "end_ts": ref.end_ts,
                "stats": data.stats,
                "rows": [[key, row] for key, row in data.rows],
            }

    def _key_points(self, refs, key, column):
        """One ``[start_ts, value]`` point per window for ``/key``."""
        for data in self.store.iter_windows(refs):
            row = data.row_map().get(key)
            yield [data.start_ts,
                   row.get(column, 0) if row is not None else 0]

    def _should_stream(self, refs):
        """Stream when the backing files outweigh the threshold --
        the TSV byte size is a good proxy for the JSON body size, and
        it is known without opening anything."""
        return sum(ref.size for ref in refs) > self.stream_threshold

    def _fragment_response(self, route, request, etag, fragments_fn,
                           stream):
        """304 / streamed / cached-or-materialized from one encoder.

        The conditional check runs before anything is encoded, so a
        matching ``If-None-Match`` never parses a window or emits a
        chunk.  Streamed answers bypass the rendered-body cache (they
        exist to *not* materialize); buffered ones join it.
        """
        if etag in request.if_none_match():
            return Response.not_modified(etag)
        if stream:
            return self._stream(route, fragments_fn(), etag)
        key = (route, etag)
        body = self._body_cache.get(key)
        if body is None:
            body = "".join(fragments_fn()).encode("utf-8")
            self._body_cache[key] = body
            while len(self._body_cache) > RESPONSE_CACHE:
                self._body_cache.popitem(last=False)
        else:
            self._body_cache.move_to_end(key)
        return Response(200, body, {"ETag": etag})

    def _stream(self, route, fragments, etag):
        """Wrap *fragments* with the per-route streamed-bytes counter
        and first-byte-latency timing, return a StreamingResponse."""
        streamed = self._streamed[route]
        first_byte = self._first_byte[route]
        started = time.perf_counter()

        def instrumented():
            first = True
            for fragment in fragments:
                if first:
                    first_byte.observe(time.perf_counter() - started)
                    first = False
                streamed.inc(len(fragment))
                yield fragment

        return StreamingResponse(instrumented(), headers={"ETag": etag})

    # -- endpoints -----------------------------------------------------

    def handle_datasets(self, request):
        summary = self.store.datasets()
        payload = {
            "datasets": summary,
            "granularities": GRANULARITIES,
            "directory": self.store.directory,
        }
        return Response.json(payload)

    @staticmethod
    def _page(refs, cursor, limit):
        """Exclusive-cursor paging over ``start_ts``-sorted *refs*.

        The page holds the first *limit* windows whose ``start_ts``
        is strictly greater than *cursor* (``None`` pages from the
        beginning); ``next_cursor`` is the last returned window's
        ``start_ts``, or ``None`` when the page exhausts the
        selection.  The cursor is derived only from rows the client
        already holds, so a window flushing (or backfilling) between
        pages shifts *where the next page begins searching*, never
        which windows are skipped or repeated.
        """
        lo = 0
        if cursor is not None:
            hi = len(refs)
            while lo < hi:
                mid = (lo + hi) // 2
                if refs[mid].start_ts <= cursor:
                    lo = mid + 1
                else:
                    hi = mid
        page = refs[lo:lo + limit]
        next_cursor = page[-1].start_ts if lo + limit < len(refs) \
            else None
        return page, next_cursor

    def handle_series(self, request, dataset):
        granularity = self._granularity(request)
        start, end = self._range(request)
        limit = self._int_param(request, "limit", MAX_WINDOWS, 1,
                                MAX_WINDOWS)
        if "follow" in request.params:
            return self._follow_series(request, dataset, granularity,
                                       start, end, limit)
        cursor = self._float_param(request, "cursor")
        refs = self._select_known(dataset, granularity, start, end)
        next_cursor = None
        if cursor is not None:
            refs, next_cursor = self._page(refs, cursor, limit)
        else:
            refs = refs[-limit:]  # newest windows win under a limit
        etag = self._etag(refs, dataset, granularity, request.raw_query)
        meta = {
            "dataset": dataset,
            "granularity": granularity,
            "next_cursor": next_cursor,
            "window_count": len(refs),
        }

        def fragments():
            return self._json_fragments(meta, "windows",
                                        self._window_entries(refs))

        return self._fragment_response("series", request, etag,
                                       fragments,
                                       self._should_stream(refs))

    async def _follow_series(self, request, dataset, granularity,
                             start, end, limit):
        """Long-poll: block until a window past the cursor exists.

        ``follow=<cursor>`` is the exclusive resume point (feed the
        previous answer's ``next_cursor`` back); an empty ``follow=``
        tails from "now", skipping windows already on disk.  The
        answer matches a paged ``/series`` body plus ``timed_out`` /
        ``eof`` flags, and ``next_cursor`` is always a valid next
        ``follow=`` value -- on an empty answer it echoes the request
        cursor.  Unknown datasets do not 404 here: at daemon start
        the first window has not flushed yet, and a dashboard must
        be allowed to subscribe before it exists.  With a flush
        broker wired the wait is push-based; otherwise (plain
        ``serve --follow``) the store is re-polled every
        :data:`FOLLOW_POLL_SECONDS`.
        """
        raw = request.params.get("follow", "")
        if raw == "":
            refs = self.store.select(dataset, granularity, start, end)
            cursor = refs[-1].start_ts if refs else None
        else:
            try:
                cursor = float(raw)
            except ValueError:
                raise HttpError(400, "parameter 'follow' must be a "
                                "number or empty, got %r" % raw)
        timeout = self._float_param(request, "timeout")
        if timeout is None:
            timeout = FOLLOW_TIMEOUT_DEFAULT
        timeout = max(0.0, min(timeout, FOLLOW_TIMEOUT_MAX))
        deadline = time.monotonic() + timeout
        broker = self.broker

        async def poll():
            while True:
                refs = self.store.select(dataset, granularity, start,
                                         end)
                page, _ = self._page(refs, cursor, limit)
                if page:
                    return page, False
                closed = broker is not None and broker.closed
                remaining = deadline - time.monotonic()
                if closed or remaining <= 0:
                    return [], closed
                if broker is not None:
                    await broker.wait(remaining)
                else:
                    await asyncio.sleep(min(FOLLOW_POLL_SECONDS,
                                            remaining))

        if broker is not None:
            with broker.subscribe():
                page, eof = await poll()
        else:
            page, eof = await poll()
        payload = {
            "dataset": dataset,
            "granularity": granularity,
            "next_cursor": page[-1].start_ts if page else cursor,
            "window_count": len(page),
            "windows": list(self._window_entries(page)),
            "timed_out": not page and not eof,
            "eof": eof,
        }
        return Response.json(payload,
                             headers={"Cache-Control": "no-store"})

    def handle_stream(self, request, dataset):
        """SSE: push each new window the moment it flushes.

        ``cursor=`` (or a ``Last-Event-ID`` header on reconnect)
        resumes exclusively, exactly like ``follow=``; absent, the
        stream tails from "now".  Every window goes out as an
        ``event: window`` with ``id: <start_ts>``, so a dropped
        ``EventSource`` resumes losslessly; idle stretches carry
        comment heartbeats (dead clients are detected within one
        :data:`SSE_HEARTBEAT_SECONDS` when the write fails), and a
        broker close emits a final ``event: eof`` so SIGTERM drains
        subscribers instead of severing them.
        """
        granularity = self._granularity(request)
        cursor = self._float_param(request, "cursor")
        if cursor is None:
            last_id = request.headers.get("last-event-id")
            if last_id:
                try:
                    cursor = float(last_id)
                except ValueError:
                    raise HttpError(400, "malformed Last-Event-ID %r"
                                    % last_id)
        if cursor is None:
            refs = self.store.select(dataset, granularity, None, None)
            cursor = refs[-1].start_ts if refs else None
        broker = self.broker
        streamed = self._streamed["stream"]

        async def events(cursor):
            def frame(text):
                streamed.inc(len(text))
                return text

            subscription = broker.subscribe() \
                if broker is not None else None
            if subscription is not None:
                subscription.__enter__()
            try:
                # reconnect backoff hint for EventSource clients
                yield frame("retry: 2000\n\n")
                last_emit = time.monotonic()
                while True:
                    refs = self.store.select(dataset, granularity,
                                             None, None)
                    page, _ = self._page(refs, cursor, MAX_WINDOWS)
                    for entry in self._window_entries(page):
                        cursor = entry["start_ts"]
                        body = json.dumps(entry, separators=(",", ":"),
                                          sort_keys=True)
                        yield frame(
                            "id: %s\nevent: window\ndata: %s\n\n"
                            % (json.dumps(cursor), body))
                        last_emit = time.monotonic()
                    if broker is not None and broker.closed:
                        yield frame("event: eof\ndata: {}\n\n")
                        return
                    if broker is not None:
                        await broker.wait(SSE_HEARTBEAT_SECONDS)
                    else:
                        await asyncio.sleep(FOLLOW_POLL_SECONDS)
                    if time.monotonic() - last_emit >= \
                            SSE_HEARTBEAT_SECONDS:
                        yield frame(": heartbeat\n\n")
                        last_emit = time.monotonic()
            finally:
                if subscription is not None:
                    subscription.__exit__(None, None, None)

        return StreamingResponse(
            events(cursor), content_type="text/event-stream",
            headers={"Cache-Control": "no-store"}, flush_each=True)

    def handle_topk(self, request, dataset):
        granularity = self._granularity(request)
        start, end = self._range(request)
        n = self._int_param(request, "n", 10, 1, MAX_TOPK)
        by = request.params.get("by", "hits")
        refs = self._select_known(dataset, granularity, start, end)
        etag = self._etag(refs, dataset, granularity, request.raw_query)

        def build():
            top = self.store.topk(dataset, n=n, by=by,
                                  granularity=granularity,
                                  start_ts=start, end_ts=end)
            return {
                "dataset": dataset,
                "granularity": granularity,
                "by": by,
                "top": [{"key": key, "rank": rank + 1,
                         "value": row.get(by, 0), "row": row}
                        for rank, (key, row) in enumerate(top)],
                "windows": len(refs),
            }

        return self._conditional_json("topk", request, etag, build)

    def handle_topk_windows(self, request, dataset):
        """Streamed per-window top-``n``: one ``{start_ts, top}``
        entry per window in the range, ranked inside each window
        (``/topk`` ranks over the accumulated range instead).  Backed
        by the store's one-window-at-a-time ranking iterator, so a
        yearly span streams in bounded memory exactly like
        ``/series``."""
        granularity = self._granularity(request)
        start, end = self._range(request)
        n = self._int_param(request, "n", 10, 1, MAX_TOPK)
        by = request.params.get("by", "hits")
        refs = self._select_known(dataset, granularity, start, end)
        etag = self._etag(refs, dataset, granularity, request.raw_query)
        meta = {
            "dataset": dataset,
            "granularity": granularity,
            "by": by,
            "n": n,
            "window_count": len(refs),
        }

        def entries():
            windows = self.store.iter_topk_windows(
                dataset, n=n, by=by, granularity=granularity,
                start_ts=start, end_ts=end)
            for start_ts, top in windows:
                yield {
                    "start_ts": start_ts,
                    "top": [{"key": key, "rank": rank + 1,
                             "value": row.get(by, 0), "row": row}
                            for rank, (key, row) in enumerate(top)],
                }

        def fragments():
            return self._json_fragments(meta, "windows", entries())

        return self._fragment_response("topk_windows", request, etag,
                                       fragments,
                                       self._should_stream(refs))

    def handle_key(self, request, dataset, key):
        granularity = self._granularity(request)
        start, end = self._range(request)
        column = request.params.get("column", "hits")
        limit = self._int_param(request, "limit", MAX_WINDOWS, 1,
                                MAX_WINDOWS)
        cursor = self._float_param(request, "cursor")
        refs = self._select_known(dataset, granularity, start, end)
        etag = self._etag(refs, dataset, granularity, key,
                          request.raw_query)
        if etag in request.if_none_match():
            return Response.not_modified(etag)
        # the 404 contract must be decided before the first chunk goes
        # out (a streamed status line cannot be unsent); the scan runs
        # through the window LRU, so the 200 path reuses the parses.
        # It is decided over the full selection, not the page: a key
        # absent from one page of a series it does appear in is an
        # empty page, not a 404.
        if not self.store.has_key(dataset, key, granularity,
                                  start_ts=start, end_ts=end):
            raise HttpError(404, "key %r not found in dataset %r"
                            % (key, dataset))
        next_cursor = None
        if cursor is not None:
            refs, next_cursor = self._page(refs, cursor, limit)
        else:
            refs = refs[-limit:]  # newest windows win under a limit
        meta = {
            "dataset": dataset,
            "key": key,
            "column": column,
            "granularity": granularity,
            "next_cursor": next_cursor,
        }

        def fragments():
            return self._json_fragments(meta, "series",
                                        self._key_points(refs, key,
                                                         column))

        return self._fragment_response("key", request, etag, fragments,
                                       self._should_stream(refs))

    def handle_vantage(self, request, group):
        """Latest per-ASN / per-country vantage indices.

        ``/vantage`` answers both groupings, ``/vantage/asn`` or
        ``/vantage/cc`` just one.  Each grouping reports its newest
        window's rows ranked by ``by=`` (default ``hits``, capped at
        ``n=``).  A directory without ``_vantage_*`` series (no
        ``--vantage`` derivation ran) answers an empty grouping
        rather than 404: dashboards poll this before the first window
        flushes.
        """
        granularity = self._granularity(request)
        n = self._int_param(request, "n", 100, 1, MAX_TOPK)
        by = request.params.get("by", "hits")
        if group is not None and group not in VANTAGE_GROUPS:
            raise HttpError(404, "unknown vantage grouping %r (one of "
                            "%s)" % (group,
                                     ", ".join(sorted(VANTAGE_GROUPS))))
        names = (group,) if group is not None \
            else tuple(sorted(VANTAGE_GROUPS))
        latest = {}
        refs = []
        for name in names:
            selection = self.store.select(VANTAGE_GROUPS[name],
                                          granularity, None, None)
            latest[name] = selection[-1] if selection else None
            if selection:
                refs.append(selection[-1])
        etag = self._etag(refs, "vantage", granularity,
                          request.raw_query)

        def build():
            groups = {}
            for name in names:
                ref = latest[name]
                if ref is None:
                    groups[name] = {"window_ts": None, "entries": []}
                    continue
                data = self.store.read_window(ref)
                ranked = sorted(
                    data.rows,
                    key=lambda item: (-item[1].get(by, 0), item[0]))
                groups[name] = {
                    "window_ts": data.start_ts,
                    "entries": [{"key": key, "row": row}
                                for key, row in ranked[:n]],
                }
            return {
                "granularity": granularity,
                "by": by,
                "groups": groups,
            }

        return self._conditional_json("vantage", request, etag, build)

    def handle_health(self, request):
        granularity = self._granularity(request)
        windows = self._int_param(request, "windows", 60, 1, MAX_WINDOWS)
        series = self.store.read(PLATFORM_DATASET, granularity)[-windows:]
        # detector verdicts ride the same rule engine: the _detector
        # meta-dataset's summary components (exfil/ddos/noh) are
        # disjoint from every _platform component, so the two series
        # evaluate side by side without cross-matching
        detector = self.store.read(DETECTOR_DATASET,
                                   granularity)[-windows:]
        verdicts = alerts.evaluate(series + detector, self.rules)
        payload = alerts.summarize(verdicts)
        payload.update({
            "verdicts": [v.as_dict() for v in verdicts],
            "platform_windows": len(series),
            "detector_windows": len(detector),
            "latest_window_ts": series[-1].start_ts if series else None,
            "store": self.store.cache_info(),
            "server": self._telemetry_row(None),
        })
        if self.broker is not None:
            payload["broker"] = self.broker.telemetry_row()
        if self.daemon_status is not None:
            payload["daemon"] = self.daemon_status()
        return Response.json(payload)
