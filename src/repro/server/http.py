"""Minimal asyncio HTTP/1.1 transport for the query API.

Stdlib-only by project constraint (``pyproject.toml`` dependencies
stay ``[]``), so this is a deliberately small HTTP/1.1 server: GET
requests, keep-alive, gzip content negotiation, ETag conditional
responses, a hard connection cap with 503 + ``Retry-After``
backpressure, and graceful drain on SIGTERM.  Everything
application-level (routing, JSON bodies, instrumentation) lives in
:mod:`repro.server.app`; this module only moves bytes.

Two response shapes:

* :class:`Response` -- a fully materialized body, sent with
  ``Content-Length`` (unchanged pre-streaming behaviour);
* :class:`StreamingResponse` -- an *iterator* of body fragments, sent
  with ``Transfer-Encoding: chunked`` so the server never holds the
  whole body: a yearly ``/series`` span is encoded and written one
  window at a time.  Chunked composes with gzip (one incremental
  :func:`zlib.compressobj` stream across all fragments) and
  keep-alive; a client that disconnects mid-stream just closes the
  fragment iterator -- the server survives and its connection slot is
  released.
"""

import asyncio
import gzip
import json
import logging
import signal
import socket
import zlib
from urllib.parse import parse_qsl, unquote, urlsplit

logger = logging.getLogger(__name__)

#: maximum request head (request line + headers) we will buffer
MAX_REQUEST_HEAD = 16 * 1024

#: bodies below this size are not worth compressing
GZIP_MIN_BYTES = 256

#: streamed fragments are coalesced into chunk frames of about this
#: size, so a row-per-fragment encoder does not emit a syscall per row
CHUNK_TARGET_BYTES = 16 * 1024

#: idle keep-alive connections are dropped after this many seconds
KEEPALIVE_TIMEOUT = 30.0

REASONS = {
    200: "OK", 304: "Not Modified", 400: "Bad Request",
    401: "Unauthorized", 404: "Not Found", 405: "Method Not Allowed",
    429: "Too Many Requests", 431: "Request Header Fields Too Large",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class HttpError(Exception):
    """Application-level error carrying an HTTP status."""

    def __init__(self, status, message):
        super().__init__(message)
        self.status = status
        self.message = message


class Request:
    """One parsed GET request."""

    __slots__ = ("method", "path", "raw_query", "params", "headers",
                 "client")

    def __init__(self, method, target, headers):
        self.method = method
        parts = urlsplit(target)
        self.path = unquote(parts.path)
        self.raw_query = parts.query
        #: last-one-wins query parameters, keys/values decoded
        self.params = dict(parse_qsl(parts.query, keep_blank_values=True))
        #: header names lower-cased
        self.headers = headers
        #: peer IP string, attached by the connection loop (None for
        #: requests constructed directly in tests)
        self.client = None

    def bearer_token(self):
        """The ``Authorization: Bearer`` credential, or ``None``."""
        raw = self.headers.get("authorization", "")
        scheme, _, token = raw.partition(" ")
        if scheme.lower() != "bearer":
            return None
        token = token.strip()
        return token or None

    def wants_gzip(self):
        accept = self.headers.get("accept-encoding", "")
        return any(token.split(";")[0].strip() == "gzip"
                   for token in accept.split(","))

    def if_none_match(self):
        """Client ETags from ``If-None-Match`` (quotes preserved)."""
        raw = self.headers.get("if-none-match")
        if not raw:
            return ()
        return tuple(token.strip() for token in raw.split(","))


class Response:
    """Status + JSON-ready payload + extra headers."""

    __slots__ = ("status", "body", "headers", "content_type")

    def __init__(self, status, body=b"", headers=None,
                 content_type="application/json"):
        self.status = status
        self.body = body
        self.headers = dict(headers or {})
        self.content_type = content_type

    @classmethod
    def json(cls, payload, status=200, headers=None):
        body = (json.dumps(payload, separators=(",", ":"),
                           sort_keys=True) + "\n").encode("utf-8")
        return cls(status, body, headers)

    @classmethod
    def error(cls, status, message):
        return cls.json({"error": message, "status": status},
                        status=status)

    @classmethod
    def not_modified(cls, etag):
        return cls(304, b"", {"ETag": etag})


async def read_request(reader, timeout=KEEPALIVE_TIMEOUT):
    """Read one request head; ``None`` on clean EOF / idle timeout.

    Raises :class:`HttpError` on malformed or oversized heads.
    """
    try:
        head = await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), timeout)
    except (asyncio.IncompleteReadError, ConnectionResetError):
        return None
    except asyncio.TimeoutError:
        return None
    except asyncio.LimitOverrunError:
        raise HttpError(431, "request head too large")
    if len(head) > MAX_REQUEST_HEAD:
        raise HttpError(431, "request head too large")
    try:
        text = head.decode("latin-1")
        request_line, _, header_block = text.partition("\r\n")
        method, target, version = request_line.split(" ", 2)
    except ValueError:
        raise HttpError(400, "malformed request line")
    if not version.startswith("HTTP/1."):
        raise HttpError(400, "unsupported HTTP version")
    headers = {}
    for line in header_block.split("\r\n"):
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, "malformed header line")
        headers[name.strip().lower()] = value.strip()
    return Request(method, target, headers)


def render_response(response, request=None, close=False):
    """Serialize a :class:`Response`, applying gzip negotiation."""
    body = response.body
    headers = dict(response.headers)
    if (request is not None and body and len(body) >= GZIP_MIN_BYTES
            and request.wants_gzip() and response.status == 200):
        body = gzip.compress(body, compresslevel=6)
        headers["Content-Encoding"] = "gzip"
        headers["Vary"] = "Accept-Encoding"
    lines = ["HTTP/1.1 %d %s" % (response.status,
                                 REASONS.get(response.status, "Unknown"))]
    if body or response.status != 304:
        headers.setdefault("Content-Type", response.content_type)
    headers["Content-Length"] = str(len(body))
    headers["Connection"] = "close" if close else "keep-alive"
    for name, value in headers.items():
        lines.append("%s: %s" % (name, value))
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


class StreamingResponse:
    """Status + headers + an iterator of body fragments.

    *chunks* yields ``str`` (encoded as UTF-8) or ``bytes`` fragments;
    they are framed as HTTP/1.1 chunked transfer-encoding by
    :func:`write_streaming_response`, so the response body never
    exists in one piece on the server.  Conditional handling happens
    *before* construction: the app computes the strong ETag from the
    file revisions it is about to stream and answers 304 without ever
    creating the iterator.

    *chunks* may also be an **async** iterator -- the live-push shape
    (Server-Sent Events tailing a flush broker), where the next
    fragment is not data already on disk but an awaited future.  Pair
    it with ``flush_each=True`` so every fragment goes out as its own
    chunk frame immediately: a subscriber must see an event when it
    fires, not when 16 KiB of events have accumulated.  ``flush_each``
    also disables gzip (a compressor would buffer the event past its
    delivery deadline).
    """

    __slots__ = ("status", "chunks", "headers", "content_type",
                 "flush_each")

    def __init__(self, chunks, status=200, headers=None,
                 content_type="application/json", flush_each=False):
        self.status = status
        self.chunks = chunks
        self.headers = dict(headers or {})
        self.content_type = content_type
        self.flush_each = flush_each

    def close(self):
        """Release a *sync* fragment iterator (disconnect, error
        paths).  Async iterators are closed by
        :func:`write_streaming_response`, which can await ``aclose``.
        """
        close = getattr(self.chunks, "close", None)
        if close is not None:
            close()


def _chunk_frame(data):
    """One chunked transfer-encoding frame: hex size, CRLF, data, CRLF."""
    return b"%x\r\n%s\r\n" % (len(data), data)


async def write_streaming_response(writer, response, request=None,
                                   close=False):
    """Send a :class:`StreamingResponse` as chunked frames.

    Fragments are coalesced to ~:data:`CHUNK_TARGET_BYTES` frames and
    compressed incrementally when the client negotiated gzip (one
    gzip stream across the whole body -- ``Content-Encoding: gzip``
    composes with ``Transfer-Encoding: chunked``).  Returns ``True``
    when the terminal ``0\\r\\n\\r\\n`` frame was written, ``False``
    when the client went away mid-stream; either way the fragment
    iterator is closed, and a ``False`` return obliges the caller to
    drop the connection (the framing is unfinished).
    """
    compressor = None
    flush_each = response.flush_each
    headers = dict(response.headers)
    if request is not None and request.wants_gzip() and \
            response.status == 200 and not flush_each:
        compressor = zlib.compressobj(6, zlib.DEFLATED,
                                      16 + zlib.MAX_WBITS)
        headers["Content-Encoding"] = "gzip"
        headers["Vary"] = "Accept-Encoding"
    headers.setdefault("Content-Type", response.content_type)
    headers["Transfer-Encoding"] = "chunked"
    headers["Connection"] = "close" if close else "keep-alive"
    lines = ["HTTP/1.1 %d %s" % (response.status,
                                 REASONS.get(response.status, "Unknown"))]
    for name, value in headers.items():
        lines.append("%s: %s" % (name, value))
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
    chunks = response.chunks
    pending = bytearray()

    async def emit(fragment):
        if isinstance(fragment, str):
            fragment = fragment.encode("utf-8")
        if compressor is not None:
            fragment = compressor.compress(fragment)
        pending.extend(fragment)
        if pending and (flush_each or len(pending) >= CHUNK_TARGET_BYTES):
            writer.write(_chunk_frame(bytes(pending)))
            pending.clear()
            await writer.drain()

    try:
        if hasattr(chunks, "__aiter__"):
            async for fragment in chunks:
                await emit(fragment)
        else:
            for fragment in chunks:
                await emit(fragment)
        if compressor is not None:
            pending += compressor.flush()
        if pending:
            writer.write(_chunk_frame(bytes(pending)))
        writer.write(b"0\r\n\r\n")
        await writer.drain()
        return True
    except (ConnectionError, OSError):
        # mid-stream disconnect: abandon the body, surface "drop the
        # connection" to the caller; the iterator is closed below so
        # upstream generators (the store read path) unwind cleanly
        return False
    finally:
        aclose = getattr(chunks, "aclose", None)
        if aclose is not None:
            try:
                await aclose()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
        else:
            response.close()


class ObservatoryServer:
    """Connection manager around an async ``handler(request)``.

    Parameters
    ----------
    handler:
        Async callable ``handler(Request) -> Response`` (usually an
        :class:`repro.server.app.ObservatoryApp`).
    host / port:
        Bind address; port 0 picks a free port (tests, CI smoke).
    max_connections:
        Hard cap on concurrently open client connections.  Connections
        past the cap are answered ``503`` with ``Retry-After`` and
        closed immediately -- the documented backpressure contract, so
        an overload sheds load instead of queueing unboundedly.
    shutdown_grace:
        Seconds to wait for in-flight requests on graceful shutdown
        before cancelling them.
    """

    def __init__(self, handler, host="127.0.0.1", port=8053,
                 max_connections=64, shutdown_grace=10.0):
        self.handler = handler
        self.host = host
        self.port = port
        self.max_connections = int(max_connections)
        self.shutdown_grace = shutdown_grace
        self._server = None
        self._conn_tasks = set()
        self._closing = asyncio.Event()
        #: observability counters (sampled by the app's telemetry row)
        self.connections_total = 0
        self.rejected_total = 0

    @property
    def active_connections(self):
        return len(self._conn_tasks)

    async def start(self):
        """Bind and start accepting; resolves the actual port."""
        self._server = await asyncio.start_server(
            self._client_connected, self.host, self.port,
            limit=MAX_REQUEST_HEAD)
        sockets = self._server.sockets or ()
        for sock in sockets:
            if sock.family in (socket.AF_INET, socket.AF_INET6):
                self.port = sock.getsockname()[1]
                break
        logger.info("serving on %s:%d (max %d connections)",
                    self.host, self.port, self.max_connections)
        return self

    def begin_shutdown(self):
        """Stop accepting new connections; in-flight requests finish."""
        if self._closing.is_set():
            return
        logger.info("graceful shutdown: draining %d connection(s)",
                    self.active_connections)
        self._closing.set()
        if self._server is not None:
            self._server.close()

    async def wait_closed(self):
        """Block until shutdown was requested and connections drained."""
        await self._closing.wait()
        if self._server is not None:
            await self._server.wait_closed()
        if self._conn_tasks:
            done, pending = await asyncio.wait(
                set(self._conn_tasks), timeout=self.shutdown_grace)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)

    async def serve_forever(self, install_signals=True):
        """Run until SIGTERM/SIGINT (or :meth:`begin_shutdown`).

        With *install_signals* the SIGTERM/SIGINT dispositions that
        were in place before are saved and restored on exit: an
        embedding process (the ``run`` daemon, a test harness) that
        installed its own handlers must get them back, not find them
        silently clobbered by a server that has already shut down.
        An embedder that owns signal dispatch itself passes
        ``install_signals=False``.
        """
        if self._server is None:
            await self.start()
        saved = []
        if install_signals:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    previous = signal.getsignal(sig)
                    loop.add_signal_handler(sig, self.begin_shutdown)
                except (NotImplementedError, RuntimeError):
                    continue  # non-POSIX event loop
                saved.append((loop, sig, previous))
        try:
            await self.wait_closed()
        finally:
            for loop, sig, previous in saved:
                try:
                    loop.remove_signal_handler(sig)
                    if previous is not None:
                        signal.signal(sig, previous)
                except (NotImplementedError, RuntimeError, OSError,
                        ValueError):  # pragma: no cover - teardown race
                    pass

    # ------------------------------------------------------------------

    def _client_connected(self, reader, writer):
        if self._closing.is_set() or \
                self.active_connections >= self.max_connections:
            task = asyncio.ensure_future(self._reject(writer))
            # Rejections are not tracked as connections: they must not
            # consume cap slots, but shutdown should not abandon them.
            task.add_done_callback(lambda t: t.exception())
            return
        self.connections_total += 1
        task = asyncio.ensure_future(self._serve_client(reader, writer))
        self._conn_tasks.add(task)
        task.add_done_callback(self._conn_tasks.discard)

    async def _reject(self, writer):
        self.rejected_total += 1
        response = Response.error(503, "server at connection capacity")
        response.headers["Retry-After"] = "1"
        try:
            writer.write(render_response(response, close=True))
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()

    async def _serve_client(self, reader, writer):
        peername = writer.get_extra_info("peername")
        client = peername[0] if isinstance(peername, tuple) and peername \
            else None
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    writer.write(render_response(
                        Response.error(exc.status, exc.message),
                        close=True))
                    await writer.drain()
                    return
                if request is None:
                    return
                # the auth / rate-limit layer keys its decisions on the
                # connection's peer address, not anything spoofable in
                # the request head
                request.client = client
                close = self._closing.is_set() or \
                    request.headers.get("connection", "").lower() == "close"
                if request.method != "GET":
                    response = Response.error(
                        405, "only GET is supported")
                    response.headers["Allow"] = "GET"
                else:
                    try:
                        response = await self.handler(request)
                    except HttpError as exc:
                        response = Response.error(exc.status, exc.message)
                    except asyncio.CancelledError:
                        raise
                    except Exception:
                        logger.exception("unhandled error serving %s",
                                         request.path)
                        response = Response.error(
                            500, "internal server error")
                if isinstance(response, StreamingResponse):
                    if not await write_streaming_response(
                            writer, response, request, close):
                        return  # client vanished mid-stream
                else:
                    writer.write(render_response(response, request, close))
                    await writer.drain()
                # Re-check after the response: shutdown may have begun
                # while a long-poll or stream was in flight, and a
                # drained connection must not park in the keep-alive
                # read for another idle timeout.
                if close or self._closing.is_set():
                    return
        except (ConnectionError, OSError):
            pass
        finally:
            try:
                writer.close()
            except OSError:  # pragma: no cover - already torn down
                pass
