"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_simulate_to_file(tmp_path, capsys):
    out = tmp_path / "stream.tsv"
    rc = main(["simulate", "--preset", "tiny", "--seed", "3",
               "--duration", "60", "--qps", "20", "-o", str(out)])
    assert rc == 0
    lines = out.read_text().splitlines()
    assert len(lines) > 100
    err = capsys.readouterr().err
    assert "transactions" in err


def test_simulate_then_replay(tmp_path, capsys):
    stream = tmp_path / "stream.tsv"
    main(["simulate", "--seed", "4", "--duration", "120", "--qps", "20",
          "-o", str(stream)])
    outdir = tmp_path / "tsv"
    rc = main(["replay", str(stream), str(outdir),
               "--datasets", "srvip", "qtype", "--k", "500"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "replayed" in out
    from repro.observatory.tsv import list_series

    assert list_series(str(outdir), "srvip", "minutely")


def test_replay_roundtrip_preserves_transactions(tmp_path):
    from repro.observatory.transaction import Transaction

    stream = tmp_path / "stream.tsv"
    main(["simulate", "--seed", "5", "--duration", "60", "--qps", "10",
          "-o", str(stream)])
    for line in stream.read_text().splitlines()[:50]:
        txn = Transaction.from_line(line)
        assert txn.to_line() == line


def test_aggregate_command(tmp_path, capsys):
    stream = tmp_path / "stream.tsv"
    main(["simulate", "--seed", "6", "--duration", "1300", "--qps", "8",
          "-o", str(stream)])
    outdir = tmp_path / "tsv"
    main(["replay", str(stream), str(outdir), "--datasets", "qtype"])
    rc = main(["aggregate", str(outdir)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "aggregated" in out
    from repro.observatory.tsv import list_series

    assert list_series(str(outdir), "qtype", "decaminutely")


def test_report_command(tmp_path, capsys):
    csv_dir = tmp_path / "csv"
    rc = main(["report", "--preset", "tiny", "--seed", "7",
               "--duration", "180", "--qps", "30",
               "--csv-dir", str(csv_dir)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Figure 2" in out
    assert "Table 1" in out
    assert "Table 2" in out
    assert "Figure 3a" in out
    assert "Figure 9" in out
    names = {p.name for p in csv_dir.iterdir()}
    assert "table1.csv" in names
    assert "fig9_happy_eyeballs.csv" in names
    assert "fig2_srvip.csv" in names


@pytest.mark.parametrize("transport", ["pickle", "binary"])
def test_replay_sharded_matches_single(tmp_path, capsys, transport):
    stream = tmp_path / "stream.tsv"
    main(["simulate", "--seed", "8", "--duration", "130", "--qps", "20",
          "-o", str(stream)])
    single_dir = tmp_path / "single"
    sharded_dir = tmp_path / "sharded"
    rc = main(["replay", str(stream), str(single_dir),
               "--datasets", "srvip", "qtype", "--k", "500"])
    assert rc == 0
    rc = main(["replay", str(stream), str(sharded_dir), "--shards", "2",
               "--transport", transport,
               "--datasets", "srvip", "qtype", "--k", "500"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "(2 shards, %s transport)" % transport in out
    import os

    names = sorted(os.listdir(single_dir))
    assert sorted(os.listdir(sharded_dir)) == names
    for name in names:
        single_rows = [l for l in (single_dir / name).read_text().splitlines()
                       if not l.startswith("#stats")]
        sharded_rows = [l for l in (sharded_dir / name).read_text().splitlines()
                        if not l.startswith("#stats")]
        assert sharded_rows == single_rows, name
