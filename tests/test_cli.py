"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_simulate_to_file(tmp_path, capsys):
    out = tmp_path / "stream.tsv"
    rc = main(["simulate", "--preset", "tiny", "--seed", "3",
               "--duration", "60", "--qps", "20", "-o", str(out)])
    assert rc == 0
    lines = out.read_text().splitlines()
    assert len(lines) > 100
    err = capsys.readouterr().err
    assert "transactions" in err


def test_simulate_then_replay(tmp_path, capsys):
    stream = tmp_path / "stream.tsv"
    main(["simulate", "--seed", "4", "--duration", "120", "--qps", "20",
          "-o", str(stream)])
    outdir = tmp_path / "tsv"
    rc = main(["replay", str(stream), str(outdir),
               "--datasets", "srvip", "qtype", "--k", "500"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "replayed" in out
    from repro.observatory.tsv import list_series

    assert list_series(str(outdir), "srvip", "minutely")


def test_replay_roundtrip_preserves_transactions(tmp_path):
    from repro.observatory.transaction import Transaction

    stream = tmp_path / "stream.tsv"
    main(["simulate", "--seed", "5", "--duration", "60", "--qps", "10",
          "-o", str(stream)])
    for line in stream.read_text().splitlines()[:50]:
        txn = Transaction.from_line(line)
        assert txn.to_line() == line


def test_aggregate_command(tmp_path, capsys):
    stream = tmp_path / "stream.tsv"
    main(["simulate", "--seed", "6", "--duration", "1300", "--qps", "8",
          "-o", str(stream)])
    outdir = tmp_path / "tsv"
    main(["replay", str(stream), str(outdir), "--datasets", "qtype"])
    rc = main(["aggregate", str(outdir)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "aggregated" in out
    from repro.observatory.tsv import list_series

    assert list_series(str(outdir), "qtype", "decaminutely")


def test_report_command(tmp_path, capsys):
    csv_dir = tmp_path / "csv"
    rc = main(["report", "--preset", "tiny", "--seed", "7",
               "--duration", "180", "--qps", "30",
               "--csv-dir", str(csv_dir)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Figure 2" in out
    assert "Table 1" in out
    assert "Table 2" in out
    assert "Figure 3a" in out
    assert "Figure 9" in out
    names = {p.name for p in csv_dir.iterdir()}
    assert "table1.csv" in names
    assert "fig9_happy_eyeballs.csv" in names
    assert "fig2_srvip.csv" in names


def _telemetry_fixture(tmp_path):
    """Replay a short stream with --telemetry: srvip + _platform TSVs."""
    stream = tmp_path / "stream.tsv"
    main(["simulate", "--seed", "11", "--duration", "180", "--qps", "20",
          "-o", str(stream)])
    outdir = tmp_path / "tsv"
    main(["replay", str(stream), str(outdir),
          "--datasets", "srvip", "--telemetry"])
    return outdir


def test_report_platform_healthy(tmp_path, capsys):
    outdir = _telemetry_fixture(tmp_path)
    capsys.readouterr()
    rc = main(["report", "--platform", str(outdir)])
    out = capsys.readouterr().out
    assert "Platform health:" in out
    assert "Alert verdicts" in out
    assert "tracker.srvip" in out
    assert rc in (0, 3)  # healthy fixture usually 0; 3 = rule tripping


def test_report_platform_failing_rule_exits_3(tmp_path, capsys):
    outdir = _telemetry_fixture(tmp_path)
    rules = tmp_path / "rules.txt"
    rules.write_text("impossible: tracker.*.capture_ratio >= 2.0\n")
    capsys.readouterr()
    rc = main(["report", "--platform", str(outdir),
               "--rules", str(rules)])
    assert rc == 3
    out = capsys.readouterr().out
    assert "FAIL" in out
    assert "impossible" in out


def test_report_platform_empty_directory(tmp_path, capsys):
    rc = main(["report", "--platform", str(tmp_path)])
    assert rc == 0
    assert "No _platform series" in capsys.readouterr().out


def test_serve_command_serves_fixture(tmp_path, capsys):
    import asyncio
    import threading

    from repro import server as serving
    from tests.server.util import http_get

    outdir = _telemetry_fixture(tmp_path)
    ready = threading.Event()
    box = {}

    def on_ready(srv):
        box["server"] = srv
        box["loop"] = asyncio.get_running_loop()
        ready.set()

    def run_server():
        box["rc"] = serving.run(str(outdir), port=0, follow=True,
                                ready_callback=on_ready)

    thread = threading.Thread(target=run_server)
    thread.start()
    try:
        assert ready.wait(10)
        server = box["server"]
        resp = asyncio.run(http_get(server.port, "/topk/srvip?n=3"))
        assert resp.status == 200
        assert len(resp.json()["top"]) >= 1
        health = asyncio.run(http_get(server.port, "/platform/health"))
        assert health.status == 200
        assert health.json()["status"] in ("ok", "fail")
    finally:
        if "loop" in box:
            box["loop"].call_soon_threadsafe(
                box["server"].begin_shutdown)
        thread.join(10)
    assert not thread.is_alive()
    assert box.get("rc") == 0


def test_serve_rejects_bad_max_connections(tmp_path):
    with pytest.raises(SystemExit):
        main(["serve", str(tmp_path), "--max-connections", "0"])


@pytest.mark.parametrize("transport", ["pickle", "binary"])
def test_replay_sharded_matches_single(tmp_path, capsys, transport):
    stream = tmp_path / "stream.tsv"
    main(["simulate", "--seed", "8", "--duration", "130", "--qps", "20",
          "-o", str(stream)])
    single_dir = tmp_path / "single"
    sharded_dir = tmp_path / "sharded"
    rc = main(["replay", str(stream), str(single_dir),
               "--datasets", "srvip", "qtype", "--k", "500"])
    assert rc == 0
    rc = main(["replay", str(stream), str(sharded_dir), "--shards", "2",
               "--transport", transport,
               "--datasets", "srvip", "qtype", "--k", "500"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "(2 shards, %s transport)" % transport in out
    import os

    names = sorted(os.listdir(single_dir))
    assert sorted(os.listdir(sharded_dir)) == names
    for name in names:
        single_rows = [l for l in (single_dir / name).read_text().splitlines()
                       if not l.startswith("#stats")]
        sharded_rows = [l for l in (sharded_dir / name).read_text().splitlines()
                        if not l.startswith("#stats")]
        assert sharded_rows == single_rows, name


def test_replay_segments_flag_builds_sidecars(tmp_path, capsys):
    stream = tmp_path / "stream.tsv"
    main(["simulate", "--seed", "11", "--duration", "120", "--qps", "10",
          "-o", str(stream)])
    outdir = tmp_path / "tsv"
    rc = main(["replay", str(stream), str(outdir), "--datasets", "srvip",
               "--segments"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "columnar segment" in out
    import os as _os

    from repro.observatory.segments import scan_segments
    from repro.observatory.tsv import list_series

    tsvs = list_series(str(outdir), "srvip", "minutely")
    found = scan_segments(str(outdir))
    assert tsvs
    assert all(_os.path.basename(p) in found for p, _, _, _ in tsvs)


def test_compact_command_idempotent(tmp_path, capsys):
    import os as _os

    stream = tmp_path / "stream.tsv"
    main(["simulate", "--seed", "12", "--duration", "120", "--qps", "10",
          "-o", str(stream)])
    outdir = tmp_path / "tsv"
    main(["replay", str(stream), str(outdir), "--datasets", "srvip"])
    rc = main(["compact", str(outdir)])
    assert rc == 0
    first = capsys.readouterr().out
    assert "compacted" in first and "built" in first
    assert any(n.endswith(".seg") for n in _os.listdir(str(outdir)))
    rc = main(["compact", str(outdir)])
    assert rc == 0
    second = capsys.readouterr().out
    assert "built 0 segment(s)" in second


def _attack_fixture(tmp_path, duration="300", attacks=(
        "tunnel:120:10", "watertorture:120:10")):
    """simulate with labeled attacks, replay with detectors on."""
    import json as _json

    stream = tmp_path / "stream.txt"
    labels = tmp_path / "labels.json"
    argv = ["simulate", "--preset", "tiny", "--seed", "2019",
            "--duration", duration, "--qps", "15",
            "-o", str(stream), "--labels", str(labels)]
    for spec in attacks:
        argv += ["--attack", spec]
    assert main(argv) == 0
    outdir = tmp_path / "series"
    assert main(["replay", str(stream), str(outdir),
                 "--detectors"]) == 0
    with open(str(labels), encoding="utf-8") as fh:
        return outdir, labels, _json.load(fh)


def test_simulate_labels_records_ground_truth(tmp_path):
    _, _, labels = _attack_fixture(tmp_path)
    assert sorted(label["kind"] for label in labels) == \
        ["tunnel", "watertorture"]
    for label in labels:
        assert label["start"] == 120.0
        assert label["end"] == 300.0
        assert label["qps"] == 10.0
        assert label["esld"]


def test_attack_spec_parse_errors(tmp_path):
    stream = tmp_path / "s.txt"
    for bad in ("tunnel", "tunnel:x:5", "nosuch:10:5", "tunnel:10"):
        with pytest.raises(SystemExit):
            main(["simulate", "--preset", "tiny", "-o", str(stream),
                  "--attack", bad])


def test_replay_detectors_writes_detector_series(tmp_path):
    outdir, _, _ = _attack_fixture(tmp_path)
    from repro.observatory.tsv import list_series
    files = list_series(str(outdir), "_detector")
    assert files
    from repro.observatory.tsv import read_series
    rows = {key for d in read_series(str(outdir), "_detector", "minutely")
            for key, _ in d.rows}
    assert {"exfil", "ddos", "noh"} <= rows


def test_report_detect_pass_exits_0(tmp_path, capsys):
    outdir, labels, _ = _attack_fixture(tmp_path)
    capsys.readouterr()
    rc = main(["report", "--detect", str(outdir),
               "--labels", str(labels)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "Detection quality: PASS" in out
    for name in ("exfil", "ddos", "noh"):
        assert name in out


def test_report_detect_missed_attack_exits_3(tmp_path, capsys):
    import json as _json

    outdir, labels, truth = _attack_fixture(tmp_path)
    # claim an attack the detectors never saw: recall collapses
    truth.append({"kind": "tunnel", "esld": "never-attacked.test",
                  "start": 0.0, "end": 300.0, "qps": 1.0})
    with open(str(labels), "w", encoding="utf-8") as fh:
        _json.dump(truth, fh)
    capsys.readouterr()
    rc = main(["report", "--detect", str(outdir),
               "--labels", str(labels)])
    assert rc == 3
    assert "Detection quality: FAIL" in capsys.readouterr().out


def test_report_detect_requires_labels(tmp_path):
    with pytest.raises(SystemExit):
        main(["report", "--detect", str(tmp_path)])


class TestMissingInputExitCodes:
    """Missing input paths exit 2 with a diagnostic, never a
    traceback; an existing-but-empty directory keeps rc 0."""

    def test_report_platform_missing_dir(self, tmp_path, capsys):
        rc = main(["report", "--platform", str(tmp_path / "nope")])
        assert rc == 2
        assert "not found" in capsys.readouterr().err

    def test_report_detect_missing_dir(self, tmp_path, capsys):
        labels = tmp_path / "labels.json"
        labels.write_text("[]")
        rc = main(["report", "--detect", str(tmp_path / "nope"),
                   "--labels", str(labels)])
        assert rc == 2
        assert "not found" in capsys.readouterr().err

    def test_report_detect_missing_labels_file(self, tmp_path, capsys):
        rc = main(["report", "--detect", str(tmp_path),
                   "--labels", str(tmp_path / "nope.json")])
        assert rc == 2
        assert "not found" in capsys.readouterr().err

    def test_report_blindness_missing_dir(self, tmp_path, capsys):
        rc = main(["report", "--blindness", str(tmp_path / "nope")])
        assert rc == 2
        assert "not found" in capsys.readouterr().err

    def test_replay_missing_stream(self, tmp_path, capsys):
        rc = main(["replay", str(tmp_path / "nope.tsv"),
                   str(tmp_path / "out")])
        assert rc == 2
        assert "not found" in capsys.readouterr().err
