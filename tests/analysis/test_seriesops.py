"""Tests for window-series accumulation helpers."""

import pytest

from repro.analysis.seriesops import (
    accumulate_dumps,
    key_series,
    ranked_keys,
    split_dumps_at,
    total_hits,
)
from repro.observatory.window import WindowDump


def dump(start, rows):
    return WindowDump("x", start, rows, {"seen": 0, "kept": 0})


def test_counters_summed():
    dumps = [
        dump(0, [("a", {"hits": 10, "nxd": 2})]),
        dump(60, [("a", {"hits": 5, "nxd": 1})]),
    ]
    acc = accumulate_dumps(dumps)
    assert acc["a"]["hits"] == 15
    assert acc["a"]["nxd"] == 3
    assert acc["a"].windows == 2


def test_gauges_hits_weighted():
    dumps = [
        dump(0, [("a", {"hits": 10, "delay_q50": 10.0})]),
        dump(60, [("a", {"hits": 30, "delay_q50": 50.0})]),
    ]
    acc = accumulate_dumps(dumps)
    # (10*10 + 50*30) / 40 = 40.
    assert acc["a"]["delay_q50"] == pytest.approx(40.0)


def test_missing_windows_ok():
    dumps = [
        dump(0, [("a", {"hits": 10}), ("b", {"hits": 1})]),
        dump(60, [("a", {"hits": 10})]),
    ]
    acc = accumulate_dumps(dumps)
    assert acc["b"]["hits"] == 1
    assert acc["b"].windows == 1


def test_ranked_keys():
    rows = {"a": {"hits": 5}, "b": {"hits": 10}, "c": {"hits": 5}}
    assert ranked_keys(rows) == ["b", "a", "c"]
    assert ranked_keys(rows, descending=False)[0] in ("a", "c")


def test_total_hits():
    rows = {"a": {"hits": 5}, "b": {"hits": 10}}
    assert total_hits(rows) == 15


def test_split_dumps_at():
    dumps = [dump(0, []), dump(60, []), dump(120, [])]
    before, after = split_dumps_at(dumps, 60)
    assert [d.start_ts for d in before] == [0]
    assert [d.start_ts for d in after] == [60, 120]


def test_key_series():
    dumps = [
        dump(0, [("a", {"hits": 3})]),
        dump(60, []),
        dump(120, [("a", {"hits": 7})]),
    ]
    assert key_series(dumps, "a") == [(0, 3), (60, 0), (120, 7)]
