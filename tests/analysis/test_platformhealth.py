"""Tests for the platform-health renderer (report --platform)."""

from repro.analysis.platformhealth import (
    component_series,
    latest_rows,
    platform_health,
    render_platform_health,
)
from repro.observatory.alerts import parse_rules
from repro.observatory.pipeline import Observatory
from repro.observatory.store import SeriesStore
from repro.observatory.window import WindowDump
from tests.util import make_txn


def platform_window(ts, rows):
    return WindowDump("_platform", ts, list(rows.items()),
                      {"seen": 0, "kept": len(rows)})


def sample_series():
    return [
        platform_window(0, {
            "tracker.srvip": {"capture_ratio": 0.95, "tracked": 40},
            "window": {"flush_ms_p95": 1.5, "txns": 100},
        }),
        platform_window(60, {
            "tracker.srvip": {"capture_ratio": 0.85, "tracked": 42},
            "window": {"flush_ms_p95": 2.5, "txns": 120},
        }),
    ]


def test_latest_rows_takes_newest_window():
    latest = latest_rows(sample_series())
    assert latest["tracker.srvip"][0] == 60
    assert latest["tracker.srvip"][1]["capture_ratio"] == 0.85


def test_component_series_wildcard_average():
    series = [platform_window(0, {
        "tracker.a": {"capture_ratio": 1.0},
        "tracker.b": {"capture_ratio": 0.5},
    })]
    assert component_series(series, "tracker.*", "capture_ratio") == \
        [(0, 0.75)]


def test_component_series_exact():
    assert component_series(sample_series(), "window", "flush_ms_p95") \
        == [(0, 1.5), (60, 2.5)]


def test_platform_health_from_dump_list():
    series, verdicts, summary = platform_health(sample_series())
    assert len(series) == 2
    assert summary["status"] in ("ok", "fail")
    text = render_platform_health(series, verdicts, summary)
    assert "Platform health:" in text
    assert "tracker.srvip" in text
    assert "Alert verdicts" in text
    assert "Trend: tracker.*.capture_ratio" in text


def test_platform_health_from_store(tmp_path):
    obs = Observatory(datasets=[("srvip", 64)], output_dir=str(tmp_path),
                      use_bloom_gate=False, skip_recent_inserts=False,
                      telemetry=True)
    for i in range(400):
        obs.ingest(make_txn(ts=i * 0.5,
                            server_ip="192.0.2.%d" % (1 + i % 3)))
    obs.finish()
    store = SeriesStore(str(tmp_path))
    series, verdicts, summary = platform_health(store)
    assert series, "telemetry replay should emit _platform windows"
    assert any(v.component.startswith("tracker.") for v in verdicts)


def test_failing_rule_renders_fail():
    rules = parse_rules("floor: tracker.*.capture_ratio >= 0.99")
    series, verdicts, summary = platform_health(sample_series(),
                                                rules=rules)
    assert summary["status"] == "fail"
    text = render_platform_health(series, verdicts, summary)
    assert text.startswith("Platform health: FAIL")
    assert "FAIL" in text


def test_empty_series_renders_hint():
    series, verdicts, summary = platform_health([])
    text = render_platform_health(series, verdicts, summary)
    assert "No _platform series" in text
    assert summary["status"] == "no_data"


def test_windows_limit():
    series = [platform_window(ts, {"window": {"txns": ts}})
              for ts in range(0, 600, 60)]
    kept, _, _ = platform_health(series, windows=3)
    assert [d.start_ts for d in kept] == [420, 480, 540]
