"""End-to-end tests for every table/figure analysis module.

All tests share one session-scoped simulation run (see conftest.py)
and assert the paper's qualitative *shapes*, not absolute numbers.
"""

import pytest

from repro.analysis.asattribution import render_table1, table1, top_share
from repro.analysis.delays import (
    delay_cdf,
    hierarchy_shares,
    letter_stats,
    popularity_speed_correlation,
    rank_vs_delay,
    render_figure3,
)
from repro.analysis.distributions import figure2, render_figure2
from repro.analysis.happyeyeballs import (
    figure9,
    high_empty_fqdns,
    quotient_correlation,
    render_figure9,
)
from repro.analysis.heatmap import build_heatmap, render_figure6
from repro.analysis.qmin import detect_qmin, render_table3
from repro.analysis.qtypes import render_table2, table2
from repro.analysis.representativeness import (
    convergence_ratio,
    nameservers_over_time,
    render_figure4,
    render_figure5,
    slash24_density,
    vp_sample_curves,
)


class TestFigure2:
    def test_concentration(self, run):
        results = figure2(run.obs, datasets=("srvip",))
        dist = results["srvip"]
        assert len(dist.keys) > 50
        # Heavy tail: a small fraction of nameservers covers half the
        # traffic (paper: ~1k of >1M).
        half = dist.objects_for_share(0.5)
        assert half < 0.25 * len(dist.keys)
        # CDFs are monotone and end at 1.
        for cat in dist.CATEGORIES:
            cdf = dist.cdf(cat)
            assert all(b >= a - 1e-12 for a, b in zip(cdf, cdf[1:]))
            if dist.category_share(cat) > 0:
                assert cdf[-1] == pytest.approx(1.0)

    def test_nxdomain_concentrated_on_popular_servers(self, run):
        dist = figure2(run.obs, datasets=("srvip",))["srvip"]
        # Botnet NXD goes to gTLDs, which are top servers: the NXD CDF
        # at the top ranks exceeds the all-traffic CDF there.
        k = max(1, len(dist.keys) // 20)
        assert dist.share_of_top(k, "nxdomain") >= \
            dist.share_of_top(k, "all") * 0.8

    def test_qname_capture_lower_than_srvip(self, run):
        results = figure2(run.obs, datasets=("srvip", "qname"))
        # Many FQDNs are ephemeral: per-FQDN aggregation captures less.
        assert results["qname"].capture_ratio() < \
            results["srvip"].capture_ratio()

    def test_render(self, run):
        out = render_figure2(figure2(run.obs, datasets=("srvip",)))
        assert "Figure 2" in out
        assert "50%" in out


class TestTable1:
    def test_major_orgs_dominate(self, run):
        topo = run.dns.topology
        rows, total, attributed = table1(run.obs, topo.asdb, topo.asnames)
        assert rows
        assert attributed / total > 0.95  # synthetic ASdb covers all
        names = [r.org for r in rows]
        # The Table 1 cast appears among the top orgs.
        assert "VERISIGN" in names  # gTLD operator always present
        assert len(set(names) & {"AMAZON", "CLOUDFLARE", "AKAMAI",
                                 "MICROSOFT", "GOOGLE"}) >= 2
        # Top orgs carry the majority of traffic.
        assert top_share(rows, total) > 0.4

    def test_cdn_delays_lower_than_cloud(self, run):
        topo = run.dns.topology
        rows, _, _ = table1(run.obs, topo.asdb, topo.asnames, top_orgs=30)
        by_name = {r.org: r for r in rows}
        if "AKAMAI" in by_name and "AMAZON" in by_name:
            assert by_name["AKAMAI"].mean_delay < by_name["AMAZON"].mean_delay
        if "CLOUDFLARE" in by_name and "GOOGLE" in by_name:
            assert by_name["CLOUDFLARE"].mean_delay < \
                by_name["GOOGLE"].mean_delay

    def test_anycast_uses_fewer_ips(self, run):
        topo = run.dns.topology
        rows, _, _ = table1(run.obs, topo.asdb, topo.asnames, top_orgs=30)
        by_name = {r.org: r for r in rows}
        if "CLOUDFLARE" in by_name and "AKAMAI" in by_name:
            assert by_name["CLOUDFLARE"].servers < by_name["AKAMAI"].servers

    def test_render(self, run):
        topo = run.dns.topology
        rows, total, _ = table1(run.obs, topo.asdb, topo.asnames)
        out = render_table1(rows, total)
        assert "Table 1" in out
        assert "VERISIGN" in out


class TestTable2:
    def test_a_dominates(self, run):
        rows, _ = table2(run.obs)
        by_type = {r.qtype: r for r in rows}
        assert rows[0].qtype == "A"
        assert by_type["A"].global_share > 2 * by_type["AAAA"].global_share

    def test_aaaa_nodata_far_higher_than_a(self, run):
        rows, _ = table2(run.obs)
        by_type = {r.qtype: r for r in rows}
        assert by_type["AAAA"].nodata > 3 * max(by_type["A"].nodata, 0.001)

    def test_ns_mostly_nxdomain(self, run):
        rows, _ = table2(run.obs)
        by_type = {r.qtype: r for r in rows}
        if "NS" in by_type:
            assert by_type["NS"].nxd > 0.5

    def test_ptr_deep_labels(self, run):
        rows, _ = table2(run.obs)
        by_type = {r.qtype: r for r in rows}
        if "PTR" in by_type:
            assert by_type["PTR"].qdots > by_type["A"].qdots
            assert by_type["PTR"].ttl == 86400

    def test_txt_tiny_ttl(self, run):
        rows, _ = table2(run.obs)
        by_type = {r.qtype: r for r in rows}
        if "TXT" in by_type:
            assert by_type["TXT"].ttl <= 60

    def test_render(self, run):
        rows, _ = table2(run.obs)
        out = render_table2(rows)
        assert "Table 2" in out and "AAAA" in out


class TestFigure3:
    def test_delay_cdf_sections(self, run):
        delays, shares = delay_cdf(run.obs)
        assert len(delays) > 50
        assert sum(shares) == pytest.approx(1.0)
        # Distant is the biggest regime (paper: 71.5%).
        assert shares[2] == max(shares)

    def test_popular_servers_faster(self, run):
        groups = rank_vs_delay(run.obs, group_size=50)
        assert len(groups) >= 4
        # At unit-test scale individual groups are noisy; the paper's
        # head-vs-tail contrast must still hold on average.
        head = sum(d for _, d, _ in groups[:2]) / 2
        tail = sum(d for _, d, _ in groups[-2:]) / 2
        assert head < tail * 1.1
        head_hops = sum(h for _, _, h in groups[:2]) / 2
        tail_hops = sum(h for _, _, h in groups[-2:]) / 2
        assert head_hops < tail_hops * 1.2

    def test_root_letters(self, run):
        stats = letter_stats(run.obs, run.root_letter_ips())
        assert len(stats) >= 10
        by_letter = {s.letter: s for s in stats}
        # Heavily mirrored letters are fastest (E/F/L colocated).
        fast = [by_letter[l].delay_q50 for l in "efl" if l in by_letter]
        slow = [by_letter[l].delay_q50 for l in "bgh" if l in by_letter]
        if fast and slow:
            assert min(fast) < min(slow)
        for s in stats:
            assert s.delay_q25 <= s.delay_q50 <= s.delay_q75

    def test_root_mostly_nxdomain(self, run):
        shares = hierarchy_shares(run.obs, run.root_letter_ips())
        assert 0.0 < shares["share"] < 0.2
        assert shares["nxd_share"] > 0.3

    def test_gtld_shares(self, run):
        shares = hierarchy_shares(run.obs, run.gtld_letter_ips())
        assert shares["share"] > 0.03
        assert shares["nxd_share"] > 0.15

    def test_gtld_b_fastest(self, run):
        stats = letter_stats(run.obs, run.gtld_letter_ips())
        by_letter = {s.letter: s for s in stats}
        if "b" in by_letter:
            others = [s.delay_q50 for s in stats if s.letter != "b"]
            assert by_letter["b"].delay_q50 <= min(others) * 1.2

    def test_render(self, run):
        out = render_figure3(
            delay_cdf(run.obs), rank_vs_delay(run.obs, group_size=50),
            letter_stats(run.obs, run.root_letter_ips()),
            letter_stats(run.obs, run.gtld_letter_ips()),
            hierarchy_shares(run.obs, run.root_letter_ips()),
            hierarchy_shares(run.obs, run.gtld_letter_ips()))
        assert "Figure 3a" in out and "Figure 3d" in out


class TestTable3Qmin:
    def test_detects_ground_truth_qmin_resolvers(self, run):
        root_ips = set(run.root_letter_ips().values())
        tld_ips = {ns.ip for tld in run.dns.root.tlds.values()
                   for ns in tld.nameservers}
        detector = detect_qmin(run.transactions, root_ips, tld_ips)
        truth_qmin = {r.ip for r in run.channel.resolvers if r.qmin}
        candidates = set(detector.cross_check(
            detector.possible_qmin_resolvers_root()))
        # Every true qmin resolver that talked to the root must be a
        # candidate, and no non-qmin resolver may be one.
        active = set(detector.root_max_labels)
        assert truth_qmin & active <= candidates
        non_qmin_truth = active - truth_qmin
        assert not (candidates & non_qmin_truth)

    def test_qmin_share_is_small(self, run):
        root_ips = set(run.root_letter_ips().values())
        tld_ips = {ns.ip for tld in run.dns.root.tlds.values()
                   for ns in tld.nameservers}
        detector = detect_qmin(run.transactions, root_ips, tld_ips)
        shares = detector.qmin_traffic_shares()
        assert shares["root"] < 0.5
        assert shares["tld"] < 0.5

    def test_render(self, run):
        root_ips = set(run.root_letter_ips().values())
        detector = detect_qmin(run.transactions, root_ips, set())
        out = render_table3(detector)
        assert "Table 3" in out and "qmin" in out


class TestFigure45Representativeness:
    def test_vp_curves_converge(self, run):
        curves = vp_sample_curves(run.transactions, repetitions=5)
        assert curves[-1]["fraction"] == 1.0
        counts = [c["nameservers"] for c in curves]
        assert counts[0] < counts[-1]
        assert convergence_ratio(curves) > 0.5

    def test_small_sample_sees_top_servers(self, run):
        curves = vp_sample_curves(run.transactions, repetitions=5,
                                  top_k=20)
        # Paper: a 5% sample sees ~95% of the top list; we assert the
        # small-sample coverage is already high.
        assert curves[0]["top_coverage"] > 0.5
        assert curves[-1]["top_coverage"] == pytest.approx(1.0)

    def test_tld_curve_bounded(self, run):
        curves = vp_sample_curves(run.transactions, repetitions=5)
        assert curves[-1]["tlds"] <= run.scenario.n_tlds + 50

    def test_nameservers_over_time_monotone(self, run):
        series = nameservers_over_time(run.transactions, step_seconds=60.0)
        values = [v for _, v in series]
        assert values == sorted(values)
        assert values[-1] > 0

    def test_slash24_density_mostly_single(self, run):
        density = slash24_density(run.transactions)
        assert density
        # Paper: 48% of prefixes hold a single address; ours must at
        # least show 1-address prefixes as the biggest bucket.
        assert density.get(1, 0) == max(density.values())

    def test_render(self, run):
        curves = vp_sample_curves(run.transactions, repetitions=3)
        assert "Fig 4a" in render_figure4(curves)
        series = nameservers_over_time(run.transactions, step_seconds=60.0)
        density = slash24_density(run.transactions)
        assert "Fig 5" in render_figure5(series, density)


class TestFigure6Heatmap:
    def test_heatmap_counts_each_server_once(self, run):
        heatmap = build_heatmap(run.transactions)
        v4_servers = {t.server_ip for t in run.transactions
                      if ":" not in t.server_ip}
        total = sum(heatmap.prefix_density_histogram()[k] * k
                    for k in heatmap.prefix_density_histogram())
        assert total == len(v4_servers)

    def test_render(self, run):
        out = render_figure6(build_heatmap(run.transactions))
        assert "Figure 6" in out
        assert "prefix density" in out


class TestFigure9:
    def test_specials_have_high_empty_shares(self, run):
        points = figure9(run.obs, run.negttl_lookup, top_n=300)
        assert points
        by_fqdn = {p.fqdn: p for p in points}
        ntp = by_fqdn.get("time-a.ntpsync.com")
        if ntp is not None:
            # negTTL 15 vs A TTL 900: quotient 60, mostly empty AAAA.
            assert ntp.quotient > 10
            assert ntp.empty_aaaa_share > 0.5

    def test_quotient_correlates_with_empty_share(self, run):
        points = figure9(run.obs, run.negttl_lookup, top_n=300,
                         horizon=run.scenario.duration)
        corr = quotient_correlation(points)
        if corr["high_quotient_count"] and corr["low_quotient_count"]:
            assert corr["high_quotient_mean_share"] > \
                corr["low_quotient_mean_share"]

    def test_some_high_empty_fqdns_found(self, run):
        points = figure9(run.obs, run.negttl_lookup, top_n=300)
        assert len(high_empty_fqdns(points, threshold=0.5)) >= 1

    def test_render(self, run):
        points = figure9(run.obs, run.negttl_lookup, top_n=300)
        out = render_figure9(points)
        assert "Figure 9" in out
