"""Property fuzz of the vantage indices and the blindness gate.

Hostile-topology coverage: empty ASN lists, single-resolver
countries, zero-answer windows, duplicate country codes, and
registry-grade free text in country/org fields.  The contract under
fuzz: no crashes, every index stays in ``[0, 1]``, and every
round-trip (db TSV, series TSV) is lossless.
"""

import math
import os
import tempfile
from types import SimpleNamespace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.blindness import (
    DatasetSummary, capture_ratios, evaluate_blindness, row_weight)
from repro.analysis.vantage import (
    UNROUTED_ASN_KEY, UNROUTED_CC_KEY, VANTAGE_ASN_DATASET,
    VANTAGE_CC_DATASET, VantageDb, VantageEmitter, reachability_score,
    time_to_answer_index)
from repro.observatory.tsv import read_tsv, write_tsv
from repro.observatory.window import WindowDump

#: registry-grade hostile text: TSV separators, escapes, comments,
#: control chars, non-ASCII
_HOSTILE_ALPHABET = list("ab\\\t\n\r# .") + ["é", "☃", "名", "\x1f"]

hostile_text = st.lists(
    st.sampled_from(_HOSTILE_ALPHABET), min_size=0, max_size=8,
).map("".join)

finite = st.floats(allow_nan=False, allow_infinity=False,
                   min_value=-1e9, max_value=1e9)


class TestIndices:
    @given(hits=finite, unans=finite)
    @settings(max_examples=200, deadline=None)
    def test_reachability_bounded(self, hits, unans):
        score = reachability_score(hits, unans)
        assert 0.0 <= score <= 1.0

    @given(delay=st.one_of(
        st.floats(min_value=-1e12, max_value=1e12),
        st.just(float("nan"))))
    @settings(max_examples=200, deadline=None)
    def test_tta_bounded(self, delay):
        index = time_to_answer_index(delay)
        assert 0.0 <= index <= 1.0

    def test_index_anchors(self):
        assert reachability_score(0, 0) == 0.0
        assert reachability_score(10, 0) == 1.0
        assert reachability_score(10, 10) == 0.0
        assert time_to_answer_index(0.0) == 1.0
        assert time_to_answer_index(100.0) == 0.5
        assert time_to_answer_index(float("inf")) == 0.0
        assert time_to_answer_index(float("nan")) == 1.0


# one org entry: (asn, country, org); prefixes assigned positionally
org_entries = st.lists(
    st.tuples(st.integers(min_value=1, max_value=70000),
              hostile_text, hostile_text),
    min_size=0, max_size=5)


class TestVantageDb:
    @given(orgs=st.lists(org_entries, min_size=0, max_size=4),
           dup_cc=st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_from_hostile_topology(self, orgs, dup_cc):
        """Topologies with empty orgs (no ASNs) and duplicated
        country codes build without crashing and stay consistent."""
        topo_orgs = {}
        countries = {}
        for i, entries in enumerate(orgs):
            name = "org%d" % i
            asns = [asn for asn, _, _ in entries]
            topo_orgs[name] = SimpleNamespace(
                name=name, asns=asns,
                prefixes=["10.%d.%d.0/24" % (i, j)
                          for j in range(len(asns))],
                v6_prefixes=["2001:db8:%x:%x::/64" % (i, j)
                             for j in range(len(asns))])
            for asn, country, _org in entries:
                countries[asn] = "ZZ" if dup_cc else country
        topology = SimpleNamespace(orgs=topo_orgs, countries=countries)
        db = VantageDb.from_topology(topology)
        for i, entries in enumerate(orgs):
            for j, (asn, _, _) in enumerate(entries):
                got_asn, got_cc, got_org = db.lookup(
                    "10.%d.%d.1" % (i, j))
                assert got_asn == asn
                assert got_cc == countries[asn]
        assert db.lookup("203.0.113.1") == (None, None, None)

    @given(entries=st.lists(
        st.tuples(st.integers(min_value=0, max_value=255),
                  st.integers(min_value=1, max_value=2 ** 31),
                  hostile_text, hostile_text),
        min_size=0, max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_tsv_roundtrip(self, entries):
        """Hostile country/org text survives the db snapshot."""
        db = VantageDb()
        for octet, asn, country, org in entries:
            db.add("10.0.%d.0/24" % octet, asn, country, org)
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "vantage.tsv")
            db.to_tsv(path)
            back = VantageDb.from_tsv(path)
        assert back._prefixes == db._prefixes
        assert back._info == db._info

    def test_from_tsv_rejects_malformed(self, tmp_path):
        import pytest

        path = tmp_path / "bad.tsv"
        path.write_text("10.0.0.0/24\t64500\tUS\n", encoding="utf-8")
        with pytest.raises(ValueError):
            VantageDb.from_tsv(str(path))


def _one_server_db():
    """One ASN per country -- the single-resolver-country edge."""
    db = VantageDb()
    db.add("10.0.0.0/24", 64500, "AA", "solo-a")
    db.add("10.0.1.0/24", 64501, "BB", "solo-b")
    return db


server_rows = st.lists(
    st.tuples(
        st.sampled_from(["10.0.0.1", "10.0.0.2", "10.0.1.9",
                         "198.51.100.7"]),  # last one is unrouted
        st.floats(min_value=0, max_value=1e6, allow_nan=False,
                  allow_infinity=False),
        st.floats(min_value=-10, max_value=1e6, allow_nan=False,
                  allow_infinity=False),
        st.floats(min_value=-50, max_value=1e5, allow_nan=False,
                  allow_infinity=False)),
    min_size=0, max_size=12, unique_by=lambda r: r[0])


class TestDerive:
    @given(rows=server_rows)
    @settings(max_examples=80, deadline=None)
    def test_derive_no_crash_and_bounded(self, rows):
        emitter = VantageEmitter(_one_server_db())
        dump = WindowDump("srvip", 60.0,
                          [(ip, {"hits": h, "unans": u, "delay_q50": d})
                           for ip, h, u, d in rows],
                          {"seen": len(rows), "kept": len(rows)})
        derived = emitter.derive(dump)
        if not rows:
            assert derived == []
            return
        assert [d.dataset for d in derived] == [VANTAGE_ASN_DATASET,
                                                VANTAGE_CC_DATASET]
        for d in derived:
            keys = [key for key, _ in d.rows]
            assert keys == sorted(keys)
            assert d.stats == {"seen": len(rows), "kept": len(d.rows)}
            for _key, row in d.rows:
                assert 0.0 <= row["reach"] <= 1.0
                assert 0.0 <= row["tta"] <= 1.0
                assert row["servers"] >= 1
                assert not math.isnan(row["delay_ms"])
        # every group's server count sums back to the input rows
        asn_dump, cc_dump = derived
        assert sum(r["servers"] for _, r in asn_dump.rows) == len(rows)
        assert sum(r["servers"] for _, r in cc_dump.rows) == len(rows)

    @given(rows=server_rows)
    @settings(max_examples=40, deadline=None)
    def test_derived_dump_tsv_roundtrip(self, rows):
        """Derived windows survive the series TSV writer byte-wise:
        keys, columns, stats, and quantized values all round-trip."""
        emitter = VantageEmitter(_one_server_db())
        dump = WindowDump("srvip", 120.0,
                          [(ip, {"hits": h, "unans": u, "delay_q50": d})
                           for ip, h, u, d in rows],
                          {"seen": len(rows), "kept": len(rows)})
        for derived in emitter.derive(dump):
            with tempfile.TemporaryDirectory() as tmp:
                path = write_tsv(tmp, derived.to_timeseries())
                back = read_tsv(path)
            assert back.dataset == derived.dataset
            assert [k for k, _ in back.rows] == \
                [k for k, _ in derived.rows]
            # values were quantized at derivation time, so the TSV
            # round-trip is exact, not approximate
            for (_, got), (_, want) in zip(back.rows, derived.rows):
                for column in ("hits", "reach", "tta", "delay_ms"):
                    assert got[column] == _requantize(want[column])

    def test_zero_answer_window(self):
        """All-unanswered windows: reach 0, no division blowups."""
        emitter = VantageEmitter(_one_server_db())
        dump = WindowDump("srvip", 0.0,
                          [("10.0.0.1", {"hits": 5.0, "unans": 5.0,
                                         "delay_q50": 0.0})],
                          {"seen": 5, "kept": 1})
        asn_dump, cc_dump = emitter.derive(dump)
        assert asn_dump.rows[0][0] == "AS64500"
        assert asn_dump.rows[0][1]["reach"] == 0.0
        assert cc_dump.rows[0][1]["reach"] == 0.0

    def test_unrouted_falls_back_to_sentinel_groups(self):
        emitter = VantageEmitter(_one_server_db())
        dump = WindowDump("srvip", 0.0,
                          [("198.51.100.7", {"hits": 1.0, "unans": 0.0,
                                             "delay_q50": 10.0})],
                          {"seen": 1, "kept": 1})
        asn_dump, cc_dump = emitter.derive(dump)
        assert asn_dump.rows[0][0] == UNROUTED_ASN_KEY
        assert cc_dump.rows[0][0] == UNROUTED_CC_KEY


def _requantize(value):
    from repro.observatory.tsv import _format, _parse

    return _parse(_format(value)) if isinstance(value, float) else value


def _summary(dataset, weight, seen=0):
    s = DatasetSummary(dataset)
    s.windows = 1
    s.rows = 1
    s.weight = float(weight)
    s.seen = seen
    return s


weights = st.floats(min_value=0, max_value=1e9, allow_nan=False,
                    allow_infinity=False)


class TestBlindnessFuzz:
    @given(row=st.dictionaries(
        st.sampled_from(["hits", "queries", "count", "other"]),
        st.floats(allow_nan=False, allow_infinity=False,
                  min_value=-1e6, max_value=1e6),
        max_size=4))
    @settings(max_examples=100, deadline=None)
    def test_row_weight_total(self, row):
        w = row_weight(row)
        assert not math.isnan(w)
        for column in ("hits", "queries", "count"):
            if column in row:
                assert w == float(row[column])
                break
        else:
            assert w == 1.0

    @given(base=weights, others=st.lists(weights, min_size=1,
                                         max_size=4))
    @settings(max_examples=100, deadline=None)
    def test_capture_ratios_defined_everywhere(self, base, others):
        baseline = {"qname": _summary("qname", base)}
        for i, w in enumerate(others):
            ratios = capture_ratios(
                baseline, {"qname": _summary("qname", w)})
            assert not math.isnan(ratios["qname"])
            if base == 0:
                assert ratios["qname"] == 1.0

    @given(series=st.lists(weights, min_size=2, max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_monotone_gate_matches_ordering(self, series):
        """The gate flags exactly the non-monotone content sweeps."""
        summaries = [
            ("dir%d" % i, {"qname": _summary("qname", w)})
            for i, w in enumerate(series)
        ]
        violations = evaluate_blindness(summaries)
        sorted_down = all(b <= a * (1 + 1e-9) + 1e-9
                          for a, b in zip(series, series[1:]))
        if sorted_down:
            assert violations == []
        else:
            assert violations
