"""Equivalence tests for the clustered-run fold (fold_columns_run).

The store batches consecutive segment windows sharing one ordered key
tuple into a single :meth:`Accumulator.fold_columns_run` call.  The
contract backing that batching is *bit*-identity: per ``(key, column)``
cell the run fold applies the same operations in the same window order
as the row-major fold, so every mix of folds over the same windows
yields the exact same floats -- not approximately, exactly.
"""

import random

from repro.analysis.seriesops import Accumulator

COLUMNS = ["hits", "ok", "qdots_max", "ttl_top1", "delay_q50"]


def random_windows(seed, n_windows, keys):
    """Per-window parallel column lists over a fixed key tuple."""
    rng = random.Random(seed)
    windows = []
    for _ in range(n_windows):
        cols = []
        for col in COLUMNS:
            if col == "hits":
                cols.append([rng.choice([0, 1, 3, 250]) for _ in keys])
            elif col == "ok":
                cols.append([rng.randrange(100) for _ in keys])
            elif col == "qdots_max":
                cols.append([rng.randrange(6) for _ in keys])
            elif col == "ttl_top1":
                cols.append([rng.choice([0, 60, 300, 86400])
                             for _ in keys])
            else:
                cols.append([rng.uniform(0.0, 50.0) for _ in keys])
        windows.append(cols)
    return windows


def rows_of(keys, cols):
    return [(key, dict(zip(COLUMNS, values)))
            for key, values in zip(keys, zip(*cols))]


def finish(acc):
    rows = acc.finish()
    return {key: (row.windows, dict(row)) for key, row in rows.items()}


def test_run_fold_matches_row_major_exactly():
    keys = ["k%d" % i for i in range(7)]
    windows = random_windows(1, 40, keys)
    row_major = Accumulator()
    for cols in windows:
        row_major.fold_rows(rows_of(keys, cols))
    run = Accumulator()
    run.fold_columns_run(keys, COLUMNS, windows)
    assert finish(run) == finish(row_major)


def test_run_fold_matches_per_window_columnar_exactly():
    keys = ["k%d" % i for i in range(5)]
    windows = random_windows(2, 25, keys)
    one_by_one = Accumulator()
    for cols in windows:
        one_by_one.fold_columns(keys, COLUMNS, cols)
    run = Accumulator()
    run.fold_columns_run(keys, COLUMNS, windows)
    assert finish(run) == finish(one_by_one)


def test_interleaved_folds_agree_with_pure_row_major():
    """The store's real access pattern: cached windows fold row-major,
    segment runs fold clustered, single stragglers fold columnar --
    in window order.  The mix must equal one row-major pass."""
    keys = ["k%d" % i for i in range(6)]
    windows = random_windows(3, 30, keys)
    pure = Accumulator()
    for cols in windows:
        pure.fold_rows(rows_of(keys, cols))
    mixed = Accumulator()
    rng = random.Random(99)
    i = 0
    while i < len(windows):
        mode = rng.randrange(3)
        if mode == 0:
            mixed.fold_rows(rows_of(keys, windows[i]))
            i += 1
        elif mode == 1:
            mixed.fold_columns(keys, COLUMNS, windows[i])
            i += 1
        else:
            n = min(rng.randrange(1, 6), len(windows) - i)
            mixed.fold_columns_run(keys, COLUMNS, windows[i:i + n])
            i += n
    assert finish(mixed) == finish(pure)


def test_run_fold_mode_zero_values_do_not_vote():
    keys = ["k"]
    windows = [
        [[1000], [0], [0], [0], [1.0]],   # ttl 0: NoData-only window
        [[3], [0], [0], [900], [1.0]],
    ]
    acc = Accumulator()
    acc.fold_columns_run(keys, COLUMNS, windows)
    assert acc.finish()["k"]["ttl_top1"] == 900


def test_run_fold_mode_zero_hits_votes_minimally():
    keys = ["k"]
    windows = [
        [[0], [0], [0], [60], [0.0]],
        [[0], [0], [0], [60], [0.0]],
        [[0], [0], [0], [300], [0.0]],
    ]
    acc = Accumulator()
    acc.fold_columns_run(keys, COLUMNS, windows)
    assert acc.finish()["k"]["ttl_top1"] == 60


def test_run_fold_max_keeps_first_peak_semantics():
    keys = ["k"]
    windows = [
        [[1], [1], [2], [0], [0.0]],
        [[1], [1], [5], [0], [0.0]],
        [[1], [1], [5], [0], [0.0]],  # tie with the earlier peak
        [[1], [1], [3], [0], [0.0]],
    ]
    acc = Accumulator()
    acc.fold_columns_run(keys, COLUMNS, windows)
    assert acc.finish()["k"]["qdots_max"] == 5


def test_run_fold_gauge_zero_hits_windows():
    """Windows with hits == 0 contribute no gauge weight; an all-zero
    prefix leaves the running mean at 0.0, exactly like fold_rows."""
    keys = ["k"]
    windows = [
        [[0], [0], [0], [0], [99.0]],
        [[10], [0], [0], [0], [4.0]],
        [[30], [0], [0], [0], [8.0]],
    ]
    run = Accumulator()
    run.fold_columns_run(keys, COLUMNS, windows)
    rows = Accumulator()
    for cols in windows:
        rows.fold_rows(rows_of(keys, cols))
    assert finish(run) == finish(rows)


def test_run_fold_missing_hits_column():
    """A dataset without a hits column still folds (gauges weight 0)."""
    cols = ["ok", "delay_q50"]
    windows = [[[5], [10.0]], [[7], [20.0]]]
    run = Accumulator()
    run.fold_columns_run(["k"], cols, windows)
    rows = Accumulator()
    for w in windows:
        rows.fold_rows([("k", dict(zip(cols, [w[0][0], w[1][0]])))])
    assert finish(run) == finish(rows)


def test_run_fold_accumulates_across_calls():
    """A second run call continues existing per-key state (the store
    flushes runs at ACCUMULATE_RUN windows and on interruptions)."""
    keys = ["a", "b"]
    windows = random_windows(4, 20, keys)
    split = Accumulator()
    split.fold_columns_run(keys, COLUMNS, windows[:9])
    split.fold_columns_run(keys, COLUMNS, windows[9:])
    whole = Accumulator()
    whole.fold_columns_run(keys, COLUMNS, windows)
    assert finish(split) == finish(whole)
