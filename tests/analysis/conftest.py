"""Shared end-to-end run for the analysis tests.

One tiny-but-complete simulation feeds one Observatory with all
datasets; every analysis module is tested against this single run
(session-scoped: the simulation runs once).
"""

import pytest

from repro.observatory.pipeline import Observatory
from repro.simulation.scenario import Scenario
from repro.simulation.sie import SieChannel


class AnalysisRun:
    """Bundle of channel, transactions and a loaded Observatory."""

    def __init__(self, scenario=None, datasets=None, **obs_kw):
        self.scenario = scenario or Scenario.tiny(
            seed=101, duration=420.0, client_qps=60.0,
            qmin_resolver_fraction=0.15,
        )
        self.channel = SieChannel(self.scenario)
        self.transactions = []
        datasets = datasets or [
            ("srvip", 600), ("qname", 1500), ("esld", 800),
            "qtype", "rcode", ("aafqdn", 800),
        ]
        obs_kw.setdefault("use_bloom_gate", False)
        self.obs = Observatory(datasets=datasets, **obs_kw)
        for txn in self.channel.run():
            self.transactions.append(txn)
            self.obs.ingest(txn)
        self.obs.finish()

    @property
    def dns(self):
        return self.channel.dns

    def root_letter_ips(self):
        return {ns.hostname.split(".")[0]: ns.ip
                for ns in self.dns.root.nameservers}

    def gtld_letter_ips(self):
        return {ns.hostname.split(".")[0]: ns.ip
                for ns in self.dns.root.tlds["com"].nameservers}

    def negttl_lookup(self, fqdn):
        zone = self.dns.find_sld_zone(fqdn)
        return zone.soa_negttl if zone is not None else None


@pytest.fixture(scope="session")
def run():
    return AnalysisRun()
