"""Tests for aggregate-based qmin detection via the srcsrv dataset."""

from repro.analysis.qmin import detect_qmin, detect_qmin_from_srcsrv
from repro.observatory.pipeline import Observatory
from repro.observatory.window import WindowDump


def dump(rows):
    return WindowDump("srcsrv", 0, rows, {})


ROOT = {"192.0.2.1"}
TLD = {"192.0.2.2"}


def test_detection_from_rows():
    rows = [
        ("10.0.0.1|192.0.2.1", {"hits": 50, "qdots_max": 1}),   # qmin
        ("10.0.0.2|192.0.2.1", {"hits": 100, "qdots_max": 3}),  # leaks
        ("10.0.0.2|192.0.2.2", {"hits": 40, "qdots_max": 3}),
    ]
    det = detect_qmin_from_srcsrv([dump(rows)], ROOT, TLD)
    assert det.possible_qmin_resolvers_root() == ["10.0.0.1"]
    assert det.non_qmin_resolvers_root() == ["10.0.0.2"]
    assert det.non_qmin_resolvers_tld() == ["10.0.0.2"]
    assert det.qmin_traffic_shares()["root"] == 50 / 150


def test_whitelist_applies():
    rows = [("10.0.0.1|192.0.2.2", {"hits": 10, "qdots_max": 3})]
    strict = detect_qmin_from_srcsrv([dump(rows)], ROOT, TLD)
    assert strict.non_qmin_resolvers_tld() == ["10.0.0.1"]
    lenient = detect_qmin_from_srcsrv([dump(rows)], ROOT, TLD,
                                      whitelisted_tld_ips=TLD)
    assert lenient.non_qmin_resolvers_tld() == []


def test_agrees_with_transaction_level_detection():
    """End-to-end: the srcsrv aggregate path reaches the same verdicts
    as raw-transaction inspection, for pairs the top list retained."""
    from repro.simulation import Scenario, SieChannel

    channel = SieChannel(Scenario.tiny(
        seed=61, duration=180.0, client_qps=40.0,
        qmin_resolver_fraction=0.3))
    obs = Observatory(datasets=[("srcsrv", 3000)], use_bloom_gate=False,
                      skip_recent_inserts=False)
    transactions = []
    for txn in channel.run():
        transactions.append(txn)
        obs.ingest(txn)
    obs.finish()

    root_ips = {ns.ip for ns in channel.dns.root.nameservers}
    tld_ips = {ns.ip for tld in channel.dns.root.tlds.values()
               for ns in tld.nameservers}
    raw = detect_qmin(transactions, root_ips, tld_ips)
    agg = detect_qmin_from_srcsrv(obs.dumps["srcsrv"], root_ips, tld_ips)

    raw_non = set(raw.non_qmin_resolvers_root())
    agg_non = set(agg.non_qmin_resolvers_root())
    # Every resolver convicted from aggregates is convicted from raw
    # data (aggregates can only miss pairs the top-k dropped).
    assert agg_non <= raw_non
    # And the bulk of convictions survive aggregation.
    if raw_non:
        assert len(agg_non) >= 0.7 * len(raw_non)
    # Ground truth: no qmin resolver is ever convicted.
    truth_qmin = {r.ip for r in channel.resolvers if r.qmin}
    assert not (agg_non & truth_qmin)
