"""Tests for the CSV figure exports."""

import csv

from repro.analysis.delays import (
    delay_cdf,
    letter_stats,
    rank_vs_delay,
)
from repro.analysis.distributions import figure2
from repro.analysis.export import (
    export_figure2,
    export_figure3,
    export_figure4,
    export_figure5,
    export_figure9,
    export_table1,
    export_table2,
)
from repro.analysis.happyeyeballs import figure9
from repro.analysis.asattribution import table1
from repro.analysis.qtypes import table2
from repro.analysis.representativeness import (
    nameservers_over_time,
    vp_sample_curves,
)


def read_csv(path):
    with open(path, newline="") as fh:
        return list(csv.reader(fh))


def test_export_figure2(run, tmp_path):
    dists = figure2(run.obs, datasets=("srvip",))
    paths = export_figure2(dists, str(tmp_path), max_rank=50)
    rows = read_csv(paths[0])
    assert rows[0][0] == "rank"
    assert len(rows) == 51
    # CDF columns are monotone.
    cdf = [float(r[2]) for r in rows[1:]]
    assert cdf == sorted(cdf)


def test_export_table1(run, tmp_path):
    topo = run.dns.topology
    rows, total, _ = table1(run.obs, topo.asdb, topo.asnames)
    path = export_table1(rows, total, str(tmp_path))
    data = read_csv(path)
    assert data[0][1] == "org"
    assert len(data) == len(rows) + 1


def test_export_table2(run, tmp_path):
    rows, _ = table2(run.obs)
    path = export_table2(rows, str(tmp_path))
    data = read_csv(path)
    assert data[1][1] == "A"


def test_export_figure3(run, tmp_path):
    paths = export_figure3(
        delay_cdf(run.obs), rank_vs_delay(run.obs, group_size=50),
        letter_stats(run.obs, run.root_letter_ips()),
        letter_stats(run.obs, run.gtld_letter_ips()),
        str(tmp_path))
    assert len(paths) == 4
    for path in paths:
        assert len(read_csv(path)) > 1


def test_export_figure4_and_5(run, tmp_path):
    curves = vp_sample_curves(run.transactions, repetitions=2)
    p4 = export_figure4(curves, str(tmp_path))
    assert len(read_csv(p4)) == len(curves) + 1
    series = nameservers_over_time(run.transactions, step_seconds=60.0)
    p5 = export_figure5(series, str(tmp_path))
    assert len(read_csv(p5)) == len(series) + 1


def test_export_figure9(run, tmp_path):
    points = figure9(run.obs, run.negttl_lookup, top_n=100)
    path = export_figure9(points, str(tmp_path))
    data = read_csv(path)
    assert data[0][:2] == ["rank", "fqdn"]
    assert len(data) == len(points) + 1
