"""Section 5.3: effect of enabling IPv6 on empty-AAAA shares."""

import pytest

from repro.analysis.happyeyeballs import ipv6_rollout, render_ipv6_rollout
from repro.observatory.pipeline import Observatory
from repro.simulation.scenario import EnableIpv6, Scenario
from repro.simulation.sie import SieChannel

FQDN = "time-a.ntpsync.com"
ROLLOUT_AT = 900.0
DURATION = 1800.0


@pytest.fixture(scope="module")
def rollout_run():
    scenario = Scenario.tiny(
        seed=41, duration=DURATION, client_qps=40.0,
        dualstack_fraction=0.8,
        scripted_events=[EnableIpv6(at=ROLLOUT_AT, fqdn=FQDN)],
    )
    channel = SieChannel(scenario)
    obs = Observatory(datasets=[("qname", 1500)], use_bloom_gate=False)
    for txn in channel.run():
        obs.ingest(txn)
    obs.finish()
    return channel, obs


def test_empty_aaaa_share_drops_after_rollout(rollout_run):
    _, obs = rollout_run
    result = ipv6_rollout(obs, FQDN, ROLLOUT_AT)
    # Before: IPv4-only with negTTL 15 -> lots of empty AAAA.
    assert result["before"]["empty_aaaa_share"] > 0.2
    # After: AAAA answered with data, empty share collapses.
    assert result["after"]["empty_aaaa_share"] < \
        result["before"]["empty_aaaa_share"] / 2


def test_render(rollout_run):
    _, obs = rollout_run
    out = render_ipv6_rollout(ipv6_rollout(obs, FQDN, ROLLOUT_AT), FQDN)
    assert "Section 5.3" in out
    assert FQDN in out
