"""Tests for the DNSDB-like history store."""

from repro.analysis.dnsdb import DnsdbStore
from repro.dnswire.constants import QTYPE
from tests.util import make_txn


def test_record_and_states():
    db = DnsdbStore()
    db.record("www.example.com", QTYPE.A, ("1.2.3.4",), 300, ts=10.0)
    db.record("www.example.com", QTYPE.A, ("1.2.3.4",), 300, ts=50.0)
    states = db.states("www.example.com", QTYPE.A)
    assert len(states) == 1
    assert states[0].count == 2
    assert states[0].first_seen == 10.0
    assert states[0].last_seen == 50.0


def test_value_change_detected():
    db = DnsdbStore()
    db.record("ns2.oh-isp.com", QTYPE.A, ("31.222.208.197",), 600, 0.0)
    db.record("ns2.oh-isp.com", QTYPE.A, ("52.166.106.97",), 38400, 100.0)
    change = db.value_change("ns2.oh-isp.com", QTYPE.A)
    assert change == (("31.222.208.197",), ("52.166.106.97",))
    assert db.ttl_transition("ns2.oh-isp.com", QTYPE.A) == (600, 38400)


def test_no_change_returns_none():
    db = DnsdbStore()
    db.record("x.com", QTYPE.A, ("1.1.1.1",), 60, 0.0)
    assert db.value_change("x.com", QTYPE.A) is None
    assert db.ttl_transition("x.com", QTYPE.A) is None


def test_value_order_does_not_matter():
    db = DnsdbStore()
    db.record("x.com", QTYPE.A, ("2.2.2.2", "1.1.1.1"), 60, 0.0)
    db.record("x.com", QTYPE.A, ("1.1.1.1", "2.2.2.2"), 60, 1.0)
    assert len(db.states("x.com", QTYPE.A)) == 1


def test_distinct_counts():
    db = DnsdbStore()
    for i, ttl in enumerate((100, 90, 80, 70)):
        db.record("dyn.example", QTYPE.A, ("9.9.9.9",), ttl, float(i))
    assert db.distinct_ttls("dyn.example", QTYPE.A) == 4
    assert db.distinct_value_sets("dyn.example", QTYPE.A) == 1


def test_observe_transaction_a_and_ns():
    db = DnsdbStore()
    txn = make_txn(qname="www.example.com", aa=True,
                   answer_ips=("5.6.7.8",),
                   answer_ttls=(120,), authority_ns_count=2,
                   ns_ttls=(3600, 3600))
    txn.ns_names = ("ns1.example.com", "ns2.example.com")
    db.observe_transaction(txn)
    assert db.states("www.example.com", QTYPE.A)
    assert db.states("www.example.com", QTYPE.NS)
    assert db.names() == ["www.example.com"]


def test_observe_skips_failures():
    db = DnsdbStore()
    db.observe_transaction(make_txn(answered=False))
    from tests.util import make_nxdomain

    db.observe_transaction(make_nxdomain())
    assert len(db) == 0
