"""Tests for the mode/max accumulation rules of seriesops."""

import pytest

from repro.analysis.seriesops import MAX_COLUMNS, MODE_COLUMNS, accumulate_dumps
from repro.observatory.window import WindowDump


def dump(start, rows):
    return WindowDump("x", start, rows, {})


def test_ttl_mode_weighted_by_hits():
    dumps = [
        dump(0, [("k", {"hits": 100, "ttl_top1": 300})]),
        dump(60, [("k", {"hits": 10, "ttl_top1": 86400})]),
        dump(120, [("k", {"hits": 80, "ttl_top1": 300})]),
    ]
    acc = accumulate_dumps(dumps)
    assert acc["k"]["ttl_top1"] == 300


def test_zero_ttl_windows_do_not_vote():
    dumps = [
        dump(0, [("k", {"hits": 1000, "ttl_top1": 0})]),  # NoData-only
        dump(60, [("k", {"hits": 3, "ttl_top1": 900})]),
    ]
    acc = accumulate_dumps(dumps)
    assert acc["k"]["ttl_top1"] == 900


def test_all_zero_ttls_yield_no_mode():
    dumps = [dump(0, [("k", {"hits": 5, "ttl_top1": 0})])]
    acc = accumulate_dumps(dumps)
    assert "ttl_top1" not in acc["k"]


def test_qdots_max_takes_maximum():
    dumps = [
        dump(0, [("k", {"hits": 100, "qdots_max": 1})]),
        dump(60, [("k", {"hits": 1, "qdots_max": 4})]),
        dump(120, [("k", {"hits": 100, "qdots_max": 2})]),
    ]
    acc = accumulate_dumps(dumps)
    assert acc["k"]["qdots_max"] == 4


def test_column_sets_disjoint():
    assert not (MODE_COLUMNS & MAX_COLUMNS)


def test_mode_with_zero_hits_window_still_votes_minimally():
    dumps = [
        dump(0, [("k", {"hits": 0, "ttl_top1": 60})]),
        dump(60, [("k", {"hits": 0, "ttl_top1": 60})]),
        dump(120, [("k", {"hits": 0, "ttl_top1": 300})]),
    ]
    acc = accumulate_dumps(dumps)
    # max(hits, 1): two windows of 60 beat one of 300.
    assert acc["k"]["ttl_top1"] == 60
