"""Tests for text table rendering."""

from repro.analysis.tables import (
    format_count,
    format_percent,
    format_series,
    format_table,
)


def test_basic_table():
    out = format_table(["name", "value"], [["a", 1], ["bb", 22]])
    lines = out.splitlines()
    assert lines[0].startswith("name")
    assert "--" in lines[1]
    assert "bb" in lines[2] or "bb" in out


def test_title():
    out = format_table(["x"], [[1]], title="My Table")
    assert out.splitlines()[0] == "My Table"
    assert out.splitlines()[1].startswith("=")


def test_numeric_right_alignment():
    out = format_table(["k", "v"], [["a", 5], ["b", 123]])
    rows = out.splitlines()[-2:]
    # Numbers right-aligned: the 5 should end at the same column as 123.
    assert rows[0].rstrip().endswith("5")
    assert rows[1].rstrip().endswith("123")
    assert len(rows[0].rstrip()) == len(rows[1].rstrip())


def test_explicit_alignment():
    out = format_table(["k"], [["abc"]], align="r")
    assert out.splitlines()[-1].endswith("abc")


def test_float_formatting():
    out = format_table(["v"], [[3.14159], [2.0]])
    assert "3.14" in out
    assert out.splitlines()[-1].strip() == "2"  # integral floats as ints


def test_format_percent():
    assert format_percent(0.163) == "16.3%"
    assert format_percent(0.163, 0) == "16%"


def test_format_count():
    assert format_count(5026) == "5,026"
    assert format_count(12.7) == "13"


def test_format_series_downsamples():
    out = format_series([(i, i * 2) for i in range(100)], max_points=10)
    # Header + separator + 10 points.
    assert len(out.splitlines()) == 12


def test_ragged_rows_tolerated():
    out = format_table(["a", "b"], [["x"], ["y", "z", "extra"]])
    assert "extra" in out
