"""Tests for the Section 4 analyses: Figures 7-8 and Table 4.

Uses a dedicated scenario with scripted infrastructure events.
"""

import pytest

from repro.analysis.dnsdb import DnsdbStore
from repro.analysis.ttlchanges import (
    TtlChangeDetector,
    classify_events,
    render_table4,
    table4,
)
from repro.analysis.ttltraffic import (
    figure7,
    figure8,
    figure8_summary,
    render_figure7,
    render_figure8,
)
from repro.observatory.pipeline import Observatory
from repro.observatory.window import WindowDump
from repro.simulation.buildout import XMSECU_FQDN
from repro.simulation.scenario import (
    EnableIpv6,
    NsChange,
    Renumber,
    Scenario,
    TtlChange,
)
from repro.simulation.sie import SieChannel


DURATION = 2400.0
CHANGE_AT = 900.0


@pytest.fixture(scope="module")
def scripted_run():
    """A run with the Figure 7 TTL slash plus Table 4 events."""
    scenario = Scenario.tiny(
        seed=31, duration=DURATION, client_qps=40.0,
        scripted_events=[
            TtlChange(at=CHANGE_AT, name="xmsecu.com", new_ttl=10),
        ],
    )
    channel = SieChannel(scenario)
    obs = Observatory(datasets=[("esld", 800), ("aafqdn", 800)],
                      use_bloom_gate=False)
    dnsdb = DnsdbStore()
    for txn in channel.run():
        obs.ingest(txn)
        dnsdb.observe_transaction(txn)
    obs.finish()
    return channel, obs, dnsdb


class TestFigure7:
    def test_ttl_slash_amplifies_queries(self, scripted_run):
        _, obs, _ = scripted_run
        result = figure7(obs, "xmsecu.com", change_at=CHANGE_AT)
        assert result["rate_before"] > 0
        assert result["amplification"] > 2.0

    def test_series_covers_run(self, scripted_run):
        _, obs, _ = scripted_run
        result = figure7(obs, "xmsecu.com", change_at=CHANGE_AT)
        assert len(result["series"]) >= DURATION / 60 - 2

    def test_render(self, scripted_run):
        _, obs, _ = scripted_run
        out = render_figure7(figure7(obs, "xmsecu.com",
                                     change_at=CHANGE_AT), "xmsecu.com")
        assert "amplification" in out


class TestFigure8:
    def test_changes_found_and_sorted(self, scripted_run):
        _, obs, _ = scripted_run
        changes = figure8(obs, split_ts=CHANGE_AT, top_n=50)
        assert changes
        diffs = [abs(c.traffic_change) for c in changes]
        assert diffs == sorted(diffs, reverse=True)

    def test_xmsecu_is_ttl_down_traffic_up(self, scripted_run):
        _, obs, _ = scripted_run
        changes = figure8(obs, split_ts=CHANGE_AT, top_n=100)
        xm = next((c for c in changes if c.key == "xmsecu.com"), None)
        assert xm is not None
        assert xm.ttl_change < 0
        assert xm.traffic_change > 0

    def test_summary_counts_consistent(self, scripted_run):
        _, obs, _ = scripted_run
        changes = figure8(obs, split_ts=CHANGE_AT, top_n=100)
        summary = figure8_summary(changes)
        assert summary["ttl_down_traffic_up"] >= 1
        assert summary["ttl_down"] + summary["ttl_up"] <= len(changes)

    def test_render(self, scripted_run):
        _, obs, _ = scripted_run
        changes = figure8(obs, split_ts=CHANGE_AT, top_n=50)
        out = render_figure8(changes, figure8_summary(changes))
        assert "Figure 8" in out


class TestTtlChangeDetector:
    def make_dump(self, ts, fqdn, ttl, share=1.0):
        row = {"hits": 50, "ttl_top1": ttl, "ttl_top1_share": share,
               "nsttl_top1": 0, "nsttl_top1_share": 0.0}
        return WindowDump("aafqdn", ts, [(fqdn, row)], {})

    def test_detects_change(self):
        det = TtlChangeDetector()
        det.observe_dump(self.make_dump(0, "a.example.com", 600))
        det.observe_dump(self.make_dump(3600, "a.example.com", 10))
        assert len(det.events) == 1
        event = det.events[0]
        assert (event.old_ttl, event.new_ttl) == (600, 10)

    def test_ignores_stable_ttl(self):
        det = TtlChangeDetector()
        for ts in (0, 3600, 7200):
            det.observe_dump(self.make_dump(ts, "a.example.com", 300))
        assert det.events == []

    def test_low_share_ignored(self):
        det = TtlChangeDetector(min_share=0.10)
        det.observe_dump(self.make_dump(0, "a.example.com", 600))
        det.observe_dump(self.make_dump(3600, "a.example.com", 10,
                                        share=0.05))
        assert det.events == []

    def test_classification_renumbering(self):
        from repro.dnswire.constants import QTYPE

        det = TtlChangeDetector()
        det.observe_dump(self.make_dump(0, "ns2.oh-isp.com", 600))
        det.observe_dump(self.make_dump(3600, "ns2.oh-isp.com", 38400))
        db = DnsdbStore()
        db.record("ns2.oh-isp.com", QTYPE.A, ("31.222.208.197",), 600, 0.0)
        db.record("ns2.oh-isp.com", QTYPE.A, ("52.166.106.97",), 38400,
                  3600.0)
        classify_events(det.events, db)
        assert det.events[0].category == "Renumbering"

    def test_classification_non_conforming(self):
        from repro.dnswire.constants import QTYPE

        det = TtlChangeDetector()
        det.observe_dump(self.make_dump(0, "dns2.vicovoip.it", 990))
        det.observe_dump(self.make_dump(3600, "dns2.vicovoip.it", 700))
        db = DnsdbStore()
        for i, ttl in enumerate((990, 700, 500, 300, 100)):
            db.record("dns2.vicovoip.it", QTYPE.A, ("9.9.9.9",), ttl,
                      float(i))
        classify_events(det.events, db)
        assert det.events[0].category == "Non-conforming"

    def test_classification_ttl_only(self):
        from repro.dnswire.constants import QTYPE

        det = TtlChangeDetector()
        det.observe_dump(self.make_dump(0, "x.example.com", 86400))
        det.observe_dump(self.make_dump(3600, "x.example.com", 3600))
        db = DnsdbStore()
        db.record("x.example.com", QTYPE.A, ("1.1.1.1",), 86400, 0.0)
        db.record("x.example.com", QTYPE.A, ("1.1.1.1",), 3600, 3600.0)
        classify_events(det.events, db)
        assert det.events[0].category == "TTL Decrease"

    def test_classification_unknown(self):
        det = TtlChangeDetector()
        det.observe_dump(self.make_dump(0, "y.example.com", 600))
        det.observe_dump(self.make_dump(3600, "y.example.com", 300))
        classify_events(det.events, DnsdbStore())
        assert det.events[0].category == "Unknown"


class TestTable4EndToEnd:
    def test_scripted_events_classified(self):
        """Renumber + NS change + TTL-only events end-to-end."""
        scenario = Scenario.tiny(
            seed=37, duration=1800.0, client_qps=40.0,
            scripted_events=[
                Renumber(at=600.0, fqdn="www.xmsecu.com",
                         new_ips=("52.166.106.97",), new_ttl=38400),
                TtlChange(at=600.0, name="time-a.ntpsync.com",
                          new_ttl=60),
            ],
        )
        channel = SieChannel(scenario)
        obs = Observatory(datasets=[("aafqdn", 800)], use_bloom_gate=False)
        dnsdb = DnsdbStore()
        for txn in channel.run():
            obs.ingest(txn)
            dnsdb.observe_transaction(txn)
        obs.finish()
        detector = TtlChangeDetector()
        for dump in obs.dumps["aafqdn"]:
            detector.observe_dump(dump)
        events = classify_events(detector.events, dnsdb)
        counts, per_fqdn = table4(events)
        assert sum(counts.values()) >= 1
        if "www.xmsecu.com" in per_fqdn:
            assert per_fqdn["www.xmsecu.com"].category == "Renumbering"
        if "time-a.ntpsync.com" in per_fqdn:
            assert per_fqdn["time-a.ntpsync.com"].category in (
                "TTL Decrease", "Unknown")
        out = render_table4(counts, per_fqdn)
        assert "Table 4" in out
