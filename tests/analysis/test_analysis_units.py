"""Unit tests for analysis modules on hand-built rows (no simulation)."""

import pytest

from repro.analysis.asattribution import OrgRow, table1, top_share
from repro.analysis.delays import (
    DELAY_SECTIONS,
    LetterStats,
    delay_cdf,
    hierarchy_shares,
    letter_stats,
    popularity_speed_correlation,
    rank_vs_delay,
)
from repro.analysis.distributions import TrafficDistribution
from repro.analysis.qtypes import QtypeRow
from repro.netsim.asdb import AsDatabase
from repro.netsim.asnames import AsNameRegistry
from repro.observatory.window import WindowDump


def dump(rows, dataset="srvip", start=0, seen=0):
    return WindowDump(dataset, start, rows,
                      {"seen": seen or sum(r.get("hits", 0)
                                           for _, r in rows), "kept": 0})


class FakeObs:
    def __init__(self, dumps_map):
        self.dumps = dumps_map


class TestTrafficDistribution:
    def make(self):
        rows = {
            "big": {"hits": 70, "nxd": 30, "ok": 35, "ok_nil": 5},
            "mid": {"hits": 25, "nxd": 0, "ok": 25, "ok_nil": 0},
            "tail": {"hits": 5, "nxd": 5, "ok": 0, "ok_nil": 0},
        }
        return TrafficDistribution(rows, {"seen": 200, "kept": 100})

    def test_ranking(self):
        dist = self.make()
        assert dist.keys == ["big", "mid", "tail"]

    def test_share_of_top(self):
        dist = self.make()
        assert dist.share_of_top(1) == pytest.approx(0.70)
        assert dist.share_of_top(3) == pytest.approx(1.0)
        assert dist.share_of_top(99) == pytest.approx(1.0)

    def test_category_cdf_independent(self):
        dist = self.make()
        nxd = dist.cdf("nxdomain")
        assert nxd[0] == pytest.approx(30 / 35)
        assert nxd[-1] == pytest.approx(1.0)
        nodata = dist.cdf("nodata")
        assert nodata[0] == pytest.approx(1.0)  # only "big" has NoData

    def test_objects_for_share(self):
        dist = self.make()
        assert dist.objects_for_share(0.5) == 1
        assert dist.objects_for_share(0.95) == 2  # 70+25 hits exactly
        assert dist.objects_for_share(0.96) == 3

    def test_capture_ratio(self):
        dist = self.make()
        assert dist.capture_ratio() == pytest.approx(100 / 200)
        no_stats = TrafficDistribution({"a": {"hits": 1}})
        assert no_stats.capture_ratio() is None

    def test_category_share(self):
        dist = self.make()
        assert dist.category_share("nxdomain") == pytest.approx(0.35)

    def test_empty_distribution(self):
        dist = TrafficDistribution({})
        assert dist.keys == []
        assert dist.share_of_top(5) == 0.0
        assert dist.cdf("all") == []


class TestTable1Units:
    def make_world(self):
        asdb = AsDatabase()
        names = AsNameRegistry()
        asdb.add_prefix("10.0.0.0/8", 100)
        asdb.add_prefix("20.0.0.0/8", 200)
        names.add(100, "BIGCDN-1 - Big CDN")
        names.add(200, "SMALLHOST-1 - Small Host")
        rows = [
            ("10.0.0.1", {"hits": 80, "delay_q50": 10.0, "hops_q50": 5.0}),
            ("10.0.0.2", {"hits": 20, "delay_q50": 20.0, "hops_q50": 6.0}),
            ("20.0.0.1", {"hits": 50, "delay_q50": 100.0, "hops_q50": 14.0}),
            ("172.16.0.1", {"hits": 10, "delay_q50": 1.0, "hops_q50": 1.0}),
        ]
        obs = FakeObs({"srvip": [dump(rows)]})
        return obs, asdb, names

    def test_grouping_and_ranking(self):
        obs, asdb, names = self.make_world()
        ranked, total, attributed = table1(obs, asdb, names)
        assert total == 160
        assert attributed == 160  # unrouted IP still counted (UNKNOWN)
        assert ranked[0].org == "BIGCDN"
        assert ranked[0].hits == 100
        assert ranked[0].servers == 2

    def test_weighted_delay(self):
        obs, asdb, names = self.make_world()
        ranked, _, _ = table1(obs, asdb, names)
        bigcdn = ranked[0]
        # (10*80 + 20*20) / 100 = 12.
        assert bigcdn.mean_delay == pytest.approx(12.0)

    def test_unknown_org_for_unrouted(self):
        obs, asdb, names = self.make_world()
        ranked, _, _ = table1(obs, asdb, names, top_orgs=10)
        assert any(r.org == "UNKNOWN" for r in ranked)

    def test_top_share(self):
        obs, asdb, names = self.make_world()
        ranked, total, _ = table1(obs, asdb, names, top_orgs=1)
        assert top_share(ranked, total) == pytest.approx(100 / 160)
        assert top_share(ranked, 0) == 0.0

    def test_org_row_empty(self):
        row = OrgRow("X")
        assert row.mean_delay == 0.0
        assert row.mean_hops == 0.0


class TestQtypeRowUnits:
    def test_outcome_shares(self):
        row = {"hits": 100, "unans": 5, "ok": 60, "ok_nil": 10,
               "nxd": 25, "qnames": 40.0, "qnamesa": 50.0,
               "ttl_top1": 300}
        q = QtypeRow("A", row, total=1000)
        assert q.global_share == pytest.approx(0.1)
        assert q.data == pytest.approx(0.50)
        assert q.nodata == pytest.approx(0.10)
        assert q.nxd == pytest.approx(0.25)
        # err = everything else incl. unanswered: 100-60-25 = 15%.
        assert q.err == pytest.approx(0.15)
        assert q.valid == pytest.approx(0.8)
        assert q.ttl == 300

    def test_valid_clamped(self):
        row = {"hits": 10, "ok": 10, "qnames": 12.0, "qnamesa": 10.0}
        assert QtypeRow("A", row, 10).valid == 1.0

    def test_empty_row(self):
        q = QtypeRow("A", {}, total=0)
        assert q.global_share == 0.0
        assert q.valid == 0.0


class TestDelayUnits:
    def make_obs(self):
        rows = [
            ("ns1", {"hits": 100, "unans": 0, "delay_q25": 1.0,
                     "delay_q50": 2.0, "delay_q75": 3.0,
                     "hops_q50": 2.0, "nxd": 90}),
            ("ns2", {"hits": 50, "unans": 0, "delay_q25": 10.0,
                     "delay_q50": 20.0, "delay_q75": 30.0,
                     "hops_q50": 7.0, "nxd": 5}),
            ("ns3", {"hits": 10, "unans": 0, "delay_q25": 100.0,
                     "delay_q50": 200.0, "delay_q75": 300.0,
                     "hops_q50": 15.0, "nxd": 0}),
            ("ns4", {"hits": 5, "unans": 0, "delay_q25": 300.0,
                     "delay_q50": 400.0, "delay_q75": 500.0,
                     "hops_q50": 20.0, "nxd": 0}),
        ]
        return FakeObs({"srvip": [dump(rows)]})

    def test_delay_cdf_sections(self):
        delays, shares = delay_cdf(self.make_obs())
        assert delays == [2.0, 20.0, 200.0, 400.0]
        assert shares == [0.25, 0.25, 0.25, 0.25]
        assert len(DELAY_SECTIONS) == 4

    def test_rank_vs_delay_groups(self):
        groups = rank_vs_delay(self.make_obs(), group_size=2)
        assert len(groups) == 2
        assert groups[0][0] == 1 and groups[1][0] == 3
        assert groups[0][1] == pytest.approx(11.0)   # (2+20)/2
        assert groups[1][1] == pytest.approx(300.0)  # (200+400)/2

    def test_popularity_correlation(self):
        groups = [(1, 10.0, 2.0), (101, 20.0, 3.0), (201, 30.0, 4.0)]
        assert popularity_speed_correlation(groups) == 1.0
        assert popularity_speed_correlation([(1, 1.0, 1.0)]) == 0.5

    def test_letter_stats_and_shares(self):
        obs = self.make_obs()
        stats = letter_stats(obs, {"a": "ns1", "b": "ns2", "z": "gone"})
        assert [s.letter for s in stats] == ["a", "b"]
        assert stats[0].nxd_share == pytest.approx(0.9)
        shares = hierarchy_shares(obs, {"a": "ns1"})
        assert shares["share"] == pytest.approx(100 / 165)
        assert shares["nxd_share"] == pytest.approx(0.9)

    def test_letterstats_requires_no_letters(self):
        assert letter_stats(self.make_obs(), {}) == []
