"""Unit tests for the qmin detector (Table 3 logic in isolation)."""

from repro.analysis.qmin import QminDetector, detect_qmin
from tests.util import make_txn

ROOT = "192.0.2.1"
TLD = "192.0.2.2"
TLD_WL = "192.0.2.3"  # whitelisted registry (hosts co.uk-style suffixes)
OTHER = "192.0.2.9"


def txn(resolver, server, qname):
    return make_txn(resolver_ip=resolver, server_ip=server, qname=qname)


def detector(transactions, whitelist=()):
    return detect_qmin(transactions, {ROOT}, {TLD, TLD_WL}, whitelist)


def test_one_label_to_root_is_possible_qmin():
    det = detector([txn("r1", ROOT, "com")])
    assert det.possible_qmin_resolvers_root() == ["r1"]
    assert det.non_qmin_resolvers_root() == []


def test_two_labels_to_root_is_non_qmin():
    det = detector([txn("r1", ROOT, "example.com")])
    assert det.non_qmin_resolvers_root() == ["r1"]


def test_two_labels_to_tld_is_possible_qmin():
    det = detector([txn("r1", TLD, "example.com")])
    assert det.possible_qmin_resolvers_tld() == ["r1"]


def test_three_labels_to_tld_is_non_qmin():
    det = detector([txn("r1", TLD, "www.example.com")])
    assert det.non_qmin_resolvers_tld() == ["r1"]


def test_whitelist_allows_three_labels():
    det = detector([txn("r1", TLD_WL, "bbc.co.uk")],
                   whitelist={TLD_WL})
    assert det.possible_qmin_resolvers_tld() == ["r1"]
    # But four labels still convicts.
    det = detector([txn("r1", TLD_WL, "www.bbc.co.uk")],
                   whitelist={TLD_WL})
    assert det.non_qmin_resolvers_tld() == ["r1"]


def test_cross_check_removes_contradicted_candidates():
    det = detector([
        txn("r1", ROOT, "com"),              # looks qmin at root...
        txn("r1", TLD, "www.example.com"),   # ...but leaks at TLD
        txn("r2", ROOT, "org"),
    ])
    candidates = det.cross_check(det.possible_qmin_resolvers_root())
    assert candidates == ["r2"]


def test_other_servers_ignored():
    det = detector([txn("r1", OTHER, "a.b.c.d.example.com")])
    assert det.root_max_labels == {}
    assert det.tld_max_labels == {}


def test_traffic_shares():
    det = detector([
        txn("r1", ROOT, "com"),
        txn("r2", ROOT, "www.example.com"),
        txn("r2", ROOT, "www2.example.com"),
        txn("r2", ROOT, "www3.example.com"),
    ])
    shares = det.qmin_traffic_shares()
    assert shares["root"] == 0.25


def test_empty_detector_shares_zero():
    det = detector([])
    shares = det.qmin_traffic_shares()
    assert shares == {"root": 0.0, "tld": 0.0}


def test_strictness_single_leak_convicts():
    """The paper's 100% notion: one full-qname query is conclusive,
    no matter how many minimized queries preceded it."""
    events = [txn("r1", ROOT, "com")] * 99 + [txn("r1", ROOT, "a.com")]
    det = detector(events)
    assert det.non_qmin_resolvers_root() == ["r1"]
