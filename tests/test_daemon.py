"""End-to-end tests for ``dns-observatory run``.

These spawn the real CLI in a subprocess and talk to it over TCP:
the window must become queryable within one window period of being
cut, SSE framing must conform on a raw socket, and SIGTERM must cut
the in-progress window, drain subscribers, and exit 0.
"""

import glob
import json
import os
import signal
import socket
import subprocess
import sys
import time
import urllib.request

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(REPO, "src"),
                    env.get("PYTHONPATH", "")) if p)
    return env


def spawn_daemon(series_dir, *extra):
    """Start the daemon, wait for its ready line, return (proc, port)."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "run", str(series_dir),
         "--preset", "tiny", "--port", "0"] + list(extra),
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        env=_env(), text=True)
    line = proc.stdout.readline()
    if "live daemon:" not in line:
        proc.kill()
        raise AssertionError("no ready line, got: %r" % line)
    # "... on http://127.0.0.1:43211  (window=1s, ...)"
    port = int(line.split("http://", 1)[1].split()[0].rsplit(":", 1)[1])
    return proc, port


def get_json(port, target, timeout=15.0):
    url = "http://127.0.0.1:%d%s" % (port, target)
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return json.loads(resp.read().decode("utf-8"))


def srvip_files(series_dir):
    return sorted(glob.glob(os.path.join(str(series_dir),
                                         "srvip.*.tsv")))


def reap(proc):
    if proc.poll() is None:
        proc.kill()
        proc.wait()


class TestLiveDaemon:
    def test_follow_sees_window_within_one_period(self, tmp_path):
        series = tmp_path / "series"
        proc, port = spawn_daemon(series, "--window", "1", "--pace", "3",
                                  "--duration", "60", "--qps", "200",
                                  "--datasets", "srvip", "qname")
        try:
            # one 1 s window at pace 3 is ~0.33 s of wall time; the
            # long-poll must deliver the first flush inside one period
            # (generous wall allowance for process start + scheduling)
            started = time.monotonic()
            doc = get_json(port, "/series/srvip?follow=&timeout=10")
            elapsed = time.monotonic() - started
            assert doc["windows"], "long-poll returned no window"
            assert doc["timed_out"] is False
            assert doc["next_cursor"] == doc["windows"][-1]["start_ts"]
            assert elapsed < 2.0

            health = get_json(port, "/platform/health")
            assert health["daemon"]["running"] is True
            assert health["daemon"]["ingest_active"] is True
            assert health["daemon"]["windows_flushed"] >= 1
            assert health["broker"]["closed"] == 0
            assert health["server"]["uptime_s"] >= 0.0

            before = len(srvip_files(series))
            time.sleep(0.3)  # get solidly mid-window before the signal
            proc.send_signal(signal.SIGTERM)
            rc = proc.wait(timeout=20)
            assert rc == 0
            # SIGTERM cut the in-progress window before exiting
            assert len(srvip_files(series)) > before
            assert "Traceback" not in proc.stdout.read()
        finally:
            reap(proc)

    def test_sse_frames_then_drains_on_sigterm(self, tmp_path):
        series = tmp_path / "series"
        proc, port = spawn_daemon(series, "--window", "1", "--pace", "3",
                                  "--duration", "60", "--qps", "200",
                                  "--datasets", "srvip")
        sock = None
        try:
            sock = socket.create_connection(("127.0.0.1", port),
                                            timeout=10)
            sock.settimeout(10)
            sock.sendall(b"GET /stream/srvip HTTP/1.1\r\n"
                         b"Host: e2e\r\n"
                         b"Accept: text/event-stream\r\n\r\n")
            buf = b""
            while b"event: window" not in buf:
                chunk = sock.recv(4096)
                assert chunk, "stream closed before any window event"
                buf += chunk
            head = buf.split(b"\r\n\r\n", 1)[0].decode("latin-1")
            assert " 200 " in head.split("\r\n")[0]
            assert "text/event-stream" in head
            assert "Transfer-Encoding: chunked" in head
            assert b"retry: 2000" in buf
            assert b"\nid: " in buf or b"id: " in buf
            assert b"\ndata: " in buf

            proc.send_signal(signal.SIGTERM)
            while b"event: eof" not in buf:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                buf += chunk
            assert b"event: eof" in buf, "drain must end with eof"
            rc = proc.wait(timeout=20)
            assert rc == 0
        finally:
            if sock is not None:
                sock.close()
            reap(proc)

    def test_file_input_exit_when_done(self, tmp_path):
        stream = tmp_path / "stream.tsv"
        subprocess.run(
            [sys.executable, "-m", "repro.cli", "simulate", "--preset",
             "tiny", "--duration", "180", "--qps", "50",
             "-o", str(stream)],
            env=_env(), check=True, capture_output=True)
        series = tmp_path / "series"
        proc, port = spawn_daemon(
            series, "--window", "60", "--pace", "0", "--input",
            str(stream), "--exit-when-done", "--datasets", "srvip")
        try:
            rc = proc.wait(timeout=30)
            assert rc == 0
            # the trailing partial window was cut at end-of-stream
            files = srvip_files(series)
            assert len(files) >= 2
            assert any(".0000000120." in f for f in files)
            assert "Traceback" not in proc.stdout.read()
        finally:
            reap(proc)


def test_run_segments_flag_writes_fresh_sidecars(tmp_path):
    """``run --segments``: every flushed window gets a columnar
    sidecar whose contents equal the text parse."""
    from repro.observatory import segments as segmentfmt
    from repro.observatory.tsv import read_tsv

    series = tmp_path / "series"
    proc, port = spawn_daemon(series, "--window", "1", "--pace", "3",
                              "--duration", "60", "--qps", "100",
                              "--datasets", "srvip", "--segments")
    try:
        doc = get_json(port, "/series/srvip?follow=&timeout=10")
        assert doc["windows"]
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=20) == 0
        flushed = srvip_files(series)
        assert flushed
        for path in flushed:
            seg = path + segmentfmt.SEGMENT_SUFFIX
            assert os.path.exists(seg), "missing sidecar for %s" % path
            assert segmentfmt.read_segment(seg).rows == \
                read_tsv(path).rows
    finally:
        reap(proc)


def test_run_detectors_fire_health_rule_during_attack(tmp_path):
    """``run --detectors`` against a scripted water-torture flood: the
    ``_detector`` series flows through the live chain and
    ``/platform/health`` trips ``detect-ddos`` while the attack is in
    the newest window."""
    series = tmp_path / "series"
    # 10 s windows: two warm-up cuts before the flood starts at t=30;
    # 60 qps of random subdomains is ~600 distinct per window, far
    # over the detector's floor
    proc, port = spawn_daemon(
        series, "--window", "10", "--pace", "4", "--duration", "130",
        "--qps", "30", "--datasets", "srvip", "--detectors",
        "--attack", "watertorture:30:60")
    try:
        deadline = time.monotonic() + 60.0
        tripped = None
        while time.monotonic() < deadline:
            health = get_json(port, "/platform/health")
            verdicts = {v["rule"]: v["status"]
                        for v in health["verdicts"]}
            assert "detect-ddos" in verdicts, \
                "detector rules not wired into the daemon"
            if verdicts["detect-ddos"] == "fail":
                tripped = health
                break
            time.sleep(0.5)
        assert tripped is not None, "detect-ddos never fired"
        assert tripped["status"] == "fail"
        assert tripped["detector_windows"] >= 1

        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=20) == 0
        detector_files = sorted(glob.glob(os.path.join(
            str(series), "_detector.*.tsv")))
        assert detector_files, "no _detector windows flushed"
        assert "Traceback" not in proc.stdout.read()
    finally:
        reap(proc)
