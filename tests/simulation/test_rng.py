"""Tests for deterministic RNG plumbing."""

import pytest

from repro.simulation.rng import RngHub, ZipfSampler, exponential_gap


class TestRngHub:
    def test_streams_are_deterministic(self):
        a = RngHub(seed=7).stream("x").random()
        b = RngHub(seed=7).stream("x").random()
        assert a == b

    def test_streams_are_independent(self):
        hub = RngHub(seed=7)
        assert hub.stream("x").random() != hub.stream("y").random()

    def test_stream_is_cached(self):
        hub = RngHub(seed=1)
        assert hub.stream("x") is hub.stream("x")

    def test_fork_is_fresh(self):
        hub = RngHub(seed=1)
        assert hub.fork("x") is not hub.fork("x")
        assert hub.fork("x").random() == hub.fork("x").random()

    def test_seed_changes_everything(self):
        assert RngHub(1).stream("x").random() != RngHub(2).stream("x").random()

    def test_uniform_hash_range_and_determinism(self):
        hub = RngHub(3)
        v = hub.uniform_hash("resolver:10.0.0.1")
        assert 0.0 <= v < 1.0
        assert v == RngHub(3).uniform_hash("resolver:10.0.0.1")


class TestZipfSampler:
    def test_rank_zero_most_likely(self):
        z = ZipfSampler(100, s=1.0)
        counts = [0] * 100
        for _ in range(5000):
            counts[z.sample()] += 1
        assert counts[0] == max(counts)
        assert counts[0] > 5 * max(counts[50:] or [1])

    def test_probability_sums_to_one(self):
        z = ZipfSampler(50, s=1.2)
        assert abs(sum(z.probability(r) for r in range(50)) - 1.0) < 1e-9

    def test_s_zero_is_uniform(self):
        z = ZipfSampler(10, s=0.0)
        assert z.probability(0) == pytest.approx(0.1)
        assert z.probability(9) == pytest.approx(0.1)

    def test_samples_in_range(self):
        z = ZipfSampler(5, s=2.0)
        assert all(0 <= z.sample() < 5 for _ in range(200))

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)
        with pytest.raises(ValueError):
            ZipfSampler(5, s=-1)
        with pytest.raises(ValueError):
            ZipfSampler(5).probability(5)


def test_exponential_gap():
    import random

    rng = random.Random(0)
    gaps = [exponential_gap(rng, 10.0) for _ in range(2000)]
    assert all(g > 0 for g in gaps)
    assert abs(sum(gaps) / len(gaps) - 0.1) < 0.02
    with pytest.raises(ValueError):
        exponential_gap(rng, 0.0)
