"""Tests for zone answering logic."""

import pytest

from repro.dnswire.constants import QTYPE, RCODE
from repro.simulation.rng import RngHub
from repro.simulation.topology import Topology
from repro.simulation.zones import RootZone, SldZone, TldZone


@pytest.fixture(scope="module")
def topo():
    return Topology(RngHub(3), n_tail_orgs=4)


@pytest.fixture()
def sld(topo):
    zone = SldZone("example.com",
                   [topo.allocate_nameserver("AMAZON") for _ in range(2)],
                   soa_negttl=300)
    zone.add_record("example.com", QTYPE.A, 600, ("198.51.100.1",))
    zone.add_record("www.example.com", QTYPE.A, 300,
                    ("198.51.100.2", "198.51.100.3"))
    zone.add_record("cdn.example.com", QTYPE.CNAME, 120,
                    ("www.example.com",))
    return zone


class TestSldZone:
    def test_data_answer(self, sld):
        ans = sld.answer("www.example.com", QTYPE.A)
        assert ans.rcode == RCODE.NOERROR and ans.aa
        assert len(ans.records) == 2
        assert ans.answer_ips == ("198.51.100.2", "198.51.100.3")
        assert all(ttl == 300 for _, ttl, _ in ans.records)

    def test_nxdomain(self, sld):
        ans = sld.answer("missing.example.com", QTYPE.A)
        assert ans.rcode == RCODE.NXDOMAIN
        assert ans.aa
        assert ans.soa_negttl == 300

    def test_nodata(self, sld):
        ans = sld.answer("www.example.com", QTYPE.AAAA)
        assert ans.rcode == RCODE.NOERROR
        assert not ans.records
        assert ans.soa_negttl == 300

    def test_cname_chain(self, sld):
        ans = sld.answer("cdn.example.com", QTYPE.A)
        types = [qtype for qtype, _, _ in ans.records]
        assert types[0] == QTYPE.CNAME
        assert QTYPE.A in types
        assert ans.cname_targets == ("www.example.com",)

    def test_cname_query_direct(self, sld):
        ans = sld.answer("cdn.example.com", QTYPE.CNAME)
        assert [q for q, _, _ in ans.records] == [QTYPE.CNAME]

    def test_any_query(self, sld):
        sld.add_record("example.com", QTYPE.MX, 3600, ("mail.example.com",))
        ans = sld.answer("example.com", QTYPE.ANY)
        types = {qtype for qtype, _, _ in ans.records}
        assert QTYPE.A in types and QTYPE.MX in types

    def test_set_ttl(self, sld):
        sld.set_ttl("www.example.com", QTYPE.A, 10)
        ans = sld.answer("www.example.com", QTYPE.A)
        assert all(ttl == 10 for _, ttl, _ in ans.records)
        with pytest.raises(KeyError):
            sld.set_ttl("nope.example.com", QTYPE.A, 1)

    def test_dynamic_ttl_varies(self, topo):
        zone = SldZone("vicovoip.it",
                       [topo.allocate_nameserver("GODADDY")],
                       dynamic_ttl=True)
        zone.add_record("dns2.vicovoip.it", QTYPE.A, 1000, ("203.0.113.1",))
        ttls = {zone.answer("dns2.vicovoip.it", QTYPE.A).records[0][1]
                for _ in range(20)}
        assert len(ttls) > 5  # non-conforming: TTL changes per response

    def test_wildcard_data(self, sld):
        sld.wildcard = {"TXT": (5, ("scan=clean",))}
        ans = sld.answer("abc123.sig.example.com", QTYPE.TXT)
        assert ans.rcode == RCODE.NOERROR
        assert ans.records[0][1] == 5

    def test_wildcard_nodata_for_other_types(self, sld):
        sld.wildcard = {"TXT": (5, ("x",))}
        ans = sld.answer("abc.example.com", QTYPE.A)
        assert ans.rcode == RCODE.NOERROR
        assert not ans.records
        assert ans.soa_negttl == 300

    def test_wildcard_exists_probability_deterministic(self, sld):
        sld.wildcard = {"PTR": (86400, ("h.example.net",)),
                        "_exists_prob": 0.5}
        outcomes = {name: sld.answer(name + ".example.com", QTYPE.PTR).rcode
                    for name in ("a", "b", "c", "d", "e", "f", "g", "h")}
        # Deterministic per name.
        for name, rcode in outcomes.items():
            again = sld.answer(name + ".example.com", QTYPE.PTR).rcode
            assert again == rcode
        assert RCODE.NXDOMAIN in outcomes.values()
        assert RCODE.NOERROR in outcomes.values()

    def test_wildcard_not_applied_outside_zone(self, sld):
        sld.wildcard = {"A": (60, ("198.51.100.9",))}
        ans = sld.answer("other.org", QTYPE.A)
        assert ans.rcode == RCODE.NXDOMAIN

    def test_estimated_size_positive(self, sld):
        ans = sld.answer("www.example.com", QTYPE.A)
        assert ans.estimated_size("www.example.com") > 40


class TestTldZone:
    def make_tld(self, topo):
        tld = TldZone("com", [topo.allocate_nameserver("VERISIGN")],
                      registry_suffixes=())
        sld = SldZone("example.com",
                      [topo.allocate_nameserver("AMAZON")], ns_ttl=86400)
        tld.register(sld)
        return tld, sld

    def test_referral(self, topo):
        tld, sld = self.make_tld(topo)
        ans = tld.answer("www.example.com", QTYPE.A)
        assert ans.is_referral
        assert not ans.aa
        assert ans.ns_ttl == 86400
        assert len(ans.referral_ns) == len(sld.nameservers)

    def test_nxdomain_for_unregistered(self, topo):
        tld, _ = self.make_tld(topo)
        ans = tld.answer("nope12345.com", QTYPE.A)
        assert ans.rcode == RCODE.NXDOMAIN
        assert ans.aa

    def test_apex_answer(self, topo):
        tld, _ = self.make_tld(topo)
        ans = tld.answer("com", QTYPE.NS)
        assert ans.rcode == RCODE.NOERROR
        assert ans.aa

    def test_multi_label_delegation(self, topo):
        uk = TldZone("uk", [topo.allocate_nameserver("PCH")],
                     registry_suffixes=("co.uk",))
        bbc = SldZone("bbc.co.uk", [topo.allocate_nameserver("AKAMAI")])
        uk.register(bbc)
        ans = uk.answer("www.bbc.co.uk", QTYPE.A)
        assert ans.is_referral
        assert uk.delegation_for("news.bbc.co.uk") is bbc


class TestRootZone:
    def test_referral_and_nxdomain(self, topo):
        root = RootZone([topo.allocate_nameserver("VERISIGN")])
        com = TldZone("com", [topo.allocate_nameserver("VERISIGN")])
        root.register(com)
        assert root.answer("www.example.com", QTYPE.A).is_referral
        bad = root.answer("www.example.nosuchtld", QTYPE.A)
        assert bad.rcode == RCODE.NXDOMAIN
        assert bad.soa_negttl == RootZone.SOA_NEGTTL
