"""Per-generator tests for the client workload mix."""

import collections

import pytest

from repro.dnswire.constants import QTYPE
from repro.simulation.buildout import build_global_dns
from repro.simulation.scenario import Scenario
from repro.simulation.workload import DEFAULT_WEIGHTS, WorkloadMix


@pytest.fixture(scope="module")
def mix():
    scenario = Scenario.tiny(seed=301, duration=240.0, client_qps=60.0)
    return WorkloadMix(scenario, build_global_dns(scenario))


@pytest.fixture(scope="module")
def events(mix):
    return list(mix.events())


def by_tag(events):
    groups = collections.defaultdict(list)
    for event in events:
        groups[event.tag].append(event)
    return groups


def test_all_generators_emit(events):
    tags = {e.tag for e in events}
    for name in DEFAULT_WEIGHTS:
        if name == "web":
            assert "web" in tags
        else:
            assert name in tags or name in ("iot",), name


def test_tag_qtypes_consistent(events):
    expected = {
        "web": QTYPE.A, "web6": QTYPE.AAAA, "ephemeral": QTYPE.A,
        "ptr": QTYPE.PTR, "txt": QTYPE.TXT, "mx": QTYPE.MX,
        "ns_probe": QTYPE.NS, "srv": QTYPE.SRV, "cname": QTYPE.CNAME,
        "soa": QTYPE.SOA, "ds": QTYPE.DS, "botnet": QTYPE.A,
        "tld_typo": QTYPE.A, "iot": QTYPE.A, "polling": QTYPE.A,
        "polling6": QTYPE.AAAA,
    }
    for event in events:
        assert event.qtype == expected[event.tag], event.tag


def test_ptr_names_are_reverse(events):
    groups = by_tag(events)
    for event in groups["ptr"][:50]:
        assert event.qname.endswith(".in-addr.arpa")
        assert len(event.qname.split(".")) == 6


def test_txt_names_under_av_domain(events, mix):
    groups = by_tag(events)
    av_zones = {z.name for z in mix.dns.wildcard_slds
                if z.wildcard and "TXT" in z.wildcard}
    if not av_zones:
        pytest.skip("no TXT wildcard zones in scenario")
    for event in groups["txt"][:50]:
        assert any(event.qname.endswith(z) for z in av_zones)


def test_ephemeral_names_are_unique(events):
    groups = by_tag(events)
    names = [e.qname for e in groups["ephemeral"]]
    assert len(set(names)) == len(names)


def test_botnet_names_under_com(events):
    groups = by_tag(events)
    assert groups["botnet"]
    for event in groups["botnet"][:50]:
        assert event.qname.endswith(".com")
        assert ".mylo" in event.qname


def test_tld_typo_names_have_fake_tlds(events, mix):
    groups = by_tag(events)
    real_tlds = set(mix.dns.root.tlds)
    for event in groups["tld_typo"][:50]:
        assert event.qname.rsplit(".", 1)[-1] not in real_tlds


def test_polling_targets_specials(events):
    groups = by_tag(events)
    assert groups["polling"]
    targets = {e.qname for e in groups["polling"]}
    from repro.simulation.buildout import SPECIAL_V4ONLY

    specials = {fqdn for fqdn, _, _, _ in SPECIAL_V4ONLY}
    assert targets <= specials
    # NTP hosts are polled hardest.
    counts = collections.Counter(e.qname for e in groups["polling"])
    ntp = sum(v for k, v in counts.items() if "ntp" in k)
    assert ntp > 0.4 * len(groups["polling"])


def test_web_dominates(events):
    groups = by_tag(events)
    assert len(groups["web"]) > 0.3 * len(events)


def test_resolver_indices_skewed(events, mix):
    counts = collections.Counter(e.resolver_index for e in events)
    busiest = counts.most_common(1)[0][1]
    median = sorted(counts.values())[len(counts) // 2]
    assert busiest > 1.5 * median  # some resolvers are much busier
