"""Direct unit tests for the authoritative service."""

import pytest

from repro.dnswire.constants import QTYPE, RCODE
from repro.simulation.authoritative import AuthoritativeService
from repro.simulation.buildout import build_global_dns
from repro.simulation.resolver import RecursiveResolver
from repro.simulation.scenario import Scenario


@pytest.fixture(scope="module")
def world():
    dns = build_global_dns(Scenario.tiny(seed=401))
    return dns


def make_service(dns, **kw):
    kw.setdefault("unanswered_rate", 0.0)
    return AuthoritativeService(dns.topology, dns.hub, **kw)


def make_resolver(dns, service, **kw):
    return RecursiveResolver("10.9.9.53", dns, service, dns.hub, **kw)


def test_serve_data_answer_fields(world):
    service = make_service(world)
    resolver = make_resolver(world, service, dnssec_ok=True)
    zone = world.slds[0]
    fqdn = "www." + zone.name
    ns = zone.nameservers[0]
    txn, answer = service.serve(resolver, ns, zone, fqdn, QTYPE.A, 5.0)
    assert answer is not None
    assert txn.ts == 5.0
    assert txn.qname == fqdn
    assert txn.aa
    assert txn.noerror
    assert txn.answer_count == len(answer.records)
    assert txn.answer_ips == answer.answer_ips
    assert txn.delay_ms > 0
    assert txn.response_size > 20
    assert txn.edns_do  # resolver requested DNSSEC


def test_serve_referral_fields(world):
    service = make_service(world)
    resolver = make_resolver(world, service)
    com = world.root.tlds["com"]
    zone = next(z for z in world.slds if z.name.endswith(".com"))
    ns = com.nameservers[0]
    txn, answer = service.serve(resolver, ns, com,
                                "www." + zone.name, QTYPE.A, 0.0)
    assert answer.is_referral
    assert not txn.aa
    assert txn.authority_ns_count == len(zone.nameservers)
    assert txn.ns_names == tuple(n.hostname for n in zone.nameservers)
    assert txn.additional_count == txn.authority_ns_count  # glue


def test_serve_nxdomain_fields(world):
    service = make_service(world)
    resolver = make_resolver(world, service)
    zone = world.slds[0]
    txn, answer = service.serve(resolver, zone.nameservers[0], zone,
                                "missing123." + zone.name, QTYPE.A, 0.0)
    assert txn.nxdomain
    assert txn.answer_count == 0
    assert txn.answer_ips == ()


def test_total_loss_yields_unanswered(world):
    service = make_service(world, unanswered_rate=1.0)
    resolver = make_resolver(world, service)
    zone = world.slds[0]
    txn, answer = service.serve(resolver, zone.nameservers[0], zone,
                                zone.name, QTYPE.A, 0.0)
    assert answer is None
    assert not txn.answered
    assert txn.rcode is None


def test_loss_rate_statistical(world):
    service = make_service(world, unanswered_rate=0.3)
    resolver = make_resolver(world, service)
    zone = world.slds[0]
    lost = sum(
        1 for i in range(500)
        if service.serve(resolver, zone.nameservers[0], zone,
                         zone.name, QTYPE.A, float(i))[1] is None)
    assert 0.2 < lost / 500 < 0.4


def test_signed_zone_sets_rrsig_when_do(world):
    service = make_service(world)
    signed_zone = next(z for z in world.slds if z.signed)
    fqdn = "www." + signed_zone.name
    if signed_zone.get_record(fqdn, QTYPE.A) is None:
        fqdn = signed_zone.name
    do_resolver = make_resolver(world, service, dnssec_ok=True)
    txn, _ = service.serve(do_resolver, signed_zone.nameservers[0],
                           signed_zone, fqdn, QTYPE.A, 0.0)
    assert txn.has_rrsig
    plain = RecursiveResolver("10.9.8.53", world, service, world.hub,
                              dnssec_ok=False)
    txn2, _ = service.serve(plain, signed_zone.nameservers[0],
                            signed_zone, fqdn, QTYPE.A, 0.0)
    assert not txn2.has_rrsig  # no DO bit -> no RRSIGs returned


def test_observed_ttl_consistent_with_path(world):
    from repro.netsim.hops import infer_hops

    service = make_service(world)
    resolver = make_resolver(world, service)
    zone = world.slds[0]
    ns = zone.nameservers[0]
    txn, _ = service.serve(resolver, ns, zone, zone.name, QTYPE.A, 0.0)
    profile = world.topology.path_profile(resolver.ip, ns)
    assert infer_hops(txn.observed_ttl) == profile.hops
