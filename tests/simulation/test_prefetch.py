"""Tests for resolver query prefetching (§5.1 traffic factor)."""

import pytest

from repro.dnswire.constants import QTYPE
from repro.simulation.authoritative import AuthoritativeService
from repro.simulation.buildout import build_global_dns
from repro.simulation.resolver import RecursiveResolver
from repro.simulation.scenario import Scenario


@pytest.fixture(scope="module")
def world():
    dns = build_global_dns(Scenario.tiny(seed=71))
    service = AuthoritativeService(dns.topology, dns.hub,
                                   unanswered_rate=0.0)
    return dns, service


def make_resolver(world, prefetch, ip="10.0.5.53"):
    dns, service = world
    return RecursiveResolver(ip, dns, service, dns.hub,
                             prefetch=prefetch, prefetch_window=15.0)


def target(world):
    dns, _ = world
    fqdn, zone = dns.catalog[0]
    ttl = zone.get_record(fqdn, QTYPE.A).ttl
    return fqdn, ttl


def test_prefetch_refreshes_before_expiry(world):
    resolver = make_resolver(world, prefetch=True)
    fqdn, ttl = target(world)
    resolver.resolve(fqdn, QTYPE.A, 0.0, lambda t: None)
    # A query inside the prefetch window: served from cache *and*
    # refreshed upstream.
    emitted = []
    result = resolver.resolve(fqdn, QTYPE.A, ttl - 5.0, emitted.append)
    assert result.status == "data"
    assert emitted  # upstream refresh happened
    assert resolver.prefetches == 1
    # The refresh re-armed the cache: a query just after the original
    # expiry is still a pure cache hit.
    emitted2 = []
    r3 = resolver.resolve(fqdn, QTYPE.A, ttl + 5.0, emitted2.append)
    assert r3.from_cache
    assert emitted2 == []


def test_no_prefetch_outside_window(world):
    resolver = make_resolver(world, prefetch=True, ip="10.0.5.54")
    fqdn, ttl = target(world)
    resolver.resolve(fqdn, QTYPE.A, 0.0, lambda t: None)
    emitted = []
    result = resolver.resolve(fqdn, QTYPE.A, ttl / 2.0, emitted.append)
    assert result.from_cache
    assert emitted == []
    assert resolver.prefetches == 0


def test_disabled_by_default(world):
    resolver = make_resolver(world, prefetch=False, ip="10.0.5.55")
    fqdn, ttl = target(world)
    resolver.resolve(fqdn, QTYPE.A, 0.0, lambda t: None)
    emitted = []
    result = resolver.resolve(fqdn, QTYPE.A, ttl - 5.0, emitted.append)
    assert result.from_cache
    assert emitted == []


def test_scenario_fraction_enables_prefetch():
    from repro.simulation.sie import SieChannel

    channel = SieChannel(Scenario.tiny(
        seed=72, duration=30.0, prefetch_resolver_fraction=1.0))
    assert all(r.prefetch for r in channel.resolvers)
    channel_off = SieChannel(Scenario.tiny(seed=72, duration=30.0))
    assert not any(r.prefetch for r in channel_off.resolvers)
