"""Tests for the caching recursive resolver."""

import pytest

from repro.dnswire.constants import QTYPE
from repro.simulation.authoritative import AuthoritativeService
from repro.simulation.buildout import build_global_dns
from repro.simulation.resolver import RecursiveResolver
from repro.simulation.resolvercache import NegativeCache, TtlCache
from repro.simulation.scenario import Scenario


@pytest.fixture(scope="module")
def world():
    dns = build_global_dns(Scenario.tiny(seed=11))
    service = AuthoritativeService(dns.topology, dns.hub,
                                   unanswered_rate=0.0)
    return dns, service


def make_resolver(world, qmin=False, ip="10.0.0.53"):
    dns, service = world
    return RecursiveResolver(ip, dns, service, dns.hub, qmin=qmin)


def popular_fqdn(world):
    dns, _ = world
    return dns.catalog[0]


class TestTtlCache:
    def test_put_get_expire(self):
        cache = TtlCache(10)
        cache.put("k", "v", ttl=5, now=0.0)
        assert cache.get("k", now=3.0) == "v"
        assert cache.get("k", now=6.0) is None
        assert cache.expirations == 1

    def test_zero_ttl_not_cached(self):
        cache = TtlCache(10)
        cache.put("k", "v", ttl=0, now=0.0)
        assert cache.get("k", now=0.0) is None

    def test_lru_eviction(self):
        cache = TtlCache(2)
        cache.put("a", 1, 100, 0.0)
        cache.put("b", 2, 100, 0.0)
        cache.get("a", 1.0)  # refresh a
        cache.put("c", 3, 100, 1.0)  # evicts b
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.evictions == 1

    def test_remaining_ttl(self):
        cache = TtlCache(4)
        cache.put("k", "v", ttl=10, now=0.0)
        assert cache.remaining_ttl("k", 4.0) == pytest.approx(6.0)
        assert cache.remaining_ttl("missing", 0.0) == 0.0

    def test_hit_ratio(self):
        cache = TtlCache(4)
        cache.put("k", "v", 10, 0.0)
        cache.get("k", 1.0)
        cache.get("x", 1.0)
        assert cache.hit_ratio() == pytest.approx(0.5)

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            TtlCache(0)


class TestNegativeCache:
    def test_nxdomain_covers_all_types(self):
        neg = NegativeCache()
        neg.put_nxdomain("gone.example.com", 60, now=0.0)
        assert neg.get("gone.example.com", QTYPE.A, 10.0) == "NXDOMAIN"
        assert neg.get("gone.example.com", QTYPE.AAAA, 10.0) == "NXDOMAIN"

    def test_nodata_is_per_type(self):
        neg = NegativeCache()
        neg.put_nodata("v4.example.com", QTYPE.AAAA, 60, now=0.0)
        assert neg.get("v4.example.com", QTYPE.AAAA, 10.0) == "NODATA"
        assert neg.get("v4.example.com", QTYPE.A, 10.0) is None

    def test_expiry(self):
        neg = NegativeCache()
        neg.put_nodata("x.example.com", QTYPE.AAAA, 15, now=0.0)
        assert neg.get("x.example.com", QTYPE.AAAA, 20.0) is None


class TestResolution:
    def test_full_walk_then_cache(self, world):
        resolver = make_resolver(world)
        fqdn, _zone = popular_fqdn(world)
        emitted = []
        result = resolver.resolve(fqdn, QTYPE.A, 0.0, emitted.append)
        assert result.status == "data"
        assert not result.from_cache
        # Cold cache: root + TLD + SLD = 3 upstream transactions.
        assert len(emitted) == 3
        # Warm: answered from cache, no upstream traffic.
        again = []
        result2 = resolver.resolve(fqdn, QTYPE.A, 1.0, again.append)
        assert result2.from_cache
        assert again == []

    def test_delegation_cache_shortcuts_walk(self, world):
        resolver = make_resolver(world)
        fqdn, zone = popular_fqdn(world)
        resolver.resolve(fqdn, QTYPE.A, 0.0, lambda t: None)
        # Different name in the same zone: only the SLD query remains.
        other = [f for f in zone.fqdns() if f != fqdn]
        if not other:
            pytest.skip("zone has a single fqdn")
        emitted = []
        resolver.resolve(other[0], QTYPE.A, 1.0, emitted.append)
        assert len(emitted) == 1
        assert emitted[0].server_ip in {ns.ip for ns in zone.nameservers}

    def test_expired_record_requeried(self, world):
        resolver = make_resolver(world)
        fqdn, zone = popular_fqdn(world)
        from repro.dnswire.constants import QTYPE as QT

        ttl = zone.get_record(fqdn, QT.A).ttl
        resolver.resolve(fqdn, QTYPE.A, 0.0, lambda t: None)
        emitted = []
        resolver.resolve(fqdn, QTYPE.A, ttl + 1.0, emitted.append)
        assert len(emitted) >= 1  # cache expired, upstream traffic again

    def test_nxdomain_cached(self, world):
        resolver = make_resolver(world)
        dns, _ = world
        zone = dns.slds[0]
        qname = "definitely-missing.%s" % zone.name
        emitted = []
        result = resolver.resolve(qname, QTYPE.A, 0.0, emitted.append)
        assert result.status == "nxdomain"
        assert emitted
        result2 = resolver.resolve(qname, QTYPE.A, 1.0, lambda t: None)
        assert result2.from_cache
        # ...for any qtype (RFC 2308).
        result3 = resolver.resolve(qname, QTYPE.AAAA, 1.0, lambda t: None)
        assert result3.from_cache

    def test_nodata_negative_cached_per_type(self, world):
        dns, _ = world
        resolver = make_resolver(world)
        # Find an IPv4-only FQDN (the Figure 9 NTP host exists in all
        # scenarios with specials enabled).
        fqdn = "time-a.ntpsync.com"
        zone = dns.find_sld_zone(fqdn)
        assert zone is not None
        result = resolver.resolve(fqdn, QTYPE.AAAA, 0.0, lambda t: None)
        assert result.status == "nodata"
        # Within the 15 s negative TTL: cached.
        r2 = resolver.resolve(fqdn, QTYPE.AAAA, 10.0, lambda t: None)
        assert r2.from_cache
        # After it expires: upstream again (the Figure 9 mechanism).
        emitted = []
        r3 = resolver.resolve(fqdn, QTYPE.AAAA, 20.0, emitted.append)
        assert not r3.from_cache
        assert emitted

    def test_unknown_tld_nxdomain_from_root(self, world):
        resolver = make_resolver(world)
        emitted = []
        result = resolver.resolve("www.example.qqzz", QTYPE.A, 0.0,
                                  emitted.append)
        assert result.status == "nxdomain"
        dns, _ = world
        root_ips = {ns.ip for ns in dns.root.nameservers}
        assert emitted[-1].server_ip in root_ips

    def test_nonexistent_sld_nxdomain_from_tld(self, world):
        resolver = make_resolver(world)
        emitted = []
        result = resolver.resolve("host.nosuchdomain99.com", QTYPE.A, 0.0,
                                  emitted.append)
        assert result.status == "nxdomain"
        dns, _ = world
        gtld_ips = {ns.ip for ns in dns.root.tlds["com"].nameservers}
        assert emitted[-1].server_ip in gtld_ips

    def test_qmin_sends_minimized_names(self, world):
        dns, _ = world
        resolver = make_resolver(world, qmin=True, ip="10.0.9.53")
        fqdn, _zone = popular_fqdn(world)
        emitted = []
        resolver.resolve(fqdn, QTYPE.A, 0.0, emitted.append)
        root_ips = {ns.ip for ns in dns.root.nameservers}
        for txn in emitted:
            if txn.server_ip in root_ips:
                assert txn.qdots == 1  # only the TLD label
        # The full name went only to the SLD auth.
        assert emitted[-1].qname == fqdn

    def test_non_qmin_leaks_full_qname(self, world):
        dns, _ = world
        resolver = make_resolver(world, qmin=False, ip="10.0.8.53")
        fqdn, _zone = popular_fqdn(world)
        emitted = []
        resolver.resolve(fqdn, QTYPE.A, 0.0, emitted.append)
        assert all(txn.qname == fqdn for txn in emitted)

    def test_neg_ttl_cap(self, world):
        resolver = make_resolver(world, ip="10.0.7.53")
        resolver.neg_ttl_cap = 30.0
        fqdn = "blogs.webjournal.net"  # negTTL 3600 in the zone
        dns, _ = world
        if dns.find_sld_zone(fqdn) is None:
            pytest.skip("specials disabled")
        resolver.resolve(fqdn, QTYPE.AAAA, 0.0, lambda t: None)
        # After the clamp (30 s) the negative entry is gone, despite
        # the zone's 3600 s negative TTL.
        emitted = []
        r = resolver.resolve(fqdn, QTYPE.AAAA, 60.0, emitted.append)
        assert not r.from_cache

    def test_cache_hit_ratio_accounting(self, world):
        resolver = make_resolver(world, ip="10.0.6.53")
        fqdn, _zone = popular_fqdn(world)
        resolver.resolve(fqdn, QTYPE.A, 0.0, lambda t: None)
        resolver.resolve(fqdn, QTYPE.A, 1.0, lambda t: None)
        assert resolver.cache_hit_ratio() == pytest.approx(0.5)


class TestUnansweredQueries:
    def test_retries_and_servfail(self):
        dns = build_global_dns(Scenario.tiny(seed=12))
        service = AuthoritativeService(dns.topology, dns.hub,
                                       unanswered_rate=1.0)  # total loss
        resolver = RecursiveResolver("10.0.0.53", dns, service, dns.hub)
        emitted = []
        result = resolver.resolve("www.example99.com", QTYPE.A, 0.0,
                                  emitted.append)
        assert result.status == "servfail"
        assert all(not t.answered for t in emitted)
        assert len(emitted) >= 2  # retried at least once
