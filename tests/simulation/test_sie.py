"""End-to-end tests for the SIE channel and workload mix."""

import collections

import pytest

from repro.dnswire.constants import QTYPE, RCODE
from repro.simulation.scenario import Scenario, TtlChange
from repro.simulation.sie import SieChannel, simulate_transactions
from repro.simulation.workload import WorkloadMix


@pytest.fixture(scope="module")
def run():
    channel, txns = simulate_transactions(Scenario.tiny(seed=21))
    return channel, txns


class TestStream:
    def test_stream_is_time_ordered(self, run):
        _, txns = run
        assert all(b.ts >= a.ts for a, b in zip(txns, txns[1:]))

    def test_stream_is_nonempty_and_counted(self, run):
        channel, txns = run
        assert len(txns) == channel.transactions
        assert len(txns) > 1000

    def test_deterministic(self):
        _, a = simulate_transactions(Scenario.tiny(seed=77))
        _, b = simulate_transactions(Scenario.tiny(seed=77))
        assert len(a) == len(b)
        assert [t.qname for t in a[:200]] == [t.qname for t in b[:200]]
        assert [t.ts for t in a[:200]] == [t.ts for t in b[:200]]

    def test_caching_suppresses_traffic(self, run):
        channel, txns = run
        # Without caches every client query would cost >=1 upstream
        # transaction; with caches we must see meaningfully fewer.
        assert channel.cache_hit_ratio() > 0.3
        assert channel.transactions < channel.client_queries

    def test_qtype_mix_shape(self, run):
        """Table 2 shape: A dominates, AAAA second among address
        types, PTR a solid share."""
        _, txns = run
        counts = collections.Counter(t.qtype_name() for t in txns)
        assert counts["A"] > counts["AAAA"] > 0
        assert counts["A"] > 0.4 * len(txns)
        assert counts["PTR"] > 0

    def test_rcode_mix_shape(self, run):
        """NXDOMAIN is a large minority (botnet), NoError majority."""
        _, txns = run
        noerror = sum(1 for t in txns if t.noerror)
        nxd = sum(1 for t in txns if t.nxdomain)
        assert noerror > nxd > 0
        assert 0.1 < nxd / len(txns) < 0.45

    def test_unanswered_present(self, run):
        _, txns = run
        unans = sum(1 for t in txns if not t.answered)
        assert 0 < unans / len(txns) < 0.1

    def test_aa_flag_only_from_authoritative(self, run):
        channel, txns = run
        com_ips = {ns.ip for ns in channel.dns.root.tlds["com"].nameservers}
        for txn in txns[:2000]:
            if txn.answered and txn.server_ip in com_ips and txn.noerror \
                    and txn.authority_ns_count > 0 and txn.answer_count == 0:
                assert not txn.aa  # referrals are never AA

    def test_sources_match_contributors(self, run):
        channel, txns = run
        sources = {t.source for t in txns}
        assert len(sources) <= Scenario.tiny().n_contributors
        assert all(s.startswith("contrib") for s in sources)

    def test_sensor_accounting(self, run):
        channel, txns = run
        assert sum(s.captured for s in channel.sensors) == len(txns)

    @staticmethod
    def _all_ips(nameservers):
        ips = set()
        for ns in nameservers:
            ips.add(ns.ip)
            if ns.ipv6:
                ips.add(ns.ipv6)
        return ips

    def test_botnet_hits_gtlds_with_nxdomain(self, run):
        channel, txns = run
        gtld_ips = self._all_ips(channel.dns.root.tlds["com"].nameservers)
        root_ips = self._all_ips(channel.dns.root.nameservers)
        botnet = [t for t in txns
                  if len(t.qname.split(".")) >= 2
                  and t.qname.split(".")[-2].startswith("mylo")
                  and t.server_ip not in root_ips]  # skip delegation lookups
        assert botnet
        assert all(t.server_ip in gtld_ips for t in botnet if t.answered)
        assert all(t.nxdomain for t in botnet if t.answered)

    def test_delays_positive_and_plausible(self, run):
        _, txns = run
        delays = [t.delay_ms for t in txns if t.answered]
        assert all(d > 0 for d in delays)
        assert min(delays) < 20
        assert max(delays) < 3000

    def test_hops_recoverable_from_ttl(self, run):
        from repro.netsim.hops import infer_hops

        _, txns = run
        hops = [infer_hops(t.observed_ttl) for t in txns if t.answered]
        assert all(1 <= h <= 40 for h in hops)


class TestScriptedRun:
    def test_ttl_change_mid_run_increases_traffic(self):
        from repro.simulation.buildout import XMSECU_FQDN

        # The change bites only once entries cached under the old TTL
        # (600 s) expire, so the epochs must be longer than that TTL.
        duration, change_at = 1800.0, 600.0
        events = [TtlChange(at=change_at, name=XMSECU_FQDN, new_ttl=5)]
        channel, txns = simulate_transactions(
            Scenario.tiny(seed=9, duration=duration, client_qps=30.0,
                          scripted_events=events))
        first = sum(1 for t in txns
                    if t.qname == XMSECU_FQDN and t.ts < change_at)
        rate_first = first / change_at
        second = sum(1 for t in txns
                     if t.qname == XMSECU_FQDN and t.ts >= change_at + 600)
        rate_second = second / (duration - change_at - 600)
        # TTL 600 -> 5 s: resolvers re-query far more often (Figure 7).
        assert rate_second > 2 * rate_first


class TestWireCheck:
    def test_wire_path_agrees_with_fast_path(self):
        scenario = Scenario.tiny(seed=4, duration=60.0,
                                 wire_check_fraction=1.0)
        channel, txns = simulate_transactions(scenario)
        assert channel.service.wire_checks > 100
        # Wire-parsed transactions carry real response sizes.
        answered = [t for t in txns if t.answered]
        assert all(t.response_size > 12 for t in answered)


class TestWorkloadMix:
    def test_rates_cover_all_generators(self):
        from repro.simulation.buildout import build_global_dns

        scenario = Scenario.tiny()
        dns = build_global_dns(scenario)
        mix = WorkloadMix(scenario, dns)
        assert "web" in mix.rates and "botnet" in mix.rates
        total = sum(mix.rates.values())
        assert total == pytest.approx(scenario.client_qps, rel=0.01)

    def test_events_sorted_and_bounded(self):
        from repro.simulation.buildout import build_global_dns

        scenario = Scenario.tiny(duration=30.0)
        dns = build_global_dns(scenario)
        mix = WorkloadMix(scenario, dns)
        events = list(mix.events())
        assert all(b.ts >= a.ts for a, b in zip(events, events[1:]))
        assert all(0 <= e.ts < 30.0 for e in events)
        assert all(0 <= e.resolver_index < scenario.n_resolvers
                   for e in events)

    def test_dualstack_pairs_a_with_aaaa(self):
        from repro.simulation.buildout import build_global_dns

        scenario = Scenario.tiny(duration=60.0, dualstack_fraction=1.0)
        dns = build_global_dns(scenario)
        mix = WorkloadMix(scenario, dns)
        web = [e for e in mix.events() if e.tag in ("web", "web6")]
        a_count = sum(1 for e in web if e.qtype == QTYPE.A)
        aaaa = sum(1 for e in web if e.qtype == QTYPE.AAAA)
        assert aaaa == a_count  # every A paired with an AAAA
