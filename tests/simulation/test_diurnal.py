"""Tests for diurnal workload modulation."""

import pytest

from repro.simulation.buildout import build_global_dns
from repro.simulation.scenario import Scenario
from repro.simulation.workload import WorkloadMix


def event_counts(scenario, buckets):
    dns = build_global_dns(scenario)
    mix = WorkloadMix(scenario, dns)
    counts = [0] * buckets
    width = scenario.duration / buckets
    total = 0
    for event in mix.events():
        counts[min(int(event.ts / width), buckets - 1)] += 1
        total += 1
    return counts, total


def test_flat_by_default():
    scenario = Scenario.tiny(seed=81, duration=400.0, client_qps=60.0)
    counts, _ = event_counts(scenario, buckets=4)
    mean = sum(counts) / len(counts)
    assert all(abs(c - mean) / mean < 0.2 for c in counts)


def test_diurnal_swing_visible():
    # One full "day" compressed into the run: peak in the first half
    # of the sine, trough in the second.
    scenario = Scenario.tiny(seed=82, duration=400.0, client_qps=60.0,
                             diurnal_amplitude=0.8,
                             diurnal_period=400.0)
    counts, _ = event_counts(scenario, buckets=4)
    # sin peaks in bucket 0/1 region, bottoms in bucket 2/3.
    peak = counts[0] + counts[1]
    trough = counts[2] + counts[3]
    assert peak > 1.5 * trough


def test_mean_rate_preserved():
    flat = Scenario.tiny(seed=83, duration=400.0, client_qps=60.0)
    wavy = Scenario.tiny(seed=83, duration=400.0, client_qps=60.0,
                         diurnal_amplitude=0.6, diurnal_period=200.0)
    _, flat_total = event_counts(flat, 1)
    _, wavy_total = event_counts(wavy, 1)
    # Whole periods average out: totals within 10%.
    assert abs(wavy_total - flat_total) / flat_total < 0.1


def test_rejects_bad_amplitude():
    with pytest.raises(ValueError):
        Scenario.tiny(diurnal_amplitude=1.5)


def test_heatmap_pgm_export(tmp_path):
    from repro.netsim.hilbert import HilbertHeatmap

    hm = HilbertHeatmap(order=3)
    for i in range(10):
        hm.add("10.0.%d.1" % i)
    path = hm.to_pgm(str(tmp_path / "fig6.pgm"))
    lines = open(path).read().splitlines()
    assert lines[0] == "P2"
    width, height = map(int, lines[2].split())
    assert (width, height) == (8, 8)
    pixels = [int(v) for line in lines[4:] for v in line.split()]
    assert len(pixels) == 64
    nonzero_cells = sum(1 for row in hm.grid() for c in row if c)
    assert sum(1 for p in pixels if p > 0) == nonzero_cells
    assert nonzero_cells >= 1
