"""Tests for dual-stack (IPv6) nameserver transport."""

import ipaddress

import pytest

from repro.netsim.addr import is_ipv6
from repro.simulation.rng import RngHub
from repro.simulation.scenario import Scenario
from repro.simulation.sie import SieChannel, simulate_transactions
from repro.simulation.topology import Topology


class TestTopologyV6:
    def test_v6_prefixes_allocated_and_routed(self):
        topo = Topology(RngHub(5), n_tail_orgs=4)
        org = topo.orgs["CLOUDFLARE"]
        assert len(org.v6_prefixes) == len(org.asns)
        for prefix in org.v6_prefixes:
            network = ipaddress.IPv6Network(prefix)
            sample = str(network.network_address + 1)
            assert topo.asdb.lookup(sample) in org.asns

    def test_dual_stack_addresses_are_valid(self):
        topo = Topology(RngHub(6), n_tail_orgs=4)
        v6_count = 0
        for _ in range(40):
            ns = topo.allocate_nameserver("AKAMAI")
            if ns.ipv6 is not None:
                v6_count += 1
                ipaddress.IPv6Address(ns.ipv6)  # must parse
                assert topo.nameservers_by_ip[ns.ipv6] is ns
        # CDNs are 90% dual-stack.
        assert v6_count > 25

    def test_v6_attribution_matches_org(self):
        topo = Topology(RngHub(7), n_tail_orgs=4)
        for _ in range(20):
            ns = topo.allocate_nameserver("GOOGLE")
            if ns.ipv6:
                assert topo.org_of_ip(ns.ipv6) == "GOOGLE"

    def test_tail_orgs_less_dual_stack(self):
        topo = Topology(RngHub(8), n_tail_orgs=6)
        tail = topo.tail_org_names()[0]
        counts = {"cdn": 0, "tail": 0}
        for _ in range(60):
            if topo.allocate_nameserver("CLOUDFLARE").ipv6:
                counts["cdn"] += 1
            if topo.allocate_nameserver(tail).ipv6:
                counts["tail"] += 1
        assert counts["cdn"] > counts["tail"]


class TestV6Transport:
    @pytest.fixture(scope="class")
    def run(self):
        return simulate_transactions(Scenario.tiny(
            seed=91, duration=120.0, client_qps=40.0,
            resolver_ipv6_fraction=0.5))

    def test_stream_contains_both_families(self, run):
        _, txns = run
        families = {is_ipv6(t.server_ip) for t in txns}
        assert families == {True, False}

    def test_v6_pairs_use_v6_both_sides(self, run):
        _, txns = run
        for txn in txns:
            if is_ipv6(txn.server_ip):
                assert is_ipv6(txn.resolver_ip)

    def test_v6_servers_resolve_to_known_nameservers(self, run):
        channel, txns = run
        registry = channel.dns.topology.nameservers_by_ip
        v6_servers = {t.server_ip for t in txns if is_ipv6(t.server_ip)}
        assert v6_servers
        assert v6_servers <= set(registry)

    def test_disabled_when_fraction_zero(self):
        _, txns = simulate_transactions(Scenario.tiny(
            seed=91, duration=60.0, client_qps=20.0,
            resolver_ipv6_fraction=0.0))
        assert not any(is_ipv6(t.server_ip) for t in txns)

    def test_v6_share_tracks_fraction(self, run):
        _, txns = run
        share = sum(1 for t in txns if is_ipv6(t.server_ip)) / len(txns)
        # 50% of resolvers, ~50% of their queries to ~dual-stack-heavy
        # servers: a visible minority share.
        assert 0.03 < share < 0.5
