"""Tests for the organization/AS/nameserver topology."""

import pytest

from repro.simulation.rng import RngHub
from repro.simulation.topology import MAJOR_ORGS, Topology


@pytest.fixture(scope="module")
def topo():
    return Topology(RngHub(42), n_tail_orgs=10)


def test_major_orgs_present(topo):
    for name in ("AMAZON", "VERISIGN", "CLOUDFLARE", "AKAMAI",
                 "MICROSOFT", "PCH", "ULTRADNS", "GOOGLE", "DYNDNS",
                 "GODADDY"):
        assert name in topo.orgs


def test_as_counts_match_table1_cast(topo):
    expected = {name: n_ases for name, _, n_ases, _, _, _, _ in MAJOR_ORGS}
    for name, n_ases in expected.items():
        assert len(topo.orgs[name].asns) == n_ases


def test_tail_orgs_created(topo):
    assert len(topo.tail_org_names()) == 10


def test_prefixes_registered_in_asdb(topo):
    org = topo.orgs["AMAZON"]
    prefix = org.prefixes[0]
    sample_ip = prefix.split("/")[0].rsplit(".", 2)[0] + ".1.1"
    asn = topo.asdb.lookup(sample_ip)
    assert asn in org.asns


def test_asname_org_roundtrip(topo):
    """The analysis-side attribution recovers the ground-truth org."""
    for name in ("AMAZON", "CLOUDFLARE", "MICROSOFT", "PCH", "GODADDY"):
        org = topo.orgs[name]
        for asn in org.asns:
            assert topo.asnames.org(asn) == name


def test_allocate_nameserver(topo):
    ns = topo.allocate_nameserver("GOOGLE")
    assert ns.org == "GOOGLE"
    assert ns.ip in topo.nameservers_by_ip
    assert topo.org_of_ip(ns.ip) == "GOOGLE"


def test_nameserver_ips_unique(topo):
    ips = [topo.allocate_nameserver("AKAMAI").ip for _ in range(300)]
    assert len(set(ips)) == 300


def test_anycast_redraws_distance_class():
    topo = Topology(RngHub(1), n_tail_orgs=2)
    ns = topo.allocate_nameserver("CLOUDFLARE")  # anycast org
    classes = set()
    for i in range(40):
        profile = topo.path_profile("10.0.%d.53" % i, ns)
        # base delay implies a class; collect rough buckets
        if profile.base_delay_ms < 5:
            classes.add("colocated")
        elif profile.base_delay_ms < 35:
            classes.add("regional")
        else:
            classes.add("distant")
    assert len(classes) >= 2  # different mirrors for different resolvers


def test_unicast_keeps_class():
    topo = Topology(RngHub(1), n_tail_orgs=2)
    ns = topo.allocate_nameserver("AMAZON")  # unicast org
    ns.distance_class = "colocated"
    for i in range(20):
        profile = topo.path_profile("10.0.%d.53" % i, ns)
        assert profile.base_delay_ms < 5.0


def test_path_profile_cached_and_deterministic():
    topo = Topology(RngHub(9), n_tail_orgs=2)
    ns = topo.allocate_nameserver("AMAZON")
    p1 = topo.path_profile("10.0.0.53", ns)
    p2 = topo.path_profile("10.0.0.53", ns)
    assert p1 is p2
    # Same seed, fresh topology: same profile values.
    topo2 = Topology(RngHub(9), n_tail_orgs=2)
    ns2 = topo2.allocate_nameserver("AMAZON")
    p3 = topo2.path_profile("10.0.0.53", ns2)
    assert p3.hops == p1.hops
    assert p3.base_delay_ms == pytest.approx(p1.base_delay_ms)


def test_cdn_paths_shorter_than_cloud():
    """Table 1 shape: AKAMAI/CLOUDFLARE beat AMAZON/GOOGLE on delay."""
    topo = Topology(RngHub(5), n_tail_orgs=2)
    def mean_delay(org, n=30):
        total = 0.0
        for i in range(n):
            ns = topo.allocate_nameserver(org)
            profile = topo.path_profile("10.9.%d.53" % i, ns)
            total += profile.base_delay_ms
        return total / n
    assert mean_delay("AKAMAI") < mean_delay("AMAZON")
    assert mean_delay("CLOUDFLARE") < mean_delay("GOOGLE")
