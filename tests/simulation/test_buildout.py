"""Tests for the scenario buildout and scripted events."""

import pytest

from repro.dnswire.constants import QTYPE
from repro.simulation.buildout import (
    SPECIAL_V4ONLY,
    XMSECU_FQDN,
    build_global_dns,
)
from repro.simulation.scenario import (
    EnableIpv6,
    NsChange,
    Renumber,
    Scenario,
    TtlChange,
)


@pytest.fixture(scope="module")
def dns():
    return build_global_dns(Scenario.tiny(seed=5))


class TestBuildout:
    def test_thirteen_root_letters(self, dns):
        assert len(dns.root.nameservers) == 13
        hostnames = {ns.hostname for ns in dns.root.nameservers}
        assert "a.root-servers.net" in hostnames
        assert "m.root-servers.net" in hostnames

    def test_thirteen_gtld_letters_shared_by_com_net(self, dns):
        com = dns.root.tlds["com"]
        net = dns.root.tlds["net"]
        assert len(com.nameservers) == 13
        assert com.nameservers == net.nameservers
        assert all(ns.org == "VERISIGN" for ns in com.nameservers)

    def test_tld_count(self, dns):
        assert len(dns.root.tlds) == Scenario.tiny().n_tlds

    def test_registry_suffixes_installed(self, dns):
        assert "co.uk" in dns.root.tlds["uk"].registry_suffixes
        assert "org.il" in dns.root.tlds["il"].registry_suffixes

    def test_slds_registered_and_resolvable(self, dns):
        assert len(dns.slds) > 100
        zone = dns.slds[0]
        assert dns.find_sld_zone("www." + zone.name) is zone

    def test_sld_records_complete(self, dns):
        zone = dns.slds[10]
        assert zone.get_record(zone.name, QTYPE.A) is not None
        assert zone.get_record(zone.name, QTYPE.MX) is not None
        assert zone.get_record(zone.name, QTYPE.SOA) is not None
        assert zone.get_record("www." + zone.name, QTYPE.A) is not None

    def test_signed_zones_have_ds(self, dns):
        signed = [z for z in dns.slds if z.signed]
        assert signed
        for zone in signed[:10]:
            assert zone.get_record(zone.name, QTYPE.DS) is not None

    def test_some_zones_have_ipv6(self, dns):
        with_v6 = sum(
            1 for z in dns.slds
            if z.get_record("www." + z.name, QTYPE.AAAA) is not None)
        assert 0 < with_v6 < len(dns.slds)

    def test_specials_exist_and_are_v4only(self, dns):
        for fqdn, _rank, ttl, negttl in SPECIAL_V4ONLY:
            zone = dns.find_sld_zone(fqdn)
            assert zone is not None, fqdn
            assert zone.get_record(fqdn, QTYPE.A) is not None
            assert zone.get_record(fqdn, QTYPE.AAAA) is None
            assert zone.soa_negttl == negttl

    def test_specials_in_catalog_at_planned_ranks(self, dns):
        catalog_names = [fqdn for fqdn, _ in dns.catalog]
        for fqdn, rank, _, _ in SPECIAL_V4ONLY:
            assert catalog_names[rank] == fqdn
        assert catalog_names[50] == XMSECU_FQDN

    def test_reverse_zones(self, dns):
        assert dns.reverse_zones
        zone = dns.reverse_zones[0]
        ans = zone.answer("1.2.3.%s" % zone.name, QTYPE.PTR)
        assert ans.aa

    def test_wildcard_txt_zone_exists(self, dns):
        av = [z for z in dns.wildcard_slds
              if z.wildcard and "TXT" in z.wildcard]
        assert av
        ans = av[0].answer("deadbeef.sig.%s" % av[0].name, QTYPE.TXT)
        assert ans.records[0][1] == 5  # the TTL-5 TXT answers

    def test_catalog_size(self, dns):
        assert len(dns.catalog) == Scenario.tiny().popular_fqdns

    def test_deterministic_given_seed(self):
        a = build_global_dns(Scenario.tiny(seed=33))
        b = build_global_dns(Scenario.tiny(seed=33))
        assert [z.name for z in a.slds] == [z.name for z in b.slds]
        assert a.all_nameserver_ips() == b.all_nameserver_ips()
        assert [f for f, _ in a.catalog] == [f for f, _ in b.catalog]

    def test_different_seeds_differ(self):
        a = build_global_dns(Scenario.tiny(seed=1))
        b = build_global_dns(Scenario.tiny(seed=2))
        assert a.all_nameserver_ips() != b.all_nameserver_ips()


class TestScriptedEvents:
    def test_ttl_change_applied(self):
        events = [TtlChange(at=100.0, name=XMSECU_FQDN, new_ttl=10)]
        dns = build_global_dns(Scenario.tiny(scripted_events=events))
        zone = dns.find_sld_zone(XMSECU_FQDN)
        assert zone.get_record(XMSECU_FQDN, QTYPE.A).ttl == 600
        dns.apply_events_until(50.0)
        assert zone.get_record(XMSECU_FQDN, QTYPE.A).ttl == 600
        dns.apply_events_until(100.0)
        assert zone.get_record(XMSECU_FQDN, QTYPE.A).ttl == 10
        assert len(dns.applied_events) == 1

    def test_ttl_change_whole_zone(self):
        dns = build_global_dns(Scenario.tiny())
        zone = dns.slds[5]
        dns._apply(TtlChange(at=0, name=zone.name, new_ttl=7))
        for fqdn in zone.fqdns():
            rec = zone.get_record(fqdn, QTYPE.A)
            if rec is not None:
                assert rec.ttl == 7

    def test_ns_ttl_change(self):
        dns = build_global_dns(Scenario.tiny())
        zone = dns.slds[3]
        dns._apply(TtlChange(at=0, name=zone.name, new_ttl=30, rtype="NS"))
        assert zone.ns_ttl == 30

    def test_soa_negttl_change(self):
        dns = build_global_dns(Scenario.tiny())
        zone = dns.slds[3]
        dns._apply(TtlChange(at=0, name=zone.name, new_ttl=15, rtype="SOA"))
        assert zone.soa_negttl == 15

    def test_renumber(self):
        dns = build_global_dns(Scenario.tiny())
        zone = dns.slds[4]
        fqdn = "www." + zone.name
        dns._apply(Renumber(at=0, fqdn=fqdn, new_ips=("203.0.113.9",),
                            new_ttl=38400))
        rec = zone.get_record(fqdn, QTYPE.A)
        assert rec.values == ("203.0.113.9",)
        assert rec.ttl == 38400

    def test_ns_change(self):
        dns = build_global_dns(Scenario.tiny())
        zone = dns.slds[6]
        old_ips = {ns.ip for ns in zone.nameservers}
        dns._apply(NsChange(at=0, sld=zone.name, new_ns_org="MICROSOFT",
                            new_ttl=10))
        new_ips = {ns.ip for ns in zone.nameservers}
        assert new_ips.isdisjoint(old_ips)
        assert all(ns.org == "MICROSOFT" for ns in zone.nameservers)
        assert zone.ns_ttl == 10

    def test_enable_ipv6(self):
        dns = build_global_dns(Scenario.tiny())
        fqdn = "time-a.ntpsync.com"
        zone = dns.find_sld_zone(fqdn)
        assert zone.get_record(fqdn, QTYPE.AAAA) is None
        dns._apply(EnableIpv6(at=0, fqdn=fqdn))
        aaaa = zone.get_record(fqdn, QTYPE.AAAA)
        assert aaaa is not None
        assert aaaa.ttl == zone.get_record(fqdn, QTYPE.A).ttl

    def test_unknown_target_raises(self):
        dns = build_global_dns(Scenario.tiny())
        with pytest.raises(KeyError):
            dns._apply(TtlChange(at=0, name="nope.nowhere.zz", new_ttl=1))

    def test_events_applied_in_order(self):
        events = [
            TtlChange(at=200.0, name=XMSECU_FQDN, new_ttl=10),
            TtlChange(at=100.0, name=XMSECU_FQDN, new_ttl=60),
        ]
        dns = build_global_dns(Scenario.tiny(scripted_events=events))
        dns.apply_events_until(150.0)
        zone = dns.find_sld_zone(XMSECU_FQDN)
        assert zone.get_record(XMSECU_FQDN, QTYPE.A).ttl == 60
        dns.apply_events_until(250.0)
        assert zone.get_record(XMSECU_FQDN, QTYPE.A).ttl == 10
