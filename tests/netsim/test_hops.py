"""Tests for initial-TTL hop inference."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netsim.hops import (
    INITIAL_TTL_LADDER,
    infer_hops,
    infer_initial_ttl,
    ttl_after_path,
)


def test_ladder_values_map_to_themselves():
    for rung in INITIAL_TTL_LADDER:
        assert infer_initial_ttl(rung) == rung
        assert infer_hops(rung) == 0


def test_typical_inferences():
    assert infer_initial_ttl(57) == 64
    assert infer_hops(57) == 7
    assert infer_initial_ttl(120) == 128
    assert infer_hops(120) == 8
    assert infer_initial_ttl(240) == 255
    assert infer_hops(240) == 15
    assert infer_initial_ttl(30) == 32
    assert infer_hops(30) == 2


def test_rejects_out_of_range():
    with pytest.raises(ValueError):
        infer_initial_ttl(-1)
    with pytest.raises(ValueError):
        infer_initial_ttl(256)


def test_forward_model():
    assert ttl_after_path(64, 7) == 57
    assert ttl_after_path(255, 0) == 255


def test_forward_model_rejects_dead_packets():
    with pytest.raises(ValueError):
        ttl_after_path(64, 64)
    with pytest.raises(ValueError):
        ttl_after_path(64, -1)


@given(
    st.sampled_from(INITIAL_TTL_LADDER),
    st.integers(min_value=0, max_value=25),
)
def test_inference_inverts_forward_model(initial, hops):
    """For realistic hop counts the inference recovers ground truth."""
    observed = ttl_after_path(initial, hops)
    assert infer_initial_ttl(observed) == initial
    assert infer_hops(observed) == hops
