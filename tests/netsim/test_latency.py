"""Tests for the path delay model."""

import random
import statistics

import pytest

from repro.netsim.latency import DelayModel, PathProfile


class TestPathProfile:
    def test_basic_construction(self):
        p = PathProfile(hops=7, base_delay_ms=20.0, server_delay_ms=2.0)
        assert p.hops == 7
        assert p.initial_ttl == 64

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            PathProfile(hops=0, base_delay_ms=1.0)
        with pytest.raises(ValueError):
            PathProfile(hops=1, base_delay_ms=-1.0)

    def test_distance_classes_ordered(self):
        rng = random.Random(1)
        classes = ["colocated", "regional", "distant", "impaired"]
        means = []
        for cls_name in classes:
            samples = [
                PathProfile.from_distance_class(cls_name, rng).base_delay_ms
                for _ in range(200)
            ]
            means.append(statistics.mean(samples))
        assert means == sorted(means)

    def test_distance_class_delay_ranges(self):
        rng = random.Random(2)
        for _ in range(100):
            assert PathProfile.from_distance_class("colocated", rng).base_delay_ms < 5
            p = PathProfile.from_distance_class("regional", rng)
            assert 5 <= p.base_delay_ms <= 35
            p = PathProfile.from_distance_class("impaired", rng)
            assert p.base_delay_ms >= 350

    def test_rejects_unknown_class(self):
        with pytest.raises(ValueError):
            PathProfile.from_distance_class("martian", random.Random(0))

    def test_colocated_paths_have_fewer_hops(self):
        rng = random.Random(3)
        near = [PathProfile.from_distance_class("colocated", rng).hops
                for _ in range(100)]
        far = [PathProfile.from_distance_class("distant", rng).hops
               for _ in range(100)]
        assert statistics.mean(near) < statistics.mean(far)


class TestDelayModel:
    def test_sample_positive_and_near_expected(self):
        model = DelayModel()
        profile = PathProfile(hops=10, base_delay_ms=50.0, server_delay_ms=2.0)
        rng = random.Random(4)
        samples = [model.sample_ms(profile, rng) for _ in range(2000)]
        assert all(s > 0 for s in samples)
        assert abs(statistics.mean(samples) - model.expected_ms(profile)) < 5.0

    def test_min_delay_enforced(self):
        model = DelayModel(min_delay_ms=1.0)
        profile = PathProfile(hops=1, base_delay_ms=0.0, server_delay_ms=0.0)
        assert model.sample_ms(profile, random.Random(0)) == 1.0

    def test_deterministic_given_rng(self):
        model = DelayModel()
        profile = PathProfile(hops=5, base_delay_ms=10.0)
        a = [model.sample_ms(profile, random.Random(9)) for _ in range(5)]
        b = [model.sample_ms(profile, random.Random(9)) for _ in range(5)]
        assert a == b
