"""Tests for DNS-over-TCP support (the paper's §2.1 future work)."""

import pytest

from repro.dnswire.constants import QTYPE
from repro.dnswire.message import Message, ResourceRecord
from repro.dnswire.rdata import A
from repro.netsim.packet import (
    PacketError,
    build_dns_tcp_ipv4,
    build_udp_ipv4,
    parse_ip_packet,
)
from repro.observatory.preprocess import summarize_transaction


def test_tcp_roundtrip():
    pkt = build_dns_tcp_ipv4("10.0.0.1", "192.0.2.53", 40000, 53,
                             b"dns-bytes", ttl=60)
    dg = parse_ip_packet(pkt)
    assert dg.transport == "tcp"
    assert dg.payload == b"dns-bytes"
    assert dg.src_port == 40000 and dg.dst_port == 53
    assert dg.ttl == 60


def test_udp_transport_labelled():
    pkt = build_udp_ipv4("10.0.0.1", "192.0.2.53", 40000, 53, b"x")
    assert parse_ip_packet(pkt).transport == "udp"


def test_tcp_rejects_truncated_dns():
    pkt = bytearray(build_dns_tcp_ipv4("10.0.0.1", "10.0.0.2", 1, 53,
                                       b"0123456789"))
    with pytest.raises(PacketError):
        parse_ip_packet(bytes(pkt[:-5]))


def test_tcp_rejects_missing_length_prefix():
    pkt = build_dns_tcp_ipv4("10.0.0.1", "10.0.0.2", 1, 53, b"")
    # Strip the framing entirely: 2-byte prefix is the whole payload.
    with pytest.raises(PacketError):
        parse_ip_packet(pkt[:-2])


def test_tcp_rejects_oversized():
    with pytest.raises(PacketError):
        build_dns_tcp_ipv4("10.0.0.1", "10.0.0.2", 1, 53, b"x" * 70000)


def test_full_preprocess_over_tcp():
    """A complete DNS transaction carried over TCP/53 parses through
    the §2.1 preprocessor identically to UDP."""
    query = Message.make_query("www.example.com", QTYPE.A, msg_id=9)
    response = Message.make_response(query, authoritative=True)
    response.answer.append(ResourceRecord(
        "www.example.com", QTYPE.A, 300, A("198.51.100.1")))
    qpkt = build_dns_tcp_ipv4("10.0.0.1", "192.0.2.53", 45000, 53,
                              query.to_wire())
    rpkt = build_dns_tcp_ipv4("192.0.2.53", "10.0.0.1", 53, 45000,
                              response.to_wire(), ttl=57)
    txn = summarize_transaction(qpkt, rpkt, 0.0, 0.020)
    assert txn.noerror
    assert txn.answer_ips == ("198.51.100.1",)
    assert txn.observed_ttl == 57
