"""Tests for Hilbert curve mapping and heatmap accumulator."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netsim.hilbert import HilbertHeatmap, d2xy, xy2d


class TestCurve:
    def test_order1_layout(self):
        # Order-1 Hilbert curve visits (0,0),(0,1),(1,1),(1,0).
        assert [d2xy(1, d) for d in range(4)] == [(0, 0), (0, 1), (1, 1), (1, 0)]

    def test_inverse(self):
        for order in (1, 2, 3, 6):
            n = (1 << order) ** 2
            for d in range(n):
                x, y = d2xy(order, d)
                assert xy2d(order, x, y) == d

    def test_adjacency(self):
        # Consecutive curve positions are grid neighbours (locality).
        order = 5
        prev = d2xy(order, 0)
        for d in range(1, (1 << order) ** 2):
            x, y = d2xy(order, d)
            assert abs(x - prev[0]) + abs(y - prev[1]) == 1
            prev = (x, y)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            d2xy(2, 16)
        with pytest.raises(ValueError):
            xy2d(2, 4, 0)

    @given(st.integers(0, (1 << 12) - 1), st.integers(0, (1 << 12) - 1))
    def test_inverse_property_order12(self, x, y):
        d = xy2d(12, x, y)
        assert d2xy(12, d) == (x, y)


class TestHeatmap:
    def test_counts_per_slash24(self):
        hm = HilbertHeatmap(order=4)
        hm.add("192.0.2.1")
        hm.add("192.0.2.200")  # same /24
        hm.add("192.0.3.1")    # different /24
        assert hm.populated_prefixes == 2
        assert hm.prefix_density_histogram() == {2: 1, 1: 1}

    def test_density_histogram_shape(self):
        # Mirror §3.7: mostly 1-address prefixes.
        hm = HilbertHeatmap(order=4)
        for i in range(48):
            hm.add("10.%d.0.1" % i)
        for i in range(24):
            hm.add("11.%d.0.1" % i)
            hm.add("11.%d.0.2" % i)
        hist = hm.prefix_density_histogram()
        assert hist[1] == 48
        assert hist[2] == 24

    def test_grid_total_preserved(self):
        hm = HilbertHeatmap(order=3)
        for i in range(10):
            hm.add("10.0.%d.1" % i)
        rows = hm.grid()
        assert sum(sum(row) for row in rows) == 10
        assert len(rows) == 8 and all(len(r) == 8 for r in rows)

    def test_add_count_raw_index(self):
        hm = HilbertHeatmap(order=2)
        hm.add_count(0, count=5)
        assert hm.prefix_density_histogram() == {5: 1}
        with pytest.raises(ValueError):
            hm.add_count(1 << 24)

    def test_ascii_rendering(self):
        hm = HilbertHeatmap(order=3)
        art = hm.to_ascii()
        assert len(art.splitlines()) == 8
        hm.add("10.0.0.1")
        art = hm.to_ascii()
        assert any(ch != " " for ch in art)

    def test_rejects_bad_order(self):
        with pytest.raises(ValueError):
            HilbertHeatmap(order=0)
        with pytest.raises(ValueError):
            HilbertHeatmap(order=13)
