"""Tests for address/prefix arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netsim.addr import (
    ipv4_from_int,
    ipv4_prefix_of,
    ipv4_to_int,
    ipv6_from_int,
    ipv6_to_int,
    is_ipv6,
    pack_ipv4,
    prefix_contains,
    slash24_of,
    unpack_ipv4,
)


def test_ipv4_int_roundtrip_known():
    assert ipv4_to_int("192.0.2.1") == 0xC0000201
    assert ipv4_from_int(0xC0000201) == "192.0.2.1"
    assert ipv4_to_int("0.0.0.0") == 0
    assert ipv4_to_int("255.255.255.255") == 0xFFFFFFFF


def test_ipv4_to_int_rejects_malformed():
    for bad in ["192.0.2", "192.0.2.1.5", "192.0.2.300", "a.b.c.d"]:
        with pytest.raises(ValueError):
            ipv4_to_int(bad)


def test_ipv4_from_int_rejects_out_of_range():
    with pytest.raises(ValueError):
        ipv4_from_int(-1)
    with pytest.raises(ValueError):
        ipv4_from_int(1 << 32)


def test_prefix_of():
    assert ipv4_prefix_of("192.0.2.77", 24) == ipv4_to_int("192.0.2.0")
    assert ipv4_prefix_of("192.0.2.77", 32) == ipv4_to_int("192.0.2.77")
    assert ipv4_prefix_of("192.0.2.77", 0) == 0


def test_prefix_of_rejects_bad_length():
    with pytest.raises(ValueError):
        ipv4_prefix_of("192.0.2.1", 33)


def test_slash24():
    assert slash24_of("192.0.2.77") == "192.0.2.0/24"
    assert slash24_of("10.1.2.3") == "10.1.2.0/24"


def test_prefix_contains():
    assert prefix_contains("192.0.2.0", 24, "192.0.2.200")
    assert not prefix_contains("192.0.2.0", 24, "192.0.3.1")
    assert prefix_contains("10.0.0.0", 8, "10.200.1.1")


def test_is_ipv6():
    assert is_ipv6("2001:db8::1")
    assert not is_ipv6("192.0.2.1")


def test_ipv6_int_roundtrip():
    addr = "2001:db8::1"
    assert ipv6_from_int(ipv6_to_int(addr)) == addr


def test_pack_unpack():
    assert unpack_ipv4(pack_ipv4("198.51.100.9")) == "198.51.100.9"


@given(st.integers(0, 0xFFFFFFFF))
def test_ipv4_roundtrip_property(value):
    assert ipv4_to_int(ipv4_from_int(value)) == value


@given(st.integers(0, 0xFFFFFFFF), st.integers(0, 32))
def test_prefix_is_idempotent(value, plen):
    prefix = ipv4_prefix_of(value, plen)
    assert ipv4_prefix_of(prefix, plen) == prefix
