"""Tests for IPv4/IPv6 + UDP packet codecs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.packet import (
    PacketError,
    build_udp_ipv4,
    build_udp_ipv6,
    ipv4_checksum,
    parse_ip_packet,
)


class TestIPv4:
    def test_roundtrip(self):
        pkt = build_udp_ipv4("192.0.2.1", "198.51.100.2", 40000, 53,
                             b"hello dns", ttl=57)
        dg = parse_ip_packet(pkt)
        assert dg.src_ip == "192.0.2.1"
        assert dg.dst_ip == "198.51.100.2"
        assert dg.src_port == 40000
        assert dg.dst_port == 53
        assert dg.ttl == 57
        assert dg.payload == b"hello dns"
        assert dg.ip_version == 4

    def test_header_checksum_valid(self):
        pkt = build_udp_ipv4("10.0.0.1", "10.0.0.2", 1, 2, b"x")
        # Recomputing the checksum over the header must yield zero.
        assert ipv4_checksum(pkt[:20]) == 0

    def test_empty_payload(self):
        pkt = build_udp_ipv4("10.0.0.1", "10.0.0.2", 1, 53, b"")
        assert parse_ip_packet(pkt).payload == b""

    def test_rejects_oversized_payload(self):
        with pytest.raises(PacketError):
            build_udp_ipv4("10.0.0.1", "10.0.0.2", 1, 2, b"x" * 70000)

    def test_rejects_truncated(self):
        pkt = build_udp_ipv4("10.0.0.1", "10.0.0.2", 1, 2, b"payload")
        with pytest.raises(PacketError):
            parse_ip_packet(pkt[:15])

    def test_rejects_non_udp(self):
        pkt = bytearray(build_udp_ipv4("10.0.0.1", "10.0.0.2", 1, 2, b"x"))
        pkt[9] = 6  # TCP
        with pytest.raises(PacketError):
            parse_ip_packet(bytes(pkt))

    def test_rejects_empty(self):
        with pytest.raises(PacketError):
            parse_ip_packet(b"")

    def test_rejects_unknown_version(self):
        with pytest.raises(PacketError):
            parse_ip_packet(bytes([0x50] * 20))

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(0, 0xFFFFFFFF),
        st.integers(0, 0xFFFFFFFF),
        st.integers(1, 0xFFFF),
        st.integers(1, 0xFFFF),
        st.integers(1, 255),
        st.binary(max_size=512),
    )
    def test_roundtrip_property(self, src, dst, sport, dport, ttl, payload):
        from repro.netsim.addr import ipv4_from_int

        pkt = build_udp_ipv4(ipv4_from_int(src), ipv4_from_int(dst),
                             sport, dport, payload, ttl=ttl)
        dg = parse_ip_packet(pkt)
        assert dg.payload == payload
        assert dg.ttl == ttl
        assert (dg.src_port, dg.dst_port) == (sport, dport)


class TestIPv6:
    def test_roundtrip(self):
        pkt = build_udp_ipv6("2001:db8::1", "2001:db8::2", 40000, 53,
                             b"dns over v6", hop_limit=61)
        dg = parse_ip_packet(pkt)
        assert dg.src_ip == "2001:db8::1"
        assert dg.dst_ip == "2001:db8::2"
        assert dg.ttl == 61
        assert dg.payload == b"dns over v6"
        assert dg.ip_version == 6

    def test_rejects_truncated(self):
        pkt = build_udp_ipv6("2001:db8::1", "2001:db8::2", 1, 2, b"x")
        with pytest.raises(PacketError):
            parse_ip_packet(pkt[:30])


def test_repr():
    pkt = build_udp_ipv4("10.0.0.1", "10.0.0.2", 1234, 53, b"abc")
    assert "10.0.0.1:1234" in repr(parse_ip_packet(pkt))
