"""Tests for AS name registry and organization extraction."""

from repro.netsim.asnames import AsNameRegistry, extract_org


class TestExtractOrg:
    def test_table1_style_names(self):
        assert extract_org("AMAZON-02 - Amazon.com, Inc., US") == "AMAZON"
        assert extract_org("AMAZON-AES - Amazon.com, Inc., US") == "AMAZON"
        assert extract_org("CLOUDFLARENET - Cloudflare, Inc., US") == "CLOUDFLARE"
        assert extract_org("GOOGLE - Google LLC, US") == "GOOGLE"
        assert extract_org("MICROSOFT-CORP-MSN-AS-BLOCK, US") == "MICROSOFT"
        assert extract_org("AKAMAI-ASN1, EU") == "AKAMAI"

    def test_short_names_not_truncated(self):
        assert extract_org("PCH-AS - Packet Clearing House, US") == "PCH"

    def test_empty_name(self):
        assert extract_org("") == "UNKNOWN"
        assert extract_org(None) == "UNKNOWN"

    def test_same_org_many_ases(self):
        names = [
            "VERISIGN-AS1 - VeriSign Infrastructure",
            "VERISIGN-AS2 - VeriSign Infrastructure",
            "VERISIGN-AS7 - VeriSign Global Registry",
        ]
        orgs = {extract_org(n) for n in names}
        assert orgs == {"VERISIGN"}


class TestRegistry:
    def make(self):
        reg = AsNameRegistry()
        reg.add(16509, "AMAZON-02 - Amazon.com, Inc., US")
        reg.add(14618, "AMAZON-AES - Amazon.com, Inc., US")
        reg.add(13335, "CLOUDFLARENET - Cloudflare, Inc., US")
        return reg

    def test_name_lookup(self):
        reg = self.make()
        assert reg.name(16509).startswith("AMAZON-02")
        assert reg.name(99999) == "AS99999"
        assert reg.name(None) == "UNKNOWN"

    def test_org_lookup(self):
        reg = self.make()
        assert reg.org(16509) == "AMAZON"
        assert reg.org(13335) == "CLOUDFLARE"
        assert reg.org(99999) == "AS99999"
        assert reg.org(None) == "UNKNOWN"

    def test_asns_of_org(self):
        reg = self.make()
        assert reg.asns_of_org("AMAZON") == [14618, 16509]
        assert reg.asns_of_org("NONE") == []

    def test_len_contains(self):
        reg = self.make()
        assert len(reg) == 3
        assert 13335 in reg
        assert 1 not in reg

    def test_from_tsv(self):
        reg = AsNameRegistry.from_tsv([
            "# comment",
            "65001\tEXAMPLE-NET - Example Networks",
            "",
        ])
        assert reg.org(65001) == "EXAMPLE"
