"""Tests for the longest-prefix-match ASN database."""

import pytest

from repro.netsim.asdb import AsDatabase


@pytest.fixture()
def db():
    d = AsDatabase()
    d.add_prefix("10.0.0.0/8", 100)
    d.add_prefix("10.1.0.0/16", 200)
    d.add_prefix("10.1.2.0/24", 300)
    d.add_prefix("192.0.2.0/24", 400)
    d.add_prefix("2001:db8::/32", 500)
    return d


def test_longest_prefix_wins(db):
    assert db.lookup("10.1.2.3") == 300
    assert db.lookup("10.1.9.9") == 200
    assert db.lookup("10.9.9.9") == 100


def test_exact_slash24(db):
    assert db.lookup("192.0.2.200") == 400


def test_unrouted_returns_none(db):
    assert db.lookup("172.16.0.1") is None


def test_ipv6_lookup(db):
    assert db.lookup("2001:db8::53") == 500
    assert db.lookup("2001:dead::1") is None


def test_default_route():
    d = AsDatabase()
    d.add_prefix("0.0.0.0/0", 1)
    assert d.lookup("8.8.8.8") == 1


def test_host_route_beats_net_route():
    d = AsDatabase()
    d.add_prefix("198.51.100.0/24", 10)
    d.add_prefix("198.51.100.53/32", 20)
    assert d.lookup("198.51.100.53") == 20
    assert d.lookup("198.51.100.54") == 10


def test_overwrite_same_prefix():
    d = AsDatabase()
    d.add_prefix("203.0.113.0/24", 1)
    d.add_prefix("203.0.113.0/24", 2)
    assert d.lookup("203.0.113.1") == 2
    assert len(d) == 1


def test_len(db):
    assert len(db) == 5


def test_rejects_malformed_prefix():
    d = AsDatabase()
    with pytest.raises(ValueError):
        d.add_prefix("10.0.0.0", 1)  # missing length
    with pytest.raises(ValueError):
        d.add_prefix("10.0.0.0/33", 1)
    with pytest.raises(ValueError):
        d.add_prefix("2001:db8::/200", 1)


def test_tsv_roundtrip(db):
    lines = db.to_tsv()
    rebuilt = AsDatabase.from_tsv(lines)
    assert rebuilt.lookup("10.1.2.3") == 300
    assert rebuilt.lookup("192.0.2.5") == 400


def test_from_tsv_skips_comments():
    d = AsDatabase.from_tsv(["# comment", "", "10.0.0.0/8\t7"])
    assert d.lookup("10.1.1.1") == 7
