"""Shared test helpers: compact transaction factories."""

from repro.dnswire.constants import QTYPE, RCODE
from repro.observatory.transaction import Transaction


def make_txn(ts=0.0, resolver_ip="10.0.0.1", server_ip="192.0.2.53",
             qname="www.example.com", qtype=QTYPE.A, rcode=RCODE.NOERROR,
             answered=True, aa=False, answer_count=1, authority_ns_count=0,
             additional_count=0, answer_ttls=(300,), ns_ttls=(),
             answer_ips=("198.51.100.1",), delay_ms=20.0, observed_ttl=57,
             response_size=120, edns_do=False, has_rrsig=False,
             source="src0", tc=False, cname_targets=()):
    """Build a plausible NoError A-record transaction; override freely."""
    if not answered:
        rcode = None
    if rcode == RCODE.NXDOMAIN or (rcode == RCODE.NOERROR and answer_count == 0):
        answer_ttls = answer_ttls if answer_count else ()
        answer_ips = answer_ips if answer_count else ()
    return Transaction(
        ts=ts, resolver_ip=resolver_ip, server_ip=server_ip, qname=qname,
        qtype=qtype, rcode=rcode, answered=answered, aa=aa, tc=tc,
        edns_do=edns_do, has_rrsig=has_rrsig, delay_ms=delay_ms,
        observed_ttl=observed_ttl, response_size=response_size,
        answer_count=answer_count, authority_ns_count=authority_ns_count,
        additional_count=additional_count, answer_ttls=answer_ttls,
        ns_ttls=ns_ttls, answer_ips=answer_ips,
        cname_targets=cname_targets, source=source,
    )


def make_nodata(ts=0.0, qname="ipv4only.example.com", qtype=QTYPE.AAAA, **kw):
    """A NoData (empty NoError) response, e.g. AAAA for an IPv4-only name."""
    kw.setdefault("answer_count", 0)
    kw.setdefault("authority_ns_count", 0)
    kw.setdefault("answer_ttls", ())
    kw.setdefault("answer_ips", ())
    return make_txn(ts=ts, qname=qname, qtype=qtype, **kw)


def make_nxdomain(ts=0.0, qname="nope.example.com", **kw):
    """An NXDOMAIN response."""
    kw.setdefault("answer_count", 0)
    kw.setdefault("answer_ttls", ())
    kw.setdefault("answer_ips", ())
    return make_txn(ts=ts, qname=qname, rcode=RCODE.NXDOMAIN, **kw)
