"""Tests for the streaming log-bucketed histogram."""

import random
import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches.histogram import LogHistogram, RunningMean


class TestLogHistogram:
    def test_empty_histogram(self):
        h = LogHistogram()
        assert len(h) == 0
        assert h.mean == 0.0
        assert h.quantile(0.5) == 0.0
        assert h.quartiles() == (0.0, 0.0, 0.0)

    def test_single_value(self):
        h = LogHistogram()
        h.add(42.0)
        assert h.min == 42.0
        assert h.max == 42.0
        assert h.mean == 42.0
        assert h.quantile(0.5) == pytest.approx(42.0, rel=0.1)

    def test_mean_is_exact(self):
        h = LogHistogram()
        values = [1.0, 10.0, 100.0, 55.5]
        for v in values:
            h.add(v)
        assert h.mean == pytest.approx(sum(values) / len(values))

    def test_median_relative_error(self):
        rng = random.Random(11)
        h = LogHistogram(relative_error=0.05)
        values = [rng.uniform(1, 1000) for _ in range(5000)]
        for v in values:
            h.add(v)
        true_median = statistics.median(values)
        est = h.quantile(0.5)
        assert abs(est - true_median) / true_median < 0.12

    def test_quartiles_ordering(self):
        rng = random.Random(3)
        h = LogHistogram()
        for _ in range(1000):
            h.add(rng.expovariate(0.05))
        q25, q50, q75 = h.quartiles()
        assert q25 <= q50 <= q75

    def test_count_multiplicity(self):
        h = LogHistogram()
        h.add(5.0, count=10)
        assert len(h) == 10
        assert h.mean == pytest.approx(5.0)

    def test_merge(self):
        a, b = LogHistogram(), LogHistogram()
        for v in [1, 2, 3]:
            a.add(v)
        for v in [100, 200, 300]:
            b.add(v)
        a.merge(b)
        assert len(a) == 6
        assert a.min == 1
        assert a.max == 300
        assert a.mean == pytest.approx((1 + 2 + 3 + 100 + 200 + 300) / 6)

    def test_merge_rejects_mismatch(self):
        a = LogHistogram(relative_error=0.05)
        b = LogHistogram(relative_error=0.10)
        with pytest.raises(ValueError):
            a.merge(b)
        with pytest.raises(TypeError):
            a.merge([1, 2, 3])

    def test_clear(self):
        h = LogHistogram()
        h.add(7.0)
        h.clear()
        assert len(h) == 0
        assert h.mean == 0.0

    def test_underflow_bucket(self):
        h = LogHistogram(min_value=0.001)
        h.add(0.0)
        h.add(0.0001)
        assert len(h) == 2
        assert h.quantile(0.5) <= 0.001

    def test_rejects_negative_values(self):
        h = LogHistogram()
        with pytest.raises(ValueError):
            h.add(-1.0)

    def test_rejects_bad_quantile(self):
        h = LogHistogram()
        h.add(1.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_rejects_bad_relative_error(self):
        with pytest.raises(ValueError):
            LogHistogram(relative_error=0.0)

    def test_quantile_extremes_hit_min_max(self):
        h = LogHistogram()
        for v in [1.0, 5.0, 9.0, 120.0]:
            h.add(v)
        assert h.quantile(0.0) >= h.min
        assert h.quantile(1.0) <= h.max

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.01, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=300,
        )
    )
    def test_quantile_bounded_by_min_max(self, values):
        h = LogHistogram()
        for v in values:
            h.add(v)
        for q in (0.0, 0.25, 0.5, 0.75, 1.0):
            est = h.quantile(q)
            assert h.min <= est <= h.max

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=1.0, max_value=1e4, allow_nan=False),
            min_size=20,
            max_size=200,
        )
    )
    def test_median_property(self, values):
        h = LogHistogram(relative_error=0.05)
        for v in values:
            h.add(v)
        true_median = statistics.median(values)
        est = h.quantile(0.5)
        # Bucketed median may land one rank off; accept the bucket's
        # relative error plus a rank-neighbourhood tolerance.
        lo = min(v for v in values)
        hi = max(v for v in values)
        assert lo <= est <= hi
        if len(values) >= 50:
            assert est <= true_median * 2.0
            assert est >= true_median * 0.5


class TestRunningMean:
    def test_basic(self):
        m = RunningMean()
        m.add(2.0)
        m.add(4.0)
        assert m.mean == 3.0
        assert m.count == 2

    def test_empty_mean(self):
        assert RunningMean().mean == 0.0

    def test_weighted(self):
        m = RunningMean()
        m.add(10.0, count=3)
        m.add(0.0, count=1)
        assert m.mean == pytest.approx(7.5)

    def test_merge_and_clear(self):
        a, b = RunningMean(), RunningMean()
        a.add(1.0)
        b.add(3.0)
        a.merge(b)
        assert a.mean == 2.0
        a.clear()
        assert a.count == 0
