"""Tests for the distinct-counting Space-Saving sketch."""

import pickle
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches.distinct import DistinctSpaceSaving
from repro.sketches._hashing import hash64


def feed(sketch, pairs):
    for key, value in pairs:
        sketch.offer(key, hash64(value))
    return sketch


class TestDistinctSpaceSaving:
    def test_ranks_by_distinct_not_volume(self):
        sketch = DistinctSpaceSaving(capacity=16)
        # "loud" repeats one subdomain 1000x; "wide" sees 50 distinct
        feed(sketch, [("loud", "only-one")] * 1000)
        feed(sketch, [("wide", "sub-%d" % i) for i in range(50)])
        top = sketch.top(2)
        assert top[0][0] == "wide"
        assert top[0][1] == pytest.approx(50, abs=3)
        assert top[1] == ("loud", 1)

    def test_exact_while_capacity_unbound(self):
        sketch = DistinctSpaceSaving(capacity=64)
        for k in range(10):
            feed(sketch, [("key%d" % k, "v%d" % v) for v in range(k + 1)])
        assert sketch.evictions == 0
        for k in range(10):
            assert sketch.estimate("key%d" % k) == k + 1

    def test_eviction_inherits_base(self):
        sketch = DistinctSpaceSaving(capacity=2)
        feed(sketch, [("a", "v%d" % i) for i in range(10)])
        feed(sketch, [("b", "v%d" % i) for i in range(20)])
        before = sketch.estimate("a")
        sketch.offer("c", hash64("first"))
        assert sketch.evictions == 1
        assert "a" not in sketch
        # the newcomer carries the victim's estimate as its error base
        assert sketch.estimate("c") >= before
        assert len(sketch) == 2

    def test_estimate_never_underestimates_after_eviction(self):
        rng = random.Random(5)
        sketch = DistinctSpaceSaving(capacity=8)
        truth = {}
        for _ in range(2000):
            key = "k%d" % rng.randrange(24)
            value = "v%d" % rng.randrange(500)
            truth.setdefault(key, set()).add(value)
            sketch.offer(key, hash64(value))
        for key, estimate in sketch.top():
            # Space-Saving overestimates; HLL adds ~2% noise at p=11.
            assert estimate >= len(truth[key]) * 0.9

    def test_merge_parameter_mismatch_rejected(self):
        with pytest.raises(ValueError):
            DistinctSpaceSaving(capacity=4).merge(
                DistinctSpaceSaving(capacity=8))
        with pytest.raises(TypeError):
            DistinctSpaceSaving().merge(object())

    def test_pickle_roundtrip_protocol5(self):
        sketch = feed(DistinctSpaceSaving(capacity=8),
                      [("k%d" % (i % 5), "v%d" % i) for i in range(100)])
        clone = pickle.loads(pickle.dumps(sketch, protocol=5))
        assert clone.top() == sketch.top()
        assert clone.evictions == sketch.evictions
        assert (clone.capacity, clone.precision, clone.seed) == \
            (sketch.capacity, sketch.precision, sketch.seed)
        # the clone keeps working
        clone.offer("k0", hash64("new-value"))

    def test_buffer_roundtrip_identical(self):
        sketch = feed(DistinctSpaceSaving(capacity=4),
                      [("k%d" % (i % 6), "v%d" % i) for i in range(200)])
        meta, buffers = sketch.to_buffers()
        clone = DistinctSpaceSaving.from_buffers(meta, buffers)
        assert clone.to_buffers() == (meta, buffers)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 400)),
                    max_size=300),
           st.integers(0, 2**32 - 1))
    def test_split_merge_matches_single_pass(self, pairs, salt):
        """Splitting a stream by hash and merging equals one pass --
        exactly, while capacity does not bind (no evictions)."""
        whole = DistinctSpaceSaving(capacity=64)
        parts = [DistinctSpaceSaving(capacity=64) for _ in range(2)]
        for key_id, value_id in pairs:
            key, value = "key%d" % key_id, "value%d" % value_id
            shard = hash64("%d|%s|%s" % (salt, key, value)) % 2
            whole.offer(key, hash64(value))
            parts[shard].offer(key, hash64(value))
        merged = parts[0].merge(parts[1])
        assert merged.top() == whole.top()
        # byte-identical serialized state, not just equal estimates
        assert merged.to_buffers() == whole.to_buffers()

    def test_merge_is_order_insensitive(self):
        streams = [[("k%d" % ((i * j) % 7), "v%d" % (i + 97 * j))
                    for i in range(120)] for j in range(3)]
        forward = DistinctSpaceSaving(capacity=32)
        backward = DistinctSpaceSaving(capacity=32)
        for stream in streams:
            forward.merge(feed(DistinctSpaceSaving(capacity=32), stream))
        for stream in reversed(streams):
            backward.merge(feed(DistinctSpaceSaving(capacity=32), stream))
        assert forward.to_buffers() == backward.to_buffers()

    def test_merge_truncates_to_capacity(self):
        left = feed(DistinctSpaceSaving(capacity=4),
                    [("l%d" % k, "v%d" % v)
                     for k in range(4) for v in range(k + 1)])
        right = feed(DistinctSpaceSaving(capacity=4),
                     [("r%d" % k, "v%d" % v)
                      for k in range(4) for v in range(k + 10)])
        left.merge(right)
        assert len(left) == 4
        # the survivors are the four largest distinct counts (r-keys)
        assert [key for key, _ in left.top()] == \
            ["r3", "r2", "r1", "r0"]
        assert left.evictions == 4
