"""Tests for the Bloom filter eviction gate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches.bloom import BloomFilter, RotatingBloomFilter


class TestBloomFilter:
    def test_no_false_negatives(self):
        bf = BloomFilter(capacity=1000, error_rate=0.01)
        keys = ["key-%d" % i for i in range(500)]
        for key in keys:
            bf.add(key)
        for key in keys:
            assert key in bf

    def test_add_reports_prior_presence(self):
        bf = BloomFilter(capacity=100)
        assert bf.add("x") is False
        assert bf.add("x") is True

    def test_false_positive_rate_near_target(self):
        bf = BloomFilter(capacity=2000, error_rate=0.01, seed=3)
        for i in range(2000):
            bf.add("member-%d" % i)
        fp = sum(1 for i in range(10000) if ("other-%d" % i) in bf)
        # Allow generous slack over the 1% design point.
        assert fp / 10000 < 0.05

    def test_clear(self):
        bf = BloomFilter(capacity=100)
        bf.add("x")
        bf.clear()
        assert "x" not in bf
        assert len(bf) == 0

    def test_fill_ratio_monotone(self):
        bf = BloomFilter(capacity=100)
        assert bf.fill_ratio() == 0.0
        bf.add("a")
        r1 = bf.fill_ratio()
        bf.add("b")
        assert bf.fill_ratio() >= r1

    def test_approximate_fpr_increases_with_load(self):
        bf = BloomFilter(capacity=50, seed=1)
        empty_fpr = bf.approximate_fpr()
        for i in range(50):
            bf.add("k%d" % i)
        assert bf.approximate_fpr() > empty_fpr

    def test_seeds_give_independent_filters(self):
        a = BloomFilter(capacity=100, seed=0)
        b = BloomFilter(capacity=100, seed=9)
        a.add("hello")
        # The exact positions must differ for at least some keys.
        assert a._positions("hello") != b._positions("hello")

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            BloomFilter(capacity=0)
        with pytest.raises(ValueError):
            BloomFilter(capacity=10, error_rate=1.5)

    @settings(max_examples=30, deadline=None)
    @given(st.sets(st.text(min_size=1), min_size=1, max_size=50))
    def test_membership_property(self, keys):
        bf = BloomFilter(capacity=500)
        for key in keys:
            bf.add(key)
        assert all(key in bf for key in keys)


class TestRotatingBloomFilter:
    def test_remembers_across_one_rotation(self):
        rb = RotatingBloomFilter(capacity=100, rotate_interval=60.0)
        rb.add("x", now=0.0)
        rb.maybe_rotate(now=100.0)
        assert "x" in rb

    def test_forgets_after_two_rotations(self):
        rb = RotatingBloomFilter(capacity=100, rotate_interval=60.0)
        rb.add("x", now=0.0)
        rb.maybe_rotate(now=100.0)
        rb.maybe_rotate(now=200.0)
        assert "x" not in rb
        assert rb.rotations == 2

    def test_no_rotation_before_interval(self):
        rb = RotatingBloomFilter(capacity=100, rotate_interval=60.0)
        rb.add("x", now=0.0)
        assert rb.maybe_rotate(now=30.0) is False
        assert rb.rotations == 0

    def test_add_returns_seen_status(self):
        rb = RotatingBloomFilter(capacity=100, rotate_interval=1e9)
        assert rb.add("y", now=0.0) is False
        assert rb.add("y", now=1.0) is True

    def test_add_survives_rotation_window(self):
        rb = RotatingBloomFilter(capacity=100, rotate_interval=10.0)
        rb.add("z", now=0.0)
        # One rotation later the key is in the "previous" filter and
        # still counts as seen.
        assert rb.add("z", now=15.0) is True


class TestBloomMerge:
    def test_or_merge_equals_union_stream(self):
        """Split adds OR-merge into byte-identical bits to one filter
        over the union stream."""
        whole = BloomFilter(capacity=500, seed=7)
        parts = [BloomFilter(capacity=500, seed=7) for _ in range(2)]
        for i in range(400):
            key = "key-%d" % i
            whole.add(key)
            parts[i % 2].add(key)
        parts[0].merge(parts[1])
        assert parts[0]._bits == whole._bits
        assert parts[0]._bits_set == whole._bits_set
        assert len(parts[0]) == len(whole)
        assert parts[0].fill_ratio() == whole.fill_ratio()

    def test_merge_parameter_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BloomFilter(capacity=100).merge(BloomFilter(capacity=200))
        with pytest.raises(ValueError):
            BloomFilter(capacity=100, seed=1).merge(
                BloomFilter(capacity=100, seed=2))
        with pytest.raises(TypeError):
            BloomFilter(capacity=100).merge(object())

    def test_rotating_merge_in_lockstep(self):
        """Rotating filters that rotated in lockstep merge pairwise
        into the single-observer filter, bit for bit."""
        whole = RotatingBloomFilter(capacity=500, rotate_interval=1e9)
        parts = [RotatingBloomFilter(capacity=500, rotate_interval=1e9)
                 for _ in range(2)]
        for generation in range(3):
            for i in range(100):
                key = "g%d-key-%d" % (generation, i)
                whole.add(key)
                parts[i % 2].add(key)
            for rb in [whole] + parts:
                rb._rotate(None)
        parts[0].merge(parts[1])
        assert parts[0]._active._bits == whole._active._bits
        assert parts[0]._previous._bits == whole._previous._bits
        assert parts[0].rotations == whole.rotations

    def test_rotating_merge_with_odd_parity(self):
        """A merge across an odd rotation-count difference crosses
        active over previous (the underlying seeds are swapped), so
        membership is preserved instead of landing in the wrong
        generation."""
        left = RotatingBloomFilter(capacity=500, rotate_interval=1e9)
        right = RotatingBloomFilter(capacity=500, rotate_interval=1e9)
        right._rotate(None)  # parity now differs
        left.add("in-left-active")
        right.add("in-right-active")
        left.merge(right)
        assert "in-left-active" in left._active
        # the right's active filter was built with the swapped seed,
        # so it must land in left's previous (same-seed) generation
        assert "in-right-active" in left._previous
        assert "in-right-active" in left


class TestOverflowRotation:
    """Regression: a key surge (PRSD attack, botnet ramp-up) within one
    rotate_interval used to saturate both filters -- once the fill
    ratio neared 1.0 every unknown key read as "seen before" and the
    eviction gate silently stopped gating."""

    def test_surge_triggers_overflow_rotation(self):
        rb = RotatingBloomFilter(capacity=200, rotate_interval=1e9)
        for i in range(1000):
            rb.add("surge-%d" % i, now=0.0)
        assert rb.overflow_rotations >= 4
        assert rb.rotations == rb.overflow_rotations  # none time-based
        # The active filter never accumulates more than capacity inserts.
        assert len(rb._active) < rb.capacity

    def test_gate_keeps_gating_under_surge(self):
        rb = RotatingBloomFilter(capacity=500, rotate_interval=1e9,
                                 error_rate=0.01, seed=7)
        for i in range(20_000):
            rb.add("surge-%d" % i, now=float(i))
        # Bounded memory: the estimated FPR stays far from saturation.
        assert rb.approximate_fpr() < 0.5
        seen = sum(1 for i in range(1000)
                   if rb.add("fresh-%d" % i, now=1e6))
        assert seen / 1000 < 0.5

    def test_saturation_signals_exposed(self):
        rb = RotatingBloomFilter(capacity=100, rotate_interval=60.0)
        assert rb.fill_ratio() == 0.0
        assert rb.approximate_fpr() == 0.0
        for i in range(50):
            rb.add("k%d" % i, now=0.0)
        assert 0.0 < rb.fill_ratio() < 1.0
        assert 0.0 < rb.approximate_fpr() < 1.0
