"""Tests for the Space-Saving top-k tracker (paper Section 2.2)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches.bloom import RotatingBloomFilter
from repro.sketches.spacesaving import SpaceSaving


def test_tracks_within_capacity():
    ss = SpaceSaving(capacity=4)
    for key in ["a", "b", "c"]:
        ss.offer(key, now=0.0)
    assert len(ss) == 3
    assert "a" in ss and "b" in ss and "c" in ss


def test_capacity_is_enforced():
    ss = SpaceSaving(capacity=3)
    for i in range(100):
        ss.offer("key-%d" % i, now=float(i))
    assert len(ss) == 3


def test_eviction_picks_least_frequent():
    ss = SpaceSaving(capacity=2)
    for _ in range(10):
        ss.offer("heavy", now=0.0)
    ss.offer("light", now=0.0)
    ss.offer("new", now=0.0)
    assert "heavy" in ss
    assert "light" not in ss
    assert "new" in ss


def test_new_entry_inherits_evicted_weight():
    ss = SpaceSaving(capacity=1)
    for _ in range(5):
        ss.offer("old", now=0.0)
    entry = ss.offer("new", now=0.0)
    # Classic Space-Saving: estimate = victim estimate + own observation.
    assert entry.error > 0
    assert entry.weight > entry.error
    assert ss.guaranteed_rate(entry, now=0.0) < ss.rate(entry, now=0.0)


def test_state_resets_on_eviction():
    ss = SpaceSaving(capacity=1)
    entry = ss.offer("old", now=0.0)
    entry.state = {"stats": 123}
    new_entry = ss.offer("new", now=0.0)
    assert new_entry.state is None
    assert new_entry.hits == 1


def test_rates_decay_over_time():
    ss = SpaceSaving(capacity=4, tau=10.0)
    entry = ss.offer("a", now=0.0)
    early = ss.rate(entry, now=0.0)
    late = ss.rate(entry, now=100.0)
    assert late < early


def test_constant_rate_stream_estimate():
    # Offer one key at exactly 5 events/second for a long time; the
    # decayed estimate should settle near 5.
    ss = SpaceSaving(capacity=4, tau=20.0)
    t = 0.0
    for i in range(2000):
        t = i * 0.2
        ss.offer("steady", now=t)
    rate = ss.rate("steady", now=t)
    assert 4.0 < rate < 6.0


def test_top_orders_by_frequency():
    ss = SpaceSaving(capacity=8)
    freq = {"a": 50, "b": 30, "c": 10, "d": 1}
    seq = [k for k, n in freq.items() for _ in range(n)]
    random.Random(7).shuffle(seq)
    for i, key in enumerate(seq):
        ss.offer(key, now=i * 0.001)
    top = [e.key for e in ss.top(3)]
    assert top == ["a", "b", "c"]


def test_heavy_hitters_survive_heavy_tail():
    # Zipf-ish stream: heavy keys must stay in a small cache despite a
    # large churn of one-off keys (the Space-Saving guarantee).
    rng = random.Random(42)
    ss = SpaceSaving(capacity=50)
    heavy = ["hh-%d" % i for i in range(10)]
    t = 0.0
    for i in range(20000):
        t = i * 0.01
        if rng.random() < 0.6:
            ss.offer(rng.choice(heavy), now=t)
        else:
            ss.offer("tail-%d" % rng.randrange(100000), now=t)
    tracked = {e.key for e in ss.top(20)}
    assert set(heavy) <= tracked


def test_renormalization_preserves_order():
    # Run long enough in virtual time to force renormalization.
    ss = SpaceSaving(capacity=4, tau=1.0)
    ss.offer("a", now=0.0)
    ss.offer("a", now=0.0)
    ss.offer("b", now=0.0)
    # tau=1.0 and max_exponent=200 => renormalize after ~200 s.
    for i in range(10):
        ss.offer("b", now=500.0 + i)
        ss.offer("b", now=500.0 + i)
        ss.offer("a", now=500.0 + i)
    assert ss.top(1)[0].key == "b"
    assert ss.decay.landmark > 0.0


def test_bloom_gate_blocks_first_sighting():
    gate = RotatingBloomFilter(capacity=1000, rotate_interval=1e9)
    ss = SpaceSaving(capacity=2, gate=gate)
    ss.offer("a", now=0.0)
    ss.offer("b", now=0.0)
    # Cache is full now; first sighting of "c" must be gated out...
    assert ss.offer("c", now=0.0) is None
    assert ss.gated == 1
    assert "c" not in ss
    # ...but the second sighting passes the gate and evicts.
    assert ss.offer("c", now=0.0) is not None
    assert "c" in ss


def test_gate_not_consulted_below_capacity():
    gate = RotatingBloomFilter(capacity=1000)
    ss = SpaceSaving(capacity=8, gate=gate)
    entry = ss.offer("first", now=0.0)
    assert entry is not None
    assert ss.gated == 0


def test_capture_ratio_accounting():
    ss = SpaceSaving(capacity=2)
    for _ in range(8):
        ss.offer("a", now=0.0)
    for i in range(4):
        ss.offer("one-off-%d" % i, now=0.0)
    assert ss.offered == 12
    # 7 repeat hits on "a" out of 12 offers.
    assert ss.tracked_hits == 7
    assert ss.capture_ratio() == pytest.approx(7 / 12)


def test_hits_are_exact_since_insertion():
    ss = SpaceSaving(capacity=4)
    for _ in range(9):
        ss.offer("a", now=0.0)
    assert ss.get("a").hits == 9


def test_rate_of_unknown_key_is_zero():
    ss = SpaceSaving(capacity=4)
    assert ss.rate("missing", now=0.0) == 0.0


def test_rejects_bad_capacity():
    with pytest.raises(ValueError):
        SpaceSaving(capacity=0)


def test_iteration_yields_live_entries():
    ss = SpaceSaving(capacity=4)
    for key in "abc":
        ss.offer(key, now=0.0)
    assert {e.key for e in ss} == {"a", "b", "c"}


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=400))
def test_space_saving_error_bound(stream):
    """Property: with capacity k, any key with true count > N/k is tracked,
    and estimates never underestimate the true count (undecayed case)."""
    k = 8
    ss = SpaceSaving(capacity=k, tau=1e12)  # effectively no decay
    true = {}
    for i, x in enumerate(stream):
        key = "k%d" % x
        true[key] = true.get(key, 0) + 1
        ss.offer(key, now=0.0)
    n = len(stream)
    for key, count in true.items():
        entry = ss.get(key)
        if count > n / k:
            assert entry is not None, "frequent key evicted"
        if entry is not None:
            # weight at fixed now=0 equals estimated count (g(0)=1).
            assert entry.weight >= count - 1e-6
            assert entry.weight - entry.error <= count + 1e-6


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 20), st.floats(0, 1000, allow_nan=False)),
        min_size=1,
        max_size=200,
    )
)
def test_space_saving_never_crashes_with_time(stream):
    """Robustness: arbitrary key/time interleavings keep invariants."""
    ss = SpaceSaving(capacity=4, tau=5.0)
    stream = sorted(stream, key=lambda kv: kv[1])
    for x, t in stream:
        ss.offer("k%d" % x, now=t)
        assert len(ss) <= 4
    for entry in ss:
        assert entry.weight >= 0.0
        assert entry.error >= 0.0
