"""Tests for the bounded top-values tracker (top-3 TTL feature)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches.topvalues import TopValues


def test_exact_when_under_capacity():
    tv = TopValues(max_values=8)
    for ttl in [300, 300, 300, 60, 60, 86400]:
        tv.add(ttl)
    assert tv.top(3) == [(300, 3), (60, 2), (86400, 1)]
    assert tv.top_value() == 300


def test_empty_tracker():
    tv = TopValues()
    assert tv.top() == []
    assert tv.top_value() is None
    assert tv.distribution() == {}
    assert tv.distinct_pressure() == 0.0


def test_capacity_bound():
    tv = TopValues(max_values=4)
    for i in range(100):
        tv.add(i)
    assert len(tv) == 4
    assert tv.total == 100


def test_heavy_value_survives_churn():
    rng = random.Random(5)
    tv = TopValues(max_values=8)
    for i in range(5000):
        if rng.random() < 0.5:
            tv.add(3600)
        else:
            tv.add(rng.randrange(1_000_000))
    assert tv.top_value() == 3600


def test_distinct_pressure_detects_dynamic_ttls():
    # Well-behaved object: few distinct TTLs, no recycling.
    good = TopValues(max_values=8)
    for _ in range(1000):
        good.add(300)
    assert good.distinct_pressure() == 0.0
    # Non-conforming object (Table 4): fresh TTL per response.
    bad = TopValues(max_values=8)
    for i in range(1000):
        bad.add(i)
    assert bad.distinct_pressure() > 0.9


def test_distribution_sums_to_at_most_one():
    tv = TopValues(max_values=4)
    for i in range(50):
        tv.add(i % 10)
    dist = tv.distribution()
    assert 0.0 < sum(dist.values()) <= 1.0 + 1e-9


def test_count_multiplicity():
    tv = TopValues()
    tv.add(60, count=7)
    assert tv.top(1) == [(60, 7)]
    assert tv.total == 7


def test_merge_preserves_totals():
    a, b = TopValues(max_values=8), TopValues(max_values=8)
    for _ in range(10):
        a.add(300)
    for _ in range(5):
        b.add(60)
    a.merge(b)
    assert a.total == 15
    assert a.top(2) == [(300, 10), (60, 5)]


def test_merge_rejects_wrong_type():
    with pytest.raises(TypeError):
        TopValues().merge({})


def test_clear():
    tv = TopValues()
    tv.add(1)
    tv.clear()
    assert tv.total == 0
    assert len(tv) == 0


def test_rejects_bad_capacity():
    with pytest.raises(ValueError):
        TopValues(max_values=0)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 5), min_size=1, max_size=300))
def test_exact_counts_with_small_universe(stream):
    """With universe <= capacity, the tracker is an exact counter."""
    tv = TopValues(max_values=6)
    true = {}
    for v in stream:
        tv.add(v)
        true[v] = true.get(v, 0) + 1
    assert tv.total == len(stream)
    assert dict(tv.top(6)) == true


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 1000), min_size=1, max_size=300))
def test_estimates_never_underestimate(stream):
    """Space-Saving property: tracked estimate >= true count."""
    tv = TopValues(max_values=4)
    true = {}
    for v in stream:
        tv.add(v)
        true[v] = true.get(v, 0) + 1
    for value, est in tv.top(4):
        assert est >= true[value]
