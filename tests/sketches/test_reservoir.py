"""Tests for reservoir sampling."""

import pytest

from repro.sketches.reservoir import ReservoirSample


def test_keeps_all_when_under_size():
    rs = ReservoirSample(size=10, seed=1)
    for i in range(5):
        rs.add(i)
    assert sorted(rs.items()) == [0, 1, 2, 3, 4]
    assert len(rs) == 5


def test_size_bound():
    rs = ReservoirSample(size=10, seed=1)
    for i in range(1000):
        rs.add(i)
    assert len(rs) == 10
    assert rs.count == 1000


def test_deterministic_given_seed():
    a = ReservoirSample(size=5, seed=42)
    b = ReservoirSample(size=5, seed=42)
    for i in range(100):
        a.add(i)
        b.add(i)
    assert a.items() == b.items()


def test_roughly_uniform():
    # Each of 100 items should be selected ~ size/n of the time.
    hits = [0] * 100
    for seed in range(300):
        rs = ReservoirSample(size=10, seed=seed)
        for i in range(100):
            rs.add(i)
        for item in rs:
            hits[item] += 1
    expected = 300 * 10 / 100
    assert all(expected * 0.3 < h < expected * 2.5 for h in hits)


def test_rejects_bad_size():
    with pytest.raises(ValueError):
        ReservoirSample(size=0)


def test_iterable():
    rs = ReservoirSample(size=3, seed=0)
    rs.add("x")
    assert list(rs) == ["x"]
