"""Mergeability tests for the sketch layer.

The sharded ingest engine (:mod:`repro.observatory.sharded`) splits
one stream across workers and recombines their summaries, so every
sketch must satisfy the mergeable-summaries contract (Agarwal et al.,
PODS 2012): ``merge(A, B)`` over a split stream agrees with a
single-pass sketch over the concatenated stream -- exactly for the
counter-style sketches, within documented error bounds for the
approximate ones.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches.ewma import ForwardDecay
from repro.sketches.histogram import LogHistogram, RunningMean
from repro.sketches.hyperloglog import HyperLogLog
from repro.sketches.reservoir import ReservoirSample
from repro.sketches.spacesaving import SpaceSaving
from repro.sketches.topvalues import TopValues

# A stream of (value, side) pairs: *side* says which of the two
# sketches the value is fed to before merging.
split_streams = st.lists(
    st.tuples(st.integers(0, 25), st.booleans()),
    min_size=1, max_size=300,
)


def _split(stream):
    left = [v for v, side in stream if side]
    right = [v for v, side in stream if not side]
    return left, right


# -- ForwardDecay -------------------------------------------------------

def test_rebase_preserves_rates():
    decay = ForwardDecay(tau=30.0)
    weight = decay.weight(100.0) + decay.weight(130.0)
    before = decay.rate(weight, 200.0)
    factor = decay.rebase(150.0)
    assert decay.landmark == 150.0
    after = decay.rate(weight * factor, 200.0)
    assert after == pytest.approx(before, rel=1e-12)


def test_rebase_makes_landmarks_comparable():
    a = ForwardDecay(tau=10.0)
    b = ForwardDecay(tau=10.0)
    b.rebase(50.0)  # b accumulates under a later landmark
    wa = a.weight(60.0)
    wb = b.weight(60.0)
    # Same observation time must yield the same rate from either side.
    assert a.rate(wa, 60.0) == pytest.approx(b.rate(wb, 60.0), rel=1e-12)


# -- LogHistogram / RunningMean (exact merges) --------------------------

@settings(max_examples=50, deadline=None)
@given(split_streams)
def test_histogram_merge_matches_single_pass(stream):
    left, right = _split(stream)
    a, b, whole = LogHistogram(), LogHistogram(), LogHistogram()
    for v in left:
        a.add(v)
    for v in right:
        b.add(v)
    for v, _ in stream:
        whole.add(v)
    a.merge(b)
    assert a.buckets() == whole.buckets()
    assert a.count == whole.count
    for q in (0.25, 0.5, 0.75):
        assert a.quantile(q) == whole.quantile(q)


@settings(max_examples=50, deadline=None)
@given(split_streams)
def test_running_mean_merge_matches_single_pass(stream):
    left, right = _split(stream)
    a, b, whole = RunningMean(), RunningMean(), RunningMean()
    for v in left:
        a.add(v)
    for v in right:
        b.add(v)
    for v, _ in stream:
        whole.add(v)
    a.merge(b)
    assert a.count == whole.count
    assert a.mean == pytest.approx(whole.mean, rel=1e-9, abs=1e-12)


# -- TopValues ----------------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(split_streams)
def test_topvalues_merge_exact_below_capacity(stream):
    """With capacity above the distinct-value count, counters never
    recycle and the merge is exactly the concatenated distribution."""
    left, right = _split(stream)
    a, b, whole = TopValues(64), TopValues(64), TopValues(64)
    for v in left:
        a.add(v)
    for v in right:
        b.add(v)
    for v, _ in stream:
        whole.add(v)
    a.merge(b)
    assert a.total == whole.total
    assert dict(a.distribution()) == dict(whole.distribution())


def test_topvalues_merge_preserves_total_mass_when_full():
    a, b = TopValues(4), TopValues(4)
    for v in range(10):
        a.add(v, count=v + 1)
        b.add(v + 5, count=v + 1)
    total = a.total + b.total
    a.merge(b)
    assert a.total == total
    assert len(a.distribution()) <= a.max_values


# -- HyperLogLog --------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(split_streams)
def test_hll_merge_registers_match_single_pass(stream):
    """Register-max merge is byte-identical to a single-pass sketch,
    so merged cardinalities carry no extra error at all."""
    left, right = _split(stream)
    a, b, whole = (HyperLogLog(precision=8) for _ in range(3))
    for v in left:
        a.add("key-%d" % v)
    for v in right:
        b.add("key-%d" % v)
    for v, _ in stream:
        whole.add("key-%d" % v)
    a.merge(b)
    assert a.to_bytes() == whole.to_bytes()
    assert a.cardinality() == whole.cardinality()


def test_hll_merge_rejects_mismatched_precision():
    with pytest.raises(ValueError):
        HyperLogLog(precision=8).merge(HyperLogLog(precision=10))


# -- SpaceSaving --------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(split_streams)
def test_spacesaving_merge_exact_when_uncapped(stream):
    """With enough capacity there are no evictions, and the undecayed
    merged weights equal the true concatenated counts exactly."""
    left, right = _split(stream)
    kw = dict(capacity=64, tau=1e12)  # effectively no decay
    a, b = SpaceSaving(**kw), SpaceSaving(**kw)
    for v in left:
        a.offer("k%d" % v, now=0.0)
    for v in right:
        b.offer("k%d" % v, now=0.0)
    true = {}
    for v, _ in stream:
        true["k%d" % v] = true.get("k%d" % v, 0) + 1
    a.merge(b)
    assert len(a) == len(true)
    for key, count in true.items():
        entry = a.get(key)
        assert entry.weight == pytest.approx(count, rel=1e-9)
        assert entry.error == pytest.approx(0.0, abs=1e-9)
        assert entry.hits == count


@settings(max_examples=30, deadline=None)
@given(split_streams)
def test_spacesaving_merge_error_bound(stream):
    """Small caches: the merged estimate still brackets the true count
    (estimate >= true >= estimate - error) for every tracked key, and
    any key heavier than N/k survives the merge."""
    left, right = _split(stream)
    k = 6
    a = SpaceSaving(capacity=k, tau=1e12)
    b = SpaceSaving(capacity=k, tau=1e12)
    for v in left:
        a.offer("k%d" % v, now=0.0)
    for v in right:
        b.offer("k%d" % v, now=0.0)
    true = {}
    for v, _ in stream:
        true["k%d" % v] = true.get("k%d" % v, 0) + 1
    a.merge(b)
    assert len(a) <= k
    n = len(stream)
    for key, count in true.items():
        entry = a.get(key)
        if count > n / k:
            assert entry is not None, "merged cache lost a heavy key"
        if entry is not None:
            assert entry.weight >= count - 1e-6
            assert entry.weight - entry.error <= count + 1e-6


def test_spacesaving_merge_rebases_landmarks():
    """Caches whose decay landmarks drifted apart (e.g. one shard
    renormalized) still merge into rates matching a single cache."""
    tau = 5.0
    a = SpaceSaving(capacity=8, tau=tau)
    b = SpaceSaving(capacity=8, tau=tau)
    whole = SpaceSaving(capacity=8, tau=tau)
    # Force b's landmark far ahead via renormalization.
    for t in (0.0, 2.0, 5000.0):
        b.offer("x", now=t)
        whole.offer("x", now=t)
    for t in (1.0, 3.0, 4999.0):
        a.offer("y", now=t)
        whole.offer("y", now=t)
    assert a.decay.landmark != b.decay.landmark
    a.merge(b)
    for key in ("x", "y"):
        assert a.rate(key, now=5000.0) == \
            pytest.approx(whole.rate(key, now=5000.0), rel=1e-9)


def test_spacesaving_merge_sums_accounting():
    a = SpaceSaving(capacity=4)
    b = SpaceSaving(capacity=4)
    for _ in range(5):
        a.offer("a", now=0.0)
    for _ in range(3):
        b.offer("b", now=0.0)
    a.merge(b)
    assert a.offered == 8
    assert a.tracked_hits == 4 + 2


def test_spacesaving_merge_rejects_mismatched_tau():
    with pytest.raises(ValueError):
        SpaceSaving(capacity=4, tau=10.0).merge(
            SpaceSaving(capacity=4, tau=20.0))


def test_spacesaving_merge_rejects_non_cache():
    with pytest.raises(TypeError):
        SpaceSaving(capacity=4).merge(object())


# -- ReservoirSample ----------------------------------------------------

def test_reservoir_merge_counts_and_membership():
    a = ReservoirSample(8, seed=1)
    b = ReservoirSample(8, seed=2)
    for i in range(30):
        a.add(("a", i))
    for i in range(50):
        b.add(("b", i))
    a.merge(b)
    assert a.count == 80
    assert len(a.items()) == 8
    universe = {("a", i) for i in range(30)} | {("b", i) for i in range(50)}
    assert set(a.items()) <= universe


def test_reservoir_merge_empty_sides():
    a = ReservoirSample(4, seed=0)
    b = ReservoirSample(4, seed=0)
    a.merge(b)
    assert a.count == 0 and a.items() == []
    for i in range(10):
        b.add(i)
    a.merge(b)
    assert a.count == 10
    assert sorted(a.items()) == sorted(b.items()) or len(a.items()) == 4


def test_reservoir_merge_draws_proportionally():
    """Statistical check: merging a 90/10 mass split yields roughly
    90/10 representation in the merged sample (fixed seeds)."""
    from_a = 0
    trials = 300
    for seed in range(trials):
        a = ReservoirSample(10, seed=seed)
        b = ReservoirSample(10, seed=seed + 10_000)
        for i in range(900):
            a.add("a")
        for i in range(100):
            b.add("b")
        a.merge(b)
        from_a += sum(1 for item in a.items() if item == "a")
    share = from_a / (trials * 10)
    assert 0.85 < share < 0.95
