"""Tests for the seeded hashing helpers."""

from hypothesis import given
from hypothesis import strategies as st

from repro.sketches._hashing import hash64, hash_pair, mix64


def test_hash64_deterministic():
    assert hash64("example.com") == hash64("example.com")
    assert hash64(b"example.com") == hash64("example.com")


def test_hash64_seed_independence():
    h0 = hash64("example.com", seed=0)
    h1 = hash64("example.com", seed=1)
    assert h0 != h1


def test_hash64_distinct_keys():
    values = {hash64("key-%d" % i) for i in range(1000)}
    assert len(values) == 1000


def test_hash64_range():
    for i in range(100):
        assert 0 <= hash64("k%d" % i) < 2**64


def test_hash_pair_second_is_odd():
    for i in range(50):
        _, h2 = hash_pair("k%d" % i)
        assert h2 % 2 == 1


def test_hash_pair_components_differ():
    h1, h2 = hash_pair("example.com")
    assert h1 != h2


def test_mix64_range_and_determinism():
    assert mix64(0) == mix64(0)
    for i in range(100):
        assert 0 <= mix64(i) < 2**64


def test_mix64_avalanche():
    # Nearby inputs should map to very different outputs.
    outputs = {mix64(i) for i in range(256)}
    assert len(outputs) == 256


@given(st.text())
def test_hash64_handles_arbitrary_text(s):
    assert 0 <= hash64(s) < 2**64


@given(st.binary())
def test_hash64_handles_arbitrary_bytes(b):
    assert hash64(b) == hash64(b)
