"""Tests for the Count-Min Sketch and CMS-based top-k."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches.countmin import CmsTopK, CountMinSketch


class TestCountMinSketch:
    def test_never_underestimates(self):
        cms = CountMinSketch(width=256, depth=4)
        true = {}
        rng = random.Random(1)
        for _ in range(2000):
            key = "k%d" % rng.randrange(100)
            cms.add(key)
            true[key] = true.get(key, 0) + 1
        for key, count in true.items():
            assert cms.estimate(key) >= count

    def test_overestimate_within_bound(self):
        cms = CountMinSketch(width=1024, depth=5, seed=3)
        rng = random.Random(2)
        true = {}
        for _ in range(5000):
            key = "k%d" % rng.randrange(500)
            cms.add(key)
            true[key] = true.get(key, 0) + 1
        violations = sum(
            1 for key, count in true.items()
            if cms.estimate(key) - count > cms.error_bound())
        # The bound holds with probability 1 - (1/e)^depth per query.
        assert violations < 0.05 * len(true)

    def test_unseen_key_estimate_small(self):
        cms = CountMinSketch(width=2048, depth=4)
        for i in range(100):
            cms.add("seen-%d" % i)
        assert cms.estimate("never-seen") <= cms.error_bound() + 1

    def test_add_with_count(self):
        cms = CountMinSketch()
        cms.add("x", count=10)
        assert cms.estimate("x") >= 10
        assert cms.total == 10

    def test_clear(self):
        cms = CountMinSketch(width=64, depth=2)
        cms.add("x", 5)
        cms.clear()
        assert cms.estimate("x") == 0
        assert cms.total == 0

    def test_memory_counters(self):
        assert CountMinSketch(width=100, depth=3).memory_counters() == 300

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            CountMinSketch(width=0)
        with pytest.raises(ValueError):
            CountMinSketch(depth=0)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 20), min_size=1, max_size=200))
    def test_monotone_property(self, stream):
        """Estimates only grow, and always dominate the true count."""
        cms = CountMinSketch(width=128, depth=3)
        true = {}
        for x in stream:
            key = "k%d" % x
            true[key] = true.get(key, 0) + 1
            cms.add(key)
            assert cms.estimate(key) >= true[key]


class TestCmsTopK:
    def test_tracks_heavy_hitters(self):
        topk = CmsTopK(capacity=10, width=4096, depth=4)
        rng = random.Random(7)
        for _ in range(5000):
            if rng.random() < 0.6:
                topk.offer("heavy-%d" % rng.randrange(5))
            else:
                topk.offer("tail-%d" % rng.randrange(5000))
        top_keys = {k for k, _ in topk.top(5)}
        assert {"heavy-%d" % i for i in range(5)} <= top_keys

    def test_capacity_respected(self):
        topk = CmsTopK(capacity=3)
        for i in range(100):
            topk.offer("k%d" % i)
        assert len(topk) <= 3

    def test_top_ordering(self):
        topk = CmsTopK(capacity=8, width=4096)
        for count, key in ((30, "a"), (20, "b"), (10, "c")):
            for _ in range(count):
                topk.offer(key)
        ranked = [k for k, _ in topk.top(3)]
        assert ranked == ["a", "b", "c"]

    def test_membership(self):
        topk = CmsTopK(capacity=4)
        topk.offer("x")
        assert "x" in topk

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            CmsTopK(capacity=0)
