"""Tests for the HyperLogLog cardinality estimator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches.hyperloglog import HyperLogLog


def test_empty_cardinality_zero():
    hll = HyperLogLog(precision=10)
    assert hll.cardinality() == 0.0
    assert len(hll) == 0


def test_small_cardinalities_near_exact():
    # Linear counting should make small counts almost exact.
    hll = HyperLogLog(precision=12)
    for i in range(100):
        hll.add("item-%d" % i)
    assert abs(len(hll) - 100) <= 3


def test_duplicates_do_not_inflate():
    hll = HyperLogLog(precision=12)
    for _ in range(50):
        for i in range(20):
            hll.add("dup-%d" % i)
    assert abs(len(hll) - 20) <= 2


@pytest.mark.parametrize("true_n", [1000, 10000, 100000])
def test_error_within_envelope(true_n):
    hll = HyperLogLog(precision=12, seed=5)
    for i in range(true_n):
        hll.add("card-%d" % i)
    err = abs(hll.cardinality() - true_n) / true_n
    # 1.04/sqrt(4096) ~ 1.6%; allow 4 sigma.
    assert err < 4 * hll.standard_error()


def test_merge_equals_union():
    a = HyperLogLog(precision=12)
    b = HyperLogLog(precision=12)
    for i in range(1000):
        a.add("a-%d" % i)
        b.add("b-%d" % i)
    union = a.copy().merge(b)
    est = union.cardinality()
    assert abs(est - 2000) / 2000 < 0.1


def test_merge_is_idempotent_for_same_data():
    a = HyperLogLog(precision=10)
    for i in range(500):
        a.add("x-%d" % i)
    before = a.cardinality()
    a.merge(a.copy())
    assert a.cardinality() == before


def test_merge_rejects_mismatched_parameters():
    a = HyperLogLog(precision=10)
    b = HyperLogLog(precision=12)
    with pytest.raises(ValueError):
        a.merge(b)
    with pytest.raises(TypeError):
        a.merge(object())


def test_clear():
    hll = HyperLogLog(precision=10)
    hll.add("x")
    hll.clear()
    assert hll.cardinality() == 0.0


def test_copy_is_independent():
    a = HyperLogLog(precision=10)
    a.add("x")
    c = a.copy()
    c.add("y")
    assert len(a) == 1
    assert len(c) == 2


def test_serialization_roundtrip():
    a = HyperLogLog(precision=10, seed=2)
    for i in range(300):
        a.add("s-%d" % i)
    blob = a.to_bytes()
    b = HyperLogLog.from_bytes(blob, precision=10, seed=2)
    assert b.cardinality() == a.cardinality()


def test_from_bytes_rejects_bad_length():
    with pytest.raises(ValueError):
        HyperLogLog.from_bytes(b"\x00" * 3, precision=10)


def test_rejects_bad_precision():
    with pytest.raises(ValueError):
        HyperLogLog(precision=2)
    with pytest.raises(ValueError):
        HyperLogLog(precision=25)


@settings(max_examples=30, deadline=None)
@given(st.sets(st.text(min_size=1), max_size=200))
def test_estimate_close_for_arbitrary_keys(keys):
    hll = HyperLogLog(precision=12)
    for key in keys:
        hll.add(key)
    n = len(keys)
    assert abs(len(hll) - n) <= max(3, 0.1 * n)


@settings(max_examples=20, deadline=None)
@given(
    st.sets(st.integers(), max_size=100),
    st.sets(st.integers(), max_size=100),
)
def test_merge_commutative(xs, ys):
    a1, b1 = HyperLogLog(precision=10), HyperLogLog(precision=10)
    for x in xs:
        a1.add(str(x))
    for y in ys:
        b1.add(str(y))
    ab = a1.copy().merge(b1)
    ba = b1.copy().merge(a1)
    assert ab.to_bytes() == ba.to_bytes()
